/**
 * @file
 * Reproduces the paper's Figure 7 (execution-times table): TS, T1 and T32
 * for every benchmark on both platforms, with spawn overhead (T1/TS) and
 * scalability (T1/T32) in parentheses — the same cells the paper prints.
 *
 *   ./fig7_exec_times [--scale=0.25] [--cores=32] [--workload=name]
 */
#include <cstdio>

#include "bench_common.h"

using namespace numaws;
using namespace numaws::bench;

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);

    std::printf("Figure 7: execution times (simulated %d-core machine, "
                "scale %.2f)\n",
                args.cores, args.scale);
    Table t({"benchmark", "input", "TS", "CilkPlus T1", "CilkPlus T32",
             "NUMA-WS T1", "NUMA-WS T32"});

    for (const SimWorkload &wl : workloads::simWorkloads(args.scale)) {
        if (!args.selected(wl))
            continue;
        const double ts = runSerial(wl);

        const double c_t1 = runClassic(wl, 1).elapsedSeconds;
        const double c_tp = runClassic(wl, args.cores).elapsedSeconds;
        const double n_t1 = runNumaWs(wl, 1).elapsedSeconds;
        const double n_tp = runNumaWs(wl, args.cores).elapsedSeconds;

        t.addRow({wl.name, wl.inputDesc, Table::fmtSeconds(ts),
                  Table::fmtSecondsWithRatio(c_t1, c_t1 / ts),
                  Table::fmtSecondsWithRatio(c_tp, c_t1 / c_tp),
                  Table::fmtSecondsWithRatio(n_t1, n_t1 / ts),
                  Table::fmtSecondsWithRatio(n_tp, n_t1 / n_tp)});
    }
    t.print();
    std::printf("\nT1 cells show spawn overhead (T1/TS); TP cells show "
                "scalability (T1/TP), as in the paper.\n");
    return 0;
}
