/**
 * @file
 * Reproduces the paper's Figure 8 (time-breakdown table): T1, W32, S32,
 * I32 for both platforms, with work inflation (W32/T1) in parentheses.
 * The headline claim lives here: NUMA-WS lowers W32/T1 where hints apply
 * (cg, cilksort, heat, hull) and leaves matmul/strassen unharmed.
 *
 *   ./fig8_inflation [--scale=0.25] [--cores=32] [--workload=name]
 */
#include <cstdio>

#include "bench_common.h"

using namespace numaws;
using namespace numaws::bench;

namespace {

std::string
breakdownCells(double t1, const sim::SimResult &r, std::string *w,
               std::string *s, std::string *i)
{
    *w = Table::fmtSecondsWithRatio(r.workSeconds, r.workSeconds / t1);
    *s = Table::fmtSeconds(r.schedSeconds);
    *i = Table::fmtSeconds(r.idleSeconds);
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);

    std::printf("Figure 8: work/scheduling/idle breakdown at %d cores "
                "(scale %.2f). W shows (work inflation W/T1).\n",
                args.cores, args.scale);
    Table t({"benchmark", "CP T1", "CP W32", "CP S32", "CP I32",
             "NW T1", "NW W32", "NW S32", "NW I32"});

    for (const SimWorkload &wl : workloads::simWorkloads(args.scale)) {
        if (!args.selected(wl))
            continue;
        const double c_t1 = runClassic(wl, 1).elapsedSeconds;
        const sim::SimResult c = runClassic(wl, args.cores);
        const double n_t1 = runNumaWs(wl, 1).elapsedSeconds;
        const sim::SimResult n = runNumaWs(wl, args.cores);

        std::string cw, cs, ci, nw, ns, ni;
        breakdownCells(c_t1, c, &cw, &cs, &ci);
        breakdownCells(n_t1, n, &nw, &ns, &ni);
        t.addRow({wl.name, Table::fmtSeconds(c_t1), cw, cs, ci,
                  Table::fmtSeconds(n_t1), nw, ns, ni});
    }
    t.print();
    return 0;
}
