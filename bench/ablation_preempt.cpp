/**
 * @file
 * Preemption/aging/unpark rows: the PR 8 latency-class machinery driven
 * through saturation in both engines.
 *
 * Scenarios (sim; the threaded side mirrors the first two and `flood`):
 *  - `uncontended`: a sparse Latency-only stream — the comparator every
 *    protection claim is measured against.
 *  - `saturated`: 7-in-8 long spawn-dense Batch jobs keep every core
 *    busy; the 1-in-8 Latency arrivals raise the cooperative yield
 *    directive when ServingPolicy::preempt is on, so their queue wait is
 *    bounded by one task body instead of one whole Batch job.
 *  - `flood`: a sustained Normal-class stream (1.5x capacity) starves
 *    the occasional deadlined Batch job; ServingPolicy::agingWaitUs lets
 *    the starved Batch head's effective class rise past the fresher
 *    Normal lane so it completes before its deadline.
 *  - `ramp`: QueueDelay shedding at 2x with ServingPolicy::unparkLeadPct
 *    set — the delay-EWMA pressure signal must fire no later than the
 *    shed threshold itself crosses (the elastic pool's early warning).
 *
 *   ./ablation_preempt [--scale=0.25] [--cores=32] [--seeds=3]
 *                      [--seed=first] [--threads=2] [--reps=3]
 *                      [--skip-threaded] [--json=BENCH_preempt.json]
 *
 * Exits nonzero unless (sim gates are byte-deterministic per seed;
 * threaded gates are loose catastrophe floors — see the comment at the
 * threaded gate block):
 *  1. preemption: saturated preempt-on Latency-class p99 stays within
 *     1.3x the uncontended Latency-class p99, and yields were serviced,
 *  2. aging: the flood expires Batch jobs with aging off, completes
 *     more of them with aging on, and the promoted claims are counted,
 *  3. unpark lead: the pressure signal fires, the shed threshold
 *     crosses, and pressure fires no later than the crossing,
 *  4. sim rows with every knob on are byte-identical across repeated
 *     runs of one seed (preemption and aging replay exactly).
 */
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sim/serving.h"

using namespace numaws;
using namespace numaws::bench;
using namespace numaws::workloads;

namespace {

/** Exact quantile from an unsorted sample (sorts a copy). */
double
exactQuantile(std::vector<double> sample, double q)
{
    if (sample.empty())
        return 0.0;
    std::sort(sample.begin(), sample.end());
    const double n = static_cast<double>(sample.size());
    std::size_t idx = static_cast<std::size_t>(q * n + 0.999999);
    idx = idx > 0 ? idx - 1 : 0;
    if (idx >= sample.size())
        idx = sample.size() - 1;
    return sample[idx];
}

bool
gateMax(const char *what, double actual, double limit)
{
    const bool ok = actual <= limit;
    std::printf("  gate %-52s %.4f <= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

bool
gateMin(const char *what, double actual, double limit)
{
    const bool ok = actual >= limit;
    std::printf("  gate %-52s %.4f >= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

// ---------------------------------------------------------------------
// Sim side
// ---------------------------------------------------------------------

enum class MixKind { LatencyOnly, Saturated, Flood };

struct PreemptMix
{
    sim::ComputationDag dag;
    std::vector<sim::FrameId> roots;
    std::vector<int> classes;
    std::vector<uint8_t> deadlined; ///< Batch jobs that carry a deadline
    double meanJobCycles = 0.0;
};

PreemptMix
buildPreemptMix(MixKind kind, int jobs, int sockets)
{
    PreemptMix mix;
    // Latency: one serial block (block == n), so execution time is
    // load-independent — what the preemption gate measures is queue
    // wait, not intra-job parallelism starved by a saturated machine.
    MatmulParams lat_mm;
    lat_mm.n = 64;
    lat_mm.block = 64;
    const auto lat =
        matmulDag(lat_mm, sockets, Placement::FirstTouch, false);
    // Batch: ~8x the Latency job's work with small blocks, so a core
    // stuck inside one passes many Spawn boundaries — the preemption
    // bound (one task body) is much tighter than the whole-job bound.
    MatmulParams batch_mm;
    batch_mm.n = 128;
    batch_mm.block = 16;
    const auto batch =
        matmulDag(batch_mm, sockets, Placement::FirstTouch, false);
    // Normal: the flood filler, boundary-dense like the overload mix.
    HeatParams heat;
    heat.nx = 64;
    heat.ny = 64;
    heat.steps = 8;
    heat.baseRows = 16;
    const auto normal =
        heatDag(heat, sockets, Placement::Partitioned, true);
    // The flood's starved job: a *small* serial block (~4 per-core
    // service times of wall time), so its deadline measures queue
    // starvation — a large parallel job would blow any deadline on
    // execution time alone once the flood starves it of cores, which
    // no claim-ordering policy can repair.
    MatmulParams starved_mm;
    starved_mm.n = 32;
    starved_mm.block = 32;
    const auto starved =
        matmulDag(starved_mm, sockets, Placement::FirstTouch, false);

    double total = 0.0;
    for (int i = 0; i < jobs; ++i) {
        const sim::ComputationDag *d = nullptr;
        int cls = 0;
        bool ddl = false;
        switch (kind) {
          case MixKind::LatencyOnly:
            d = &lat;
            break;
          case MixKind::Saturated:
            if (i % 8 == 0) {
                d = &lat;
            } else {
                d = &batch;
                cls = 2;
            }
            break;
          case MixKind::Flood:
            // i%16==8 (not 0): the first deadlined Batch job lands
            // after the Normal backlog is already standing, so the
            // aging-off run shows starvation from the first sample.
            if (i % 16 == 8) {
                d = &starved;
                cls = 2;
                ddl = true;
            } else {
                d = &normal;
                cls = 1;
            }
            break;
        }
        mix.roots.push_back(mix.dag.append(*d));
        mix.classes.push_back(cls);
        mix.deadlined.push_back(ddl ? 1 : 0);
        total += d->workSpan().work;
    }
    mix.meanJobCycles = total / jobs;
    return mix;
}

struct PreemptScenario
{
    const char *name;
    MixKind mix;
    double util;
    std::string shed; ///< "none" or "queue_delay"
    bool preempt = false;
    /** Aging step in per-core service times (meanJobCycles / cores);
     * 0 = off. Must sit *above* the flood lane's own head-wait scale:
     * every lane ages, and the effective-class tie-break prefers the
     * nominal class, so a step smaller than the Normal head's typical
     * wait promotes the flood right alongside the starved Batch head
     * and restores strict priority. Sized between the two wait scales
     * (Normal head ~ backlog growth, Batch head ~ the whole window),
     * only the Batch lane reaches the promoted class in time. */
    double agingSvc = 0.0;
    int unparkPct = 0;
    bool parking = false;
    /** Deadline on marked Batch jobs, same service-time units; 0 =
     * none. Sized so the aged claim (two aging steps plus slack) makes
     * it and the starved aging-off head cannot. */
    double deadlineSvc = 0.0;
};

struct PreemptRun
{
    sim::ServingResult r;
    std::vector<int> classes;
    double ratePerSec = 0.0;
    double ghz = 1.0;
    int agingUs = 0;

    /** Latency-class p99 over Done jobs, microseconds. */
    double
    latencyClassP99Us() const
    {
        std::vector<double> lat;
        for (std::size_t i = 0; i < r.jobs.size(); ++i)
            if (classes[i] == 0
                && r.jobs[i].outcome == JobOutcome::Done)
                lat.push_back(r.jobs[i].latencyCycles() / ghz / 1000.0);
        return exactQuantile(std::move(lat), 0.99);
    }

    uint64_t
    classOutcome(int cls, JobOutcome o) const
    {
        uint64_t n = 0;
        for (std::size_t i = 0; i < r.jobs.size(); ++i)
            if (classes[i] == cls && r.jobs[i].outcome == o)
                ++n;
        return n;
    }
};

PreemptRun
runPreemptScenario(const PreemptMix &mix, const PreemptScenario &sc,
                   const Machine &machine, int cores, uint64_t seed)
{
    PreemptRun run;
    run.ghz = machine.ghz();
    run.classes = mix.classes;
    sim::ArrivalProcess p;
    p.ratePerSec =
        sc.util * cores * machine.ghz() * 1e9 / mix.meanJobCycles;
    p.seed = seed;
    run.ratePerSec = p.ratePerSec;
    const auto at = sim::arrivalCycles(
        p, static_cast<int>(mix.roots.size()), machine.ghz());
    // One per-core service time: the mean inter-completion gap at
    // capacity, the natural unit for deadlines and aging steps.
    const double svc_cycles = mix.meanJobCycles / cores;
    std::vector<sim::SimJob> jobs(mix.roots.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].root = mix.roots[i];
        jobs[i].arrivalCycles = at[i];
        jobs[i].cls = mix.classes[i];
        if (sc.deadlineSvc > 0.0 && mix.deadlined[i])
            jobs[i].deadlineCycles = at[i] + sc.deadlineSvc * svc_cycles;
    }
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.modelParking = sc.parking;
    cfg.sched.parkSpinFailures = 4;
    cfg.seed = seed;
    const double svc_us = svc_cycles / machine.ghz() / 1000.0;
    ServingPolicy pol;
    if (sc.shed == "queue_delay") {
        pol.shed = ShedPolicy::QueueDelay;
        // A flat ladder (4x/8x/16x, tighter than the overload bench's)
        // so the Batch EWMA actually crosses its target inside the
        // arrival window — the ramp gate needs the crossing to happen,
        // not just the 50% early warning.
        pol.queueDelayTargetUs[0] =
            std::max(1, static_cast<int>(4.0 * svc_us));
        pol.queueDelayTargetUs[1] =
            std::max(1, static_cast<int>(8.0 * svc_us));
        pol.queueDelayTargetUs[2] =
            std::max(1, static_cast<int>(16.0 * svc_us));
    }
    pol.preempt = sc.preempt;
    if (sc.agingSvc > 0.0)
        pol.agingWaitUs =
            std::max(1, static_cast<int>(sc.agingSvc * svc_us));
    pol.unparkLeadPct = sc.unparkPct;
    run.agingUs = pol.agingWaitUs;
    cfg.sched.serving = pol;
    run.r = sim::simulateServing(mix.dag, jobs, machine, cores, cfg);
    return run;
}

/** One preemption row, rendered before provenance stamping so the
 * determinism gate can compare raw bytes. */
JsonRow
preemptRow(const char *engine, const char *scenario, bool preempt,
           int aging_us, int unpark_pct, const std::string &shed,
           int cores_or_workers, uint64_t seed, std::size_t jobs,
           double rate, double elapsed_s, double p99_us,
           double lat_p99_us, double queue_p99_us, double goodput,
           uint64_t done, uint64_t expired, uint64_t batch_done,
           uint64_t batch_expired, uint64_t yields, uint64_t aged,
           uint64_t unpark_at, uint64_t shed_cross_at)
{
    JsonRow row;
    row.set("engine", engine)
        .set("workload", "preempt_mix")
        .set("scenario", scenario)
        .set("preempt", preempt)
        // `aging` is the identity (stable across runs); `aging_us` is a
        // measurement — the threaded step is calibrated per host.
        .set("aging", aging_us > 0)
        .set("aging_us", aging_us)
        .set("unpark_pct", unpark_pct)
        .set("shed", shed)
        .set("arrivals", "poisson")
        .set(std::string(engine) == "sim" ? "cores" : "workers",
             cores_or_workers)
        .set("seed", seed)
        .set("jobs", static_cast<uint64_t>(jobs))
        .set("arrival_per_s", rate)
        .set("elapsed_s", elapsed_s)
        .set("p99_us", p99_us)
        .set("lat_p99_us", lat_p99_us)
        .set("queue_p99_us", queue_p99_us)
        .set("goodput", goodput)
        .set("done", done)
        .set("expired", expired)
        .set("batch_done", batch_done)
        .set("batch_expired", batch_expired)
        .set("yields", yields)
        .set("aged_claims", aged)
        .set("unpark_at_cycles", unpark_at)
        .set("shed_cross_cycles", shed_cross_at);
    return row;
}

JsonRow
simRow(const PreemptScenario &sc, int cores, uint64_t seed,
       const PreemptRun &run)
{
    const sim::ServingResult &r = run.r;
    return preemptRow(
        "sim", sc.name, sc.preempt, run.agingUs, sc.unparkPct, sc.shed,
        cores, seed, r.jobs.size(), run.ratePerSec,
        r.sim.elapsedSeconds, r.p99Us, run.latencyClassP99Us(),
        r.queueP99Us, r.goodputPerSec, r.done, r.expired,
        run.classOutcome(2, JobOutcome::Done),
        run.classOutcome(2, JobOutcome::Expired), r.sim.counters.yields,
        r.sim.counters.agedClaims, r.sim.firstUnparkPressureCycles,
        r.sim.firstShedCrossCycles);
}

// ---------------------------------------------------------------------
// Threaded side: fork-join job bodies (the library helpers wrap
// rt.run() and cannot be called from inside a job). The Batch body is
// boundary-dense (many spawns per step) so a raised yield directive is
// observed within a fraction of the job, and the Latency body is a
// single serial block so its execution time is load-independent.
// ---------------------------------------------------------------------

double
heatJob(int64_t nx, int64_t ny, int64_t steps)
{
    std::vector<double> a(static_cast<std::size_t>(nx) * ny, 1.0);
    std::vector<double> b(a.size(), 0.0);
    double *src = a.data();
    double *dst = b.data();
    for (int64_t t = 0; t < steps; ++t) {
        parallelForRange(1, nx - 1, /*grain=*/nx / 4 + 1,
                         [&](int64_t lo, int64_t hi) {
                             for (int64_t i = lo; i < hi; ++i)
                                 for (int64_t j = 1; j < ny - 1; ++j)
                                     dst[i * ny + j] =
                                         0.25
                                         * (src[(i - 1) * ny + j]
                                            + src[(i + 1) * ny + j]
                                            + src[i * ny + j - 1]
                                            + src[i * ny + j + 1]);
                         });
        std::swap(src, dst);
    }
    return src[ny + 1];
}

double
matmulSerialJob(uint32_t n)
{
    std::vector<double> a(static_cast<std::size_t>(n) * n, 1.0);
    std::vector<double> b(a.size(), 2.0);
    std::vector<double> c(a.size(), 0.0);
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t k = 0; k < n; ++k) {
            const double aik = a[static_cast<std::size_t>(i) * n + k];
            for (uint32_t j = 0; j < n; ++j)
                c[static_cast<std::size_t>(i) * n + j] +=
                    aik * b[static_cast<std::size_t>(k) * n + j];
        }
    return c[0];
}

std::atomic<double> g_sink{0.0};

/** Submit one job of the scenario's mix. Saturated: 1-in-8 Latency
 * serial blocks amid spawn-dense Batch heat; Flood: a Normal-class
 * heat stream with a deadlined Batch job every 16th slot. */
JobHandle
submitPreemptJob(Runtime &rt, MixKind kind, int i, int64_t deadline_ns)
{
    JobOptions opts;
    if (kind == MixKind::Saturated && i % 8 == 0) {
        opts.cls = JobClass::Latency;
        return rt.submit([] {
            g_sink.store(matmulSerialJob(64),
                         std::memory_order_relaxed);
        }, opts);
    }
    if (kind == MixKind::Flood && i % 16 != 8) {
        opts.cls = JobClass::Normal;
        opts.place = static_cast<Place>(i % rt.numPlaces());
        return rt.submit([] {
            g_sink.store(heatJob(128, 128, 16),
                         std::memory_order_relaxed);
        }, opts);
    }
    opts.cls = JobClass::Batch;
    opts.deadlineNs = deadline_ns;
    return rt.submit([] {
        g_sink.store(heatJob(128, 128, 16),
                     std::memory_order_relaxed);
    }, opts);
}

struct ThreadedRun
{
    double elapsed_s = 0.0;
    double arrival_per_s = 0.0;
    double goodput = 0.0;
    double p99_us = 0.0;
    double lat_p99_us = 0.0;   ///< Latency-class Done-job p99
    double queue_p99_us = 0.0;
    uint64_t done = 0, expired = 0, other = 0;
    uint64_t batch_done = 0, batch_expired = 0;
    uint64_t yields = 0, aged = 0;
};

/** Drive @p rt open-loop at seeded @p arrival_ns offsets. */
ThreadedRun
runThreadedStream(Runtime &rt, MixKind kind,
                  const std::vector<double> &arrival_ns,
                  int64_t deadline_ns)
{
    for (int i = 1; i <= 8; ++i)
        submitPreemptJob(rt, kind, i, 0).wait();
    rt.resetStats();

    std::vector<JobHandle> handles;
    handles.reserve(arrival_ns.size());
    const int64_t t0 = nowNs();
    for (std::size_t i = 0; i < arrival_ns.size(); ++i) {
        const int64_t target = t0 + static_cast<int64_t>(arrival_ns[i]);
        while (nowNs() < target) {
            if (target - nowNs() > 200000)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
        }
        handles.push_back(submitPreemptJob(
            rt, kind, static_cast<int>(i), deadline_ns));
    }
    for (JobHandle &h : handles)
        h.wait();

    ThreadedRun r;
    r.elapsed_s = static_cast<double>(nowNs() - t0) * 1e-9;
    r.arrival_per_s =
        static_cast<double>(handles.size()) / r.elapsed_s;
    std::vector<double> lat_us, lat_cls_us, queue_us;
    for (std::size_t i = 0; i < handles.size(); ++i) {
        JobHandle &h = handles[i];
        const bool is_batch =
            kind == MixKind::Saturated ? (i % 8 != 0) : (i % 16 == 8);
        switch (h.outcome()) {
          case JobOutcome::Done: {
            ++r.done;
            const double lat =
                static_cast<double>(h.latencyNs()) / 1000.0;
            lat_us.push_back(lat);
            queue_us.push_back(
                static_cast<double>(h.queueNs()) / 1000.0);
            if (kind == MixKind::Saturated && i % 8 == 0)
                lat_cls_us.push_back(lat);
            if (is_batch)
                ++r.batch_done;
            break;
          }
          case JobOutcome::Expired:
            ++r.expired;
            if (is_batch)
                ++r.batch_expired;
            break;
          default:
            ++r.other;
            break;
        }
    }
    r.goodput = static_cast<double>(r.done) / r.elapsed_s;
    r.p99_us = exactQuantile(lat_us, 0.99);
    r.lat_p99_us = exactQuantile(lat_cls_us, 0.99);
    r.queue_p99_us = exactQuantile(queue_us, 0.99);
    const RuntimeStats s = rt.stats();
    r.yields = s.counters.yields;
    r.aged = s.counters.agedClaims;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);
    const std::string json_path =
        cli.getString("json", "BENCH_preempt.json");
    const uint64_t first_seed =
        static_cast<uint64_t>(cli.getInt("seed", 0x5eed));
    const int num_seeds =
        std::max(1, static_cast<int>(cli.getInt("seeds", 3)));
    // Never oversubscribe (see ablation_overload): descheduled workers
    // stall Latency-class claims, which the gates would misread.
    const int default_threads = std::min(
        2u, std::max(1u, std::thread::hardware_concurrency()));
    const int threads =
        static_cast<int>(cli.getInt("threads", default_threads));
    const int reps =
        std::max(1, static_cast<int>(cli.getInt("reps", 3)));
    const bool skip_threaded = cli.getBool("skip-threaded", false);
    const int sockets = socketsFor(args.cores);
    const int sim_jobs = args.scale >= 1.0 ? 480 : 240;

    const PreemptScenario scenarios[] = {
        {"uncontended", MixKind::LatencyOnly, 0.25, "none"},
        {"saturated", MixKind::Saturated, 1.5, "none",
         /*preempt=*/false},
        {"saturated", MixKind::Saturated, 1.5, "none",
         /*preempt=*/true},
        {"flood", MixKind::Flood, 0.7, "none", false, /*agingSvc=*/0,
         0, false, /*deadlineSvc=*/60.0},
        {"flood", MixKind::Flood, 0.7, "none", false, /*agingSvc=*/15,
         0, false, /*deadlineSvc=*/60.0},
        {"ramp", MixKind::Saturated, 2.0, "queue_delay", false, false,
         /*unparkPct=*/50, /*parking=*/true},
    };

    JsonReport report;
    bool ok = true;

    // ---- Simulated rows + deterministic gates ----
    const Machine machine = Machine::paperMachineSubset(args.cores);
    PreemptMix mixes[3] = {
        buildPreemptMix(MixKind::LatencyOnly, sim_jobs, sockets),
        buildPreemptMix(MixKind::Saturated, sim_jobs, sockets),
        buildPreemptMix(MixKind::Flood, sim_jobs, sockets),
    };
    const auto mixFor = [&](MixKind k) -> const PreemptMix & {
        return mixes[static_cast<int>(k)];
    };
    std::printf("Simulated preemption, %d cores, %d jobs:\n",
                args.cores, sim_jobs);
    Table t({"scenario", "preempt", "aging", "latp99us", "yields",
             "aged", "bdone", "bexpired"});
    double base_lat_p99 = 0.0;    // uncontended Latency p99
    double off_lat_p99 = 0.0, on_lat_p99 = 0.0;
    double on_yields = 0.0;
    double off_batch_done = 0.0, on_batch_done = 0.0;
    double off_batch_expired = 0.0;
    double on_aged = 0.0;
    double ramp_unpark = 0.0, ramp_cross = 0.0;
    bool ramp_lead_ok = true;
    for (const PreemptScenario &sc : scenarios) {
        const PreemptMix &mix = mixFor(sc.mix);
        double lat_p99 = 0.0, yields = 0.0, aged = 0.0;
        double bdone = 0.0, bexpired = 0.0;
        int aging_us = 0;
        for (int s = 0; s < num_seeds; ++s) {
            const uint64_t seed = first_seed + 7919ULL * s;
            const PreemptRun run =
                runPreemptScenario(mix, sc, machine, args.cores, seed);
            report.addRow(simRow(sc, args.cores, seed, run));
            if (std::getenv("PREEMPT_DEBUG")
                && std::string(sc.name) == "flood" && s == 0) {
                const double svc =
                    mix.meanJobCycles / args.cores;
                for (std::size_t i = 0; i < run.r.jobs.size(); ++i) {
                    if (mix.classes[i] != 2)
                        continue;
                    const auto &j = run.r.jobs[i];
                    std::printf("  dbg batch[%3zu] arr=%6.1f "
                                "start=%6.1f fin=%6.1f svc  %s\n",
                                i, j.arrivalCycles / svc,
                                j.startCycles / svc,
                                j.finishCycles / svc,
                                jobOutcomeName(j.outcome));
                }
            }
            lat_p99 += run.latencyClassP99Us() / num_seeds;
            yields += static_cast<double>(run.r.sim.counters.yields)
                      / num_seeds;
            aged += static_cast<double>(run.r.sim.counters.agedClaims)
                    / num_seeds;
            bdone += static_cast<double>(
                         run.classOutcome(2, JobOutcome::Done))
                     / num_seeds;
            bexpired += static_cast<double>(
                            run.classOutcome(2, JobOutcome::Expired))
                        / num_seeds;
            aging_us = run.agingUs;
            if (std::string(sc.name) == "ramp") {
                ramp_unpark +=
                    static_cast<double>(
                        run.r.sim.firstUnparkPressureCycles)
                    / num_seeds;
                ramp_cross += static_cast<double>(
                                  run.r.sim.firstShedCrossCycles)
                              / num_seeds;
                // Lead is a per-seed ordering claim, not an average.
                ramp_lead_ok &= run.r.sim.firstUnparkPressureCycles > 0
                                && run.r.sim.firstUnparkPressureCycles
                                       <= run.r.sim.firstShedCrossCycles;
            }
        }
        t.addRow({sc.name, sc.preempt ? "on" : "off",
                  sc.agingSvc > 0.0 ? std::to_string(aging_us) + "us"
                                    : "off",
                  std::to_string(static_cast<int64_t>(lat_p99)),
                  std::to_string(static_cast<int64_t>(yields)),
                  std::to_string(static_cast<int64_t>(aged)),
                  std::to_string(static_cast<int64_t>(bdone)),
                  std::to_string(static_cast<int64_t>(bexpired))});
        const std::string name = sc.name;
        if (name == "uncontended")
            base_lat_p99 = lat_p99;
        if (name == "saturated" && !sc.preempt)
            off_lat_p99 = lat_p99;
        if (name == "saturated" && sc.preempt) {
            on_lat_p99 = lat_p99;
            on_yields = yields;
        }
        if (name == "flood" && sc.agingSvc <= 0.0) {
            off_batch_done = bdone;
            off_batch_expired = bexpired;
        }
        if (name == "flood" && sc.agingSvc > 0.0) {
            on_batch_done = bdone;
            on_aged = aged;
        }
    }
    t.print();

    // Determinism: every knob on at once (preempt + aging + unpark +
    // parking), repeated with one seed, must render byte-identical
    // rows — preemption points, aged claims, and wake escalations all
    // replay exactly.
    {
        const PreemptScenario sc = {
            "kitchen", MixKind::Saturated, 1.5, "queue_delay",
            /*preempt=*/true, /*agingSvc=*/40, /*unparkPct=*/50,
            /*parking=*/true};
        const PreemptMix &mix = mixFor(sc.mix);
        const PreemptRun a =
            runPreemptScenario(mix, sc, machine, args.cores, first_seed);
        const PreemptRun b =
            runPreemptScenario(mix, sc, machine, args.cores, first_seed);
        const bool same = simRow(sc, args.cores, first_seed, a).str()
                          == simRow(sc, args.cores, first_seed, b).str();
        std::printf("  gate %-52s %s\n",
                    "sim all-knobs rows byte-identical",
                    same ? "ok" : "FAIL");
        ok &= same;
        report.addRow(simRow(sc, args.cores, first_seed, a));
    }

    std::printf("\nSim preemption gates:\n");
    ok &= gateMax("sim saturated preempt-on / uncontended lat p99",
                  on_lat_p99 / std::max(1e-9, base_lat_p99), 1.30);
    ok &= gateMin("sim saturated preempt-on yields serviced",
                  on_yields, 1.0);
    // Informational, not gated: how much the whole-job wait cost.
    std::printf("  info saturated preempt off/on latency p99 ratio "
                "%.2f\n",
                off_lat_p99 / std::max(1e-9, on_lat_p99));
    ok &= gateMin("sim flood aging-off expires batch jobs",
                  off_batch_expired, 1.0);
    ok &= gateMin("sim flood aging-on batch completions gained",
                  on_batch_done - off_batch_done, 1.0);
    ok &= gateMin("sim flood aging-on aged claims counted", on_aged,
                  1.0);
    ok &= gateMin("sim ramp unpark pressure fires", ramp_unpark, 1.0);
    ok &= gateMin("sim ramp shed threshold crosses", ramp_cross, 1.0);
    std::printf("  gate %-52s %s\n",
                "sim unpark pressure leads shed crossing (per seed)",
                ramp_lead_ok ? "ok" : "FAIL");
    ok &= ramp_lead_ok;

    // ---- Threaded rows + gates ----
    if (!skip_threaded) {
        const int n_jobs = args.scale >= 1.0 ? 240 : 120;

        // Calibrate this host's capacity with the real runtime (see
        // ablation_overload: threads/mean_job overstates capacity on
        // CI hosts with fewer cores than workers).
        double mean_job_s = 0.0, capacity_per_s = 0.0;
        {
            RuntimeOptions o;
            o.numWorkers = threads;
            o.numPlaces = threads >= 2 ? 2 : 1;
            o.sched.parkSpinFailures = 1 << 30;
            Runtime rt(o);
            const int probe = 20;
            const int64_t t0 = nowNs();
            for (int i = 1; i <= probe; ++i)
                submitPreemptJob(rt, MixKind::Saturated, i, 0).wait();
            mean_job_s =
                static_cast<double>(nowNs() - t0) * 1e-9 / probe;

            const int burst = 40;
            std::vector<JobHandle> hs;
            hs.reserve(burst);
            const int64_t b0 = nowNs();
            for (int i = 0; i < burst; ++i)
                hs.push_back(
                    submitPreemptJob(rt, MixKind::Saturated, i, 0));
            for (JobHandle &h : hs)
                h.wait();
            capacity_per_s =
                burst / (static_cast<double>(nowNs() - b0) * 1e-9);
        }
        const double mean_job_us = mean_job_s * 1e6;
        std::printf("\nThreaded preemption, %d workers (mean job "
                    "%.0fus, capacity %.0f jobs/s):\n",
                    threads, mean_job_us, capacity_per_s);

        struct ThreadedScenario
        {
            const char *name;
            MixKind mix;
            bool preempt;
            bool aging;
            double deadline_jobs; ///< Batch deadline in mean jobs
        };
        const ThreadedScenario tscens[] = {
            {"saturated", MixKind::Saturated, false, false, 0.0},
            {"saturated", MixKind::Saturated, true, false, 0.0},
            {"flood", MixKind::Flood, false, true, 24.0},
        };

        Table tt({"scenario", "preempt", "aging", "latp99us", "yields",
                  "aged", "done", "expired"});
        std::vector<double> off_lat, on_lat;
        double t_on_yields = 0.0, t_aged = 0.0;
        double t_sat_done_min = 1.0, t_flood_acct_min = 1.0;
        for (const ThreadedScenario &ts : tscens) {
            const double rate = 1.5 * capacity_per_s;
            RuntimeOptions o;
            o.numWorkers = threads;
            o.numPlaces = threads >= 2 ? 2 : 1;
            // Spin instead of parking: a parked worker charges its ~ms
            // wake latency to the next Latency-class job, noise the
            // preemption comparison must not carry.
            o.sched.parkSpinFailures = 1 << 30;
            ServingPolicy pol;
            pol.preempt = ts.preempt;
            if (ts.aging)
                pol.agingWaitUs = std::max(
                    1000, static_cast<int>(2.0 * mean_job_us));
            o.sched.serving = pol;
            Runtime rt(o);
            double lat_p99 = 0.0, yields = 0.0, aged = 0.0;
            double done = 0.0, expired = 0.0;
            for (int rep = 0; rep < reps; ++rep) {
                sim::ArrivalProcess p;
                p.ratePerSec = rate;
                p.seed = first_seed + 104729ULL * rep;
                // ghz=1.0 makes arrivalCycles return nanoseconds.
                const auto arrivals =
                    sim::arrivalCycles(p, n_jobs, 1.0);
                const ThreadedRun r = runThreadedStream(
                    rt, ts.mix, arrivals,
                    ts.deadline_jobs > 0.0
                        ? static_cast<int64_t>(ts.deadline_jobs
                                               * mean_job_us * 1000.0)
                        : 0);
                lat_p99 += r.lat_p99_us / reps;
                yields += static_cast<double>(r.yields);
                aged += static_cast<double>(r.aged);
                done += static_cast<double>(r.done) / reps;
                expired += static_cast<double>(r.expired) / reps;
                if (ts.mix == MixKind::Saturated) {
                    (ts.preempt ? on_lat : off_lat)
                        .push_back(r.lat_p99_us);
                    t_sat_done_min = std::min(
                        t_sat_done_min,
                        static_cast<double>(r.done) / n_jobs);
                } else {
                    t_flood_acct_min = std::min(
                        t_flood_acct_min,
                        static_cast<double>(r.done + r.expired)
                            / n_jobs);
                }
                report.addRow(
                    preemptRow("threaded", ts.name, ts.preempt,
                               pol.agingWaitUs, 0, "none", threads,
                               first_seed + 104729ULL * rep,
                               static_cast<std::size_t>(n_jobs),
                               r.arrival_per_s, r.elapsed_s, r.p99_us,
                               r.lat_p99_us, r.queue_p99_us, r.goodput,
                               r.done, r.expired, r.batch_done,
                               r.batch_expired, r.yields, r.aged, 0, 0)
                        .set("rep", rep));
            }
            if (ts.preempt)
                t_on_yields += yields;
            if (ts.aging)
                t_aged += aged;
            tt.addRow({ts.name, ts.preempt ? "on" : "off",
                       ts.aging ? "on" : "off",
                       std::to_string(static_cast<int64_t>(lat_p99)),
                       std::to_string(static_cast<int64_t>(yields)),
                       std::to_string(static_cast<int64_t>(aged)),
                       std::to_string(static_cast<int64_t>(done)),
                       std::to_string(
                           static_cast<int64_t>(expired))});
        }
        tt.print();

        // Loose catastrophe floors only: the exact 1.3x bound is
        // enforced byte-deterministically by the sim above, while a
        // shared 1-2 core CI host swings threaded wall-clock ratios by
        // +/-40% run to run. These assert (a) preemption actually
        // happens and never *hurts* the class it protects by more than
        // noise (3x median margin), (b) aged claims actually happen,
        // and (c) no job is ever lost by either mechanism.
        std::printf("\nThreaded preemption gates:\n");
        ok &= gateMin("threaded preempt-on yields serviced",
                      t_on_yields, 1.0);
        ok &= gateMax("threaded preempt on/off latency p99",
                      exactQuantile(on_lat, 0.5)
                          / std::max(1e-9, exactQuantile(off_lat, 0.5)),
                      3.0);
        ok &= gateMin("threaded aging-on aged claims counted", t_aged,
                      1.0);
        ok &= gateMin("threaded saturated jobs all complete",
                      t_sat_done_min, 1.0);
        ok &= gateMin("threaded flood jobs all resolve",
                      t_flood_acct_min, 1.0);
    }

    report.writeFile(json_path);
    std::printf("\nwrote %zu rows to %s\n", report.numRows(),
                json_path.c_str());

    if (!ok) {
        std::printf("FAIL: preemption acceptance gate violated\n");
        return 1;
    }
    return 0;
}
