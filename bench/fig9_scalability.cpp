/**
 * @file
 * Reproduces the paper's Figure 9: NUMA-WS scalability T1/TP for P = 1 to
 * 32, with threads packed onto the fewest sockets. Prints one series per
 * benchmark (the paper's seven curves).
 *
 *   ./fig9_scalability [--scale=0.25] [--cores=1,2,4,8,16,24,32]
 *                      [--workload=name]
 */
#include <cstdio>

#include "bench_common.h"

using namespace numaws;
using namespace numaws::bench;

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);
    const std::vector<int64_t> cores =
        cli.getIntList("cores", {1, 2, 4, 8, 16, 24, 32});

    std::printf("Figure 9: scalability T1/TP on NUMA-WS (threads packed "
                "onto the fewest sockets; scale %.2f)\n",
                args.scale);
    std::vector<std::string> header{"benchmark"};
    for (int64_t c : cores)
        header.push_back("P=" + std::to_string(c));
    Table t(header);

    // The paper's Figure 9 plots the seven curves: cilksort, heat,
    // strassen-z, hull1, hull2, cg, matmul-z.
    const std::vector<std::string> curves = {
        "cilksort", "heat", "strassen-z", "hull1",
        "hull2",    "cg",   "matmul-z"};

    for (const SimWorkload &wl : workloads::simWorkloads(args.scale)) {
        if (!args.selected(wl))
            continue;
        bool in_figure = false;
        for (const auto &c : curves)
            in_figure |= c == wl.name;
        if (!in_figure && args.only.empty())
            continue;

        const double t1 = runNumaWs(wl, 1).elapsedSeconds;
        std::vector<std::string> row{wl.name};
        for (int64_t c : cores) {
            if (c == 1) {
                row.push_back("1.00x");
                continue;
            }
            const double tp =
                runNumaWs(wl, static_cast<int>(c)).elapsedSeconds;
            row.push_back(Table::fmtRatio(t1 / tp));
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\nSame program, same input at every P — only the "
                "core/socket count changes (processor-oblivious).\n");
    return 0;
}
