/**
 * @file
 * Reproduces the paper's Figure 6 and the layout half of its evaluation:
 * prints the Z-Morton and blocked Z-Morton orderings for an 8x8 matrix
 * (the actual figure), then compares index-computation cost and
 * traversal cost on the host, and matmul vs matmul-z in the simulator
 * (the 190s -> 73s effect, directionally).
 *
 *   ./fig6_layout [--n=512] [--scale=0.25]
 */
#include <cstdio>

#include "bench_common.h"
#include "layout/blocked_matrix.h"
#include "support/timing.h"

using namespace numaws;
using namespace numaws::bench;

namespace {

void
printFigure6()
{
    std::printf("Figure 6a: Z-Morton (cell-by-cell)\n");
    for (uint32_t i = 0; i < 8; ++i) {
        for (uint32_t j = 0; j < 8; ++j)
            std::printf("%3llu",
                        static_cast<unsigned long long>(
                            zMortonEncode(i, j)));
        std::printf("\n");
    }
    std::printf("\nFigure 6b: blocked Z-Morton (4x4 blocks, row-major "
                "inside)\n");
    for (uint32_t i = 0; i < 8; ++i) {
        for (uint32_t j = 0; j < 8; ++j)
            std::printf("%3llu",
                        static_cast<unsigned long long>(
                            blockedZOffset(i, j, 4, 2)));
        std::printf("\n");
    }
}

/** Host microbenchmark: per-element index cost of the two layouts. */
void
indexCostBench(uint32_t n)
{
    volatile uint64_t sink = 0;
    WallTimer t1;
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t j = 0; j < n; ++j)
            sink += zMortonEncode(i, j);
    const double z_cell = t1.seconds();

    WallTimer t2;
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t j = 0; j < n; ++j)
            sink += blockedZOffset(i, j, 32, n / 32);
    const double z_block = t2.seconds();

    WallTimer t3;
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t j = 0; j < n; ++j)
            sink += static_cast<uint64_t>(i) * n + j;
    const double row = t3.seconds();

    std::printf("\nindex computation over %ux%u (host): row-major "
                "%.4f s, cell Z-Morton %.4f s, blocked Z-Morton %.4f s\n",
                n, n, row, z_cell, z_block);
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const uint32_t n = static_cast<uint32_t>(cli.getInt("n", 512));
    const double scale = cli.getDouble("scale", 0.25);

    printFigure6();
    indexCostBench(n);

    // Simulated effect of the layout transformation on matmul and
    // strassen (TS and T32 rows of Figure 7 for the -z variants).
    std::printf("\nlayout transformation in the simulator (scale "
                "%.2f):\n",
                scale);
    Table t({"benchmark", "TS", "NUMA-WS T32", "remote%"});
    for (const SimWorkload &wl : workloads::simWorkloads(scale)) {
        if (wl.name != "matmul" && wl.name != "matmul-z"
            && wl.name != "strassen" && wl.name != "strassen-z")
            continue;
        const double ts = runSerial(wl);
        const sim::SimResult r32 = runNumaWs(wl, 32);
        t.addRow({wl.name, Table::fmtSeconds(ts),
                  Table::fmtSeconds(r32.elapsedSeconds),
                  Table::fmtRatio(r32.memory.remoteFraction())});
    }
    t.print();
    return 0;
}
