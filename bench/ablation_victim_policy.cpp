/**
 * @file
 * Victim-policy ablation grid: {flat, occupancy, occupancy+affinity}
 * on the two workloads that pulled PR 1's hierarchical search in
 * opposite directions. (The distance-only hierarchical row retired in
 * PR 4 after two PRs of green CI history on the informed default.)
 *
 * PR 1 recorded the tension this grid measures: the blind distance
 * ladder cut matmul-layout steal probes ~16% but cost ~+30% simulated
 * time on heat, whose work travels through mailboxes on other sockets —
 * the ladder kept probing drained local deques. The informed policies
 * consult the OccupancyBoard (and, for occupancy+affinity, the thief's
 * data-region homes) so the ladder skips provably-dry levels and lands
 * on the mailbox-fed sockets directly.
 *
 *   ./ablation_victim_policy [--scale=0.25] [--cores=32] [--seeds=5]
 *                            [--seed=first] [--threads=2]
 *                            [--skip-threaded] [--skip-sim] [--json=...]
 *
 * Steal dynamics near heat's per-step barriers are seed sensitive, so
 * each (workload, policy) cell runs --seeds independent seeds; the JSON
 * carries one row per seed (with core-count/sha provenance) and the
 * gates compare *means*. The grid is also run on the threaded runtime
 * with --threads workers (fib + heat, engine="threaded" rows, ungated:
 * wall times mean nothing on the 1-core containers, but the steal/skip
 * counters do, and the CI threaded-bench job accumulates them into a
 * real-thread perf trajectory). Exits nonzero unless all acceptance
 * gates hold (simulator rows only):
 *  1. heat: occupancy+affinity <= flat-search simulated time
 *     (the PR 1 regression is erased),
 *  2. matmul_layout: occupancy+affinity steal probes stay >= 10% below
 *     flat search (the PR 1 win is kept).
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "support/timing.h"

using namespace numaws;
using namespace numaws::bench;
using namespace numaws::workloads;

namespace {

struct PolicyRow
{
    const char *name;       ///< JSON "policy" field
    bool hierarchical;
    VictimPolicy victims;
    EscalationPolicy escalation;
};

const PolicyRow kRows[] = {
    {"flat", false, VictimPolicy::Distance, EscalationPolicy::Fixed},
    // The distance-only hierarchical row was retired in PR 4 after two
    // PRs of green CI history on the informed default; the
    // VictimPolicy::Distance escape hatch survives in SchedPolicy for
    // debugging a suspect board, but no longer earns a gated bench row.
    {"occupancy", true, VictimPolicy::Occupancy, EscalationPolicy::Fixed},
    {"occupancy+affinity", true, VictimPolicy::OccupancyAffinity,
     EscalationPolicy::Fixed},
    // Extra (ungated) row: the self-tuning escalation on top of the full
    // informed policy, so its effect stays visible in the artifact.
    {"occupancy+affinity/esc-adaptive", true,
     VictimPolicy::OccupancyAffinity, EscalationPolicy::Adaptive},
};

struct Measured
{
    double elapsed = 0.0;
    uint64_t attempts = 0;
};

sim::SimConfig
configOf(const PolicyRow &row, uint64_t seed)
{
    sim::SimConfig c = sim::SimConfig::numaWs();
    c.sched.hierarchicalSteals = row.hierarchical;
    c.sched.victimPolicy = row.victims;
    c.sched.escalationPolicy = row.escalation;
    c.seed = seed;
    return c;
}

bool
gate(const char *what, double actual, double limit)
{
    const bool ok = actual <= limit;
    std::printf("  gate %-46s %.4f <= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

/** The same policy grid on the threaded runtime (fib + heat), so the
 * CI threaded-bench job accumulates real-thread counters run over run.
 * Ungated: the simulator carries the acceptance gates. */
void
threadedRows(JsonReport &report, double scale, int workers)
{
    for (const PolicyRow &row : kRows) {
        RuntimeOptions o;
        o.numWorkers = workers;
        o.numPlaces = workers >= 4 ? 4 : (workers >= 2 ? 2 : 1);
        o.sched.hierarchicalSteals = row.hierarchical;
        o.sched.victimPolicy = row.victims;
        o.sched.escalationPolicy = row.escalation;
        Runtime rt(o);

        const double seconds = runThreadedFibHeat(rt, scale);
        const RuntimeStats stats = rt.stats();
        JsonRow j;
        j.set("engine", "threaded")
            .set("workload", "fib+heat")
            .set("policy", row.name)
            .set("escalation",
                 row.escalation == EscalationPolicy::Adaptive
                     ? "adaptive"
                     : "fixed")
            .set("workers", workers)
            .set("elapsed_s", seconds)
            .set("steal_attempts", stats.counters.stealAttempts)
            .set("steals", stats.counters.steals)
            .set("mailbox_steals", stats.counters.mailboxTakes)
            .set("level_skips", stats.counters.levelSkips)
            .set("board_dry_polls", stats.counters.dryPolls)
            .set("push_successes", stats.counters.pushbackSuccesses);
        report.addRow(j);
        std::printf("  threaded %-32s %0.3fs  attempts %llu  steals "
                    "%llu  skips %llu  dryPolls %llu\n",
                    row.name, seconds,
                    static_cast<unsigned long long>(
                        stats.counters.stealAttempts),
                    static_cast<unsigned long long>(
                        stats.counters.steals),
                    static_cast<unsigned long long>(
                        stats.counters.levelSkips),
                    static_cast<unsigned long long>(
                        stats.counters.dryPolls));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);
    const std::string json_path =
        cli.getString("json", "BENCH_victim_policy.json");
    const uint64_t first_seed =
        static_cast<uint64_t>(cli.getInt("seed", 0x5eed));
    const int num_seeds =
        std::max(1, static_cast<int>(cli.getInt("seeds", 5)));
    const int threads = static_cast<int>(cli.getInt("threads", 2));
    const bool skip_threaded = cli.getBool("skip-threaded", false);
    // Threaded-only mode: skip the simulated grid and its gates (CI's
    // threaded-bench job uses this — bench-smoke already enforces the
    // sim gates, so re-simulating there would double the wall clock
    // for identical rows).
    const bool skip_sim = cli.getBool("skip-sim", false);
    const int places = socketsFor(args.cores);

    MatmulParams mm;
    mm.n = args.scale >= 1.0 ? 1024 : (args.scale >= 0.5 ? 512 : 256);
    mm.block = 64;
    mm.zLayout = true;

    HeatParams heat;
    heat.nx = args.scale >= 1.0 ? 2048 : (args.scale >= 0.5 ? 1024 : 512);
    heat.ny = heat.nx;
    heat.steps = args.scale >= 1.0 ? 16 : 8;

    struct Case
    {
        std::string name;
        sim::ComputationDag dag;
    };
    const Case cases[] = {
        {"heat", heatDag(heat, places, Placement::Partitioned, true)},
        {"matmul_layout",
         matmulDag(mm, places, Placement::Partitioned, true)},
    };

    JsonReport report;
    Measured flat[2], informed[2]; // per case
    for (std::size_t ci = 0; ci < 2 && !skip_sim; ++ci) {
        const Case &sc = cases[ci];
        if (!args.only.empty() && args.only != sc.name)
            continue;
        std::printf("\nSimulated %s, %d cores, %d seeds:\n",
                    sc.name.c_str(), args.cores, num_seeds);
        Table t({"policy", "T(mean)", "idle", "attempts", "steals",
                 "skips", "remote%"});
        for (const PolicyRow &row : kRows) {
            Measured mean;
            double idle = 0.0, remote = 0.0;
            uint64_t steals = 0, skips = 0;
            for (int s = 0; s < num_seeds; ++s) {
                const uint64_t seed = first_seed + 7919ULL * s;
                const sim::SimResult r = sim::simulatePacked(
                    sc.dag, args.cores, configOf(row, seed));
                JsonRow j;
                j.set("engine", "sim")
                    .set("workload", sc.name)
                    .set("policy", row.name)
                    .set("escalation",
                         row.escalation == EscalationPolicy::Adaptive
                             ? "adaptive"
                             : "fixed")
                    .set("cores", args.cores)
                    .set("seed", seed)
                    .set("elapsed_s", r.elapsedSeconds)
                    .set("work_s", r.workSeconds)
                    .set("sched_s", r.schedSeconds)
                    .set("idle_s", r.idleSeconds)
                    .set("steal_attempts", r.counters.stealAttempts)
                    .set("steals", r.counters.steals)
                    .set("mailbox_steals", r.counters.mailboxSteals)
                    .set("level_skips", r.counters.levelSkips)
                    .set("board_dry_polls", r.counters.boardDryPolls)
                    .set("push_successes", r.counters.pushSuccesses)
                    .set("remote_fraction", r.memory.remoteFraction());
                report.addRow(j);
                mean.elapsed += r.elapsedSeconds / num_seeds;
                mean.attempts += r.counters.stealAttempts;
                idle += r.idleSeconds / num_seeds;
                remote += r.memory.remoteFraction() / num_seeds;
                steals += r.counters.steals;
                skips += r.counters.levelSkips;
            }
            mean.attempts /= static_cast<uint64_t>(num_seeds);
            t.addRow({row.name, Table::fmtSeconds(mean.elapsed),
                      Table::fmtSeconds(idle),
                      std::to_string(mean.attempts),
                      std::to_string(steals
                                     / static_cast<uint64_t>(num_seeds)),
                      std::to_string(skips
                                     / static_cast<uint64_t>(num_seeds)),
                      Table::fmtRatio(remote)});

            if (std::string(row.name) == "flat")
                flat[ci] = mean;
            else if (std::string(row.name) == "occupancy+affinity")
                informed[ci] = mean;
        }
        t.print();
    }

    if (!skip_threaded && args.only.empty()) {
        std::printf("\nThreaded runtime, %d workers:\n", threads);
        threadedRows(report, args.scale, threads);
    }

    report.writeFile(json_path);
    std::printf("\nwrote %zu rows to %s\n", report.numRows(),
                json_path.c_str());

    if (!args.only.empty() || skip_sim)
        return 0; // partial/threaded-only runs skip the sim gates

    // Acceptance gates (see file header). Ratios vs. flat search use a
    // 0.5% tolerance for cost-model noise; the probe gate is absolute.
    // The no-regression-vs-distance gates retired with the distance
    // rows in PR 4 (two PRs of green history on the informed default).
    bool ok = true;
    std::printf("\n");
    ok &= gate("heat occ+affinity / flat elapsed",
               informed[0].elapsed / flat[0].elapsed, 1.005);
    ok &= gate("matmul occ+affinity / flat steal probes",
               static_cast<double>(informed[1].attempts)
                   / static_cast<double>(flat[1].attempts),
               0.90);
    if (!ok) {
        std::printf("FAIL: victim-policy acceptance gate violated\n");
        return 1;
    }
    return 0;
}
