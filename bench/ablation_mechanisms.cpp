/**
 * @file
 * Ablations of the NUMA-WS mechanisms called out in DESIGN.md: biased
 * steals alone, mailboxes alone, the coin flip, and the pushing
 * threshold. Run on the two benchmarks with the clearest locality
 * structure (heat, cilksort) at 32 cores.
 *
 *   ./ablation_mechanisms [--scale=0.25] [--cores=32]
 */
#include <cstdio>

#include "bench_common.h"

using namespace numaws;
using namespace numaws::bench;

namespace {

sim::SimResult
runWith(const SimWorkload &wl, int cores, const sim::SimConfig &cfg)
{
    const auto dag =
        wl.build(socketsFor(cores), Placement::Partitioned, true);
    return sim::simulatePacked(dag, cores, cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);

    for (const SimWorkload &wl : workloads::simWorkloads(args.scale)) {
        if (wl.name != "heat" && wl.name != "cilksort")
            continue;
        if (!args.selected(wl))
            continue;

        std::printf("\nAblation on %s (%s), %d cores:\n", wl.name.c_str(),
                    wl.inputDesc.c_str(), args.cores);
        Table t({"configuration", "T32", "W32", "steals", "pushes",
                 "remote%"});

        struct Variant
        {
            std::string name;
            sim::SimConfig cfg;
        };
        std::vector<Variant> variants;
        variants.push_back({"classic WS", sim::SimConfig::classicWs()});
        {
            sim::SimConfig c = sim::SimConfig::classicWs();
            c.sched.biasedSteals = true;
            variants.push_back({"bias only", c});
        }
        {
            sim::SimConfig c = sim::SimConfig::numaWs();
            c.sched.biasedSteals = false;
            variants.push_back({"mailboxes only", c});
        }
        {
            sim::SimConfig c = sim::SimConfig::numaWs();
            c.sched.coinFlip = false;
            variants.push_back({"no coin flip", c});
        }
        for (int threshold : {1, 4, 16}) {
            sim::SimConfig c = sim::SimConfig::numaWs();
            c.sched.pushThreshold = threshold;
            variants.push_back(
                {"numa-ws thr=" + std::to_string(threshold), c});
        }

        for (const Variant &v : variants) {
            const sim::SimResult r = runWith(wl, args.cores, v.cfg);
            t.addRow({v.name, Table::fmtSeconds(r.elapsedSeconds),
                      Table::fmtSeconds(r.workSeconds),
                      std::to_string(r.counters.steals),
                      std::to_string(r.counters.pushSuccesses),
                      Table::fmtRatio(r.memory.remoteFraction())});
        }
        t.print();
    }
    return 0;
}
