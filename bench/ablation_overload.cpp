/**
 * @file
 * Overload-protection rows: the PR 7 admission/shedding machinery driven
 * past capacity in both engines.
 *
 * A mixed fib/heat/matmul job stream (classes round-robin: Latency,
 * Normal, Batch) arrives Poisson at two rates — "half" (~50%
 * utilization, the uncontended comparator) and "2x" (twice service
 * capacity, sustained overload) — under three shed configs: `none`
 * (PR 6 behavior: queues grow without bound), `reject` (per-lane
 * capacity bounce at submit), and `queue_delay` (CoDel-style: shed from
 * the lowest class while any class's claim-delay EWMA sits above
 * target). A fourth row set gives half the jobs deadlines so expiry
 * shows up in the tallies.
 *
 *   ./ablation_overload [--scale=0.25] [--cores=32] [--seeds=3]
 *                       [--seed=first] [--threads=2] [--reps=3]
 *                       [--skip-threaded] [--json=BENCH_overload.json]
 *
 * Exits nonzero unless (both engines; threaded gates use medians over
 * --reps so one noisy rep cannot flip the verdict):
 *  1. protection: queue_delay@2x keeps the Latency-class p99 within
 *     1.25x the uncontended (none@half) Latency-class p99,
 *  2. goodput: queue_delay@2x completes >= 0.9x the jobs/sec the
 *     saturated none@2x run does (shedding must not cost throughput),
 *  3. collapse: none@2x queue delay grows monotonically — the
 *     second-half-by-arrival mean queue delay >= 1.5x the first half,
 *  4. sim rows are byte-identical across repeated runs of one seed,
 *  5. deadline rows under overload actually expire jobs (tallies move).
 */
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sim/serving.h"

using namespace numaws;
using namespace numaws::bench;
using namespace numaws::workloads;

namespace {

/** Exact quantile from an unsorted sample (sorts a copy). */
double
exactQuantile(std::vector<double> sample, double q)
{
    if (sample.empty())
        return 0.0;
    std::sort(sample.begin(), sample.end());
    const double n = static_cast<double>(sample.size());
    std::size_t idx = static_cast<std::size_t>(q * n + 0.999999);
    idx = idx > 0 ? idx - 1 : 0;
    if (idx >= sample.size())
        idx = sample.size() - 1;
    return sample[idx];
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (const double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/**
 * Shed configuration named in the rows. Delay targets scale with the
 * engine's expected per-job *latency* (service time as experienced, not
 * total work) so the same knobs work for microsecond sim jobs spread
 * over 32 cores and the slower threaded bodies: the Latency class
 * tolerates ~2 jobs' worth of delay before shedding starts, lower
 * classes 4x/16x that (shedding victimizes them first anyway).
 */
ServingPolicy
servingFor(const std::string &shed, double lat_us, double norm_us,
           double batch_us, int lane_cap)
{
    ServingPolicy p;
    if (shed == "reject") {
        p.shed = ShedPolicy::Reject;
        for (int c = 0; c < kNumServingClasses; ++c)
            p.laneCapacity[c] = lane_cap;
    } else if (shed == "queue_delay") {
        p.shed = ShedPolicy::QueueDelay;
        p.queueDelayTargetUs[0] = std::max(1, static_cast<int>(lat_us));
        p.queueDelayTargetUs[1] =
            std::max(1, static_cast<int>(norm_us));
        p.queueDelayTargetUs[2] =
            std::max(1, static_cast<int>(batch_us));
    }
    return p;
}

bool
gateMax(const char *what, double actual, double limit)
{
    const bool ok = actual <= limit;
    std::printf("  gate %-52s %.4f <= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

bool
gateMin(const char *what, double actual, double limit)
{
    const bool ok = actual >= limit;
    std::printf("  gate %-52s %.4f >= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

// ---------------------------------------------------------------------
// Sim side
// ---------------------------------------------------------------------

struct SimMix
{
    sim::ComputationDag dag;
    std::vector<sim::FrameId> roots;
    std::vector<int> classes;
    double meanJobCycles = 0.0;
};

SimMix
buildSimMix(int jobs, int sockets)
{
    SimMix mix;
    std::vector<sim::ComputationDag> kinds;
    // Latency-class requests are a single serial block (block == n) so
    // their execution time is load-independent: what the protection
    // gate measures is queueing, not intra-job parallelism starved by
    // a saturated machine (no admission policy can return that).
    MatmulParams serial_mm;
    serial_mm.n = 64;
    serial_mm.block = 64;
    kinds.push_back(
        matmulDag(serial_mm, sockets, Placement::FirstTouch, false));
    // Normal and Batch are parallel with small leaf frames (frequent
    // scheduling points), sized within ~2x of the Latency job's work so
    // job-count goodput is not skewed by which class the shedder
    // victimizes.
    HeatParams heat;
    heat.nx = 64;
    heat.ny = 64;
    heat.steps = 8;
    heat.baseRows = 16;
    kinds.push_back(
        heatDag(heat, sockets, Placement::Partitioned, true)); // Normal
    MatmulParams mm;
    mm.n = 64;
    mm.block = 16;
    kinds.push_back(
        matmulDag(mm, sockets, Placement::FirstTouch, false)); // Batch
    double total_work = 0.0;
    for (int i = 0; i < jobs; ++i) {
        const std::size_t k =
            static_cast<std::size_t>(i) % kinds.size();
        mix.roots.push_back(mix.dag.append(kinds[k]));
        mix.classes.push_back(static_cast<int>(k));
        total_work += kinds[k].workSpan().work;
    }
    mix.meanJobCycles = total_work / jobs;
    return mix;
}

/** Sim overload scenario: rate multiple of capacity, shed config, and
 * an optional deadline on every other job. */
struct SimScenario
{
    const char *rate_name;
    double util;
    std::string shed;
    double deadline_frac = 0.0; ///< fraction of jobs given deadlines
};

struct SimRun
{
    sim::ServingResult r;
    std::vector<int> classes; ///< input class of r.jobs[i]
    double ratePerSec = 0.0;
    double ghz = 1.0;

    /** Latency-class p99 over Done jobs, microseconds. */
    double
    latencyClassP99Us() const
    {
        std::vector<double> lat;
        for (std::size_t i = 0; i < r.jobs.size(); ++i)
            if (classes[i] == 0
                && r.jobs[i].outcome == JobOutcome::Done)
                lat.push_back(r.jobs[i].latencyCycles() / ghz / 1000.0);
        return exactQuantile(std::move(lat), 0.99);
    }

    /** Latency-class claim-delay p99 over Done jobs, microseconds. */
    double
    latencyClassQueueP99Us() const
    {
        std::vector<double> q;
        for (std::size_t i = 0; i < r.jobs.size(); ++i)
            if (classes[i] == 0
                && r.jobs[i].outcome == JobOutcome::Done)
                q.push_back(r.jobs[i].queueCycles() / ghz / 1000.0);
        return exactQuantile(std::move(q), 0.99);
    }

    /** Mean queue delay (us) of one class's Done jobs in an
     * arrival-order slice (debug aid). Within-run cohort ratios are a
     * poor collapse witness: late arrivals benefit from the
     * post-window drain at full capacity, so delays peak mid-window.
     * The gates use horizon doubling instead. */
    double
    meanClassQueueUs(int cls, std::size_t lo, std::size_t hi) const
    {
        std::vector<double> q;
        for (std::size_t i = lo; i < hi && i < r.jobs.size(); ++i)
            if (classes[i] == cls
                && r.jobs[i].outcome == JobOutcome::Done
                && r.jobs[i].startCycles > 0.0)
                q.push_back(r.jobs[i].queueCycles() / ghz / 1000.0);
        return mean(q);
    }
};

SimRun
runSimScenario(const SimMix &mix, const SimScenario &sc,
               const Machine &machine, int cores, uint64_t seed)
{
    SimRun run;
    run.ghz = machine.ghz();
    run.classes = mix.classes;
    sim::ArrivalProcess p;
    p.ratePerSec =
        sc.util * cores * machine.ghz() * 1e9 / mix.meanJobCycles;
    p.seed = seed;
    run.ratePerSec = p.ratePerSec;
    const auto at = sim::arrivalCycles(
        p, static_cast<int>(mix.roots.size()), machine.ghz());
    std::vector<sim::SimJob> jobs(mix.roots.size());
    // Deadline ~2x the mean job's work: generous uncontended, hopeless
    // once the unprotected queue has grown for a while.
    const double deadline_cycles = 2.0 * mix.meanJobCycles;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].root = mix.roots[i];
        jobs[i].arrivalCycles = at[i];
        jobs[i].cls = mix.classes[i];
        if (sc.deadline_frac > 0.0
            && static_cast<double>(i % 100)
                   < sc.deadline_frac * 100.0)
            jobs[i].deadlineCycles = at[i] + deadline_cycles;
    }
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.modelParking = true;
    cfg.sched.parkSpinFailures = 4;
    cfg.seed = seed;
    // Latency target ~4 per-core service times: loose enough that the
    // regulated queue keeps standing (a near-empty queue lets the
    // server idle on arrival variance and costs goodput), tight enough
    // to bound the delay well under the unprotected collapse.
    const double mean_lat_us =
        mix.meanJobCycles / machine.ghz() / 1000.0 / cores;
    cfg.sched.serving = servingFor(
        sc.shed, 4.0 * mean_lat_us, 16.0 * mean_lat_us,
        64.0 * mean_lat_us, std::max(2, cores / 4));
    run.r = sim::simulateServing(mix.dag, jobs, machine, cores, cfg);
    return run;
}

/** One overload row, rendered before provenance stamping so the
 * determinism gate can compare raw bytes. `shed` names the policy;
 * the evicted-job count is `shed_jobs`. */
JsonRow
overloadRow(const char *engine, const SimScenario &sc, double rate,
            int cores_or_workers, uint64_t seed, std::size_t jobs,
            double elapsed_s, double p50_us, double p99_us,
            double lat_p99_us, double queue_p50_us, double queue_p99_us,
            double goodput, double shed_frac, uint64_t done,
            uint64_t expired, uint64_t cancelled, uint64_t rejected,
            uint64_t shed_jobs)
{
    JsonRow row;
    row.set("engine", engine)
        .set("workload", "mixed")
        .set("mix", "mixed")
        .set("rate", sc.rate_name)
        .set("arrivals", "poisson")
        .set("shed", sc.shed)
        .set("deadline_frac", sc.deadline_frac)
        .set(std::string(engine) == "sim" ? "cores" : "workers",
             cores_or_workers)
        .set("seed", seed)
        .set("jobs", static_cast<uint64_t>(jobs))
        .set("arrival_per_s", rate)
        .set("elapsed_s", elapsed_s)
        .set("p50_us", p50_us)
        .set("p99_us", p99_us)
        .set("lat_p99_us", lat_p99_us)
        .set("queue_p50_us", queue_p50_us)
        .set("queue_p99_us", queue_p99_us)
        .set("goodput", goodput)
        .set("shed_frac", shed_frac)
        .set("done", done)
        .set("expired", expired)
        .set("cancelled", cancelled)
        .set("rejected", rejected)
        .set("shed_jobs", shed_jobs);
    return row;
}

JsonRow
simRow(const SimScenario &sc, int cores, uint64_t seed,
       const SimRun &run)
{
    const sim::ServingResult &r = run.r;
    const double total = static_cast<double>(r.jobs.size());
    return overloadRow("sim", sc, run.ratePerSec, cores, seed,
                       r.jobs.size(), r.sim.elapsedSeconds, r.p50Us,
                       r.p99Us, run.latencyClassP99Us(), r.queueP50Us,
                       r.queueP99Us, r.goodputPerSec,
                       static_cast<double>(r.shed) / total, r.done,
                       r.expired, r.cancelled, r.rejected, r.shed);
}

// ---------------------------------------------------------------------
// Threaded side: fork-join job bodies (the library helpers wrap
// rt.run() and cannot be called from inside a job), sized to hundreds
// of microseconds — see the submitJob comment.
// ---------------------------------------------------------------------

double
heatJob(int64_t nx, int64_t ny, int64_t steps)
{
    std::vector<double> a(static_cast<std::size_t>(nx) * ny, 1.0);
    std::vector<double> b(a.size(), 0.0);
    double *src = a.data();
    double *dst = b.data();
    for (int64_t t = 0; t < steps; ++t) {
        parallelForRange(1, nx - 1, /*grain=*/nx / 4 + 1,
                         [&](int64_t lo, int64_t hi) {
                             for (int64_t i = lo; i < hi; ++i)
                                 for (int64_t j = 1; j < ny - 1; ++j)
                                     dst[i * ny + j] =
                                         0.25
                                         * (src[(i - 1) * ny + j]
                                            + src[(i + 1) * ny + j]
                                            + src[i * ny + j - 1]
                                            + src[i * ny + j + 1]);
                         });
        std::swap(src, dst);
    }
    return src[ny + 1];
}

double
matmulJob(uint32_t n)
{
    std::vector<double> a(static_cast<std::size_t>(n) * n, 1.0);
    std::vector<double> b(a.size(), 2.0);
    std::vector<double> c(a.size(), 0.0);
    parallelForRange(0, n, /*grain=*/static_cast<int64_t>(n) / 4 + 1,
                     [&](int64_t lo, int64_t hi) {
                         for (int64_t i = lo; i < hi; ++i)
                             for (uint32_t k = 0; k < n; ++k) {
                                 const double aik =
                                     a[static_cast<std::size_t>(i) * n
                                       + k];
                                 for (uint32_t j = 0; j < n; ++j)
                                     c[static_cast<std::size_t>(i) * n
                                       + j] +=
                                         aik
                                         * b[static_cast<std::size_t>(k)
                                                 * n
                                             + j];
                             }
                     });
    return c[0];
}

/** Single-block matmul with no scheduling points: the Latency-class
 * body, so its execution time is load-independent (a saturated host
 * can stretch a fork-join tree arbitrarily, which would charge
 * intra-job starvation to the admission policy's latency gate). */
double
matmulSerialJob(uint32_t n)
{
    std::vector<double> a(static_cast<std::size_t>(n) * n, 1.0);
    std::vector<double> b(a.size(), 2.0);
    std::vector<double> c(a.size(), 0.0);
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t k = 0; k < n; ++k) {
            const double aik = a[static_cast<std::size_t>(i) * n + k];
            for (uint32_t j = 0; j < n; ++j)
                c[static_cast<std::size_t>(i) * n + j] +=
                    aik * b[static_cast<std::size_t>(k) * n + j];
        }
    return c[0];
}

std::atomic<double> g_sink{0.0};

/** Class mix mirrors buildSimMix: jobs are sized in the hundreds of
 * microseconds so overload queue delays (tens of ms) clear the host's
 * park/wake noise floor (~1-2ms on a shared CI core) by an order of
 * magnitude, and the three classes carry comparable work so job-count
 * goodput is not skewed by which class the shedder victimizes. */
JobHandle
submitJob(Runtime &rt, int i, int64_t deadline_ns)
{
    JobOptions opts;
    opts.deadlineNs = deadline_ns;
    switch (i % 3) {
      case 0:
        opts.cls = JobClass::Latency;
        return rt.submit([] {
            g_sink.store(matmulSerialJob(96),
                         std::memory_order_relaxed);
        }, opts);
      case 1:
        opts.cls = JobClass::Normal;
        opts.place = static_cast<Place>(i % rt.numPlaces());
        return rt.submit([] {
            g_sink.store(heatJob(128, 128, 32),
                         std::memory_order_relaxed);
        }, opts);
      default:
        opts.cls = JobClass::Batch;
        return rt.submit([] {
            g_sink.store(matmulJob(96), std::memory_order_relaxed);
        }, opts);
    }
}

struct OpenLoopRun
{
    double elapsed_s = 0.0;
    double arrival_per_s = 0.0;
    double goodput = 0.0;       ///< Done jobs / elapsed second
    double p50_us = 0.0;        ///< Done-job latency percentiles
    double p99_us = 0.0;
    double lat_p99_us = 0.0;    ///< Latency-class Done-job p99
    double queue_p50_us = 0.0;  ///< Done-job queue-delay percentiles
    double queue_p99_us = 0.0;
    double queue_growth = 0.0;  ///< Normal 2nd/1st-half mean queue delay
    uint64_t done = 0, expired = 0, cancelled = 0, rejected = 0,
             shed = 0;
    double shed_frac = 0.0;
};

/** Drive @p rt open-loop at seeded @p arrival_ns offsets. */
OpenLoopRun
runOpenLoop(Runtime &rt, const std::vector<double> &arrival_ns,
            double deadline_frac, int64_t deadline_ns)
{
    for (int i = 0; i < 12; ++i)
        submitJob(rt, i, 0).wait();
    rt.resetStats();

    std::vector<JobHandle> handles;
    handles.reserve(arrival_ns.size());
    const int64_t t0 = nowNs();
    for (std::size_t i = 0; i < arrival_ns.size(); ++i) {
        const int64_t target = t0 + static_cast<int64_t>(arrival_ns[i]);
        while (nowNs() < target) {
            if (target - nowNs() > 200000)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
        }
        const bool deadlined =
            deadline_frac > 0.0
            && static_cast<double>(i % 100) < deadline_frac * 100.0;
        handles.push_back(submitJob(rt, static_cast<int>(i),
                                    deadlined ? deadline_ns : 0));
    }
    for (JobHandle &h : handles)
        h.wait();

    OpenLoopRun r;
    r.elapsed_s = static_cast<double>(nowNs() - t0) * 1e-9;
    r.arrival_per_s =
        static_cast<double>(handles.size()) / r.elapsed_s;
    std::vector<double> lat_us, lat_cls_us, queue_us;
    std::vector<double> queue_first, queue_second;
    for (std::size_t i = 0; i < handles.size(); ++i) {
        JobHandle &h = handles[i];
        switch (h.outcome()) {
          case JobOutcome::Done: {
            ++r.done;
            const double lat =
                static_cast<double>(h.latencyNs()) / 1000.0;
            const double queue =
                static_cast<double>(h.queueNs()) / 1000.0;
            lat_us.push_back(lat);
            queue_us.push_back(queue);
            if (i % 3 == 0)
                lat_cls_us.push_back(lat);
            // Normal-class only: the clean collapse witness (see
            // SimRun::meanNormalQueueUs).
            if (i % 3 == 1)
                (i < handles.size() / 2 ? queue_first : queue_second)
                    .push_back(queue);
            break;
          }
          case JobOutcome::Expired:
            ++r.expired;
            break;
          case JobOutcome::Cancelled:
            ++r.cancelled;
            break;
          case JobOutcome::Rejected:
            ++r.rejected;
            break;
          default:
            NUMAWS_PANIC("job resolved with unexpected outcome %s",
                         jobOutcomeName(h.outcome()));
        }
    }
    r.goodput = static_cast<double>(r.done) / r.elapsed_s;
    r.p50_us = exactQuantile(lat_us, 0.50);
    r.p99_us = exactQuantile(lat_us, 0.99);
    r.lat_p99_us = exactQuantile(lat_cls_us, 0.99);
    r.queue_p50_us = exactQuantile(queue_us, 0.50);
    r.queue_p99_us = exactQuantile(queue_us, 0.99);
    r.queue_growth =
        mean(queue_second) / std::max(1e-9, mean(queue_first));
    const RuntimeStats s = rt.stats();
    for (int c = 0; c < kNumJobClasses; ++c)
        r.shed += s.jobOutcomes[c].shed;
    r.shed_frac =
        static_cast<double>(r.shed)
        / static_cast<double>(handles.size());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);
    const std::string json_path =
        cli.getString("json", "BENCH_overload.json");
    const uint64_t first_seed =
        static_cast<uint64_t>(cli.getInt("seed", 0x5eed));
    const int num_seeds =
        std::max(1, static_cast<int>(cli.getInt("seeds", 3)));
    // Never oversubscribe: with more workers than physical cores the
    // OS deschedules a worker mid-frame and Latency-class claims stall
    // behind it, which the latency gate would misread as an admission
    // failure.
    const int default_threads = std::min(
        2u, std::max(1u, std::thread::hardware_concurrency()));
    const int threads =
        static_cast<int>(cli.getInt("threads", default_threads));
    const int reps =
        std::max(1, static_cast<int>(cli.getInt("reps", 5)));
    const bool skip_threaded = cli.getBool("skip-threaded", false);
    const int sockets = socketsFor(args.cores);
    const int sim_jobs = args.scale >= 1.0 ? 480 : 240;

    const SimScenario scenarios[] = {
        {"half", 0.5, "none"},
        {"2x", 2.0, "none"},
        {"2x", 2.0, "reject"},
        {"2x", 2.0, "queue_delay"},
        {"2x", 2.0, "none", /*deadline_frac=*/0.5},
    };

    JsonReport report;
    bool ok = true;

    // ---- Simulated overload rows + deterministic gates ----
    const Machine machine = Machine::paperMachineSubset(args.cores);
    const SimMix mix = buildSimMix(sim_jobs, sockets);
    std::printf("Simulated overload, %d cores, %d jobs:\n", args.cores,
                sim_jobs);
    Table t({"rate", "shed", "ddl", "latp99us", "qp99us", "goodput/s",
             "done", "shed#", "expired"});
    double base_lat_p99 = 0.0;      // none@half latency-class p99
    double none2x_goodput = 0.0;    // saturated throughput comparator
    double qd2x_lat_p99 = 0.0;
    double qd2x_goodput = 0.0;
    uint64_t ddl_expired = 0;
    for (const SimScenario &sc : scenarios) {
        double lat_p99 = 0.0, qp99 = 0.0, goodput = 0.0;
        double done = 0.0, shed = 0.0, expired = 0.0;
        for (int s = 0; s < num_seeds; ++s) {
            const uint64_t seed = first_seed + 7919ULL * s;
            const SimRun run =
                runSimScenario(mix, sc, machine, args.cores, seed);
            report.addRow(simRow(sc, args.cores, seed, run));
            if (std::getenv("OVERLOAD_DEBUG")) {
                const std::size_t n = run.r.jobs.size();
                std::printf(
                    "  dbg %s/%s seed=%llu latq_p99=%.1fus "
                    "lat_p99=%.1fus halves"
                    " L=%.1f/%.1f N=%.1f/%.1f B=%.1f/%.1f us\n",
                    sc.rate_name, sc.shed.c_str(),
                    static_cast<unsigned long long>(seed),
                    run.latencyClassQueueP99Us(),
                    run.latencyClassP99Us(),
                    run.meanClassQueueUs(0, 0, n / 2),
                    run.meanClassQueueUs(0, n / 2, n),
                    run.meanClassQueueUs(1, 0, n / 2),
                    run.meanClassQueueUs(1, n / 2, n),
                    run.meanClassQueueUs(2, 0, n / 2),
                    run.meanClassQueueUs(2, n / 2, n));
            }
            lat_p99 += run.latencyClassP99Us() / num_seeds;
            qp99 += run.r.queueP99Us / num_seeds;
            goodput += run.r.goodputPerSec / num_seeds;
            done += static_cast<double>(run.r.done) / num_seeds;
            shed += static_cast<double>(run.r.shed) / num_seeds;
            expired +=
                static_cast<double>(run.r.expired) / num_seeds;
            ddl_expired += sc.deadline_frac > 0.0 ? run.r.expired : 0;
        }
        t.addRow({sc.rate_name, sc.shed,
                  sc.deadline_frac > 0.0 ? "yes" : "no",
                  std::to_string(static_cast<int64_t>(lat_p99)),
                  std::to_string(static_cast<int64_t>(qp99)),
                  std::to_string(static_cast<int64_t>(goodput)),
                  std::to_string(static_cast<int64_t>(done)),
                  std::to_string(static_cast<int64_t>(shed)),
                  std::to_string(static_cast<int64_t>(expired))});
        if (sc.shed == "none" && sc.util == 0.5)
            base_lat_p99 = lat_p99;
        if (sc.shed == "none" && sc.util == 2.0
            && sc.deadline_frac == 0.0)
            none2x_goodput = goodput;
        if (sc.shed == "queue_delay") {
            qd2x_lat_p99 = lat_p99;
            qd2x_goodput = goodput;
        }
    }
    t.print();

    // Determinism: the same seeded overload run, repeated, must render
    // byte-identical rows (admission, shedding, and expiry decisions
    // all replay exactly).
    {
        const SimScenario sc = {"2x", 2.0, "queue_delay", 0.5};
        const SimRun a =
            runSimScenario(mix, sc, machine, args.cores, first_seed);
        const SimRun b =
            runSimScenario(mix, sc, machine, args.cores, first_seed);
        const bool same = simRow(sc, args.cores, first_seed, a).str()
                          == simRow(sc, args.cores, first_seed, b).str();
        std::printf("  gate %-52s %s\n",
                    "sim overload rows byte-identical",
                    same ? "ok" : "FAIL");
        ok &= same;
    }

    // Unbounded vs bounded growth, by horizon doubling: run none@2x
    // and queue_delay@2x again with twice the arrival window. Without
    // protection the tail queue delay keeps growing with the horizon;
    // with QueueDelay shedding the one-in-one-out regulator pins it.
    double grow_none = 0.0, grow_qd = 0.0;
    {
        const SimMix mix2 = buildSimMix(sim_jobs * 2, sockets);
        const SimScenario none2x = {"2x", 2.0, "none", 0.0};
        const SimScenario qd2x = {"2x", 2.0, "queue_delay", 0.0};
        for (int s = 0; s < num_seeds; ++s) {
            const uint64_t seed = first_seed + 7919ULL * s;
            const double none_short =
                runSimScenario(mix, none2x, machine, args.cores, seed)
                    .r.queueP99Us;
            const double none_long =
                runSimScenario(mix2, none2x, machine, args.cores, seed)
                    .r.queueP99Us;
            const double qd_short =
                runSimScenario(mix, qd2x, machine, args.cores, seed)
                    .r.queueP99Us;
            const double qd_long =
                runSimScenario(mix2, qd2x, machine, args.cores, seed)
                    .r.queueP99Us;
            grow_none +=
                none_long / std::max(1e-9, none_short) / num_seeds;
            grow_qd += qd_long / std::max(1e-9, qd_short) / num_seeds;
        }
    }

    std::printf("\nSim overload gates:\n");
    ok &= gateMax("sim queue_delay@2x / none@half latency p99",
                  qd2x_lat_p99 / std::max(1e-9, base_lat_p99), 1.25);
    ok &= gateMin("sim queue_delay@2x / none@2x goodput",
                  qd2x_goodput / std::max(1e-9, none2x_goodput), 0.90);
    ok &= gateMin("sim none@2x queue p99 growth at 2x horizon",
                  grow_none, 1.30);
    ok &= gateMax("sim queue_delay@2x queue p99 growth at 2x horizon",
                  grow_qd, 1.25);
    ok &= gateMin("sim deadline rows expire jobs",
                  static_cast<double>(ddl_expired), 1.0);

    // ---- Threaded overload rows + gates ----
    if (!skip_threaded) {
        const int n_half = args.scale >= 1.0 ? 200 : 100;
        const int n_over = args.scale >= 1.0 ? 600 : 300;

        // Calibrate this host's capacity with the real runtime: the
        // serial per-job mean (spin runtime, one job at a time) sets
        // the latency targets, while a closed-loop burst sets the
        // sustainable jobs/s the open-loop rates are scaled from.
        // Deriving capacity as threads/mean_job would overstate it on
        // CI hosts with fewer cores than workers, turning "2x" into a
        // much deeper overload than the gates are calibrated for.
        double mean_job_s = 0.0, capacity_per_s = 0.0;
        {
            RuntimeOptions o;
            o.numWorkers = threads;
            o.numPlaces = threads >= 2 ? 2 : 1;
            o.sched.parkSpinFailures = 1 << 30;
            Runtime rt(o);
            const int probe = 30;
            const int64_t t0 = nowNs();
            for (int i = 0; i < probe; ++i)
                submitJob(rt, i, 0).wait();
            mean_job_s =
                static_cast<double>(nowNs() - t0) * 1e-9 / probe;

            const int burst = 60;
            std::vector<JobHandle> hs;
            hs.reserve(burst);
            const int64_t b0 = nowNs();
            for (int i = 0; i < burst; ++i)
                hs.push_back(submitJob(rt, i, 0));
            for (JobHandle &h : hs)
                h.wait();
            capacity_per_s =
                burst / (static_cast<double>(nowNs() - b0) * 1e-9);
        }
        const double mean_job_us = mean_job_s * 1e6;
        std::printf("\nThreaded overload, %d workers (mean job "
                    "%.0fus, capacity %.0f jobs/s):\n",
                    threads, mean_job_us, capacity_per_s);

        struct Agg
        {
            std::vector<double> lat_p99, goodput, qp99, shed_frac;
            double done_sum = 0.0, elapsed_sum = 0.0;
            OpenLoopRun last;

            /** Pooled over reps: tighter than a median of per-run
             * ratios on a noisy host. */
            double
            pooledGoodput() const
            {
                return done_sum / std::max(1e-9, elapsed_sum);
            }
        };
        Table tt({"rate", "shed", "ddl", "latp99us", "qp99us",
                  "goodput/s", "shed%", "expired"});
        Agg aggs[5];
        for (std::size_t si = 0; si < 5; ++si) {
            const SimScenario &sc = scenarios[si];
            const double rate = sc.util * capacity_per_s;
            const int n_jobs = sc.util < 1.0 ? n_half : n_over;
            RuntimeOptions o;
            o.numWorkers = threads;
            o.numPlaces = threads >= 2 ? 2 : 1;
            // Threaded targets sit above the host's park/wake noise
            // floor (hundreds of us on a shared CI core): below it
            // the EWMA reads permanently overloaded and the shedder
            // regulates the queue to empty, idling the worker between
            // wakes. The ladder is deliberately flat (1x/2x/4x, not
            // 1x/4x/16x): a 16x batch target would let the batch lane
            // legally carry most of the unprotected collapse.
            // 8x the mean job: at 2x overload the one-in-one-out
            // regulator sheds ~one victim per admission while the EWMA
            // sits above target; a tighter target keeps it above for
            // longer than the backlog justifies (EWMA lag) and pushes
            // the shed fraction past 50%, which directly costs goodput
            // (done ~ (1 - shed_frac) * 2 * capacity * window).
            const double lat_t = std::max(2000.0, 8.0 * mean_job_us);
            o.sched.serving = servingFor(sc.shed, lat_t, 2.0 * lat_t,
                                         4.0 * lat_t, 4 * threads);
            // Spin instead of parking, like the calibration runtime:
            // under QueueDelay the regulated queue occasionally runs
            // dry and a parked worker charges its ~ms wake latency to
            // the next latency-class job — a cost the never-empty
            // `none` rows never pay, which skews the comparison.
            o.sched.parkSpinFailures = 1 << 30;
            Runtime rt(o);
            Agg &agg = aggs[si];
            double expired = 0.0, qp99 = 0.0;
            for (int rep = 0; rep < reps; ++rep) {
                sim::ArrivalProcess p;
                p.ratePerSec = rate;
                p.seed = first_seed + 104729ULL * rep;
                // ghz=1.0 makes arrivalCycles return nanoseconds.
                const auto arrivals =
                    sim::arrivalCycles(p, n_jobs, 1.0);
                const OpenLoopRun r = runOpenLoop(
                    rt, arrivals, sc.deadline_frac,
                    static_cast<int64_t>(8.0 * mean_job_us * 1000.0));
                agg.lat_p99.push_back(r.lat_p99_us);
                agg.goodput.push_back(r.goodput);
                agg.qp99.push_back(r.queue_p99_us);
                agg.shed_frac.push_back(r.shed_frac);
                agg.done_sum += static_cast<double>(r.done);
                agg.elapsed_sum += r.elapsed_s;
                agg.last = r;
                expired += static_cast<double>(r.expired) / reps;
                qp99 += r.queue_p99_us / reps;
                report.addRow(
                    overloadRow("threaded", sc, r.arrival_per_s,
                                threads,
                                first_seed + 104729ULL * rep,
                                static_cast<std::size_t>(n_jobs),
                                r.elapsed_s, r.p50_us, r.p99_us,
                                r.lat_p99_us, r.queue_p50_us,
                                r.queue_p99_us, r.goodput,
                                r.shed_frac, r.done, r.expired,
                                r.cancelled, r.rejected, r.shed)
                        .set("rep", rep));
            }
            tt.addRow(
                {sc.rate_name, sc.shed,
                 sc.deadline_frac > 0.0 ? "yes" : "no",
                 std::to_string(static_cast<int64_t>(
                     exactQuantile(agg.lat_p99, 0.5))),
                 std::to_string(static_cast<int64_t>(qp99)),
                 std::to_string(static_cast<int64_t>(
                     exactQuantile(agg.goodput, 0.5))),
                 std::to_string(static_cast<int64_t>(
                     exactQuantile(agg.shed_frac, 0.5) * 100.0)),
                 std::to_string(static_cast<int64_t>(expired))});
        }
        tt.print();

        // Medians over reps: scenario order matches `scenarios`.
        const double t_none2x_lat = exactQuantile(aggs[1].lat_p99, 0.5);
        const double t_none2x_good = aggs[1].pooledGoodput();
        const double t_none2x_qp99 = exactQuantile(aggs[1].qp99, 0.5);
        const double t_qd_lat = exactQuantile(aggs[3].lat_p99, 0.5);
        const double t_qd_good = aggs[3].pooledGoodput();
        const double t_qd_qp99 = exactQuantile(aggs[3].qp99, 0.5);
        const double t_ddl_expired =
            static_cast<double>(aggs[4].last.expired);

        // Threaded thresholds are deliberately looser than the sim's
        // (1.25x latency, 0.90 goodput): those exact bounds are
        // enforced byte-deterministically above, while a shared 1-2
        // core CI host swings both wall-clock ratios by +/-40% run to
        // run. These gates catch the catastrophic failure modes — the
        // latency one compares against the *unprotected* 2x run
        // (shed victims come from the lowest nonempty lane, always
        // Batch at 2x, so admission control cannot reduce the Latency
        // class's own-lane M/G/1 queueing on a single-server host)
        // and asserts protection adds no latency tax on the class it
        // protects; the goodput one asserts shedding does not starve
        // the server of work (the empty-queue self-shed bug this
        // guards against read ~0.0 here, so 0.60 keeps an order of
        // magnitude of margin over the true failure mode).
        std::printf("\nThreaded overload gates:\n");
        ok &= gateMax("threaded queue_delay@2x / none@2x latency p99",
                      t_qd_lat / std::max(1e-9, t_none2x_lat), 2.0);
        ok &= gateMin("threaded queue_delay@2x / none@2x goodput",
                      t_qd_good / std::max(1e-9, t_none2x_good), 0.60);
        ok &= gateMin("threaded none@2x / queue_delay@2x queue p99",
                      t_none2x_qp99 / std::max(1e-9, t_qd_qp99), 2.0);
        ok &= gateMin("threaded deadline rows expire jobs",
                      t_ddl_expired, 1.0);
    }

    report.writeFile(json_path);
    std::printf("\nwrote %zu rows to %s\n", report.numRows(),
                json_path.c_str());

    if (!ok) {
        std::printf("FAIL: overload acceptance gate violated\n");
        return 1;
    }
    return 0;
}
