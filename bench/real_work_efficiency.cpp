/**
 * @file
 * Host-measured work efficiency of the *threaded* runtime — the paper's
 * T1/TS columns measured for real, not simulated. For each benchmark:
 * run the serial elision, then the parallel version on one worker, and
 * report the spawn overhead; then run on all host cores for the real
 * speedup this machine allows.
 *
 *   ./real_work_efficiency [--reps=3] [--workers=0 (host cores)]
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "support/stats.h"
#include "support/timing.h"
#include "topology/affinity.h"

using namespace numaws;
using namespace numaws::workloads;

namespace {

double
timeBest(int reps, const std::function<void()> &fn)
{
    RunningStat s;
    for (int r = 0; r < reps; ++r) {
        WallTimer t;
        fn();
        s.add(t.seconds());
    }
    return s.min();
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const int reps = static_cast<int>(cli.getInt("reps", 3));
    int workers = static_cast<int>(cli.getInt("workers", 0));
    if (workers == 0)
        workers = hostCpuCount();

    Runtime rt1([] {
        RuntimeOptions o;
        o.numWorkers = 1;
        return o;
    }());
    Runtime rtp([workers] {
        RuntimeOptions o;
        o.numWorkers = workers;
        o.numPlaces = std::min(workers, 2);
        return o;
    }());

    std::printf("Work efficiency of the threaded runtime on this host "
                "(%d workers for TP; best of %d reps)\n",
                workers, reps);
    Table t({"benchmark", "TS", "T1 (T1/TS)", "TP (T1/TP)"});

    // --- fib (pure spawn overhead) ---
    {
        const int n = 32, cutoff = 18;
        const double ts = timeBest(reps, [&] { fibSerial(n); });
        const double t1 =
            timeBest(reps, [&] { fibParallel(rt1, n, cutoff); });
        const double tp =
            timeBest(reps, [&] { fibParallel(rtp, n, cutoff); });
        t.addRow({"fib(32)", Table::fmtSeconds(ts),
                  Table::fmtSecondsWithRatio(t1, t1 / ts),
                  Table::fmtSecondsWithRatio(tp, t1 / tp)});
    }
    // --- cilksort ---
    {
        CilksortParams p;
        p.n = 1 << 21;
        Rng rng(1);
        std::vector<int64_t> base(static_cast<std::size_t>(p.n));
        for (auto &x : base)
            x = static_cast<int64_t>(rng.next());
        std::vector<int64_t> tmp(base.size());
        auto data = base;
        const double ts = timeBest(reps, [&] {
            data = base;
            cilksortSerial(data.data(), p.n, tmp.data(), p);
        });
        const double t1 = timeBest(reps, [&] {
            data = base;
            cilksortParallel(rt1, data.data(), p.n, tmp.data(), p, true);
        });
        const double tp = timeBest(reps, [&] {
            data = base;
            cilksortParallel(rtp, data.data(), p.n, tmp.data(), p, true);
        });
        t.addRow({"cilksort 2M", Table::fmtSeconds(ts),
                  Table::fmtSecondsWithRatio(t1, t1 / ts),
                  Table::fmtSecondsWithRatio(tp, t1 / tp)});
    }
    // --- heat ---
    {
        HeatParams p;
        p.nx = 512;
        p.ny = 512;
        p.steps = 20;
        p.baseRows = 16;
        const std::size_t cells = static_cast<std::size_t>(p.nx)
                                  * static_cast<std::size_t>(p.ny);
        std::vector<double> a(cells, 1.0), b(cells, 0.0);
        const double ts =
            timeBest(reps, [&] { heatSerial(a.data(), b.data(), p); });
        const double t1 = timeBest(
            reps, [&] { heatParallel(rt1, a.data(), b.data(), p, true); });
        const double tp = timeBest(
            reps, [&] { heatParallel(rtp, a.data(), b.data(), p, true); });
        t.addRow({"heat 512^2x20", Table::fmtSeconds(ts),
                  Table::fmtSecondsWithRatio(t1, t1 / ts),
                  Table::fmtSecondsWithRatio(tp, t1 / tp)});
    }
    // --- matmul ---
    {
        MatmulParams p;
        p.n = 512;
        p.block = 64;
        const std::size_t elems =
            static_cast<std::size_t>(p.n) * p.n;
        std::vector<double> a(elems, 0.5), b(elems, 0.25),
            c(elems, 0.0);
        const double ts = timeBest(reps, [&] {
            std::fill(c.begin(), c.end(), 0.0);
            matmulSerial(a.data(), b.data(), c.data(), p.n);
        });
        const double t1 = timeBest(reps, [&] {
            std::fill(c.begin(), c.end(), 0.0);
            matmulParallel(rt1, a.data(), b.data(), c.data(), p, true);
        });
        const double tp = timeBest(reps, [&] {
            std::fill(c.begin(), c.end(), 0.0);
            matmulParallel(rtp, a.data(), b.data(), c.data(), p, true);
        });
        t.addRow({"matmul 512^2", Table::fmtSeconds(ts),
                  Table::fmtSecondsWithRatio(t1, t1 / ts),
                  Table::fmtSecondsWithRatio(tp, t1 / tp)});
    }
    // --- strassen ---
    {
        StrassenParams p;
        p.n = 256;
        p.block = 32;
        const std::size_t elems =
            static_cast<std::size_t>(p.n) * p.n;
        std::vector<double> a(elems, 0.5), b(elems, 0.25),
            c(elems, 0.0);
        const double ts = timeBest(reps, [&] {
            strassenSerial(a.data(), b.data(), c.data(), p.n, p.block);
        });
        const double t1 = timeBest(reps, [&] {
            strassenParallel(rt1, a.data(), b.data(), c.data(), p);
        });
        const double tp = timeBest(reps, [&] {
            strassenParallel(rtp, a.data(), b.data(), c.data(), p);
        });
        t.addRow({"strassen 256^2", Table::fmtSeconds(ts),
                  Table::fmtSecondsWithRatio(t1, t1 / ts),
                  Table::fmtSecondsWithRatio(tp, t1 / tp)});
    }
    // --- hull ---
    {
        HullParams p;
        p.n = 1 << 19;
        p.base = 1 << 12;
        const auto pts = hullMakeInput(p, 7);
        const double ts = timeBest(reps, [&] { hullSerial(pts); });
        const double t1 =
            timeBest(reps, [&] { hullParallel(rt1, pts, p, true); });
        const double tp =
            timeBest(reps, [&] { hullParallel(rtp, pts, p, true); });
        t.addRow({"hull1 512k", Table::fmtSeconds(ts),
                  Table::fmtSecondsWithRatio(t1, t1 / ts),
                  Table::fmtSecondsWithRatio(tp, t1 / tp)});
    }
    // --- cg ---
    {
        CgParams p;
        p.n = 1 << 15;
        p.nnzPerRow = 16;
        p.band = 1024;
        p.iters = 12;
        p.baseRows = 1024;
        const CsrMatrix m = cgMakeMatrix(p, 11);
        std::vector<double> b(static_cast<std::size_t>(p.n), 1.0);
        std::vector<double> x;
        const double ts = timeBest(reps, [&] { cgSerial(m, b, x, p); });
        const double t1 =
            timeBest(reps, [&] { cgParallel(rt1, m, b, x, p, true); });
        const double tp =
            timeBest(reps, [&] { cgParallel(rtp, m, b, x, p, true); });
        t.addRow({"cg 32k", Table::fmtSeconds(ts),
                  Table::fmtSecondsWithRatio(t1, t1 / ts),
                  Table::fmtSecondsWithRatio(tp, t1 / tp)});
    }

    t.print();
    std::printf("\nT1/TS near 1.0x = work efficient (the paper's "
                "Figure 7 parenthesised column, measured for real).\n");
    return 0;
}
