/**
 * @file
 * Interference-resilience rows: the PR 10 co-runner machinery driven
 * through a deterministic storm in the sim and a real pinned co-runner
 * squeeze in the threaded runtime.
 *
 * Sim scenarios (fixed burst schedule — bursts of 40 serial jobs every
 * 50k cycles — so every burst forces claims on every core, stolen ones
 * included, and the catastrophe is structural rather than a property
 * of one lucky Poisson draw):
 *  - `calm`: no trace — the baseline every off-knob row must match.
 *  - `storm`: half of socket 0 stolen (4 of 8 cores at 8x) plus a 300
 *    per-mille slowdown on the rest, from 30k cycles to the end of the
 *    run. Off rides it out; Adapt retires exactly the four stolen
 *    cores (the residual slowdown lands in the hysteresis dead band)
 *    and the last burst's jobs never land on an 8x core.
 *  - `window`: the same storm ending at 150k cycles, so the ladder
 *    must fully re-expand mid-run and the post-storm bursts run on
 *    the whole socket again.
 *
 *   ./ablation_interference [--scale=0.25] [--cores=32] [--seeds=3]
 *                           [--seed=first] [--reps=2] [--skip-threaded]
 *                           [--json=BENCH_interference.json]
 *
 * Exits nonzero unless (sim gates are byte-deterministic per seed;
 * threaded gates are catastrophe floors, skipped on hosts too small to
 * pin four workers plus co-runners):
 *  1. storm: Adapt elapsed <= 0.90x Off elapsed and Adapt p99 <= 0.6x
 *     Off p99, with the trace charged in both runs,
 *  2. storm Adapt retires workers and the trace's stolen/slowed cycles
 *     are both billed,
 *  3. window: every retired worker is reinstated before the run ends,
 *  4. off-knob rows with an *empty* trace are byte-identical to
 *     no-trace rows, and Adapt storm rows replay byte-identically
 *     across repeated runs of one seed,
 *  5. threaded: Adapt p99 <= 0.8x Off p99 under two busy-loop
 *     co-runners pinned onto the top-ranked worker's CPU, sensing
 *     actually retired a worker, and the worker set re-expands to
 *     full strength after the co-runners exit.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sim/interference.h"
#include "sim/serving.h"
#include "topology/affinity.h"

using namespace numaws;
using namespace numaws::bench;
using namespace numaws::workloads;

namespace {

/** Exact quantile from an unsorted sample (sorts a copy). */
double
exactQuantile(std::vector<double> sample, double q)
{
    if (sample.empty())
        return 0.0;
    std::sort(sample.begin(), sample.end());
    const double n = static_cast<double>(sample.size());
    std::size_t idx = static_cast<std::size_t>(q * n + 0.999999);
    idx = idx > 0 ? idx - 1 : 0;
    if (idx >= sample.size())
        idx = sample.size() - 1;
    return sample[idx];
}

bool
gateMax(const char *what, double actual, double limit)
{
    const bool ok = actual <= limit;
    std::printf("  gate %-52s %.4f <= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

bool
gateMin(const char *what, double actual, double limit)
{
    const bool ok = actual >= limit;
    std::printf("  gate %-52s %.4f >= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

// ---------------------------------------------------------------------
// Sim side
// ---------------------------------------------------------------------

/** Burst schedule geometry: 40 serial jobs land at once every 50k
 * cycles. The burst exceeds the core count, so *every* core — stolen
 * ones included — claims a job at every burst, and a storm-off run's
 * last burst always strands jobs on an 8x core; serial bodies mean no
 * thief can rescue them. */
constexpr int kBurstJobs = 40;
constexpr double kBurstGapCycles = 50e3;
constexpr double kJobCycles = 20e3;
constexpr double kStormStart = 30e3;
constexpr double kWindowEnd = 150e3;
constexpr int kCoresStolen = 4;   ///< half of socket 0
constexpr int kSlowPermille = 300;

struct SimScenario
{
    const char *name;
    bool adapt = false;
    /** 0 = no trace, 1 = storm (to end of run), 2 = finite window. */
    int trace = 0;
};

const char *
traceName(int trace)
{
    return trace == 0 ? "none" : trace == 1 ? "storm" : "window";
}

sim::InterferenceTrace
traceFor(int kind)
{
    sim::InterferenceTrace tr;
    if (kind == 1)
        tr.intervals.push_back(
            {kStormStart, 1e15, 0, kCoresStolen, kSlowPermille});
    else if (kind == 2)
        tr.intervals.push_back(
            {kStormStart, kWindowEnd, 0, kCoresStolen, kSlowPermille});
    return tr;
}

sim::ServingResult
runSimScenario(const sim::ComputationDag &dag,
               const std::vector<sim::SimJob> &jobs, int cores,
               uint64_t seed, bool adapt,
               const sim::InterferenceTrace *trace)
{
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.seed = seed;
    cfg.interference = trace;
    cfg.sched.serving.interference = adapt ? InterferencePolicy::Adapt
                                           : InterferencePolicy::Off;
    // 2us epochs = 4400 cycles at the paper machine's 2.2 GHz: ~10
    // epochs per burst gap, so the ladder converges well inside the
    // storm's first burst.
    cfg.sched.serving.pressureEpochUs = 2;
    return sim::simulateServingPacked(dag, jobs, cores, cfg);
}

/** One interference row, rendered before provenance stamping so the
 * byte-determinism gates can compare raw bytes. */
JsonRow
interferenceRow(const char *engine, const char *scenario,
                const char *knob, const char *trace, int corunners,
                int cores_or_workers, uint64_t seed, std::size_t jobs,
                double elapsed_s, double p99_us, double queue_p99_us,
                double goodput, uint64_t done, uint64_t retires,
                uint64_t reexpands, uint64_t stolen_cycles,
                uint64_t slowed_cycles)
{
    JsonRow row;
    row.set("engine", engine)
        .set("workload", "interference_serve")
        .set("scenario", scenario)
        .set("interference", knob)
        .set("trace", trace)
        .set("corunners", corunners)
        .set(std::string(engine) == "sim" ? "cores" : "workers",
             cores_or_workers)
        .set("seed", seed)
        .set("jobs", static_cast<uint64_t>(jobs))
        .set("elapsed_s", elapsed_s)
        .set("p99_us", p99_us)
        .set("queue_p99_us", queue_p99_us)
        .set("goodput", goodput)
        .set("done", done)
        .set("retires", retires)
        .set("reexpands", reexpands)
        .set("stolen_cycles", stolen_cycles)
        .set("slowed_cycles", slowed_cycles);
    return row;
}

JsonRow
simRow(const SimScenario &sc, int cores, uint64_t seed,
       const sim::ServingResult &r)
{
    return interferenceRow(
        "sim", sc.name, sc.adapt ? "adapt" : "off", traceName(sc.trace),
        0, cores, seed, r.jobs.size(), r.sim.elapsedSeconds, r.p99Us,
        r.queueP99Us, r.goodputPerSec, r.done,
        r.sim.counters.interferenceRetires,
        r.sim.counters.interferenceReexpands, r.sim.counters.stolenCycles,
        r.sim.counters.slowedCycles);
}

// ---------------------------------------------------------------------
// Threaded side: four pinned workers on two places; two busy-loop
// co-runners pinned onto the top-ranked worker's CPU squeeze exactly
// the worker the InterferenceCore retires first, so Adapt converts a
// fat 3x claim tail into a parked worker while Off keeps eating it.
// ---------------------------------------------------------------------

constexpr int kWorkers = 4;
constexpr int kSqueezedCpu = kWorkers - 1; ///< top rank of place 1
constexpr int kCorunners = 2;

double
matmulSerialJob(uint32_t n)
{
    std::vector<double> a(static_cast<std::size_t>(n) * n, 1.0);
    std::vector<double> b(a.size(), 2.0);
    std::vector<double> c(a.size(), 0.0);
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t k = 0; k < n; ++k) {
            const double aik = a[static_cast<std::size_t>(i) * n + k];
            for (uint32_t j = 0; j < n; ++j)
                c[static_cast<std::size_t>(i) * n + j] +=
                    aik * b[static_cast<std::size_t>(k) * n + j];
        }
    return c[0];
}

std::atomic<double> g_sink{0.0};

JobHandle
submitSerialJob(Runtime &rt, int i)
{
    JobOptions opts;
    opts.cls = static_cast<JobClass>(i % 3);
    return rt.submit([] {
        g_sink.store(matmulSerialJob(80), std::memory_order_relaxed);
    }, opts);
}

/** Busy-loop co-runner pinned to @p cpu until @p stop. Plain spinning
 * at default priority — the squeeze is the kernel's fair time-slicing,
 * exactly what the pressure sensor is built to notice. */
void
corunnerLoop(int cpu, const std::atomic<bool> &stop)
{
    pinCurrentThread(cpu);
    volatile uint64_t x = 0;
    while (!stop.load(std::memory_order_relaxed))
        ++x;
}

struct ThreadedRun
{
    double elapsed_s = 0.0;
    double p99_us = 0.0;
    double queue_p99_us = 0.0;
    double goodput = 0.0;
    uint64_t done = 0, other = 0;
    uint64_t retires = 0, reinstates = 0;
    bool reexpanded = true; ///< retired gauge back to 0 post-storm
};

ThreadedRun
runThreadedStream(Runtime &rt, const std::vector<double> &arrival_ns,
                  bool expect_reexpand)
{
    std::atomic<bool> stop{false};
    std::vector<std::thread> corunners;
    for (int i = 0; i < kCorunners; ++i)
        corunners.emplace_back(corunnerLoop, kSqueezedCpu,
                               std::cref(stop));
    // Let the squeeze register: a few pressure epochs under load so an
    // adapting runtime has converged before the measured stream.
    for (int i = 1; i <= 8; ++i)
        submitSerialJob(rt, i).wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    rt.resetStats();

    std::vector<JobHandle> handles;
    handles.reserve(arrival_ns.size());
    const int64_t t0 = nowNs();
    for (std::size_t i = 0; i < arrival_ns.size(); ++i) {
        const int64_t target = t0 + static_cast<int64_t>(arrival_ns[i]);
        while (nowNs() < target) {
            if (target - nowNs() > 200000)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
        }
        handles.push_back(submitSerialJob(rt, static_cast<int>(i)));
    }
    for (JobHandle &h : handles)
        h.wait();

    ThreadedRun r;
    r.elapsed_s = static_cast<double>(nowNs() - t0) * 1e-9;
    std::vector<double> lat_us, queue_us;
    for (JobHandle &h : handles) {
        if (h.outcome() == JobOutcome::Done) {
            ++r.done;
            lat_us.push_back(static_cast<double>(h.latencyNs()) / 1000.0);
            queue_us.push_back(static_cast<double>(h.queueNs()) / 1000.0);
        } else {
            ++r.other;
        }
    }
    r.p99_us = exactQuantile(lat_us, 0.99);
    r.queue_p99_us = exactQuantile(queue_us, 0.99);
    r.goodput = static_cast<double>(r.done) / r.elapsed_s;

    stop.store(true, std::memory_order_relaxed);
    for (std::thread &t : corunners)
        t.join();

    // Post-storm: with the co-runners gone the probe epoch reads calm
    // and the cool streak must reinstate every retired worker.
    if (expect_reexpand) {
        const int64_t deadline = nowNs() + 30'000'000'000LL;
        while (rt.retiredWorkers() > 0 && nowNs() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        r.reexpanded = rt.retiredWorkers() == 0;
    }
    const RuntimeStats s = rt.stats();
    r.retires = s.counters.interferenceRetires;
    r.reinstates = s.counters.interferenceReinstates;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);
    const std::string json_path =
        cli.getString("json", "BENCH_interference.json");
    const uint64_t first_seed =
        static_cast<uint64_t>(cli.getInt("seed", 0x5eed));
    const int num_seeds =
        std::max(1, static_cast<int>(cli.getInt("seeds", 3)));
    const int reps =
        std::max(1, static_cast<int>(cli.getInt("reps", 2)));
    const bool skip_threaded = cli.getBool("skip-threaded", false);
    const int bursts = args.scale >= 1.0 ? 12 : 6;
    const int sim_jobs = kBurstJobs * bursts;

    JsonReport report;
    bool ok = true;

    // ---- Simulated rows + deterministic gates ----
    sim::ComputationDag dag;
    std::vector<sim::FrameId> roots;
    const auto body = fibDag(1, kJobCycles); // one serial strand
    for (int i = 0; i < sim_jobs; ++i)
        roots.push_back(dag.append(body));
    std::vector<sim::SimJob> jobs(sim_jobs);
    for (int i = 0; i < sim_jobs; ++i)
        jobs[i] = {roots[i], (i / kBurstJobs) * kBurstGapCycles, i % 3};

    const SimScenario scenarios[] = {
        {"calm", false, 0},
        {"storm", false, 1},
        {"storm", true, 1},
        {"window", true, 2},
    };

    std::printf("Simulated interference, %d cores, %d jobs "
                "(%d-job bursts every %.0fk cycles):\n",
                args.cores, sim_jobs, kBurstJobs,
                kBurstGapCycles / 1000.0);
    Table t({"scenario", "knob", "elapsedms", "p99us", "retires",
             "reexp", "stolenKc", "slowedKc"});
    // Worst case across seeds: the gates hold for *every* seed, not an
    // average — each row is byte-deterministic, so a regression on any
    // seed is a real protocol change. results[scenario][seed] is filled
    // once by the row loop and reused by the gates.
    std::vector<std::vector<sim::ServingResult>> results(4);
    for (int i = 0; i < 4; ++i) {
        const SimScenario &sc = scenarios[i];
        const sim::InterferenceTrace tr = traceFor(sc.trace);
        const sim::InterferenceTrace *trp =
            sc.trace == 0 ? nullptr : &tr;
        double elapsed = 0.0, p99 = 0.0;
        double retires = 0.0, reexp = 0.0, stolen = 0.0, slowed = 0.0;
        for (int s = 0; s < num_seeds; ++s) {
            const uint64_t seed = first_seed + 7919ULL * s;
            sim::ServingResult r = runSimScenario(
                dag, jobs, args.cores, seed, sc.adapt, trp);
            report.addRow(simRow(sc, args.cores, seed, r));
            elapsed += r.sim.elapsedCycles / num_seeds;
            p99 += r.p99Us / num_seeds;
            retires += static_cast<double>(
                           r.sim.counters.interferenceRetires)
                       / num_seeds;
            reexp += static_cast<double>(
                         r.sim.counters.interferenceReexpands)
                     / num_seeds;
            stolen += static_cast<double>(r.sim.counters.stolenCycles)
                      / num_seeds;
            slowed += static_cast<double>(r.sim.counters.slowedCycles)
                      / num_seeds;
            results[i].push_back(std::move(r));
        }
        t.addRow({sc.name, sc.adapt ? "adapt" : "off",
                  std::to_string(static_cast<int64_t>(
                      elapsed / 2.2e6 * 1000.0)),
                  std::to_string(static_cast<int64_t>(p99)),
                  std::to_string(static_cast<int64_t>(retires)),
                  std::to_string(static_cast<int64_t>(reexp)),
                  std::to_string(static_cast<int64_t>(stolen / 1e3)),
                  std::to_string(static_cast<int64_t>(slowed / 1e3))});
    }
    t.print();

    // Per-seed gate inputs: storm-off (results[1]) pairs with
    // storm-adapt (results[2]) seed by seed; window is results[3].
    double worst_elapsed_ratio = 0.0, worst_p99_ratio = 0.0;
    double min_retires = 1e30, min_stolen = 1e30, min_slowed = 1e30;
    double min_window_margin = 1e30;
    for (int s = 0; s < num_seeds; ++s) {
        const sim::ServingResult &off = results[1][s];
        const sim::ServingResult &adapt = results[2][s];
        worst_elapsed_ratio =
            std::max(worst_elapsed_ratio,
                     adapt.sim.elapsedCycles / off.sim.elapsedCycles);
        worst_p99_ratio =
            std::max(worst_p99_ratio, adapt.p99Us / off.p99Us);
        min_retires = std::min(
            min_retires, static_cast<double>(
                             adapt.sim.counters.interferenceRetires));
        min_stolen = std::min(
            min_stolen,
            static_cast<double>(adapt.sim.counters.stolenCycles));
        min_slowed = std::min(
            min_slowed,
            static_cast<double>(adapt.sim.counters.slowedCycles));
        const sim::ServingResult &win = results[3][s];
        min_window_margin = std::min(
            min_window_margin,
            static_cast<double>(win.sim.counters.interferenceReexpands)
                - static_cast<double>(
                    win.sim.counters.interferenceRetires));
    }

    // Byte-compat: the off knob with an *empty* trace must replay the
    // no-trace schedule bit for bit (the hooks run, with nothing to
    // charge), and an adapting storm must replay itself exactly.
    {
        const sim::InterferenceTrace empty;
        const SimScenario calm = scenarios[0];
        const sim::ServingResult null_run = runSimScenario(
            dag, jobs, args.cores, first_seed, false, nullptr);
        const sim::ServingResult empty_run = runSimScenario(
            dag, jobs, args.cores, first_seed, false, &empty);
        const bool same_empty =
            simRow(calm, args.cores, first_seed, null_run).str()
            == simRow(calm, args.cores, first_seed, empty_run).str();
        std::printf("  gate %-52s %s\n",
                    "sim empty trace byte-identical to no trace",
                    same_empty ? "ok" : "FAIL");
        ok &= same_empty;

        const sim::InterferenceTrace storm = traceFor(1);
        const SimScenario sc = scenarios[2];
        const sim::ServingResult a = runSimScenario(
            dag, jobs, args.cores, first_seed, true, &storm);
        const sim::ServingResult b = runSimScenario(
            dag, jobs, args.cores, first_seed, true, &storm);
        const bool same_adapt =
            simRow(sc, args.cores, first_seed, a).str()
            == simRow(sc, args.cores, first_seed, b).str();
        std::printf("  gate %-52s %s\n",
                    "sim adapt storm rows byte-identical",
                    same_adapt ? "ok" : "FAIL");
        ok &= same_adapt;
    }

    std::printf("\nSim interference gates:\n");
    ok &= gateMax("sim storm adapt/off elapsed (worst seed)",
                  worst_elapsed_ratio, 0.90);
    ok &= gateMax("sim storm adapt/off p99 (worst seed)",
                  worst_p99_ratio, 0.60);
    ok &= gateMin("sim storm adapt retires workers", min_retires, 1.0);
    ok &= gateMin("sim storm stolen cycles billed", min_stolen, 1.0);
    ok &= gateMin("sim storm slowed cycles billed", min_slowed, 1.0);
    ok &= gateMin("sim window reexpands covers retires",
                  min_window_margin, 0.0);

    // ---- Threaded rows + gates ----
    if (!skip_threaded) {
        const int host_cpus = hostCpuCount();
        if (host_cpus < kWorkers + 2) {
            std::printf("\nThreaded interference skipped: %d host CPUs "
                        "< %d (need %d pinned workers + headroom)\n",
                        host_cpus, kWorkers + 2, kWorkers);
        } else {
            // Calibrate capacity with clean pinned workers, then drive
            // at a rate the squeezed Adapt worker-set still absorbs
            // (about 0.73x its capacity), so Off's p99 shows the 3x
            // claim tail rather than an unstable queue in both runs.
            double capacity_per_s = 0.0;
            {
                RuntimeOptions o;
                o.numWorkers = kWorkers;
                o.numPlaces = 2;
                o.pinThreads = true;
                o.sched.parkSpinFailures = 1 << 30;
                Runtime rt(o);
                for (int i = 1; i <= 8; ++i)
                    submitSerialJob(rt, i).wait();
                const int burst = 64;
                std::vector<JobHandle> hs;
                hs.reserve(burst);
                const int64_t b0 = nowNs();
                for (int i = 0; i < burst; ++i)
                    hs.push_back(submitSerialJob(rt, i));
                for (JobHandle &h : hs)
                    h.wait();
                capacity_per_s =
                    burst / (static_cast<double>(nowNs() - b0) * 1e-9);
            }
            const double rate = 0.55 * capacity_per_s;
            const int n_jobs = std::max(
                300, std::min(6000, static_cast<int>(3.0 * rate)));
            std::printf("\nThreaded interference, %d pinned workers, "
                        "%d co-runners on cpu %d (capacity %.0f "
                        "jobs/s, rate %.0f):\n",
                        kWorkers, kCorunners, kSqueezedCpu,
                        capacity_per_s, rate);

            Table tt({"knob", "p99us", "q99us", "done", "retires",
                      "reinst", "reexpanded"});
            std::vector<double> off_p99, adapt_p99;
            double t_retires = 0.0;
            bool reexpand_ok = true;
            for (int knob = 0; knob < 2; ++knob) {
                const bool adapt = knob == 1;
                RuntimeOptions o;
                o.numWorkers = kWorkers;
                o.numPlaces = 2;
                o.pinThreads = true;
                // Spin instead of idle-parking: a parked worker's ~ms
                // wake latency is tail noise the comparison must not
                // carry. Retirement parks through its own path.
                o.sched.parkSpinFailures = 1 << 30;
                o.sched.serving.interference =
                    adapt ? InterferencePolicy::Adapt
                          : InterferencePolicy::Off;
                // A long cool streak makes the re-expansion probe rare:
                // under a sustained squeeze the retired worker wakes to
                // claim for only a few epochs every ~0.7s, so well
                // under 1% of jobs land on the squeezed CPU and the
                // p99 stays clean. Post-storm it bounds re-expansion
                // latency at ~0.7s, far inside the gate's 30s wait.
                o.sched.serving.interferenceExpandEpochs = 128;
                Runtime rt(o);
                double p99 = 0.0, q99 = 0.0, done = 0.0;
                double k_retires = 0.0, k_reinst = 0.0;
                for (int rep = 0; rep < reps; ++rep) {
                    sim::ArrivalProcess p;
                    p.ratePerSec = rate;
                    p.seed = first_seed + 104729ULL * rep;
                    // ghz=1.0 makes arrivalCycles return nanoseconds.
                    const auto arrivals =
                        sim::arrivalCycles(p, n_jobs, 1.0);
                    const ThreadedRun r =
                        runThreadedStream(rt, arrivals, adapt);
                    (adapt ? adapt_p99 : off_p99).push_back(r.p99_us);
                    k_retires += static_cast<double>(r.retires);
                    k_reinst += static_cast<double>(r.reinstates);
                    if (adapt) {
                        t_retires += static_cast<double>(r.retires);
                        reexpand_ok &= r.reexpanded;
                    }
                    p99 += r.p99_us / reps;
                    q99 += r.queue_p99_us / reps;
                    done += static_cast<double>(r.done) / reps;
                    report.addRow(
                        interferenceRow(
                            "threaded", "squeeze",
                            adapt ? "adapt" : "off", "corunner",
                            kCorunners, kWorkers,
                            first_seed + 104729ULL * rep,
                            static_cast<std::size_t>(n_jobs),
                            r.elapsed_s, r.p99_us, r.queue_p99_us,
                            r.goodput, r.done, r.retires, r.reinstates,
                            0, 0)
                            .set("rep", rep));
                }
                tt.addRow({adapt ? "adapt" : "off",
                           std::to_string(static_cast<int64_t>(p99)),
                           std::to_string(static_cast<int64_t>(q99)),
                           std::to_string(static_cast<int64_t>(done)),
                           std::to_string(
                               static_cast<int64_t>(k_retires)),
                           std::to_string(
                               static_cast<int64_t>(k_reinst)),
                           adapt ? (reexpand_ok ? "yes" : "NO") : "-"});
            }
            tt.print();

            // Catastrophe floors on rep medians: the squeezed worker
            // claims ~a quarter of Off's jobs at ~3x, so Off's p99
            // rides the slow tail while a converged Adapt run's p99 is
            // a clean job away from it.
            std::printf("\nThreaded interference gates:\n");
            ok &= gateMax("threaded adapt/off p99 (rep medians)",
                          exactQuantile(adapt_p99, 0.5)
                              / std::max(1e-9,
                                         exactQuantile(off_p99, 0.5)),
                          0.80);
            ok &= gateMin("threaded adapt retires under squeeze",
                          t_retires, 1.0);
            std::printf("  gate %-52s %s\n",
                        "threaded full re-expansion after co-runners",
                        reexpand_ok ? "ok" : "FAIL");
            ok &= reexpand_ok;
        }
    }

    report.writeFile(json_path);
    std::printf("\nwrote %zu rows to %s\n", report.numRows(),
                json_path.c_str());

    if (!ok) {
        std::printf("FAIL: interference acceptance gate violated\n");
        return 1;
    }
    return 0;
}
