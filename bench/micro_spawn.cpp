/**
 * @file
 * Spawn-overhead microbenchmarks (google-benchmark) on the threaded
 * runtime: cost of spawn+sync versus a plain function call, and the
 * effect of base-case coarsening on fib — the trade-off Section II
 * discusses (smaller base case = more parallelism + more overhead).
 */
#include <benchmark/benchmark.h>

#include "runtime/api.h"
#include "workloads/workloads.h"

namespace {

using namespace numaws;

Runtime &
rt1()
{
    static Runtime rt([] {
        RuntimeOptions o;
        o.numWorkers = 1;
        return o;
    }());
    return rt;
}

Runtime &
rtHost()
{
    static Runtime rt([] {
        RuntimeOptions o;
        o.numWorkers = 0; // all host CPUs
        return o;
    }());
    return rt;
}

void
BM_SpawnSyncOverhead(benchmark::State &state)
{
    const int spawns = static_cast<int>(state.range(0));
    Runtime &rt = rt1();
    for (auto _ : state) {
        rt.run([&] {
            TaskGroup tg;
            for (int i = 0; i < spawns; ++i)
                tg.spawn([] { benchmark::DoNotOptimize(0); });
            tg.sync();
        });
    }
    state.SetItemsProcessed(state.iterations() * spawns);
}
BENCHMARK(BM_SpawnSyncOverhead)->Arg(64)->Arg(1024);

void
BM_FibSerial(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(workloads::fibSerial(25));
}
BENCHMARK(BM_FibSerial);

void
BM_FibOneWorkerCutoff(benchmark::State &state)
{
    const int cutoff = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            workloads::fibParallel(rt1(), 25, cutoff));
}
BENCHMARK(BM_FibOneWorkerCutoff)->Arg(10)->Arg(15)->Arg(20);

void
BM_FibAllWorkers(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(workloads::fibParallel(rtHost(), 27, 16));
}
BENCHMARK(BM_FibAllWorkers);

void
BM_ParallelForGrain(benchmark::State &state)
{
    const int64_t grain = state.range(0);
    Runtime &rt = rtHost();
    std::vector<double> v(1 << 16, 1.0);
    for (auto _ : state) {
        rt.run([&] {
            parallelFor(0, static_cast<int64_t>(v.size()), grain,
                        [&](int64_t i) {
                            v[static_cast<std::size_t>(i)] *= 1.0001;
                        });
        });
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<int64_t>(v.size()));
}
BENCHMARK(BM_ParallelForGrain)->Arg(64)->Arg(1024)->Arg(16384);

} // namespace
