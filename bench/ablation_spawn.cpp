/**
 * @file
 * Spawn-overhead ablation: the one number the paper cares most about —
 * the cost of spawn+sync versus a plain function call (Section II's
 * work-first yardstick) — as a JSON-reporting, CI-gated comparison of
 * the NUMA-local task-frame pool against global-heap allocation.
 *
 *   ./ablation_spawn [--spawns=1024] [--reps=5] [--warmup=2]
 *                    [--json=BENCH_spawn.json]
 *
 * Shape: 1 worker, --spawns empty tasks per sync (the old
 * BM_SpawnSyncOverhead shape), --reps measured repetitions after
 * --warmup warm-up repetitions (the warm-up fills the pool's free
 * lists, so the measured reps see the steady state the pool is built
 * for). Heap and pooled repetitions interleave so host noise drifts
 * into both sides equally. A 2-worker pooled row rides along,
 * measured only, to show the remote-free path (thieves freeing into
 * the spawner's pool) under real contention; its timing is scheduling
 * luck on small hosts, so it carries no elapsed_s for the trajectory
 * gate to latch onto.
 *
 * Statistics: every comparison — the gate here and the elapsed_s the
 * CI trajectory tracks — uses the per-rep *minimum*, the standard
 * least-noise estimate of a microbenchmark's true cost (scheduler
 * interference only ever adds time, so the fastest rep is the closest
 * observation of each configuration's real spawn path; a mean or even
 * a median of microsecond-scale reps on a shared runner flaps — one
 * descheduled rep inflates a 15-rep mean several-fold). The rep mean
 * still rides along as elapsed_mean_s.
 *
 * Exits nonzero unless, on the 1-worker shape:
 *  1. pooled spawn throughput >= 1.25x the heap baseline
 *     (min ns/spawn, heap/pooled >= 1.25), and
 *  2. the pool recycles in steady state: framesRecycled/spawns >= 0.95
 *     over the measured reps.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "support/timing.h"

using namespace numaws;
using namespace numaws::bench;

namespace {

/** The plain-call baseline body: opaque to the optimizer so the
 * comparison is against a real call, not against nothing. */
__attribute__((noinline)) void
plainNop()
{
    asm volatile("");
}

double
spawnSyncRep(Runtime &rt, int spawns)
{
    WallTimer t;
    rt.run([&] {
        TaskGroup tg;
        for (int i = 0; i < spawns; ++i)
            tg.spawn([] { plainNop(); });
        tg.sync();
    });
    return t.seconds();
}

/** 2-worker rep: tasks carry a body of a few microseconds so the
 * second worker has time to wake and steal — stolen frames then come
 * home over the remote-free stack instead of the heap. */
double
spawnWorkRep(Runtime &rt, int spawns)
{
    WallTimer t;
    rt.run([&] {
        TaskGroup tg;
        for (int i = 0; i < spawns; ++i)
            tg.spawn([] {
                for (int k = 0; k < 512; ++k)
                    plainNop();
            });
        tg.sync();
    });
    return t.seconds();
}

double
plainCallRep(Runtime &rt, int calls)
{
    WallTimer t;
    rt.run([&] {
        for (int i = 0; i < calls; ++i)
            plainNop();
    });
    return t.seconds();
}

struct Measured
{
    double meanSeconds = 0.0;
    double minSeconds = 0.0;
    RuntimeStats stats;

    void
    finish(std::vector<double> &rep_seconds)
    {
        for (const double s : rep_seconds)
            meanSeconds += s / static_cast<double>(rep_seconds.size());
        minSeconds =
            *std::min_element(rep_seconds.begin(), rep_seconds.end());
    }

    double
    nsPer(int items) const
    {
        return meanSeconds * 1e9 / items;
    }

    double
    minNsPer(int items) const
    {
        return minSeconds * 1e9 / items;
    }
};

/** Warm up, reset stats, then measure @p reps repetitions plus the
 * counters accumulated over exactly those reps. */
template <typename RepFn>
Measured
measure(Runtime &rt, int warmup, int reps, RepFn rep)
{
    for (int i = 0; i < warmup; ++i)
        rep(rt);
    rt.resetStats();
    Measured m;
    std::vector<double> seconds;
    seconds.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i)
        seconds.push_back(rep(rt));
    m.finish(seconds);
    m.stats = rt.stats();
    return m;
}

RuntimeOptions
optionsFor(int workers, TaskPoolPolicy pool)
{
    RuntimeOptions o;
    o.numWorkers = workers;
    o.taskPool = pool;
    return o;
}

/** @p with_elapsed: whether the row carries elapsed_s — the metric the
 * CI trajectory gates on. Scheduling-luck rows leave it out so the
 * gate cannot latch onto them; their spawn_ns still rides the
 * report-mode ratios. */
JsonRow
spawnRow(const char *workload, TaskPoolPolicy pool, int workers,
         int spawns, int reps, const Measured &m, bool with_elapsed)
{
    const WorkerCounters &c = m.stats.counters;
    JsonRow row;
    row.set("engine", "threaded")
        .set("workload", workload)
        .set("pool", taskPoolPolicyName(pool))
        .set("workers", workers)
        .set("spawns_per_sync", spawns)
        .set("reps", reps);
    if (with_elapsed)
        row.set("elapsed_s", m.minSeconds);
    row.set("elapsed_mean_s", m.meanSeconds)
        .set("spawn_ns", m.minNsPer(spawns))
        .set("spawns", c.spawns)
        .set("frames_recycled", c.framesRecycled)
        .set("remote_frees", c.remoteFrees)
        .set("slab_bytes", c.slabBytes)
        .set("steals", c.steals);
    return row;
}

bool
gateMin(const char *what, double actual, double limit)
{
    const bool ok = actual >= limit;
    std::printf("  gate %-46s %.4f >= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const int spawns =
        std::max(1, static_cast<int>(cli.getInt("spawns", 1024)));
    const int reps = std::max(1, static_cast<int>(cli.getInt("reps", 5)));
    const int warmup =
        std::max(0, static_cast<int>(cli.getInt("warmup", 2)));
    const std::string json_path =
        cli.getString("json", "BENCH_spawn.json");

    JsonReport report;

    // The paper's yardstick: what does the same loop cost as plain
    // calls, with no spawn machinery at all?
    Runtime rt_call(optionsFor(1, TaskPoolPolicy::Pooled));
    Measured call = measure(rt_call, warmup, reps, [&](Runtime &rt) {
        return plainCallRep(rt, spawns);
    });
    {
        JsonRow row;
        row.set("engine", "threaded")
            .set("workload", "plain-call")
            .set("pool", "none")
            .set("workers", 1)
            .set("spawns_per_sync", spawns)
            .set("reps", reps)
            .set("elapsed_s", call.minSeconds)
            .set("elapsed_mean_s", call.meanSeconds)
            .set("spawn_ns", call.minNsPer(spawns));
        report.addRow(row);
    }

    // Heap vs pooled on one worker, repetitions interleaved: rep i of
    // both runtimes runs back to back, so slow host phases (a noisy CI
    // neighbor, a frequency step) hit both means instead of one.
    Runtime rt_heap(optionsFor(1, TaskPoolPolicy::Heap));
    Runtime rt_pool(optionsFor(1, TaskPoolPolicy::Pooled));
    for (int i = 0; i < warmup; ++i) {
        spawnSyncRep(rt_heap, spawns);
        spawnSyncRep(rt_pool, spawns);
    }
    rt_heap.resetStats();
    rt_pool.resetStats();
    Measured heap, pooled;
    std::vector<double> heap_seconds, pool_seconds;
    for (int i = 0; i < reps; ++i) {
        heap_seconds.push_back(spawnSyncRep(rt_heap, spawns));
        pool_seconds.push_back(spawnSyncRep(rt_pool, spawns));
    }
    heap.finish(heap_seconds);
    pooled.finish(pool_seconds);
    heap.stats = rt_heap.stats();
    pooled.stats = rt_pool.stats();
    report.addRow(spawnRow("spawn+sync", TaskPoolPolicy::Heap, 1, spawns,
                           reps, heap, /*with_elapsed=*/true));
    report.addRow(spawnRow("spawn+sync", TaskPoolPolicy::Pooled, 1,
                           spawns, reps, pooled, /*with_elapsed=*/true));

    // Remote-free visibility row: 2 workers, thieves steal from the
    // spawner and free stolen frames back across the pool boundary.
    // Whether and how much they steal is scheduling luck on a small
    // host, so the row carries counters but no gateable elapsed_s.
    Runtime rt_two(optionsFor(2, TaskPoolPolicy::Pooled));
    Measured two = measure(rt_two, warmup, reps, [&](Runtime &rt) {
        return spawnWorkRep(rt, spawns);
    });
    report.addRow(spawnRow("spawn+work", TaskPoolPolicy::Pooled, 2,
                           spawns, reps, two, /*with_elapsed=*/false));

    const double recycle_rate =
        static_cast<double>(pooled.stats.counters.framesRecycled)
        / std::max<uint64_t>(1, pooled.stats.counters.spawns);
    std::printf("\nspawn+sync overhead, %d spawns/sync, %d reps "
                "(mean / min):\n",
                spawns, reps);
    std::printf("  plain call      %8.1f / %8.1f ns/call\n",
                call.nsPer(spawns), call.minNsPer(spawns));
    std::printf("  heap  (1w)      %8.1f / %8.1f ns/spawn\n",
                heap.nsPer(spawns), heap.minNsPer(spawns));
    std::printf("  pooled(1w)      %8.1f / %8.1f ns/spawn   "
                "recycled %.3f  slab KiB %llu\n",
                pooled.nsPer(spawns), pooled.minNsPer(spawns),
                recycle_rate,
                static_cast<unsigned long long>(
                    pooled.stats.counters.slabBytes >> 10));
    std::printf("  pooled(2w)      %8.1f ns/spawn   remoteFrees %llu  "
                "steals %llu\n",
                two.nsPer(spawns),
                static_cast<unsigned long long>(
                    two.stats.counters.remoteFrees),
                static_cast<unsigned long long>(
                    two.stats.counters.steals));

    report.writeFile(json_path);
    std::printf("\nwrote %zu rows to %s\n", report.numRows(),
                json_path.c_str());

    // Acceptance gates (file header).
    bool ok = true;
    std::printf("\n");
    ok &= gateMin("pooled/heap spawn throughput (min-rep)",
                  heap.minNsPer(spawns) / pooled.minNsPer(spawns),
                  1.25);
    ok &= gateMin("pooled steady-state recycle rate", recycle_rate,
                  0.95);
    if (!ok) {
        std::printf("FAIL: spawn-path acceptance gate violated\n");
        return 1;
    }
    return 0;
}
