/**
 * @file
 * Shared harness logic for the paper-table benches.
 *
 * Methodology mirrors Section V:
 *  - "Cilk Plus" rows run the classic scheduler (uniform steals, no
 *    mailboxes) and, like the paper, take the best of the first-touch and
 *    interleave placements per benchmark;
 *  - "NUMA-WS" rows run the full Figure 5 scheduler with partitioned data
 *    and locality hints;
 *  - TS is the serial elision (zero parallel overhead) on one core.
 * Simulated cores pack onto the fewest sockets (Figure 9's methodology).
 */
#ifndef NUMAWS_BENCH_BENCH_COMMON_H
#define NUMAWS_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "topology/affinity.h"

#include "numaws.h"
#include "sim/scheduler.h"
#include "support/cli.h"
#include "support/panic.h"
#include "support/table.h"
#include "support/timing.h"
#include "workloads/workloads.h"

namespace numaws::bench {

using workloads::Placement;
using workloads::SimWorkload;

/** Sockets in use when @p cores pack tightly (8 cores per socket). */
inline int
socketsFor(int cores)
{
    return (cores + 7) / 8;
}

/** Serial elision time TS (seconds) on one core. */
inline double
runSerial(const SimWorkload &wl)
{
    const auto dag = wl.build(1, Placement::FirstTouch, false);
    return sim::simulatePacked(dag, 1, sim::SimConfig::serial())
        .elapsedSeconds;
}

/** Classic work stealing ("Cilk Plus"): best of first-touch/interleave. */
inline sim::SimResult
runClassic(const SimWorkload &wl, int cores, uint64_t seed = 0x5eed)
{
    sim::SimConfig cfg = sim::SimConfig::classicWs();
    cfg.seed = seed;
    const int sockets = socketsFor(cores);
    sim::SimResult best{};
    bool first = true;
    for (const Placement pl :
         {Placement::FirstTouch, Placement::Interleaved}) {
        const auto dag = wl.build(sockets, pl, false);
        const sim::SimResult r = sim::simulatePacked(dag, cores, cfg);
        if (first || r.elapsedSeconds < best.elapsedSeconds) {
            best = r;
            first = false;
        }
    }
    return best;
}

/** Full NUMA-WS: partitioned data + locality hints. A benchmark whose
 * dag carries no hints (matmul row-major, strassen) did not partition
 * its data either — its user runs the same placement the classic rows
 * use (the paper links the *same application* against both runtimes). */
inline sim::SimResult
runNumaWs(const SimWorkload &wl, int cores, uint64_t seed = 0x5eed)
{
    sim::SimConfig cfg = sim::SimConfig::numaWs();
    cfg.seed = seed;
    const int sockets = socketsFor(cores);
    const auto dag = wl.build(sockets, Placement::Partitioned, true);
    if (dag.hasPlaceHints())
        return sim::simulatePacked(dag, cores, cfg);
    sim::SimResult best{};
    bool first = true;
    for (const Placement pl :
         {Placement::FirstTouch, Placement::Interleaved}) {
        const auto unhinted = wl.build(sockets, pl, false);
        const sim::SimResult r =
            sim::simulatePacked(unhinted, cores, cfg);
        if (first || r.elapsedSeconds < best.elapsedSeconds) {
            best = r;
            first = false;
        }
    }
    return best;
}

/**
 * The shared threaded-engine row workload: fib (spawn-bound) plus
 * hinted heat (mailbox-bound) at bench scale, timed together. Every
 * ablation bench that emits "fib+heat" threaded rows runs this one
 * shape, so bench_trajectory.py compares like with like across
 * reports and the shape cannot silently diverge between benches.
 * Wall time is meaningless on 1-core CI containers; the counters in
 * Runtime::stats() are what the rows are for.
 */
inline double
runThreadedFibHeat(Runtime &rt, double scale)
{
    const int fib_n = scale >= 1.0 ? 28 : 20;
    workloads::HeatParams heat;
    heat.nx = scale >= 1.0 ? 512 : 128;
    heat.ny = heat.nx;
    heat.steps = 4;
    std::vector<double> a(
        static_cast<std::size_t>(heat.nx) * heat.ny, 0.0);
    std::vector<double> b(a.size(), 0.0);
    WallTimer t;
    workloads::fibParallel(rt, fib_n);
    workloads::heatParallel(rt, a.data(), b.data(), heat, true);
    return t.seconds();
}

/**
 * One JSON object, insertion-ordered, for machine-readable bench output.
 * Values are rendered on insertion; strings are escaped minimally
 * (backslash, quote, control characters), numbers via %.17g so a row
 * round-trips exactly.
 */
class JsonRow
{
  public:
    JsonRow &
    set(const std::string &key, const std::string &value)
    {
        _fields.emplace_back(key, quote(value));
        return *this;
    }

    JsonRow &
    set(const std::string &key, const char *value)
    {
        return set(key, std::string(value));
    }

    JsonRow &
    set(const std::string &key, double value)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        _fields.emplace_back(key, buf);
        return *this;
    }

    JsonRow &
    set(const std::string &key, int64_t value)
    {
        _fields.emplace_back(key, std::to_string(value));
        return *this;
    }

    JsonRow &
    set(const std::string &key, uint64_t value)
    {
        _fields.emplace_back(key, std::to_string(value));
        return *this;
    }

    JsonRow &
    set(const std::string &key, int value)
    {
        return set(key, static_cast<int64_t>(value));
    }

    JsonRow &
    set(const std::string &key, bool value)
    {
        _fields.emplace_back(key, value ? "true" : "false");
        return *this;
    }

    std::string
    str() const
    {
        std::ostringstream out;
        out << '{';
        for (std::size_t i = 0; i < _fields.size(); ++i) {
            if (i > 0)
                out << ',';
            out << quote(_fields[i].first) << ':' << _fields[i].second;
        }
        out << '}';
        return out.str();
    }

  private:
    static std::string
    quote(const std::string &s)
    {
        std::string out = "\"";
        for (const char ch : s) {
            if (ch == '"' || ch == '\\') {
                out += '\\';
                out += ch;
            } else if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
        out += '"';
        return out;
    }

    std::vector<std::pair<std::string, std::string>> _fields;
};

/** Git revision for provenance: $GITHUB_SHA (CI) or `git rev-parse`,
 * else "unknown". Resolved once per report. */
inline std::string
gitRevision()
{
    if (const char *sha = std::getenv("GITHUB_SHA"))
        return sha;
    std::string sha;
    if (std::FILE *p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[64];
        if (std::fgets(buf, sizeof(buf), p) != nullptr) {
            for (const char *c = buf; *c != '\0' && *c != '\n'; ++c)
                sha += *c;
        }
        ::pclose(p);
    }
    return sha.empty() ? "unknown" : sha;
}

/**
 * Collects JsonRow objects and writes them as one JSON array, the format
 * CI archives as a build artifact (e.g. BENCH_adaptive.json).
 *
 * Every row is stamped with provenance on insertion — host core count
 * and git sha — so a JSON file pulled from an artifact store months
 * later still says what machine shape and revision produced it (the
 * engine is a per-row field the benches set themselves).
 */
class JsonReport
{
  public:
    JsonReport() : _hostCores(hostCpuCount()), _gitSha(gitRevision()) {}

    void
    addRow(const JsonRow &row)
    {
        JsonRow stamped = row;
        stamped.set("host_cores", _hostCores).set("git_sha", _gitSha);
        _rows.push_back(stamped.str());
    }

    std::string
    str() const
    {
        std::ostringstream out;
        out << "[\n";
        for (std::size_t i = 0; i < _rows.size(); ++i)
            out << "  " << _rows[i] << (i + 1 < _rows.size() ? ",\n" : "\n");
        out << "]\n";
        return out.str();
    }

    void
    writeFile(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            NUMAWS_FATAL("cannot open %s for writing", path.c_str());
        const std::string body = str();
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
    }

    std::size_t numRows() const { return _rows.size(); }

  private:
    int _hostCores;
    std::string _gitSha;
    std::vector<std::string> _rows;
};

/** Standard bench CLI: --scale=, --cores=, --workload= filter. */
struct BenchArgs
{
    double scale;
    int cores;
    std::string only;

    explicit BenchArgs(const Cli &cli)
        : scale(cli.getDouble("scale", 0.25)),
          cores(static_cast<int>(cli.getInt("cores", 32))),
          only(cli.getString("workload", ""))
    {}

    bool
    selected(const SimWorkload &wl) const
    {
        return only.empty() || only == wl.name;
    }
};

} // namespace numaws::bench

#endif // NUMAWS_BENCH_BENCH_COMMON_H
