/**
 * @file
 * Shared harness logic for the paper-table benches.
 *
 * Methodology mirrors Section V:
 *  - "Cilk Plus" rows run the classic scheduler (uniform steals, no
 *    mailboxes) and, like the paper, take the best of the first-touch and
 *    interleave placements per benchmark;
 *  - "NUMA-WS" rows run the full Figure 5 scheduler with partitioned data
 *    and locality hints;
 *  - TS is the serial elision (zero parallel overhead) on one core.
 * Simulated cores pack onto the fewest sockets (Figure 9's methodology).
 */
#ifndef NUMAWS_BENCH_BENCH_COMMON_H
#define NUMAWS_BENCH_BENCH_COMMON_H

#include <string>

#include "sim/scheduler.h"
#include "support/cli.h"
#include "support/table.h"
#include "workloads/workloads.h"

namespace numaws::bench {

using workloads::Placement;
using workloads::SimWorkload;

/** Sockets in use when @p cores pack tightly (8 cores per socket). */
inline int
socketsFor(int cores)
{
    return (cores + 7) / 8;
}

/** Serial elision time TS (seconds) on one core. */
inline double
runSerial(const SimWorkload &wl)
{
    const auto dag = wl.build(1, Placement::FirstTouch, false);
    return sim::simulatePacked(dag, 1, sim::SimConfig::serial())
        .elapsedSeconds;
}

/** Classic work stealing ("Cilk Plus"): best of first-touch/interleave. */
inline sim::SimResult
runClassic(const SimWorkload &wl, int cores, uint64_t seed = 0x5eed)
{
    sim::SimConfig cfg = sim::SimConfig::classicWs();
    cfg.seed = seed;
    const int sockets = socketsFor(cores);
    sim::SimResult best{};
    bool first = true;
    for (const Placement pl :
         {Placement::FirstTouch, Placement::Interleaved}) {
        const auto dag = wl.build(sockets, pl, false);
        const sim::SimResult r = sim::simulatePacked(dag, cores, cfg);
        if (first || r.elapsedSeconds < best.elapsedSeconds) {
            best = r;
            first = false;
        }
    }
    return best;
}

/** Full NUMA-WS: partitioned data + locality hints. A benchmark whose
 * dag carries no hints (matmul row-major, strassen) did not partition
 * its data either — its user runs the same placement the classic rows
 * use (the paper links the *same application* against both runtimes). */
inline sim::SimResult
runNumaWs(const SimWorkload &wl, int cores, uint64_t seed = 0x5eed)
{
    sim::SimConfig cfg = sim::SimConfig::numaWs();
    cfg.seed = seed;
    const int sockets = socketsFor(cores);
    const auto dag = wl.build(sockets, Placement::Partitioned, true);
    if (dag.hasPlaceHints())
        return sim::simulatePacked(dag, cores, cfg);
    sim::SimResult best{};
    bool first = true;
    for (const Placement pl :
         {Placement::FirstTouch, Placement::Interleaved}) {
        const auto unhinted = wl.build(sockets, pl, false);
        const sim::SimResult r =
            sim::simulatePacked(unhinted, cores, cfg);
        if (first || r.elapsedSeconds < best.elapsedSeconds) {
            best = r;
            first = false;
        }
    }
    return best;
}

/** Standard bench CLI: --scale=, --cores=, --workload= filter. */
struct BenchArgs
{
    double scale;
    int cores;
    std::string only;

    explicit BenchArgs(const Cli &cli)
        : scale(cli.getDouble("scale", 0.25)),
          cores(static_cast<int>(cli.getInt("cores", 32))),
          only(cli.getString("workload", ""))
    {}

    bool
    selected(const SimWorkload &wl) const
    {
        return only.empty() || only == wl.name;
    }
};

} // namespace numaws::bench

#endif // NUMAWS_BENCH_BENCH_COMMON_H
