/**
 * @file
 * Microbenchmarks (google-benchmark) of the scheduler data structures:
 * THE-deque owner push/pop (the work path the work-first principle keeps
 * cheap), thief steals (the paid path), and the single-entry mailbox.
 */
#include <benchmark/benchmark.h>

#include "deque/mailbox.h"
#include "deque/ws_deque.h"
#include "support/rng.h"
#include "topology/steal_distribution.h"

namespace {

using numaws::BiasWeights;
using numaws::Machine;
using numaws::Mailbox;
using numaws::Rng;
using numaws::StealDistribution;
using numaws::WsDeque;

struct Item
{
    int v;
};

void
BM_DequeOwnerPushPop(benchmark::State &state)
{
    WsDeque<Item> d(1 << 12);
    Item item{1};
    for (auto _ : state) {
        d.pushTail(&item);
        benchmark::DoNotOptimize(d.popTail());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DequeOwnerPushPop);

void
BM_DequeStealFromHead(benchmark::State &state)
{
    WsDeque<Item> d(1 << 12);
    Item item{1};
    for (auto _ : state) {
        d.pushTail(&item);
        benchmark::DoNotOptimize(d.stealHead());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DequeStealFromHead);

void
BM_DequeDeepPushThenDrain(benchmark::State &state)
{
    const int depth = static_cast<int>(state.range(0));
    WsDeque<Item> d(1 << 12);
    std::vector<Item> items(static_cast<std::size_t>(depth));
    for (auto _ : state) {
        for (auto &i : items)
            d.pushTail(&i);
        while (d.popTail() != nullptr) {
        }
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_DequeDeepPushThenDrain)->Arg(16)->Arg(256)->Arg(4096);

void
BM_MailboxPutTake(benchmark::State &state)
{
    Mailbox<Item> m;
    Item item{1};
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.tryPut(&item));
        benchmark::DoNotOptimize(m.tryTake());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxPutTake);

void
BM_BiasedVictimSample(benchmark::State &state)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution dist(m, 32, BiasWeights{});
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(5, rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BiasedVictimSample);

void
BM_UniformVictimSample(benchmark::State &state)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution dist(m, 32, BiasWeights::uniform());
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(dist.sample(5, rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UniformVictimSample);

} // namespace
