/**
 * @file
 * Open-loop serving rows: the PR 6 submission front door under Poisson
 * and bursty arrivals, in both engines.
 *
 * Jobs are small independent fib/matmul/heat computations submitted at
 * seeded arrival instants; per-job latency (submit -> finish) is the
 * metric, reported as exact sorted percentiles. Two rate classes per
 * mix: "low" (a few percent utilization — the elastic pool's parking
 * regime) and "high" (~60% utilization — the latency-under-load
 * regime). Each class runs elastic (workers park when the board and
 * JobQueue are both dry) and spin (parking disabled) so the elastic
 * trade is priced: parked wall time bought at low rate, tail latency
 * paid at high rate.
 *
 *   ./ablation_serving [--scale=0.25] [--cores=32] [--seeds=3]
 *                      [--seed=first] [--threads=2] [--reps=3]
 *                      [--skip-threaded] [--json=BENCH_serving.json]
 *
 * Exits nonzero unless (full runs only):
 *  1. sim, mixed/low: the elastic pool parks >= 80% of worker-idle
 *     time (parked cycles / idle cycles),
 *  2. sim, mixed/high: elastic p99 <= 1.10x the spin baseline,
 *  3. sim serving rows are byte-identical across repeated runs of the
 *     same seed (determinism of the arrival + admission machinery),
 *  4. threaded, mixed/low: the elastic pool parks >= 80% of the
 *     workers' wall time (utilization is ~2%, so wall ~= idle),
 *  5. threaded, mixed/high: elastic p99 <= 1.10x spin (median of
 *     --reps repetitions, so one noisy rep cannot flip the verdict).
 */
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sim/serving.h"

using namespace numaws;
using namespace numaws::bench;
using namespace numaws::workloads;

namespace {

/** Exact quantile from an unsorted sample (sorts a copy). */
double
exactQuantile(std::vector<double> sample, double q)
{
    if (sample.empty())
        return 0.0;
    std::sort(sample.begin(), sample.end());
    const double n = static_cast<double>(sample.size());
    std::size_t idx = static_cast<std::size_t>(q * n + 0.999999);
    idx = idx > 0 ? idx - 1 : 0;
    if (idx >= sample.size())
        idx = sample.size() - 1;
    return sample[idx];
}

// ---------------------------------------------------------------------
// Threaded job bodies: small intra-job fork-join computations. The
// library helpers (fibParallel etc.) wrap rt.run() and so cannot be
// called from inside a job; these express the same shapes through the
// public TaskGroup / parallelForRange layer, sized to tens of
// microseconds so open-loop runs finish quickly at bench scale.
// ---------------------------------------------------------------------

uint64_t
fibJob(int n, int cutoff)
{
    if (n < cutoff)
        return fibSerial(n);
    uint64_t a = 0;
    TaskGroup tg;
    tg.spawn([&a, n, cutoff] { a = fibJob(n - 1, cutoff); });
    const uint64_t b = fibJob(n - 2, cutoff);
    tg.sync();
    return a + b;
}

double
matmulJob(uint32_t n)
{
    std::vector<double> a(static_cast<std::size_t>(n) * n, 1.0);
    std::vector<double> b(a.size(), 2.0);
    std::vector<double> c(a.size(), 0.0);
    parallelForRange(0, n, /*grain=*/static_cast<int64_t>(n) / 4 + 1,
                     [&](int64_t lo, int64_t hi) {
                         for (int64_t i = lo; i < hi; ++i)
                             for (uint32_t k = 0; k < n; ++k) {
                                 const double aik =
                                     a[static_cast<std::size_t>(i) * n
                                       + k];
                                 for (uint32_t j = 0; j < n; ++j)
                                     c[static_cast<std::size_t>(i) * n
                                       + j] +=
                                         aik
                                         * b[static_cast<std::size_t>(k)
                                                 * n
                                             + j];
                             }
                     });
    return c[0];
}

double
heatJob(int64_t nx, int64_t ny, int64_t steps)
{
    std::vector<double> a(static_cast<std::size_t>(nx) * ny, 1.0);
    std::vector<double> b(a.size(), 0.0);
    double *src = a.data();
    double *dst = b.data();
    for (int64_t t = 0; t < steps; ++t) {
        parallelForRange(1, nx - 1, /*grain=*/nx / 4 + 1,
                         [&](int64_t lo, int64_t hi) {
                             for (int64_t i = lo; i < hi; ++i)
                                 for (int64_t j = 1; j < ny - 1; ++j)
                                     dst[i * ny + j] =
                                         0.25
                                         * (src[(i - 1) * ny + j]
                                            + src[(i + 1) * ny + j]
                                            + src[i * ny + j - 1]
                                            + src[i * ny + j + 1]);
                         });
        std::swap(src, dst);
    }
    return src[ny + 1];
}

std::atomic<double> g_sink{0.0}; ///< keeps job results observable

/** Submit job @p i of @p mix ("fib" or "mixed") with its class/hint. */
JobHandle
submitJob(Runtime &rt, const std::string &mix, int i)
{
    const int kind = mix == "fib" ? 0 : i % 3;
    JobOptions opts;
    switch (kind) {
      case 0:
        opts.cls = JobClass::Latency;
        return rt.submit([] {
            g_sink.store(static_cast<double>(fibJob(20, 14)),
                         std::memory_order_relaxed);
        }, opts);
      case 1:
        opts.cls = JobClass::Normal;
        opts.place = static_cast<Place>(i % rt.numPlaces());
        return rt.submit([] {
            g_sink.store(heatJob(64, 64, 2), std::memory_order_relaxed);
        }, opts);
      default:
        opts.cls = JobClass::Batch;
        return rt.submit([] {
            g_sink.store(matmulJob(48), std::memory_order_relaxed);
        }, opts);
    }
}

struct OpenLoopResult
{
    double elapsed_s = 0.0;
    double arrival_per_s = 0.0;
    std::vector<double> latencies_us; ///< Done jobs only
    uint64_t done = 0, shed = 0;      ///< shed = Rejected outcomes
    double parked_frac = 0.0; ///< parkedNs / (wall * workers)
    RuntimeStats stats;
};

/**
 * Drive @p rt open-loop: submit one job per entry of @p arrival_ns
 * (offsets from the run start), then join them all. The driver sleeps
 * toward each arrival and spin-finishes the last ~200us so submission
 * timing is not at the mercy of timer-slack.
 */
OpenLoopResult
runOpenLoop(Runtime &rt, const std::string &mix,
            const std::vector<double> &arrival_ns)
{
    // Warm the pools/histograms, then measure from a clean slate.
    for (int i = 0; i < 12; ++i)
        submitJob(rt, mix, i).wait();
    rt.resetStats();

    std::vector<JobHandle> handles;
    handles.reserve(arrival_ns.size());
    const int64_t t0 = nowNs();
    for (std::size_t i = 0; i < arrival_ns.size(); ++i) {
        const int64_t target = t0 + static_cast<int64_t>(arrival_ns[i]);
        while (nowNs() < target) {
            if (target - nowNs() > 200000)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
        }
        handles.push_back(submitJob(rt, mix, static_cast<int>(i)));
    }
    for (JobHandle &h : handles)
        h.wait();

    OpenLoopResult r;
    r.elapsed_s = static_cast<double>(nowNs() - t0) * 1e-9;
    r.arrival_per_s =
        static_cast<double>(handles.size()) / r.elapsed_s;
    r.latencies_us.reserve(handles.size());
    for (JobHandle &h : handles) {
        // Shed jobs resolve instantly with no latency to speak of;
        // counting their ~0 in the percentiles would flatter any run
        // with a shed policy.
        if (h.outcome() == JobOutcome::Done) {
            ++r.done;
            r.latencies_us.push_back(
                static_cast<double>(h.latencyNs()) / 1000.0);
        } else if (h.outcome() == JobOutcome::Rejected) {
            ++r.shed;
        }
    }
    r.stats = rt.stats();
    const double wall_ns =
        r.elapsed_s * 1e9 * static_cast<double>(rt.numWorkers());
    r.parked_frac =
        static_cast<double>(r.stats.counters.parkedNs) / wall_ns;
    return r;
}

bool
gateMax(const char *what, double actual, double limit)
{
    const bool ok = actual <= limit;
    std::printf("  gate %-52s %.4f <= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

bool
gateMin(const char *what, double actual, double limit)
{
    const bool ok = actual >= limit;
    std::printf("  gate %-52s %.4f >= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

// ---------------------------------------------------------------------
// Sim side: merged multi-root dags + simulateServing
// ---------------------------------------------------------------------

struct SimMix
{
    std::string name;
    sim::ComputationDag dag;      ///< all jobs' trees, merged
    std::vector<sim::FrameId> roots;
    std::vector<int> classes;
    double meanJobCycles = 0.0;   ///< nominal work per job
};

SimMix
buildSimMix(const std::string &name, int jobs, int sockets)
{
    SimMix mix;
    mix.name = name;
    std::vector<sim::ComputationDag> kinds;
    std::vector<int> kind_cls;
    kinds.push_back(fibDag(12));
    kind_cls.push_back(0); // Latency
    if (name == "mixed") {
        HeatParams heat;
        heat.nx = 64;
        heat.ny = 64;
        heat.steps = 2;
        heat.baseRows = 16;
        kinds.push_back(
            heatDag(heat, sockets, Placement::Partitioned, true));
        kind_cls.push_back(1); // Normal, place-hinted
        MatmulParams mm;
        mm.n = 64;
        mm.block = 32;
        kinds.push_back(
            matmulDag(mm, sockets, Placement::FirstTouch, false));
        kind_cls.push_back(2); // Batch
    }
    double total_work = 0.0;
    for (int i = 0; i < jobs; ++i) {
        const std::size_t k = i % kinds.size();
        mix.roots.push_back(mix.dag.append(kinds[k]));
        mix.classes.push_back(kind_cls[k]);
        total_work += kinds[k].workSpan().work;
    }
    mix.meanJobCycles = total_work / jobs;
    return mix;
}

/** Jobs at seeded arrivals targeting @p util of the simulated cores. */
std::vector<sim::SimJob>
makeSimJobs(const SimMix &mix, double util, int cores, double ghz,
            sim::ArrivalProcess::Kind kind, uint64_t seed,
            double &rate_out)
{
    sim::ArrivalProcess p;
    p.kind = kind;
    p.ratePerSec = util * cores * ghz * 1e9 / mix.meanJobCycles;
    p.seed = seed;
    rate_out = p.ratePerSec;
    const std::vector<double> at = sim::arrivalCycles(
        p, static_cast<int>(mix.roots.size()), ghz);
    std::vector<sim::SimJob> jobs(mix.roots.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].root = mix.roots[i];
        jobs[i].arrivalCycles = at[i];
        jobs[i].cls = mix.classes[i];
    }
    return jobs;
}

sim::SimConfig
simConfig(bool elastic, uint64_t seed)
{
    sim::SimConfig c = sim::SimConfig::adaptiveNumaWs();
    c.modelParking = elastic;
    c.sched.parkSpinFailures = 4;
    c.seed = seed;
    return c;
}

/** One serving row, rendered before provenance stamping so the
 * determinism gate can compare raw bytes. */
JsonRow
simServingRow(const SimMix &mix, const char *rate_class, double rate,
              const char *arrivals, bool elastic, int cores,
              uint64_t seed, const sim::ServingResult &r)
{
    JsonRow row;
    row.set("engine", "sim")
        .set("workload", mix.name)
        .set("mix", mix.name)
        .set("rate", rate_class)
        .set("arrivals", arrivals)
        .set("elastic", elastic)
        .set("cores", cores)
        .set("seed", seed)
        .set("jobs", static_cast<uint64_t>(r.jobs.size()))
        .set("arrival_per_s", rate)
        .set("elapsed_s", r.sim.elapsedSeconds)
        .set("work_s", r.sim.workSeconds)
        .set("sched_s", r.sim.schedSeconds)
        .set("idle_s", r.sim.idleSeconds)
        .set("p50_us", r.p50Us)
        .set("p99_us", r.p99Us)
        .set("p999_us", r.p999Us)
        .set("hist_p99_us",
             static_cast<double>(r.latency.quantile(0.99)) / 1000.0)
        .set("parks", r.sim.counters.parks)
        .set("parked_cycles", r.sim.counters.parkedCycles)
        .set("wakeups", r.sim.counters.wakeups)
        .set("board_wakes", r.sim.counters.boardWakes)
        .set("spurious_wakeups", r.sim.counters.spuriousWakeups)
        .set("steal_attempts", r.sim.counters.stealAttempts);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);
    const std::string json_path =
        cli.getString("json", "BENCH_serving.json");
    const uint64_t first_seed =
        static_cast<uint64_t>(cli.getInt("seed", 0x5eed));
    const int num_seeds =
        std::max(1, static_cast<int>(cli.getInt("seeds", 3)));
    const int threads = static_cast<int>(cli.getInt("threads", 2));
    const int reps = std::max(1, static_cast<int>(cli.getInt("reps", 3)));
    const bool skip_threaded = cli.getBool("skip-threaded", false);
    const int sockets = socketsFor(args.cores);
    const int sim_jobs = args.scale >= 1.0 ? 240 : 90;

    const double kLowUtil = 0.05;
    const double kHighUtil = 0.6;

    JsonReport report;
    bool ok = true;

    // ---- Simulated serving rows + deterministic gates ----
    const Machine machine = Machine::paperMachineSubset(args.cores);
    struct RateClass
    {
        const char *name;
        double util;
    };
    const RateClass rate_classes[] = {{"low", kLowUtil},
                                      {"high", kHighUtil}};
    double mixed_low_parked_frac = 0.0;
    double mixed_high_p99[2] = {0.0, 0.0}; // [elastic]
    for (const std::string mix_name : {"fib", "mixed"}) {
        if (!args.only.empty() && args.only != mix_name)
            continue;
        const SimMix mix = buildSimMix(mix_name, sim_jobs, sockets);
        std::printf("\nSimulated serving %s, %d cores, %d jobs:\n",
                    mix_name.c_str(), args.cores, sim_jobs);
        Table t({"rate", "elastic", "T", "p50us", "p99us", "parks",
                 "parked%idle"});
        for (const RateClass &rc : rate_classes) {
            for (const bool elastic : {false, true}) {
                double p99_mean = 0.0;
                double parked_frac = 0.0;
                double rate = 0.0;
                double elapsed = 0.0, p50 = 0.0, parks = 0.0;
                for (int s = 0; s < num_seeds; ++s) {
                    const uint64_t seed = first_seed + 7919ULL * s;
                    const auto jobs = makeSimJobs(
                        mix, rc.util, args.cores, machine.ghz(),
                        sim::ArrivalProcess::Kind::Poisson, seed,
                        rate);
                    const sim::ServingResult r = sim::simulateServing(
                        mix.dag, jobs, machine, args.cores,
                        simConfig(elastic, seed));
                    report.addRow(simServingRow(mix, rc.name, rate,
                                                "poisson", elastic,
                                                args.cores, seed, r));
                    p99_mean += r.p99Us / num_seeds;
                    const double idle_cycles =
                        r.sim.idleSeconds * machine.ghz() * 1e9;
                    parked_frac +=
                        static_cast<double>(
                            r.sim.counters.parkedCycles)
                        / std::max(1.0, idle_cycles) / num_seeds;
                    elapsed += r.sim.elapsedSeconds / num_seeds;
                    p50 += r.p50Us / num_seeds;
                    parks += static_cast<double>(r.sim.counters.parks)
                             / num_seeds;
                }
                t.addRow({rc.name, elastic ? "yes" : "no",
                          Table::fmtSeconds(elapsed),
                          std::to_string(static_cast<int64_t>(p50)),
                          std::to_string(
                              static_cast<int64_t>(p99_mean)),
                          std::to_string(
                              static_cast<int64_t>(parks)),
                          std::to_string(static_cast<int64_t>(
                              parked_frac * 100.0))});
                if (mix_name == "mixed" && rc.util == kLowUtil
                    && elastic)
                    mixed_low_parked_frac = parked_frac;
                if (mix_name == "mixed" && rc.util == kHighUtil)
                    mixed_high_p99[elastic] = p99_mean;
            }
        }
        t.print();

        // Bursty admission rows (measured only): same high rate, jobs
        // arriving in bursts of 8 — the admission-edge stress shape.
        {
            double rate = 0.0;
            const auto jobs = makeSimJobs(
                mix, kHighUtil, args.cores, machine.ghz(),
                sim::ArrivalProcess::Kind::Burst, first_seed, rate);
            const sim::ServingResult r = sim::simulateServing(
                mix.dag, jobs, machine, args.cores,
                simConfig(true, first_seed));
            report.addRow(simServingRow(mix, "high", rate, "burst",
                                        true, args.cores, first_seed,
                                        r));
            std::printf("  burst arrivals: p99 %.0fus  parks %llu\n",
                        r.p99Us,
                        static_cast<unsigned long long>(
                            r.sim.counters.parks));
        }

        // Determinism gate: the same seeded serving run, repeated,
        // must render byte-identical rows.
        {
            double rate = 0.0;
            const auto jobs = makeSimJobs(
                mix, kHighUtil, args.cores, machine.ghz(),
                sim::ArrivalProcess::Kind::Poisson, first_seed, rate);
            const sim::ServingResult a = sim::simulateServing(
                mix.dag, jobs, machine, args.cores,
                simConfig(true, first_seed));
            const sim::ServingResult b = sim::simulateServing(
                mix.dag, jobs, machine, args.cores,
                simConfig(true, first_seed));
            const std::string row_a =
                simServingRow(mix, "high", rate, "poisson", true,
                              args.cores, first_seed, a)
                    .str();
            const std::string row_b =
                simServingRow(mix, "high", rate, "poisson", true,
                              args.cores, first_seed, b)
                    .str();
            const bool same = row_a == row_b;
            std::printf("  gate %-52s %s\n",
                        (mix_name + " serving rows byte-identical")
                            .c_str(),
                        same ? "ok" : "FAIL");
            ok &= same;
        }
    }

    if (args.only.empty()) {
        std::printf("\nSim serving gates:\n");
        ok &= gateMin("sim mixed/low elastic parked frac of idle",
                      mixed_low_parked_frac, 0.80);
        ok &= gateMax("sim mixed/high elastic/spin p99",
                      mixed_high_p99[1]
                          / std::max(1e-9, mixed_high_p99[0]),
                      1.10);
    }

    // ---- Threaded open-loop rows + gates ----
    if (!skip_threaded && args.only.empty()) {
        const int n_low = args.scale >= 1.0 ? 200 : 80;
        const int n_high = args.scale >= 1.0 ? 600 : 300;

        // Calibrate the mean job time on this host with a spin
        // runtime, then derive the two rate classes from it.
        double mean_job_s = 0.0;
        {
            RuntimeOptions o;
            o.numWorkers = threads;
            o.numPlaces = threads >= 2 ? 2 : 1;
            o.sched.parkSpinFailures = 1 << 30;
            Runtime rt(o);
            const int probe = 30;
            const int64_t t0 = nowNs();
            for (int i = 0; i < probe; ++i)
                submitJob(rt, "mixed", i).wait();
            mean_job_s = static_cast<double>(nowNs() - t0) * 1e-9
                         / probe;
        }
        const double rate_low = kLowUtil * threads / mean_job_s;
        const double rate_high = kHighUtil * threads / mean_job_s;
        std::printf("\nThreaded open-loop, %d workers (mean job "
                    "%.0fus, rates %.0f/s and %.0f/s):\n",
                    threads, mean_job_s * 1e6, rate_low, rate_high);

        struct Meas
        {
            double p99_us = 0.0;
            double parked_frac = 0.0;
        };
        // [rate_class][elastic]: medians over reps.
        Meas meas[2][2];
        Table t({"rate", "elastic", "p50us", "p99us", "parked%",
                 "parks", "spurious"});
        for (int rci = 0; rci < 2; ++rci) {
            const char *rc_name = rci == 0 ? "low" : "high";
            const double rate = rci == 0 ? rate_low : rate_high;
            const int n_jobs = rci == 0 ? n_low : n_high;
            for (const bool elastic : {false, true}) {
                RuntimeOptions o;
                o.numWorkers = threads;
                o.numPlaces = threads >= 2 ? 2 : 1;
                if (!elastic)
                    o.sched.parkSpinFailures = 1 << 30;
                Runtime rt(o);
                std::vector<double> p99s, parked;
                double p50 = 0.0, parks = 0.0, spurious = 0.0;
                for (int rep = 0; rep < reps; ++rep) {
                    sim::ArrivalProcess p;
                    p.ratePerSec = rate;
                    p.seed = first_seed + 104729ULL * rep;
                    // ghz=1.0 makes arrivalCycles return nanoseconds.
                    const auto arrivals =
                        sim::arrivalCycles(p, n_jobs, 1.0);
                    const OpenLoopResult r =
                        runOpenLoop(rt, "mixed", arrivals);
                    const double p99 =
                        exactQuantile(r.latencies_us, 0.99);
                    p99s.push_back(p99);
                    parked.push_back(r.parked_frac);
                    p50 += exactQuantile(r.latencies_us, 0.50) / reps;
                    parks += static_cast<double>(
                                 r.stats.counters.parks)
                             / reps;
                    spurious += static_cast<double>(
                                    r.stats.counters.spuriousWakes)
                                / reps;
                    JsonRow row;
                    row.set("engine", "threaded")
                        .set("workload", "mixed")
                        .set("mix", "mixed")
                        .set("rate", rc_name)
                        .set("arrivals", "poisson")
                        .set("elastic", elastic)
                        .set("workers", threads)
                        .set("rep", rep)
                        .set("jobs",
                             static_cast<uint64_t>(n_jobs))
                        .set("arrival_per_s", r.arrival_per_s)
                        .set("elapsed_s", r.elapsed_s)
                        .set("p50_us",
                             exactQuantile(r.latencies_us, 0.50))
                        .set("p99_us", p99)
                        .set("p999_us",
                             exactQuantile(r.latencies_us, 0.999))
                        .set("hist_p99_us",
                             static_cast<double>(
                                 r.stats.jobLatency.quantile(0.99))
                                 / 1000.0)
                        .set("jobs_completed",
                             r.stats.counters.jobsCompleted)
                        .set("parked_frac", r.parked_frac)
                        .set("parks", r.stats.counters.parks)
                        .set("spurious_wakeups",
                             r.stats.counters.spuriousWakes);
                    report.addRow(row);
                }
                Meas &m = meas[rci][elastic];
                m.p99_us = exactQuantile(p99s, 0.5);
                m.parked_frac = exactQuantile(parked, 0.5);
                t.addRow({rc_name, elastic ? "yes" : "no",
                          std::to_string(static_cast<int64_t>(p50)),
                          std::to_string(
                              static_cast<int64_t>(m.p99_us)),
                          std::to_string(static_cast<int64_t>(
                              m.parked_frac * 100.0)),
                          std::to_string(
                              static_cast<int64_t>(parks)),
                          std::to_string(
                              static_cast<int64_t>(spurious))});
            }
        }
        t.print();

        // Co-runner interference rows: high-rate elastic serving
        // while busy-loop threads steal the cores, once unprotected
        // and once with QueueDelay shedding. The co-runners eat a
        // chunk of capacity, so the same arrival rate is effectively
        // an overload; the shedding run is the protected comparator
        // the gate below measures against.
        double corun_none_p99 = 0.0, corun_shed_p99 = 0.0;
        {
            std::atomic<bool> stop{false};
            std::vector<std::thread> busy;
            for (int i = 0; i < threads; ++i)
                busy.emplace_back([&stop] {
                    volatile uint64_t x = 0;
                    while (!stop.load(std::memory_order_relaxed))
                        x = x + 1;
                });
            for (int shed = 0; shed < 2; ++shed) {
                RuntimeOptions o;
                o.numWorkers = threads;
                o.numPlaces = threads >= 2 ? 2 : 1;
                if (shed) {
                    const int lat_t = std::max(
                        2000, static_cast<int>(8e6 * mean_job_s));
                    o.sched.serving.shed = ShedPolicy::QueueDelay;
                    o.sched.serving.queueDelayTargetUs[0] = lat_t;
                    o.sched.serving.queueDelayTargetUs[1] = 2 * lat_t;
                    o.sched.serving.queueDelayTargetUs[2] = 4 * lat_t;
                }
                Runtime rt(o);
                sim::ArrivalProcess p;
                p.ratePerSec = rate_high;
                p.seed = first_seed;
                const auto arrivals =
                    sim::arrivalCycles(p, n_high, 1.0);
                const OpenLoopResult r =
                    runOpenLoop(rt, "mixed", arrivals);
                const double p99 =
                    exactQuantile(r.latencies_us, 0.99);
                (shed ? corun_shed_p99 : corun_none_p99) = p99;
                JsonRow row;
                row.set("engine", "threaded")
                    .set("workload", "mixed+corun")
                    .set("mix", "mixed")
                    .set("rate", "high")
                    .set("arrivals", "poisson")
                    .set("shed", shed ? "queue_delay" : "none")
                    .set("elastic", true)
                    .set("workers", threads)
                    .set("jobs", static_cast<uint64_t>(n_high))
                    .set("elapsed_s", r.elapsed_s)
                    .set("p50_us",
                         exactQuantile(r.latencies_us, 0.50))
                    .set("p99_us", p99)
                    .set("done", r.done)
                    .set("shed_jobs", r.shed)
                    .set("parked_frac", r.parked_frac)
                    .set("parks", r.stats.counters.parks);
                report.addRow(row);
                std::printf("  co-runner row (%s): p99 %.0fus, "
                            "%llu done / %llu shed (vs %.0fus "
                            "uncontended)\n",
                            shed ? "queue_delay" : "none", p99,
                            static_cast<unsigned long long>(r.done),
                            static_cast<unsigned long long>(r.shed),
                            meas[1][1].p99_us);
            }
            stop.store(true, std::memory_order_relaxed);
            for (std::thread &th : busy)
                th.join();
        }

        std::printf("\nThreaded serving gates:\n");
        ok &= gateMin("threaded mixed/low elastic parked frac",
                      meas[0][1].parked_frac, 0.80);
        ok &= gateMax("threaded mixed/high elastic/spin p99",
                      meas[1][1].p99_us
                          / std::max(1e-9, meas[1][0].p99_us),
                      1.10);
        // Under co-runner pressure the protected run must not be
        // worse than the unprotected one (2.0 covers shared-host
        // noise; a shedding bug that queues behind dead weight reads
        // far above it).
        ok &= gateMax("threaded corun queue_delay / corun none p99",
                      corun_shed_p99 / std::max(1e-9, corun_none_p99),
                      2.0);
    }

    report.writeFile(json_path);
    std::printf("\nwrote %zu rows to %s\n", report.numRows(),
                json_path.c_str());

    if (!args.only.empty())
        return 0; // partial runs skip the gates

    if (!ok) {
        std::printf("FAIL: serving acceptance gate violated\n");
        return 1;
    }
    return 0;
}
