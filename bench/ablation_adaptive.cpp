/**
 * @file
 * Ablation of the adaptive extensions against the paper's constant knobs,
 * on BOTH engines: the discrete-event simulator (deterministic, the
 * authoritative comparison) and the threaded runtime (host wall clock).
 *
 * The grid is {constant, adaptive push policy} x {flat, hierarchical
 * victim selection}; the hierarchical rows also enable remote steal-half
 * batching (it only fires on remote-level victims, which only the
 * hierarchical search distinguishes deliberately). Workloads are fib
 * (spawn-bound, no locality), matmul with the blocked Z-Morton layout
 * (the paper's locality showcase), and heat (iteration-repeated hints).
 *
 *   ./ablation_adaptive [--scale=0.25] [--cores=32] [--threads=4]
 *                       [--json=BENCH_adaptive.json] [--skip-threaded]
 *
 * Emits every row into the JSON report consumed by CI as a build
 * artifact, and exits nonzero if the adaptive/hierarchical configuration
 * is slower than the constant baseline on the simulated matmul layout
 * workload (the acceptance gate for this subsystem).
 */
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "support/timing.h"

using namespace numaws;
using namespace numaws::bench;
using namespace numaws::workloads;

namespace {

struct Variant
{
    const char *policy;  ///< "constant" | "adaptive"
    const char *victims; ///< "flat" | "hierarchical"

    bool adaptivePush() const { return policy[0] == 'a'; }
    bool hierarchical() const { return victims[0] == 'h'; }

    sim::SimConfig
    simConfig() const
    {
        sim::SimConfig c = sim::SimConfig::numaWs();
        if (adaptivePush())
            c.sched.pushPolicy.kind = PushPolicyKind::Adaptive;
        if (hierarchical()) {
            c.sched.hierarchicalSteals = true;
            c.sched.remoteStealHalf = true;
            // The hierarchical rows measure the *shipped* ladder, whose
            // victim policy PR 3 flipped to OccupancyAffinity after the
            // PR 2 soak — the acceptance gate below compares the new
            // default, not the retired blind ladder.
            c.sched.victimPolicy = VictimPolicy::OccupancyAffinity;
        }
        return c;
    }

    RuntimeOptions
    runtimeOptions(int workers) const
    {
        RuntimeOptions o;
        o.numWorkers = workers;
        o.numPlaces = workers >= 4 ? 4 : (workers >= 2 ? 2 : 1);
        if (adaptivePush())
            o.sched.pushPolicy.kind = PushPolicyKind::Adaptive;
        if (hierarchical()) {
            o.sched.hierarchicalSteals = true;
            o.sched.remoteStealHalf = true;
        }
        return o;
    }

    std::string
    name() const
    {
        return std::string(policy) + "/" + victims;
    }
};

const Variant kVariants[] = {
    {"constant", "flat"},
    {"adaptive", "flat"},
    {"constant", "hierarchical"},
    {"adaptive", "hierarchical"},
};

/** One simulated workload: name + dag builder at bench scale. */
struct SimCase
{
    std::string name;
    sim::ComputationDag dag;
};

std::vector<SimCase>
buildSimCases(double scale, int cores)
{
    const int places = socketsFor(cores);
    std::vector<SimCase> cases;

    const int fib_n = scale >= 1.0 ? 30 : (scale >= 0.5 ? 27 : 24);
    cases.push_back({"fib", fibDag(fib_n)});

    MatmulParams mm;
    mm.n = scale >= 1.0 ? 1024 : (scale >= 0.5 ? 512 : 256);
    mm.block = 64;
    mm.zLayout = true; // the matmul *layout* workload (hints + Z-Morton)
    cases.push_back({"matmul_layout",
                     matmulDag(mm, places, Placement::Partitioned, true)});

    HeatParams heat;
    heat.nx = scale >= 1.0 ? 2048 : (scale >= 0.5 ? 1024 : 512);
    heat.ny = heat.nx;
    heat.steps = scale >= 1.0 ? 16 : 8;
    cases.push_back(
        {"heat", heatDag(heat, places, Placement::Partitioned, true)});

    return cases;
}

void
simRow(JsonReport &report, Table &table, const SimCase &sc, int cores,
       const Variant &v, double &matmul_constant, double &matmul_adaptive)
{
    sim::SimConfig cfg = v.simConfig();
    const sim::SimResult r = sim::simulatePacked(sc.dag, cores, cfg);

    JsonRow row;
    row.set("engine", "sim")
        .set("workload", sc.name)
        .set("policy", v.policy)
        .set("victims", v.victims)
        .set("cores", cores)
        .set("elapsed_s", r.elapsedSeconds)
        .set("work_s", r.workSeconds)
        .set("sched_s", r.schedSeconds)
        .set("idle_s", r.idleSeconds)
        .set("steals", r.counters.steals)
        .set("steal_attempts", r.counters.stealAttempts)
        .set("push_successes", r.counters.pushSuccesses)
        .set("push_give_ups", r.counters.pushGiveUps)
        .set("batched_steals", r.counters.batchedSteals)
        .set("batched_frames", r.counters.batchedFrames)
        .set("remote_fraction", r.memory.remoteFraction());
    report.addRow(row);

    table.addRow({v.name(), Table::fmtSeconds(r.elapsedSeconds),
                  Table::fmtSeconds(r.idleSeconds),
                  std::to_string(r.counters.steals),
                  std::to_string(r.counters.pushSuccesses),
                  std::to_string(r.counters.batchedFrames),
                  Table::fmtRatio(r.memory.remoteFraction())});

    if (sc.name == "matmul_layout") {
        if (!v.adaptivePush() && !v.hierarchical())
            matmul_constant = r.elapsedSeconds;
        if (v.adaptivePush() && v.hierarchical())
            matmul_adaptive = r.elapsedSeconds;
    }
}

void
threadedRows(JsonReport &report, double scale, int workers)
{
    const int fib_n = scale >= 1.0 ? 30 : (scale >= 0.5 ? 24 : 20);

    MatmulParams mm;
    mm.n = scale >= 1.0 ? 512 : 128;
    mm.block = 32;
    std::vector<double> a(static_cast<std::size_t>(mm.n) * mm.n, 1.0);
    std::vector<double> b(a.size(), 2.0);
    std::vector<double> c(a.size(), 0.0);

    HeatParams heat;
    heat.nx = scale >= 1.0 ? 1024 : 256;
    heat.ny = heat.nx;
    heat.steps = 4;
    std::vector<double> ha(
        static_cast<std::size_t>(heat.nx) * heat.ny, 0.0);
    std::vector<double> hb(ha.size(), 0.0);

    for (const Variant &v : kVariants) {
        Runtime rt(v.runtimeOptions(workers));

        struct Run
        {
            const char *workload;
            double seconds;
        };
        std::vector<Run> runs;

        {
            WallTimer t;
            fibParallel(rt, fib_n);
            runs.push_back({"fib", t.seconds()});
        }
        {
            std::fill(c.begin(), c.end(), 0.0);
            WallTimer t;
            matmulParallel(rt, a.data(), b.data(), c.data(), mm, true);
            runs.push_back({"matmul_layout", t.seconds()});
        }
        {
            WallTimer t;
            heatParallel(rt, ha.data(), hb.data(), heat, true);
            runs.push_back({"heat", t.seconds()});
        }

        const RuntimeStats stats = rt.stats();
        for (const Run &run : runs) {
            JsonRow row;
            row.set("engine", "threaded")
                .set("workload", run.workload)
                .set("policy", v.policy)
                .set("victims", v.victims)
                .set("workers", workers)
                .set("elapsed_s", run.seconds);
            report.addRow(row);
        }
        std::printf("  threaded %-22s fib %.3fs  matmul %.3fs  heat %.3fs"
                    "  (steals %llu, pushes %llu, batched %llu)\n",
                    v.name().c_str(), runs[0].seconds, runs[1].seconds,
                    runs[2].seconds,
                    static_cast<unsigned long long>(stats.counters.steals),
                    static_cast<unsigned long long>(
                        stats.counters.pushbackSuccesses),
                    static_cast<unsigned long long>(
                        stats.counters.stealHalfTasks));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);
    const int threads = static_cast<int>(cli.getInt("threads", 4));
    const std::string json_path =
        cli.getString("json", "BENCH_adaptive.json");
    const bool skip_threaded = cli.getBool("skip-threaded", false);

    JsonReport report;
    double matmul_constant = 0.0;
    double matmul_adaptive = 0.0;

    for (const SimCase &sc : buildSimCases(args.scale, args.cores)) {
        if (!args.only.empty() && args.only != sc.name)
            continue;
        std::printf("\nSimulated %s, %d cores:\n", sc.name.c_str(),
                    args.cores);
        Table t({"configuration", "T", "idle", "steals", "pushes",
                 "batched", "remote%"});
        for (const Variant &v : kVariants)
            simRow(report, t, sc, args.cores, v, matmul_constant,
                   matmul_adaptive);
        // Batched steal-half x capacity-4 mailbox cross product
        // (ROADMAP): the full adaptive/hierarchical configuration —
        // whose remote steals already move batches — with four parked
        // frames per worker behind it. Measured row only, no gate; the
        // "mailbox" field appears only here so the pre-existing rows
        // keep their trajectory identity.
        {
            const Variant v = kVariants[3]; // adaptive/hierarchical
            sim::SimConfig cfg = v.simConfig();
            cfg.sched.mailboxCapacity = 4;
            const sim::SimResult r =
                sim::simulatePacked(sc.dag, args.cores, cfg);
            JsonRow row;
            row.set("engine", "sim")
                .set("workload", sc.name)
                .set("policy", v.policy)
                .set("victims", v.victims)
                .set("mailbox", 4)
                .set("cores", args.cores)
                .set("elapsed_s", r.elapsedSeconds)
                .set("work_s", r.workSeconds)
                .set("sched_s", r.schedSeconds)
                .set("idle_s", r.idleSeconds)
                .set("steals", r.counters.steals)
                .set("steal_attempts", r.counters.stealAttempts)
                .set("push_successes", r.counters.pushSuccesses)
                .set("push_give_ups", r.counters.pushGiveUps)
                .set("batched_steals", r.counters.batchedSteals)
                .set("batched_frames", r.counters.batchedFrames)
                .set("remote_fraction", r.memory.remoteFraction());
            report.addRow(row);
            t.addRow({v.name() + "/mbox4",
                      Table::fmtSeconds(r.elapsedSeconds),
                      Table::fmtSeconds(r.idleSeconds),
                      std::to_string(r.counters.steals),
                      std::to_string(r.counters.pushSuccesses),
                      std::to_string(r.counters.batchedFrames),
                      Table::fmtRatio(r.memory.remoteFraction())});
        }
        t.print();
    }

    if (!skip_threaded && args.only.empty()) {
        std::printf("\nThreaded runtime, %d workers:\n", threads);
        threadedRows(report, args.scale, threads);
    }

    report.writeFile(json_path);
    std::printf("\nwrote %zu rows to %s\n", report.numRows(),
                json_path.c_str());

    // Acceptance gate: the full adaptive configuration must not lose to
    // the paper's constant baseline on the simulated matmul layout
    // workload (small tolerance for cost-model noise).
    if (matmul_constant > 0.0 && matmul_adaptive > 0.0) {
        const double ratio = matmul_adaptive / matmul_constant;
        std::printf("matmul_layout adaptive/constant = %.4f\n", ratio);
        if (ratio > 1.005) {
            std::printf("FAIL: adaptive configuration is slower\n");
            return 1;
        }
    }
    return 0;
}
