/**
 * @file
 * Data-plane ablation: does the NUMA data plane (per-worker NumaHeap +
 * PartedVec with automatic spawn-time affinity) earn its keep over
 * plain global-heap allocation?
 *
 *   ./ablation_dataplane [--allocs=4096] [--reps=5] [--warmup=2]
 *                        [--skip-threaded]
 *                        [--json=BENCH_dataplane.json]
 *
 * Sim rows (always emitted, byte-deterministic): heat at 32 cores under
 * the full NUMA-WS scheduler, once with partitioned regions + hints —
 * the placement PartedVec produces in the threaded engine — and once
 * first-touch without hints, the global-heap baseline. Each dag is
 * simulated twice and the rows must be byte-identical.
 *
 * Threaded rows (skippable on 1-core CI containers with
 * --skip-threaded):
 *  - alloc: a 1-worker loop of numa::allocate(256)/touch/deallocate
 *    under DataHeapPolicy::Heap (plain malloc path) and ::Pooled
 *    (per-worker heap), repetitions interleaved so host noise drifts
 *    into both sides equally;
 *  - heat: 2 workers / 2 places, flat grids + chunkPlace hints versus
 *    PartedVec grids where placement falls out of the shards'
 *    registered homes, both validated bit-for-bit against heatSerial;
 *  - a DataHeapPolicy::Heap PartedVec compat row (measured +
 *    correctness only — under Heap the container is plain memory).
 *
 * Statistics: min-of-reps, as in ablation_spawn (scheduler
 * interference only ever adds time).
 *
 * Exits nonzero unless:
 *  1. sim parted/global elapsed <= 1.00 (partitioning + hints never
 *     lose under the NUMA-WS scheduler);
 *  2. repeated sim rows are byte-identical;
 * and, unless --skip-threaded:
 *  3. pooled user-allocation throughput >= 1.20x the heap baseline
 *     (min ns/alloc, heap/pooled >= 1.20);
 *  4. the pooled heap actually absorbed the traffic
 *     (dataBytesPooled covers >= 0.95 of the bytes requested);
 *  5. parted heat within 1.05x of the flat hinted grid in the best
 *     back-to-back rep pair — a catastrophe floor, not a win gate: on
 *     the shapes CI can afford, both run the same sweep and differ
 *     only in container overhead, and the paired-min statistic is the
 *     one that survives shared-runner noise (see the gate's comment).
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "support/timing.h"

using namespace numaws;
using namespace numaws::bench;
using workloads::HeatParams;
using workloads::Placement;

namespace {

constexpr int kSimCores = 32;
constexpr std::size_t kAllocBytes = 256;

struct Measured
{
    double meanSeconds = 0.0;
    double minSeconds = 0.0;
    RuntimeStats stats;

    void
    finish(std::vector<double> &rep_seconds)
    {
        for (const double s : rep_seconds)
            meanSeconds += s / static_cast<double>(rep_seconds.size());
        minSeconds =
            *std::min_element(rep_seconds.begin(), rep_seconds.end());
    }

    double
    minNsPer(int items) const
    {
        return minSeconds * 1e9 / items;
    }
};

RuntimeOptions
optionsFor(int workers, int places, DataHeapPolicy heap)
{
    RuntimeOptions o;
    o.numWorkers = workers;
    o.numPlaces = places;
    o.dataHeap = heap;
    return o;
}

/** One alloc/touch/free repetition on the calling runtime's root
 * worker. The touch defeats dead-allocation elimination and is the
 * first-write a real consumer would do. */
double
allocRep(Runtime &rt, int allocs)
{
    WallTimer t;
    rt.run([&] {
        for (int i = 0; i < allocs; ++i) {
            void *p = numa::allocate(kAllocBytes);
            static_cast<volatile char *>(p)[0] = static_cast<char>(i);
            numa::deallocate(p);
        }
    });
    return t.seconds();
}

/** Sim row for one heat dag; no host stamps so rows byte-compare. */
JsonRow
simHeatRow(const HeatParams &p, Placement placement, bool hints,
           const char *container)
{
    const int sockets = socketsFor(kSimCores);
    const auto dag = workloads::heatDag(p, sockets, placement, hints);
    const sim::SimResult r =
        sim::simulatePacked(dag, kSimCores, sim::SimConfig::numaWs());
    JsonRow row;
    row.set("engine", "sim")
        .set("workload", "heat")
        .set("heap", "none")
        .set("container", container)
        .set("cores", kSimCores)
        .set("elapsed_s", r.elapsedSeconds)
        .set("work_s", r.workSeconds)
        .set("sched_s", r.schedSeconds);
    return row;
}

JsonRow
threadedRow(const char *workload, DataHeapPolicy heap,
            const char *container, int workers, int reps,
            const Measured &m)
{
    const WorkerCounters &c = m.stats.counters;
    JsonRow row;
    row.set("engine", "threaded")
        .set("workload", workload)
        .set("heap", dataHeapPolicyName(heap))
        .set("container", container)
        .set("workers", workers)
        .set("reps", reps)
        .set("elapsed_s", m.minSeconds)
        .set("elapsed_mean_s", m.meanSeconds)
        .set("data_bytes_pooled", c.dataBytesPooled)
        .set("data_remote_frees", c.dataRemoteFrees)
        .set("data_slab_bytes", c.dataSlabBytes)
        .set("steals", c.steals);
    return row;
}

bool
gateMin(const char *what, double actual, double limit)
{
    const bool ok = actual >= limit;
    std::printf("  gate %-46s %.4f >= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

bool
gateMax(const char *what, double actual, double limit)
{
    const bool ok = actual <= limit;
    std::printf("  gate %-46s %.4f <= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

/** Fill both grids with the deterministic initial condition the
 * correctness check replays serially. */
template <typename Grid>
void
initHeat(Grid &g, const HeatParams &p)
{
    for (int64_t i = 0; i < p.nx; ++i)
        for (int64_t j = 0; j < p.ny; ++j)
            g[static_cast<std::size_t>(i * p.ny + j)] =
                (i == 0 || i == p.nx - 1 || j == 0 || j == p.ny - 1)
                    ? 1.0
                    : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const int allocs =
        std::max(1, static_cast<int>(cli.getInt("allocs", 4096)));
    const int reps = std::max(1, static_cast<int>(cli.getInt("reps", 5)));
    const int warmup =
        std::max(0, static_cast<int>(cli.getInt("warmup", 2)));
    const bool skip_threaded = cli.getBool("skip-threaded", false);
    const std::string json_path =
        cli.getString("json", "BENCH_dataplane.json");

    JsonReport report;
    bool ok = true;
    std::printf("data-plane ablation (%d allocs, %d reps)\n\n", allocs,
                reps);

    // ------------------------------------------------------------------
    // Sim: partitioned + hints (what PartedVec produces) vs first-touch
    // global heap, 32 cores, full NUMA-WS scheduler. Byte-deterministic.
    // ------------------------------------------------------------------
    // 512x512: the per-socket quarter fits the modeled LLC, so the
    // partitioned grid's step-to-step reuse is visible — the regime the
    // paper's heat argument (and this gate) is about. At 1024x1024 the
    // per-step working set blows past the LLC model and placement stops
    // mattering.
    HeatParams sim_p;
    sim_p.nx = 512;
    sim_p.ny = 512;
    sim_p.steps = 16;
    const JsonRow parted_row =
        simHeatRow(sim_p, Placement::Partitioned, true, "parted");
    const JsonRow global_row =
        simHeatRow(sim_p, Placement::FirstTouch, false, "global");
    const JsonRow parted_again =
        simHeatRow(sim_p, Placement::Partitioned, true, "parted");
    const JsonRow global_again =
        simHeatRow(sim_p, Placement::FirstTouch, false, "global");
    report.addRow(parted_row);
    report.addRow(global_row);

    const double parted_s =
        sim::simulatePacked(
            workloads::heatDag(sim_p, socketsFor(kSimCores),
                               Placement::Partitioned, true),
            kSimCores, sim::SimConfig::numaWs())
            .elapsedSeconds;
    const double global_s =
        sim::simulatePacked(
            workloads::heatDag(sim_p, socketsFor(kSimCores),
                               Placement::FirstTouch, false),
            kSimCores, sim::SimConfig::numaWs())
            .elapsedSeconds;
    std::printf("  sim heat 32c: parted %.6fs  global %.6fs  "
                "ratio %.4f\n\n",
                parted_s, global_s, parted_s / global_s);

    ok &= gateMax("sim parted/global elapsed", parted_s / global_s,
                  1.00);
    const bool deterministic =
        parted_row.str() == parted_again.str()
        && global_row.str() == global_again.str();
    std::printf("  gate %-46s %s\n", "sim rows byte-deterministic",
                deterministic ? "ok" : "FAIL");
    ok &= deterministic;

    if (skip_threaded) {
        report.writeFile(json_path);
        std::printf("\nwrote %zu rows to %s (threaded rows skipped)\n",
                    report.numRows(), json_path.c_str());
        return ok ? 0 : 1;
    }

    // ------------------------------------------------------------------
    // Threaded: user-allocation throughput, heap vs pooled, reps
    // interleaved.
    // ------------------------------------------------------------------
    Runtime rt_heap(optionsFor(1, 1, DataHeapPolicy::Heap));
    Runtime rt_pool(optionsFor(1, 1, DataHeapPolicy::Pooled));
    for (int i = 0; i < warmup; ++i) {
        allocRep(rt_heap, allocs);
        allocRep(rt_pool, allocs);
    }
    rt_heap.resetStats();
    rt_pool.resetStats();
    Measured heap, pooled;
    std::vector<double> heap_seconds, pool_seconds;
    for (int i = 0; i < reps; ++i) {
        heap_seconds.push_back(allocRep(rt_heap, allocs));
        pool_seconds.push_back(allocRep(rt_pool, allocs));
    }
    heap.finish(heap_seconds);
    pooled.finish(pool_seconds);
    heap.stats = rt_heap.stats();
    pooled.stats = rt_pool.stats();

    {
        JsonRow row = threadedRow("alloc", DataHeapPolicy::Heap, "none",
                                  1, reps, heap);
        row.set("alloc_ns", heap.minNsPer(allocs));
        report.addRow(row);
    }
    {
        JsonRow row = threadedRow("alloc", DataHeapPolicy::Pooled,
                                  "none", 1, reps, pooled);
        row.set("alloc_ns", pooled.minNsPer(allocs));
        report.addRow(row);
    }
    std::printf("\n  alloc(%zuB) heap   %8.1f ns/alloc (min)\n",
                kAllocBytes, heap.minNsPer(allocs));
    std::printf("  alloc(%zuB) pooled %8.1f ns/alloc (min)   "
                "pooled KiB %llu  slab KiB %llu\n",
                kAllocBytes, pooled.minNsPer(allocs),
                static_cast<unsigned long long>(
                    pooled.stats.counters.dataBytesPooled >> 10),
                static_cast<unsigned long long>(
                    pooled.stats.counters.dataSlabBytes >> 10));

    ok &= gateMin("pooled/heap alloc throughput (min-rep)",
                  heap.minNsPer(allocs) / pooled.minNsPer(allocs), 1.20);
    const double coverage =
        static_cast<double>(pooled.stats.counters.dataBytesPooled)
        / (static_cast<double>(allocs) * kAllocBytes * reps);
    ok &= gateMin("pooled byte coverage of requested", coverage, 0.95);

    // ------------------------------------------------------------------
    // Threaded heat: flat hinted grids vs PartedVec, 2 workers/places,
    // reps interleaved, results checked bit-for-bit against serial.
    // ------------------------------------------------------------------
    // 512x512, 16 steps (even: the result lands back in grid a): big
    // enough that the ~4 ms sweep swamps per-step spawn overhead and
    // host noise — at 256x256 the min-rep ratio flaps past the 1.05
    // floor on a shared runner (calibrated spread there ~±8%; here
    // ~±2%).
    HeatParams hp;
    hp.nx = 512;
    hp.ny = 512;
    hp.steps = 16;
    const std::size_t cells =
        static_cast<std::size_t>(hp.nx) * static_cast<std::size_t>(hp.ny);
    std::vector<double> ref_a(cells), ref_b(cells);
    initHeat(ref_a, hp);
    initHeat(ref_b, hp);
    workloads::heatSerial(ref_a.data(), ref_b.data(), hp);

    Runtime rt_heat(optionsFor(2, 2, DataHeapPolicy::Pooled));
    std::vector<double> flat_a(cells), flat_b(cells);
    PartedVec<double> part_a(rt_heat, cells,
                             static_cast<std::size_t>(hp.ny));
    PartedVec<double> part_b(rt_heat, cells,
                             static_cast<std::size_t>(hp.ny));

    auto flat_rep = [&] {
        initHeat(flat_a, hp);
        initHeat(flat_b, hp);
        WallTimer t;
        workloads::heatParallel(rt_heat, flat_a.data(), flat_b.data(),
                                hp, true);
        return t.seconds();
    };
    auto parted_rep = [&] {
        initHeat(part_a, hp);
        initHeat(part_b, hp);
        WallTimer t;
        workloads::heatParallel(rt_heat, part_a, part_b, hp);
        return t.seconds();
    };

    for (int i = 0; i < warmup; ++i) {
        flat_rep();
        parted_rep();
    }
    rt_heat.resetStats();
    Measured flat, parted;
    std::vector<double> flat_seconds, parted_seconds;
    double best_pair = 1e300;
    for (int i = 0; i < reps; ++i) {
        flat_seconds.push_back(flat_rep());
        parted_seconds.push_back(parted_rep());
        // Paired ratio: this rep's parted against the flat run that
        // just preceded it, so a host-noise spike hits both sides of
        // the quotient. The min over pairs is the gate statistic —
        // min-vs-min across independently noisy sets flaps ±10% at
        // millisecond scale, while one clean back-to-back pair is
        // enough to show the container is not catastrophically slow
        // (a real regression inflates every pair).
        best_pair =
            std::min(best_pair, parted_seconds.back()
                                    / flat_seconds.back());
    }
    flat.finish(flat_seconds);
    parted.finish(parted_seconds);
    flat.stats = parted.stats = rt_heat.stats();

    bool exact = true;
    for (std::size_t i = 0; i < cells; ++i)
        exact = exact && flat_a[i] == ref_a[i] && part_a[i] == ref_a[i];
    std::printf("\n  heat %lldx%lld flat   %.6fs (min)\n",
                static_cast<long long>(hp.nx),
                static_cast<long long>(hp.ny), flat.minSeconds);
    std::printf("  heat %lldx%lld parted %.6fs (min)   shards %d\n",
                static_cast<long long>(hp.nx),
                static_cast<long long>(hp.ny), parted.minSeconds,
                part_a.numShards());
    std::printf("  gate %-46s %s\n",
                "heat results bit-identical to serial",
                exact ? "ok" : "FAIL");
    ok &= exact;
    ok &= gateMax("parted/flat heat elapsed (best pair)", best_pair,
                  1.05);

    report.addRow(threadedRow("heat", DataHeapPolicy::Pooled, "global",
                              2, reps, flat));
    report.addRow(threadedRow("heat", DataHeapPolicy::Pooled, "parted",
                              2, reps, parted));

    // ------------------------------------------------------------------
    // Ablation compat: PartedVec under DataHeapPolicy::Heap is plain
    // memory — measured and checked, never gated on speed.
    // ------------------------------------------------------------------
    {
        Runtime rt_plain(optionsFor(2, 2, DataHeapPolicy::Heap));
        PartedVec<double> pa(rt_plain, cells,
                             static_cast<std::size_t>(hp.ny));
        PartedVec<double> pb(rt_plain, cells,
                             static_cast<std::size_t>(hp.ny));
        Measured m;
        std::vector<double> secs;
        for (int i = 0; i < reps; ++i) {
            initHeat(pa, hp);
            initHeat(pb, hp);
            WallTimer t;
            workloads::heatParallel(rt_plain, pa, pb, hp);
            secs.push_back(t.seconds());
        }
        m.finish(secs);
        m.stats = rt_plain.stats();
        bool plain_exact = true;
        for (std::size_t i = 0; i < cells; ++i)
            plain_exact = plain_exact && pa[i] == ref_a[i];
        std::printf("  gate %-46s %s\n",
                    "heap-policy parted heat bit-identical",
                    plain_exact ? "ok" : "FAIL");
        ok &= plain_exact;
        report.addRow(threadedRow("heat", DataHeapPolicy::Heap, "parted",
                                  2, reps, m));
    }

    report.writeFile(json_path);
    std::printf("\nwrote %zu rows to %s\n", report.numRows(),
                json_path.c_str());
    if (!ok) {
        std::printf("FAIL: data-plane acceptance gate violated\n");
        return 1;
    }
    return 0;
}
