/**
 * @file
 * Reproduces the paper's Figure 3: total processing time on the classic
 * (Cilk Plus) scheduler, normalized to TS, at P=1 and P=32, with the
 * P=32 bar broken into work / scheduling / idle. This is the motivation
 * figure: work inflation (the work component growing past 1.0x) is what
 * NUMA-WS attacks.
 *
 *   ./fig3_breakdown [--scale=0.25] [--cores=32] [--workload=name]
 */
#include <cstdio>

#include "bench_common.h"

using namespace numaws;
using namespace numaws::bench;

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);

    std::printf("Figure 3: normalized total processing time on classic "
                "work stealing (Cilk Plus), normalized to TS.\n");
    Table t({"benchmark", "P=1 (T1/TS)", "P=32 total", "work", "sched",
             "idle"});

    for (const SimWorkload &wl : workloads::simWorkloads(args.scale)) {
        if (!args.selected(wl))
            continue;
        const double ts = runSerial(wl);
        const double t1 = runClassic(wl, 1).elapsedSeconds;
        const sim::SimResult r = runClassic(wl, args.cores);

        t.addRow({wl.name, Table::fmtRatio(t1 / ts),
                  Table::fmtRatio(r.totalProcessingSeconds() / ts),
                  Table::fmtRatio(r.workSeconds / ts),
                  Table::fmtRatio(r.schedSeconds / ts),
                  Table::fmtRatio(r.idleSeconds / ts)});
    }
    t.print();
    std::printf("\nP=1 bars sit at ~1x (work efficiency); P=32 work "
                "above 1x is work inflation.\n");
    return 0;
}
