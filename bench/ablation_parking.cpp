/**
 * @file
 * Parking/push-target ablation grid: {ParkPolicy timer, board} x
 * {PushTarget random, board} on an idle-heavy serial-burst workload and
 * on heat (the PUSHBACK-heavy workload), both engines.
 *
 * The 200us timer wakes every idle worker every period whether or not
 * work exists — on a big machine that is a wakeup storm against a
 * provably dry board. Board parking (PR 3) parks workers per socket and
 * wakes only the sockets whose occupancy words went 0 -> nonzero, with
 * a longer fallback timeout as lost-wakeup insurance; the trade is
 * strictly fewer wakeups against a bounded pickup delay on sockets no
 * edge reaches. Board-guided PUSHBACK spends its attempts only on
 * receivers whose mailbox bit advertises room instead of probing blind.
 *
 *   ./ablation_parking [--scale=0.25] [--cores=32] [--seeds=5]
 *                      [--seed=first] [--threads=2] [--skip-threaded]
 *                      [--json=BENCH_parking.json]
 *
 * The serial-burst dag alternates a long serial strand (every other
 * core idle: the parking regime) with a wide fan of small tasks (the
 * wakeup-latency regime), so both sides of the trade are priced. Each
 * cell runs --seeds independent seeds; the JSON carries one row per
 * seed and the gates compare means. Exits nonzero unless:
 *  1. serialburst: board parking cuts simulated spurious wakeups at
 *     least 2x vs the 200us timer (push target fixed at random),
 *  2. serialburst: board parking does not regress simulated time
 *     (<= 1.02x the timer baseline),
 *  3. heat: board-guided PUSHBACK reduces pushAttempts *per deposited
 *     frame* vs random receivers (park policy fixed at timer). Raw
 *     attempt counts ride the scheduling trajectory and flip sign on
 *     unlucky 2-seed subsets; the per-frame rate isolates the
 *     mechanism (the exact sim board holds it at 1.0 on every seed,
 *     vs ~1.05-1.15 for random probing) and the raw mean still drops
 *     ~12% at the CI seed set.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/dag.h"
#include "support/timing.h"

using namespace numaws;
using namespace numaws::bench;
using namespace numaws::workloads;

namespace {

struct Cell
{
    ParkPolicy park;
    PushTarget push;

    std::string
    name() const
    {
        return std::string(parkPolicyName(park)) + "/"
               + pushTargetName(push);
    }
};

const Cell kCells[] = {
    {ParkPolicy::Timer, PushTarget::Random}, // the PR 2 baseline
    {ParkPolicy::Board, PushTarget::Random},
    {ParkPolicy::Timer, PushTarget::Board},
    {ParkPolicy::Board, PushTarget::Board},
};

/**
 * Idle-heavy fork-join: alternate a long serial strand (all cores but
 * one idle and parked) with a fan of small hinted tasks. The serial
 * strand spans several timer periods, so timer parking must pay
 * repeated dry wakeups per burst while board parking sleeps through to
 * the next occupancy edge (or one fallback period).
 */
sim::ComputationDag
serialBurstDag(int sockets, int bursts, double serial_cycles, int fan,
               double leaf_cycles)
{
    sim::DagBuilder b;
    b.beginRoot();
    for (int i = 0; i < bursts; ++i) {
        b.strand(serial_cycles, {});
        for (int t = 0; t < fan; ++t)
            b.spawnLeaf(/*place=*/t % sockets, leaf_cycles, {});
        b.sync();
    }
    b.end();
    return b.finish();
}

struct Measured
{
    double elapsed = 0.0;
    double spurious = 0.0;
    double pushAttempts = 0.0;
    double pushSuccesses = 0.0;

    /** Wasted-probe rate: attempts per deposited frame. Raw attempt
     * counts vary with the scheduling trajectory (more deposits can
     * mean more attempts even when each is cheaper), so the per-frame
     * rate is the seed-robust form of the PUSHBACK gate — the exact
     * board holds it at 1.0 on every seed. */
    double
    attemptsPerDeposit() const
    {
        return pushAttempts / std::max(1.0, pushSuccesses);
    }
};

sim::SimConfig
configOf(const Cell &cell, uint64_t seed)
{
    sim::SimConfig c = sim::SimConfig::adaptiveNumaWs();
    // Enable the parking model: park after a handful of fruitless
    // probes, the regime Runtime::mainLoop enters after its spin budget.
    // Every cell sets both policy axes explicitly, so the grid keeps
    // measuring timer/random baselines against the (now default) board
    // protocols.
    c.modelParking = true;
    c.sched.parkSpinFailures = 4;
    c.sched.parkPolicy = cell.park;
    c.sched.pushTarget = cell.push;
    c.seed = seed;
    return c;
}

bool
gate(const char *what, double actual, double limit)
{
    const bool ok = actual <= limit;
    std::printf("  gate %-46s %.4f <= %.4f  %s\n", what, actual, limit,
                ok ? "ok" : "FAIL");
    return ok;
}

void
threadedRows(JsonReport &report, double scale, int workers)
{
    for (const Cell &cell : kCells) {
        RuntimeOptions o;
        o.numWorkers = workers;
        o.numPlaces = workers >= 4 ? 4 : (workers >= 2 ? 2 : 1);
        o.sched.hierarchicalSteals = true;
        o.sched.parkPolicy = cell.park;
        o.sched.pushTarget = cell.push;
        Runtime rt(o);

        const double seconds = runThreadedFibHeat(rt, scale);
        const RuntimeStats stats = rt.stats();
        JsonRow row;
        row.set("engine", "threaded")
            .set("workload", "fib+heat")
            .set("park", parkPolicyName(cell.park))
            .set("push", pushTargetName(cell.push))
            .set("workers", workers)
            .set("elapsed_s", seconds)
            .set("parks", stats.counters.parks)
            .set("park_wakes", stats.counters.parkWakes)
            .set("park_timeouts", stats.counters.parkTimeouts)
            // Same key as the sim rows so bench_trajectory.py tracks
            // the threaded spurious-wake history too.
            .set("spurious_wakeups", stats.counters.spuriousWakes)
            .set("push_attempts", stats.counters.pushbackAttempts)
            .set("push_successes", stats.counters.pushbackSuccesses);
        report.addRow(row);
        std::printf("  threaded %-13s %0.3fs  parks %llu  wakes %llu  "
                    "spurious %llu  pushAttempts %llu\n",
                    cell.name().c_str(), seconds,
                    static_cast<unsigned long long>(stats.counters.parks),
                    static_cast<unsigned long long>(
                        stats.counters.parkWakes),
                    static_cast<unsigned long long>(
                        stats.counters.spuriousWakes),
                    static_cast<unsigned long long>(
                        stats.counters.pushbackAttempts));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv);
    const BenchArgs args(cli);
    const std::string json_path =
        cli.getString("json", "BENCH_parking.json");
    const uint64_t first_seed =
        static_cast<uint64_t>(cli.getInt("seed", 0x5eed));
    const int num_seeds =
        std::max(1, static_cast<int>(cli.getInt("seeds", 5)));
    const int threads = static_cast<int>(cli.getInt("threads", 2));
    const bool skip_threaded = cli.getBool("skip-threaded", false);
    const int places = socketsFor(args.cores);

    const int bursts = args.scale >= 1.0 ? 32 : 12;
    HeatParams heat;
    heat.nx = args.scale >= 1.0 ? 2048
                                : (args.scale >= 0.5 ? 1024 : 512);
    heat.ny = heat.nx;
    heat.steps = args.scale >= 1.0 ? 16 : 8;

    struct Case
    {
        std::string name;
        sim::ComputationDag dag;
    };
    const Case cases[] = {
        {"serialburst",
         serialBurstDag(places, bursts, /*serial_cycles=*/2.2e6,
                        /*fan=*/64, /*leaf_cycles=*/20000.0)},
        {"heat", heatDag(heat, places, Placement::Partitioned, true)},
    };

    JsonReport report;
    // [case][park][push] means over seeds.
    Measured mean[2][2][2];
    for (std::size_t ci = 0; ci < 2; ++ci) {
        const Case &sc = cases[ci];
        if (!args.only.empty() && args.only != sc.name)
            continue;
        std::printf("\nSimulated %s, %d cores, %d seeds:\n",
                    sc.name.c_str(), args.cores, num_seeds);
        Table t({"park/push", "T(mean)", "parks", "wakeups", "spurious",
                 "boardwakes", "pushAtt"});
        for (const Cell &cell : kCells) {
            Measured m;
            double parks = 0.0, wakeups = 0.0, board_wakes = 0.0;
            for (int s = 0; s < num_seeds; ++s) {
                const uint64_t seed = first_seed + 7919ULL * s;
                const sim::SimResult r = sim::simulatePacked(
                    sc.dag, args.cores, configOf(cell, seed));
                JsonRow j;
                j.set("engine", "sim")
                    .set("workload", sc.name)
                    .set("park", parkPolicyName(cell.park))
                    .set("push", pushTargetName(cell.push))
                    .set("cores", args.cores)
                    .set("seed", seed)
                    .set("elapsed_s", r.elapsedSeconds)
                    .set("work_s", r.workSeconds)
                    .set("sched_s", r.schedSeconds)
                    .set("idle_s", r.idleSeconds)
                    .set("parks", r.counters.parks)
                    .set("wakeups", r.counters.wakeups)
                    .set("board_wakes", r.counters.boardWakes)
                    .set("spurious_wakeups",
                         r.counters.spuriousWakeups)
                    .set("push_attempts", r.counters.pushAttempts)
                    .set("push_successes", r.counters.pushSuccesses)
                    .set("steal_attempts", r.counters.stealAttempts);
                report.addRow(j);
                m.elapsed += r.elapsedSeconds / num_seeds;
                m.spurious += static_cast<double>(
                                  r.counters.spuriousWakeups)
                              / num_seeds;
                m.pushAttempts +=
                    static_cast<double>(r.counters.pushAttempts)
                    / num_seeds;
                m.pushSuccesses +=
                    static_cast<double>(r.counters.pushSuccesses)
                    / num_seeds;
                parks += static_cast<double>(r.counters.parks)
                         / num_seeds;
                wakeups += static_cast<double>(r.counters.wakeups)
                           / num_seeds;
                board_wakes +=
                    static_cast<double>(r.counters.boardWakes)
                    / num_seeds;
            }
            mean[ci][cell.park == ParkPolicy::Board]
                [cell.push == PushTarget::Board] = m;
            t.addRow({cell.name(), Table::fmtSeconds(m.elapsed),
                      std::to_string(static_cast<uint64_t>(parks)),
                      std::to_string(static_cast<uint64_t>(wakeups)),
                      std::to_string(
                          static_cast<uint64_t>(m.spurious)),
                      std::to_string(
                          static_cast<uint64_t>(board_wakes)),
                      std::to_string(
                          static_cast<uint64_t>(m.pushAttempts))});
        }
        t.print();
    }

    // Park-tuning soak rows (ROADMAP): the PR 3 timer-era constants
    // (ParkTuning::Fixed) vs the EWMA-derived fallback/spin budget
    // (ParkTuning::Ewma), under board parking with random receivers on
    // the parking workload. Measured only — these rows accumulate the
    // trajectory evidence a default flip needs; no gate yet. The
    // "tuning" field appears only on these rows, so the pre-existing
    // grid rows keep their trajectory-history identity.
    if (args.only.empty() || args.only == "serialburst") {
        std::printf("\nSimulated serialburst park-tuning soak, "
                    "%d seeds:\n",
                    num_seeds);
        Table tt({"tuning", "T(mean)", "parks", "spurious"});
        for (const ParkTuning tuning :
             {ParkTuning::Fixed, ParkTuning::Ewma}) {
            Measured m;
            double parks = 0.0;
            for (int s = 0; s < num_seeds; ++s) {
                const uint64_t seed = first_seed + 7919ULL * s;
                sim::SimConfig cfg = configOf(
                    {ParkPolicy::Board, PushTarget::Random}, seed);
                cfg.sched.parkTuning = tuning;
                const sim::SimResult r = sim::simulatePacked(
                    cases[0].dag, args.cores, cfg);
                JsonRow j;
                j.set("engine", "sim")
                    .set("workload", "serialburst")
                    .set("park", parkPolicyName(ParkPolicy::Board))
                    .set("push", pushTargetName(PushTarget::Random))
                    .set("tuning", parkTuningName(tuning))
                    .set("cores", args.cores)
                    .set("seed", seed)
                    .set("elapsed_s", r.elapsedSeconds)
                    .set("parks", r.counters.parks)
                    .set("wakeups", r.counters.wakeups)
                    .set("spurious_wakeups",
                         r.counters.spuriousWakeups);
                report.addRow(j);
                m.elapsed += r.elapsedSeconds / num_seeds;
                m.spurious += static_cast<double>(
                                  r.counters.spuriousWakeups)
                              / num_seeds;
                parks += static_cast<double>(r.counters.parks)
                         / num_seeds;
            }
            tt.addRow({parkTuningName(tuning),
                       Table::fmtSeconds(m.elapsed),
                       std::to_string(static_cast<uint64_t>(parks)),
                       std::to_string(
                           static_cast<uint64_t>(m.spurious))});
        }
        tt.print();
    }

    if (!skip_threaded && args.only.empty()) {
        std::printf("\nThreaded runtime, %d workers:\n", threads);
        threadedRows(report, args.scale, threads);
    }

    report.writeFile(json_path);
    std::printf("\nwrote %zu rows to %s\n", report.numRows(),
                json_path.c_str());

    if (!args.only.empty())
        return 0; // partial runs skip the cross-cell gates

    // Acceptance gates (file header). Indices: [case][park][push] with
    // 1 == board on either axis; serialburst is case 0, heat case 1.
    bool ok = true;
    std::printf("\n");
    const Measured &sb_timer = mean[0][0][0];
    const Measured &sb_board = mean[0][1][0];
    ok &= gate("serialburst board/timer spurious wakeups",
               sb_board.spurious
                   / std::max(1.0, sb_timer.spurious),
               0.5);
    ok &= gate("serialburst board/timer elapsed",
               sb_board.elapsed / sb_timer.elapsed, 1.02);
    ok &= gate("heat board/random pushAttempts per deposit",
               mean[1][0][1].attemptsPerDeposit()
                   / mean[1][0][0].attemptsPerDeposit(),
               0.98);
    if (!ok) {
        std::printf("FAIL: parking/push-target acceptance gate "
                    "violated\n");
        return 1;
    }
    return 0;
}
