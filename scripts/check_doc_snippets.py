#!/usr/bin/env python3
"""Compile-check the C++ snippets in the docs and validate doc links.

Documentation drifts the moment nobody executes it. This script keeps
the prose honest two ways:

1. **Snippet compile check.** Every fenced block tagged ```` ```cpp ````
   in README.md and docs/*.md is extracted, wrapped into a translation
   unit, and compiled with ``$CXX -fsyntax-only -std=c++17 -I src``
   against the *real* headers — a renamed knob, a dropped method, or a
   changed signature breaks the doc build the same way it would break a
   user. The discipline for doc authors:

   - ```` ```cpp ```` — must compile. The harness hoists any
     ``#include`` lines to the top of the unit, prepends
     ``#include "numaws.h"`` and ``using namespace numaws;``, and
     compiles the rest first as a top-level unit (snippets that define
     functions), then — if that fails — wrapped in a function body
     (statement-level snippets). Snippets must be self-contained:
     declare the variables you use.
   - ```` ```c++ ```` — illustrative only (pseudo-code, elided bodies);
     rendered identically by GitHub but *not* compiled.
   - Any other tag (```` ```sh ````, ```` ```text ````, untagged) —
     not compiled.

2. **Link check.** Every relative markdown link ``[text](path#anchor)``
   in the scanned files must point at an existing file, and the
   ``#anchor`` (if any) must match a heading in the target file under
   GitHub's slugification rules. Absolute ``http(s)://`` links are not
   fetched.

Exit is nonzero on any failure; per-snippet compiler output is echoed
so CI logs point at the offending doc block by file and line.
"""

import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Files scanned for snippets and links, relative to the repo root.
DOC_FILES = ["README.md"] + sorted(
    os.path.join("docs", n)
    for n in (os.listdir(os.path.join(REPO, "docs"))
              if os.path.isdir(os.path.join(REPO, "docs")) else [])
    if n.endswith(".md")
)

FENCE_RE = re.compile(r"^```(\S*)\s*$")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def extract_fences(lines):
    """Yield (tag, start_line_1based, [body lines]) for each fence."""
    tag, start, body = None, 0, []
    for i, line in enumerate(lines, 1):
        m = FENCE_RE.match(line)
        if m and tag is None:
            tag, start, body = m.group(1), i, []
        elif line.rstrip() == "```" and tag is not None:
            yield tag, start, body
            tag = None
        elif tag is not None:
            body.append(line)


def snippet_units(body):
    """Candidate translation units for a snippet, tried in order:
    top-level (function/type definitions), then statement-wrapped."""
    includes, rest = [], []
    for line in body:
        (includes if line.lstrip().startswith("#include") else
         rest).append(line)
    prelude = ['#include "numaws.h"']
    for inc in includes:
        if inc.strip() != '#include "numaws.h"':
            prelude.append(inc)
    prelude.append("using namespace numaws;")
    top = prelude + [""] + rest + [""]
    wrapped = prelude + ["", "void doc_snippet() {"]
    wrapped += ["  " + s if s.strip() else s for s in rest]
    wrapped += ["}", ""]
    return ["\n".join(top), "\n".join(wrapped)]


def try_compile(cxx, unit):
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".cc", delete=False
    ) as tmp:
        tmp.write(unit)
        tmp_path = tmp.name
    try:
        return subprocess.run(
            [cxx, "-fsyntax-only", "-std=c++17",
             "-I", os.path.join(REPO, "src"), tmp_path],
            capture_output=True, text=True,
        )
    finally:
        os.unlink(tmp_path)


def compile_snippets():
    cxx = os.environ.get("CXX", "c++")
    failures = 0
    checked = 0
    for rel in DOC_FILES:
        path = os.path.join(REPO, rel)
        with open(path) as f:
            lines = f.read().splitlines()
        for tag, start, body in extract_fences(lines):
            if tag != "cpp":
                continue
            checked += 1
            procs = []
            for unit in snippet_units(body):
                proc = try_compile(cxx, unit)
                procs.append((unit, proc))
                if proc.returncode == 0:
                    break
            if procs[-1][1].returncode != 0:
                failures += 1
                unit, proc = procs[0]  # top-level attempt's diagnostics
                print("FAIL %s:%d snippet does not compile:"
                      % (rel, start))
                print("  --- snippet as compiled (top-level form) ---")
                for line in unit.splitlines():
                    print("  | " + line)
                for line in (proc.stderr or proc.stdout).splitlines():
                    print("  " + line)
            else:
                print("ok   %s:%d" % (rel, start))
    print("snippets: %d checked, %d failed" % (checked, failures))
    return failures


def slugify(heading):
    """GitHub's anchor slug for a markdown heading."""
    # Strip inline code/emphasis markers (GitHub keeps literal
    # underscores), lower, spaces to hyphens, drop everything that is
    # not alnum/hyphen/underscore.
    text = re.sub(r"[`*]", "", heading).strip().lower()
    text = text.replace(" ", "-")
    return re.sub(r"[^0-9a-z\-_]", "", text)


def anchors_of(path):
    slugs = set()
    counts = {}
    in_fence = False
    with open(path) as f:
        for line in f.read().splitlines():
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = slugify(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else "%s-%d" % (slug, n))
    return slugs


def check_links():
    failures = 0
    checked = 0
    for rel in DOC_FILES:
        path = os.path.join(REPO, rel)
        with open(path) as f:
            lines = f.read().splitlines()
        in_fence = False
        for i, line in enumerate(lines, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                    continue  # http:, https:, mailto: — not checked
                checked += 1
                frag = None
                base = target
                if "#" in target:
                    base, frag = target.split("#", 1)
                if base:
                    dest = os.path.normpath(
                        os.path.join(os.path.dirname(path), base))
                else:
                    dest = path  # same-file anchor
                if not os.path.exists(dest):
                    failures += 1
                    print("FAIL %s:%d broken link target: %s"
                          % (rel, i, target))
                    continue
                if frag is not None and dest.endswith(".md"):
                    if frag not in anchors_of(dest):
                        failures += 1
                        print("FAIL %s:%d missing anchor: %s"
                              % (rel, i, target))
    print("links: %d checked, %d failed" % (checked, failures))
    return failures


def main():
    missing = [rel for rel in DOC_FILES
               if not os.path.exists(os.path.join(REPO, rel))]
    if missing:
        print("FAIL missing doc files: %s" % ", ".join(missing))
        return 1
    failed = compile_snippets() + check_links()
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
