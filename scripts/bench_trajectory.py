#!/usr/bin/env python3
"""Perf trajectory over bench-report artifacts: report and gate modes.

Report mode (the PR 3 behavior) prints old/new ratios between two
bench-report directories::

    bench_trajectory.py PREV_DIR NEW_DIR [file.json ...]

Rows are grouped by their identity key (workload + policy/knob columns,
engine, cores/workers) and averaged over seeds; for each group present
in both runs the script prints elapsed-time and counter ratios
(new/old), plus the provenance (host_cores, git_sha) of both sides so a
ratio from a differently-sized runner is never mistaken for a
regression. Purely informational: always exits 0 when inputs parse.

Gate mode (PR 4) turns the accumulated trajectory into a CI gate::

    bench_trajectory.py --gate HIST_IN HIST_OUT NEW_DIR [file.json ...]
                        [--override]

HIST_IN is the rolling history file carried inside the
``bench-reports-threaded`` artifact (missing on the first run: empty
history); the current run's per-group means are appended and written to
HIST_OUT even when the gate fails. Note the CI consumption model: the
next run downloads the artifact of the previous *successful* main run,
so an entry written by a run that ultimately fails (this gate or any
other job step) is uploaded but never consulted — history effectively
accumulates over successful main runs only, and the trailing window
thins by one for every failed run in between. A group FAILS when, among the trailing history entries with
the *same host_cores shape* (runner-size changes must never read as
regressions), at least GATE_MIN_RUNS runs contain the group and the new
elapsed_s exceeds the trailing mean by more than the report's
tolerance (GATE_TOLERANCE, widened per report in
GATE_TOLERANCE_BY_REPORT for microsecond-scale benches). With
fewer runs of history the group only reports. ``--override`` (CI sets
it from the ``perf-override`` PR label) demotes failures to warnings
for intentional perf shifts; exit is then 0 and history still records
the new level, so the next run gates against it.
"""

import json
import os
import sys

# Fields that identify a row (everything else is a measurement).
KEY_FIELDS = (
    "engine",
    "workload",
    "policy",
    "victims",
    "escalation",
    "park",
    "push",
    "tuning",
    "pool",
    "mailbox",
    "cores",
    "workers",
    "spawns_per_sync",
    # Serving rows: arrival-rate class and job mix identify the row;
    # the actual rate is a calibrated measurement, not an identity.
    "mix",
    "rate",
    "arrivals",
    "elastic",
    # Overload rows: the shed policy and the deadline'd fraction of the
    # arrival stream identify the scenario.
    "shed",
    "deadline_frac",
    # Preemption rows: the scenario name plus which knobs are on.
    # (aging_us itself is a measurement: the threaded step is
    # calibrated from the host's mean job time each run.)
    "scenario",
    "preempt",
    "aging",
    "unpark_pct",
    # Data-plane rows: which allocator backs numa::allocate and which
    # container holds the grid identify the row.
    "heap",
    "container",
    # Interference rows: the adaptation knob, the trace shape (sim),
    # and the co-runner count (threaded) identify the row.
    "interference",
    "trace",
    "corunners",
)
# Measurements worth a trajectory line, in print order.
METRICS = (
    "elapsed_s",
    "spawn_ns",
    "steal_attempts",
    "spurious_wakeups",
    "wakeups",
    "push_attempts",
    "p99_us",
    "goodput",
    "shed_frac",
    "queue_p99_us",
    "alloc_ns",
)

# Gate-mode knobs: >10% over the trailing mean of the last window fails
# once >= GATE_MIN_RUNS comparable runs exist for the host_cores shape.
GATE_METRIC = "elapsed_s"
GATE_TOLERANCE = 0.10
GATE_MIN_RUNS = 3
GATE_WINDOW = 5
HISTORY_MAX_RUNS = 20
# Per-report tolerance overrides. The spawn-overhead rows are
# microsecond-scale (min-rep) timings on a shared runner — hostile
# territory for a 10% gate even with the noise-robust statistic — so
# they gate at a width that still catches the failure mode that
# matters (losing the pool fast path is a >=25% shift) while
# run-to-run frequency/cache variance reports instead of flapping.
GATE_TOLERANCE_BY_REPORT = {
    "BENCH_spawn.json": 0.25,
    # Open-loop serving rows: elapsed is dominated by the arrival
    # schedule (rate is re-calibrated per run from measured job cost),
    # so run-to-run variance is wider than the closed-loop benches'.
    "BENCH_serving.json": 0.25,
    # Overload rows run the runtime deliberately past saturation, where
    # elapsed is hostage to the shed controller's EWMA transient and the
    # host's scheduling jitter; the bench's own gates already bound the
    # ratios that matter (latency protection, goodput, collapse).
    "BENCH_overload.json": 0.25,
    # Preemption rows share the overload rows' saturation methodology
    # (open-loop streams at calibrated rates); the bench's own gates
    # bound the latency/aging/unpark properties byte-deterministically
    # in the sim.
    "BENCH_preempt.json": 0.25,
    # Data-plane rows mix a nanosecond-scale alloc microbench with
    # millisecond heat sweeps on a 2-core runner; the bench's own gates
    # (pooled-vs-heap ratio, parted-vs-flat floor, bit-exactness) bound
    # the properties that matter, so the trajectory gates wide like the
    # other micro-scale reports.
    "BENCH_dataplane.json": 0.25,
    # Interference rows deliberately run with pinned busy-loop
    # co-runners stealing CPU — elapsed is exactly the quantity the
    # host scheduler perturbs; the bench's own gates bound the
    # adapt-vs-off ratios (strictly, byte-deterministically, in the
    # sim rows).
    "BENCH_interference.json": 0.25,
}


def tolerance_for(label):
    """Gate tolerance for a history label ("report.json::group")."""
    return GATE_TOLERANCE_BY_REPORT.get(label.split("::", 1)[0],
                                        GATE_TOLERANCE)


def load_rows(path):
    with open(path) as f:
        return json.load(f)


def key_of(row):
    return tuple((k, row[k]) for k in KEY_FIELDS if k in row)


def aggregate(rows):
    """Group rows by identity and average numeric metrics over seeds."""
    groups = {}
    for row in rows:
        groups.setdefault(key_of(row), []).append(row)
    out = {}
    for key, members in groups.items():
        means = {}
        for metric in METRICS:
            values = [
                float(m[metric]) for m in members if metric in m
            ]
            if values:
                means[metric] = sum(values) / len(values)
        means["_provenance"] = "%s cores @ %.9s" % (
            members[0].get("host_cores", "?"),
            str(members[0].get("git_sha", "?")),
        )
        out[key] = means
    return out


def report_files(new_dir, names):
    return names or sorted(
        n for n in os.listdir(new_dir) if n.endswith(".json")
        if n != "trajectory_history.json"
    )


def run_report(prev_dir, new_dir, names):
    names = report_files(new_dir, names)
    if not os.path.isdir(prev_dir):
        print(
            "bench_trajectory: no previous artifact at %r "
            "(first run?) — nothing to compare" % prev_dir
        )
        return 0

    for name in names:
        prev_path = os.path.join(prev_dir, name)
        new_path = os.path.join(new_dir, name)
        if not os.path.exists(new_path):
            continue
        if not os.path.exists(prev_path):
            print("== %s: new report (no previous run) ==" % name)
            continue
        old = aggregate(load_rows(prev_path))
        new = aggregate(load_rows(new_path))
        print("== %s ==" % name)
        shared = [k for k in new if k in old]
        if not shared:
            print("  no comparable rows (schema changed?)")
            continue
        sample = old[shared[0]]["_provenance"], new[shared[0]][
            "_provenance"
        ]
        print("  old: %s   new: %s" % sample)
        for key in shared:
            label = "/".join(str(v) for _, v in key)
            ratios = []
            for metric in METRICS:
                if metric in old[key] and metric in new[key]:
                    denom = old[key][metric]
                    if denom > 0:
                        ratios.append(
                            "%s %.3fx"
                            % (metric, new[key][metric] / denom)
                        )
            if ratios:
                print("  %-60s %s" % (label, "  ".join(ratios)))
        only_new = [k for k in new if k not in old]
        if only_new:
            print("  (+%d new row groups)" % len(only_new))
    return 0


def group_label(name, key):
    return "%s::%s" % (name, "/".join(str(v) for _, v in key))


def current_run_entry(new_dir, names):
    """One history entry for this run: per-group metric means."""
    entry = {"host_cores": None, "git_sha": None, "groups": {}}
    for name in report_files(new_dir, names):
        path = os.path.join(new_dir, name)
        if not os.path.exists(path):
            continue
        rows = load_rows(path)
        if rows and entry["host_cores"] is None:
            entry["host_cores"] = rows[0].get("host_cores")
            entry["git_sha"] = rows[0].get("git_sha")
        for key, means in aggregate(rows).items():
            entry["groups"][group_label(name, key)] = {
                m: v for m, v in means.items() if m in METRICS
            }
    return entry


def run_gate(hist_in, hist_out, new_dir, names, override):
    history = {"runs": []}
    if os.path.exists(hist_in):
        try:
            history = json.load(open(hist_in))
        except (ValueError, OSError) as e:
            print("bench_trajectory: unreadable history %r (%s) — "
                  "starting fresh" % (hist_in, e))
    runs = history.get("runs", [])
    entry = current_run_entry(new_dir, names)
    if not entry["groups"]:
        # A perf gate with nothing to measure must fail loudly, not go
        # green with zero coverage (and must not pollute the history
        # with a null entry).
        print(
            "::error::perf gate: no bench rows found under %r — "
            "nothing was measured" % new_dir
        )
        return 1

    failures = []
    comparable = [
        r for r in runs if r.get("host_cores") == entry["host_cores"]
    ]
    for label, means in sorted(entry["groups"].items()):
        if GATE_METRIC not in means:
            continue
        trail = [
            r["groups"][label][GATE_METRIC]
            for r in comparable[-GATE_WINDOW:]
            if label in r.get("groups", {})
            and GATE_METRIC in r["groups"][label]
        ]
        if len(trail) < GATE_MIN_RUNS:
            print(
                "  %-70s %d/%d runs of history — reporting only"
                % (label, len(trail), GATE_MIN_RUNS)
            )
            continue
        mean = sum(trail) / len(trail)
        ratio = means[GATE_METRIC] / mean if mean > 0 else 1.0
        allowed = tolerance_for(label)
        verdict = "ok"
        if ratio > 1.0 + allowed:
            verdict = "REGRESSION"
            failures.append((label, ratio, allowed))
        print(
            "  %-70s %.3fx vs trailing mean of %d runs  %s"
            % (label, ratio, len(trail), verdict)
        )

    # Record this run either way: an overridden shift becomes the new
    # baseline instead of re-failing every subsequent run.
    runs.append(entry)
    history["runs"] = runs[-HISTORY_MAX_RUNS:]
    with open(hist_out, "w") as f:
        json.dump(history, f, indent=1)
    print(
        "bench_trajectory: history now %d runs (%d on this "
        "host_cores shape) -> %s"
        % (len(history["runs"]), len(comparable) + 1, hist_out)
    )

    if failures:
        for label, ratio, allowed in failures:
            print(
                "::%s::perf gate: %s at %.3fx (> %.2fx allowed)"
                % (
                    "warning" if override else "error",
                    label,
                    ratio,
                    1.0 + allowed,
                )
            )
        if override:
            print("bench_trajectory: perf-override set — regressions "
                  "recorded as the new baseline, not failed")
            return 0
        return 1
    return 0


def main(argv):
    args = [a for a in argv[1:] if a != "--override"]
    override = "--override" in argv[1:]
    if args and args[0] == "--gate":
        if len(args) < 4:
            print(__doc__)
            return 2
        return run_gate(args[1], args[2], args[3], args[4:], override)
    if len(args) < 2:
        print(__doc__)
        return 2
    return run_report(args[0], args[1], args[2:])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
