#!/usr/bin/env python3
"""Print old/new ratios between two bench-report directories.

CI downloads the previous successful run's ``bench-reports`` artifact
into one directory and compares it against the JSON reports the current
run just produced, so a perf history accumulates run over run:

    bench_trajectory.py PREV_DIR NEW_DIR [file.json ...]

Rows are grouped by their identity key (workload + policy/knob columns,
engine, cores/workers) and averaged over seeds; for each group present
in both runs the script prints elapsed-time and counter ratios
(new/old), plus the provenance (host_cores, git_sha) of both sides so a
ratio from a differently-sized runner is never mistaken for a
regression. Purely informational: always exits 0 when inputs parse
(missing previous artifacts are expected on the first run — exit 0 with
a note), so the gating stays in the benches themselves.
"""

import json
import os
import sys

# Fields that identify a row (everything else is a measurement).
KEY_FIELDS = (
    "engine",
    "workload",
    "policy",
    "victims",
    "escalation",
    "park",
    "push",
    "cores",
    "workers",
)
# Measurements worth a trajectory line, in print order.
METRICS = (
    "elapsed_s",
    "steal_attempts",
    "spurious_wakeups",
    "wakeups",
    "push_attempts",
)


def load_rows(path):
    with open(path) as f:
        return json.load(f)


def key_of(row):
    return tuple((k, row[k]) for k in KEY_FIELDS if k in row)


def aggregate(rows):
    """Group rows by identity and average numeric metrics over seeds."""
    groups = {}
    for row in rows:
        groups.setdefault(key_of(row), []).append(row)
    out = {}
    for key, members in groups.items():
        means = {}
        for metric in METRICS:
            values = [
                float(m[metric]) for m in members if metric in m
            ]
            if values:
                means[metric] = sum(values) / len(values)
        means["_provenance"] = "%s cores @ %.9s" % (
            members[0].get("host_cores", "?"),
            str(members[0].get("git_sha", "?")),
        )
        out[key] = means
    return out


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    prev_dir, new_dir = argv[1], argv[2]
    names = argv[3:] or sorted(
        n for n in os.listdir(new_dir) if n.endswith(".json")
    )
    if not os.path.isdir(prev_dir):
        print(
            "bench_trajectory: no previous artifact at %r "
            "(first run?) — nothing to compare" % prev_dir
        )
        return 0

    for name in names:
        prev_path = os.path.join(prev_dir, name)
        new_path = os.path.join(new_dir, name)
        if not os.path.exists(new_path):
            continue
        if not os.path.exists(prev_path):
            print("== %s: new report (no previous run) ==" % name)
            continue
        old = aggregate(load_rows(prev_path))
        new = aggregate(load_rows(new_path))
        print("== %s ==" % name)
        shared = [k for k in new if k in old]
        if not shared:
            print("  no comparable rows (schema changed?)")
            continue
        sample = old[shared[0]]["_provenance"], new[shared[0]][
            "_provenance"
        ]
        print("  old: %s   new: %s" % sample)
        for key in shared:
            label = "/".join(str(v) for _, v in key)
            ratios = []
            for metric in METRICS:
                if metric in old[key] and metric in new[key]:
                    denom = old[key][metric]
                    if denom > 0:
                        ratios.append(
                            "%s %.3fx"
                            % (metric, new[key][metric] / denom)
                        )
            if ratios:
                print("  %-60s %s" % (label, "  ".join(ratios)))
        only_new = [k for k in new if k not in old]
        if only_new:
            print("  (+%d new row groups)" % len(only_new))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
