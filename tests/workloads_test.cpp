/**
 * @file
 * Correctness of the real benchmark implementations: each parallel
 * version must agree with its serial elision (and, where cheap, with an
 * independent reference).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "support/rng.h"
#include "workloads/workloads.h"

namespace numaws::workloads {
namespace {

Runtime &
testRuntime()
{
    static Runtime rt([] {
        RuntimeOptions o;
        o.numWorkers = 4;
        o.numPlaces = 2;
        return o;
    }());
    return rt;
}

std::vector<int64_t>
randomInts(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int64_t> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = static_cast<int64_t>(rng.next() >> 16);
    return v;
}

TEST(Fib, SerialValues)
{
    EXPECT_EQ(fibSerial(0), 0u);
    EXPECT_EQ(fibSerial(1), 1u);
    EXPECT_EQ(fibSerial(10), 55u);
    EXPECT_EQ(fibSerial(20), 6765u);
}

TEST(Cilksort, SerialSortsCorrectly)
{
    CilksortParams p;
    p.n = 10000;
    p.sortBase = 64;
    p.mergeBase = 64;
    auto v = randomInts(p.n, 1);
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    std::vector<int64_t> tmp(v.size());
    cilksortSerial(v.data(), p.n, tmp.data(), p);
    EXPECT_EQ(v, expect);
}

TEST(Cilksort, ParallelMatchesSerial)
{
    for (const bool hints : {false, true}) {
        CilksortParams p;
        p.n = 50000;
        p.sortBase = 256;
        p.mergeBase = 256;
        auto v = randomInts(p.n, 2);
        auto expect = v;
        std::sort(expect.begin(), expect.end());
        std::vector<int64_t> tmp(v.size());
        cilksortParallel(testRuntime(), v.data(), p.n, tmp.data(), p,
                         hints);
        EXPECT_EQ(v, expect) << "hints=" << hints;
    }
}

TEST(Cilksort, TinyAndDegenerateInputs)
{
    CilksortParams p;
    p.sortBase = 4;
    p.mergeBase = 4;
    for (int64_t n : {1, 2, 3, 5, 17}) {
        auto v = randomInts(n, 3);
        auto expect = v;
        std::sort(expect.begin(), expect.end());
        std::vector<int64_t> tmp(v.size());
        cilksortParallel(testRuntime(), v.data(), n, tmp.data(), p, true);
        EXPECT_EQ(v, expect) << "n=" << n;
    }
}

TEST(Heat, ParallelMatchesSerial)
{
    HeatParams p;
    p.nx = 64;
    p.ny = 64;
    p.steps = 5;
    p.baseRows = 4;
    const std::size_t cells =
        static_cast<std::size_t>(p.nx) * static_cast<std::size_t>(p.ny);
    std::vector<double> a1(cells), b1(cells, 0.0);
    Rng rng(4);
    for (auto &x : a1)
        x = rng.nextDouble();
    std::vector<double> a2 = a1, b2 = b1;

    heatSerial(a1.data(), b1.data(), p);
    heatParallel(testRuntime(), a2.data(), b2.data(), p, true);

    // Results land in the same buffer parity; both end in a or b
    // depending on step count — compare both buffers.
    for (std::size_t i = 0; i < cells; ++i) {
        EXPECT_DOUBLE_EQ(a1[i], a2[i]) << i;
        EXPECT_DOUBLE_EQ(b1[i], b2[i]) << i;
    }
}

TEST(Heat, ConservesBoundary)
{
    HeatParams p;
    p.nx = 32;
    p.ny = 32;
    p.steps = 3;
    p.baseRows = 4;
    const std::size_t cells = 32 * 32;
    std::vector<double> a(cells, 1.0), b(cells, 0.0);
    heatSerial(a.data(), b.data(), p);
    const double *fin = (p.steps % 2 == 0) ? a.data() : b.data();
    EXPECT_DOUBLE_EQ(fin[0], 1.0);
    EXPECT_DOUBLE_EQ(fin[cells - 1], 1.0);
}

TEST(Matmul, SerialMatchesNaive)
{
    const uint32_t n = 64;
    std::vector<double> a(n * n), b(n * n), c(n * n, 0.0),
        ref(n * n, 0.0);
    Rng rng(5);
    for (auto &x : a)
        x = rng.nextDouble();
    for (auto &x : b)
        x = rng.nextDouble();
    matmulSerial(a.data(), b.data(), c.data(), n);
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t k = 0; k < n; ++k)
            for (uint32_t j = 0; j < n; ++j)
                ref[i * n + j] += a[i * n + k] * b[k * n + j];
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(c[i], ref[i], 1e-9) << i;
}

TEST(Matmul, ParallelMatchesSerial)
{
    MatmulParams p;
    p.n = 128;
    p.block = 16;
    std::vector<double> a(p.n * p.n), b(p.n * p.n), c1(p.n * p.n, 0.0),
        c2(p.n * p.n, 0.0);
    Rng rng(6);
    for (auto &x : a)
        x = rng.nextDouble();
    for (auto &x : b)
        x = rng.nextDouble();
    matmulSerial(a.data(), b.data(), c1.data(), p.n);
    matmulParallel(testRuntime(), a.data(), b.data(), c2.data(), p, true);
    for (std::size_t i = 0; i < c1.size(); ++i)
        ASSERT_NEAR(c1[i], c2[i], 1e-9) << i;
}

TEST(Strassen, SerialMatchesMatmul)
{
    const uint32_t n = 128;
    std::vector<double> a(n * n), b(n * n), c1(n * n, 0.0),
        c2(n * n, 0.0);
    Rng rng(7);
    for (auto &x : a)
        x = rng.nextDouble();
    for (auto &x : b)
        x = rng.nextDouble();
    matmulSerial(a.data(), b.data(), c1.data(), n);
    strassenSerial(a.data(), b.data(), c2.data(), n, 16);
    for (std::size_t i = 0; i < c1.size(); ++i)
        ASSERT_NEAR(c1[i], c2[i], 1e-6) << i;
}

TEST(Strassen, ParallelMatchesSerial)
{
    StrassenParams p;
    p.n = 128;
    p.block = 16;
    std::vector<double> a(p.n * p.n), b(p.n * p.n), c1(p.n * p.n, 0.0),
        c2(p.n * p.n, 0.0);
    Rng rng(8);
    for (auto &x : a)
        x = rng.nextDouble();
    for (auto &x : b)
        x = rng.nextDouble();
    strassenSerial(a.data(), b.data(), c1.data(), p.n, p.block);
    strassenParallel(testRuntime(), a.data(), b.data(), c2.data(), p);
    for (std::size_t i = 0; i < c1.size(); ++i)
        ASSERT_NEAR(c1[i], c2[i], 1e-9) << i;
}

std::set<std::pair<double, double>>
asSet(const std::vector<Point> &pts)
{
    std::set<std::pair<double, double>> s;
    for (const Point &p : pts)
        s.insert({p.x, p.y});
    return s;
}

TEST(Hull, SerialFindsSquareCorners)
{
    std::vector<Point> pts = {{0, 0}, {1, 0}, {1, 1}, {0, 1},
                              {0.5, 0.5}, {0.2, 0.8}, {0.9, 0.1}};
    const auto hull = hullSerial(pts);
    const auto s = asSet(hull);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_TRUE(s.count({0, 0}));
    EXPECT_TRUE(s.count({1, 0}));
    EXPECT_TRUE(s.count({1, 1}));
    EXPECT_TRUE(s.count({0, 1}));
}

TEST(Hull, ParallelMatchesSerialInsideCircle)
{
    HullParams p;
    p.n = 20000;
    p.base = 256;
    p.onSphere = false;
    const auto pts = hullMakeInput(p, 42);
    const auto hs = hullSerial(pts);
    const auto hp = hullParallel(testRuntime(), pts, p, true);
    EXPECT_EQ(asSet(hs), asSet(hp));
    EXPECT_GE(hs.size(), 3u);
}

TEST(Hull, ParallelMatchesSerialOnCircle)
{
    HullParams p;
    p.n = 2000;
    p.base = 64;
    p.onSphere = true;
    const auto pts = hullMakeInput(p, 43);
    const auto hs = hullSerial(pts);
    const auto hp = hullParallel(testRuntime(), pts, p, false);
    EXPECT_EQ(asSet(hs), asSet(hp));
    // All points on the circle are extreme points.
    EXPECT_EQ(hs.size(), pts.size());
}

TEST(Cg, SerialConvergesOnSpdSystem)
{
    CgParams p;
    p.n = 2000;
    p.nnzPerRow = 8;
    p.band = 64;
    p.iters = 50;
    const CsrMatrix m = cgMakeMatrix(p, 44);
    std::vector<double> b(static_cast<std::size_t>(p.n), 1.0);
    std::vector<double> x;
    const double res = cgSerial(m, b, x, p);
    EXPECT_LT(res, 1e-6);
    // Verify the solution: ||Ax - b|| small.
    double err = 0.0;
    for (int64_t i = 0; i < p.n; ++i) {
        double acc = 0.0;
        for (int64_t k = m.rowBegin[i]; k < m.rowBegin[i + 1]; ++k)
            acc += m.val[k] * x[m.col[k]];
        err = std::max(err, std::abs(acc - 1.0));
    }
    EXPECT_LT(err, 1e-5);
}

TEST(Cg, ParallelMatchesSerialResidual)
{
    for (const bool hints : {false, true}) {
        CgParams p;
        p.n = 4000;
        p.nnzPerRow = 8;
        p.band = 128;
        p.iters = 20;
        p.baseRows = 128;
        const CsrMatrix m = cgMakeMatrix(p, 45);
        std::vector<double> b(static_cast<std::size_t>(p.n), 1.0);
        std::vector<double> x1, x2;
        const double r1 = cgSerial(m, b, x1, p);
        const double r2 =
            cgParallel(testRuntime(), m, b, x2, p, hints);
        // Parallel dot products reassociate floating point; residuals
        // agree to a tolerance, not bitwise.
        EXPECT_NEAR(r1, r2, 1e-8 + r1 * 0.01) << "hints=" << hints;
        for (int64_t i = 0; i < p.n; i += 97)
            EXPECT_NEAR(x1[static_cast<std::size_t>(i)],
                        x2[static_cast<std::size_t>(i)], 1e-6);
    }
}

TEST(Cg, MatrixIsBandedAndDiagonallyDominant)
{
    CgParams p;
    p.n = 500;
    p.nnzPerRow = 6;
    p.band = 32;
    const CsrMatrix m = cgMakeMatrix(p, 46);
    for (int64_t i = 0; i < p.n; ++i) {
        double diag = 0.0, off = 0.0;
        for (int64_t k = m.rowBegin[i]; k < m.rowBegin[i + 1]; ++k) {
            EXPECT_LE(std::abs(m.col[k] - i), p.band);
            if (m.col[k] == i)
                diag = m.val[k];
            else
                off += std::abs(m.val[k]);
        }
        EXPECT_GT(diag, off);
    }
}

} // namespace
} // namespace numaws::workloads
