/**
 * @file
 * Dag-generator tests: every benchmark's dag builds, has ample
 * parallelism, carries hints only when asked, and behaves sensibly under
 * the simulator (speedup, placement effects on remote traffic).
 */
#include <gtest/gtest.h>

#include "sim/scheduler.h"
#include "workloads/workloads.h"

namespace numaws::workloads {
namespace {

class EveryWorkload : public ::testing::TestWithParam<std::size_t>
{
  protected:
    static std::vector<SimWorkload> &
    all()
    {
        static std::vector<SimWorkload> w = simWorkloads(0.02);
        return w;
    }
    const SimWorkload &wl() { return all()[GetParam()]; }
};

TEST_P(EveryWorkload, BuildsAndHasParallelism)
{
    const auto dag = wl().build(4, Placement::Partitioned, true);
    EXPECT_GT(dag.numStrands(), 16u) << wl().name;
    const sim::WorkSpan ws = dag.workSpan();
    EXPECT_GT(ws.work, 0.0);
    EXPECT_GT(ws.span, 0.0);
    // Ample parallelism: T1/Tinf well above the 32 cores it must feed.
    EXPECT_GT(ws.work / ws.span, 32.0) << wl().name;
}

TEST_P(EveryWorkload, SimulatedSpeedupAtThirtyTwoCores)
{
    const auto dag = wl().build(4, Placement::Partitioned, true);
    const double t1 =
        sim::simulatePacked(dag, 1, sim::SimConfig::numaWs())
            .elapsedSeconds;
    const double t32 =
        sim::simulatePacked(dag, 32, sim::SimConfig::numaWs())
            .elapsedSeconds;
    EXPECT_GT(t1 / t32, 6.0) << wl().name; // loose: tiny test inputs
}

TEST_P(EveryWorkload, StrandConservationAcrossPolicies)
{
    const auto dag = wl().build(4, Placement::Partitioned, true);
    const auto classic = sim::simulatePacked(
        dag, 32, sim::SimConfig::classicWs());
    const auto numa =
        sim::simulatePacked(dag, 32, sim::SimConfig::numaWs());
    EXPECT_EQ(classic.counters.strandsExecuted, dag.numStrands());
    EXPECT_EQ(numa.counters.strandsExecuted, dag.numStrands());
}

TEST_P(EveryWorkload, SerialElisionWorkEfficiency)
{
    const auto dag = wl().build(1, Placement::FirstTouch, false);
    const double ts =
        sim::simulatePacked(dag, 1, sim::SimConfig::serial())
            .elapsedSeconds;
    const double t1 =
        sim::simulatePacked(dag, 1, sim::SimConfig::numaWs())
            .elapsedSeconds;
    EXPECT_LT(t1 / ts, 1.10) << wl().name; // spawn overhead near 1x
    EXPECT_GE(t1 / ts, 1.0) << wl().name;
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryWorkload, ::testing::Range<std::size_t>(0, 9),
    [](const auto &info) {
        std::string name = simWorkloads(0.02)[info.param].name;
        for (char &c : name)
            if (c == '-')
                c = '_'; // '-' is not valid in gtest names
        return name;
    });

TEST(WorkloadRegistry, PaperOrderAndCount)
{
    const auto w = simWorkloads(1.0);
    ASSERT_EQ(w.size(), 9u);
    EXPECT_EQ(w[0].name, "cg");
    EXPECT_EQ(w[1].name, "cilksort");
    EXPECT_EQ(w[2].name, "heat");
    EXPECT_EQ(w[3].name, "hull1");
    EXPECT_EQ(w[4].name, "hull2");
    EXPECT_EQ(w[5].name, "matmul");
    EXPECT_EQ(w[6].name, "matmul-z");
    EXPECT_EQ(w[7].name, "strassen");
    EXPECT_EQ(w[8].name, "strassen-z");
}

TEST(HeatDag, PartitionedHintsReduceRemoteTraffic)
{
    HeatParams p;
    p.nx = 512;
    p.ny = 512;
    p.steps = 6;
    p.baseRows = 16;
    const auto numa_dag = heatDag(p, 4, Placement::Partitioned, true);
    const auto classic_dag = heatDag(p, 4, Placement::FirstTouch, false);
    const auto numa = sim::simulatePacked(numa_dag, 32,
                                          sim::SimConfig::numaWs());
    const auto classic = sim::simulatePacked(classic_dag, 32,
                                             sim::SimConfig::classicWs());
    // The headline mechanism: hints + partitioning cut remote accesses.
    EXPECT_LT(numa.memory.remoteFraction(),
              classic.memory.remoteFraction());
    // And that shows up as lower work time (mitigated inflation).
    EXPECT_LT(numa.workSeconds, classic.workSeconds);
}

TEST(MatmulDag, ZLayoutReducesAccessCount)
{
    MatmulParams row;
    row.n = 256;
    row.block = 32;
    MatmulParams z = row;
    z.zLayout = true;
    const auto dag_row = matmulDag(row, 4, Placement::Interleaved, false);
    const auto dag_z = matmulDag(z, 4, Placement::Partitioned, true);
    // Same strand count; the z layout just uses contiguous accesses.
    EXPECT_EQ(dag_row.numStrands(), dag_z.numStrands());
    const auto r_row =
        sim::simulatePacked(dag_row, 1, sim::SimConfig::serial());
    const auto r_z =
        sim::simulatePacked(dag_z, 1, sim::SimConfig::serial());
    // Fewer cache granule touches -> lower serial time (the paper's
    // matmul 190s -> matmul-z 73s effect, directionally).
    EXPECT_LT(r_z.elapsedSeconds, r_row.elapsedSeconds);
}

TEST(FibDag, MatchesClosedFormCounts)
{
    const auto dag = fibDag(10, 100.0);
    // fib(10) leaf count: fib-tree leaves = fib(n+1) with fib(1)=1.
    const sim::WorkSpan ws = dag.workSpan();
    EXPECT_DOUBLE_EQ(ws.work, 8900.0); // 89 leaves x 100 cycles
}

} // namespace
} // namespace numaws::workloads
