/**
 * @file
 * StealCore policy-core tests: the differential engine-parity replay
 * and the EWMA park-tuning units.
 *
 * The parity test is the lock on PR 4's contract: the threaded runtime
 * and the simulator are thin drivers over one shared StealCore, so for
 * the same policy, seed, and topology they must make *identical*
 * decisions. Two drivers — one shaped like Worker::trySteal/mainLoop,
 * one shaped like the simulator's stepStealAttempt/run loop — replay
 * the same recorded world trace through separate cores under a mock
 * EngineView and must emit byte-identical action sequences. If someone
 * reintroduces an engine-side policy branch (the pre-PR 4 disease),
 * the traces diverge here before any bench gate can drift.
 *
 * Runs under ASan/UBSan in CI's sanitizer job.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sched/policy.h"
#include "sched/steal_core.h"
#include "topology/machine.h"
#include "topology/steal_distribution.h"

using namespace numaws;

namespace {

// ---------------------------------------------------------------------
// Mock engine: a deterministic world both drivers replay in lockstep
// ---------------------------------------------------------------------

/**
 * Work-queue state for every worker plus an exact OccupancyBoard (the
 * simulator's discipline: every transition published at its mutation
 * site). All mutations are functions of the core's actions and a
 * private fixed-seed refill RNG, so two replays with equally-seeded
 * cores see identical worlds at every step.
 */
struct MockWorld
{
    const StealDistribution &dist;
    OccupancyBoard board;
    std::vector<int> deq;
    std::vector<int> mail;
    Rng refill{123};

    explicit MockWorld(const StealDistribution &d)
        : dist(d),
          board(d.numWorkers(), d.workerSockets()),
          deq(static_cast<std::size_t>(d.numWorkers()), 0),
          mail(static_cast<std::size_t>(d.numWorkers()), 0)
    {}

    void
    setDeque(int w, int n)
    {
        deq[static_cast<std::size_t>(w)] = n;
        board.publishDeque(w, n > 0);
    }

    void
    setMail(int w, int n)
    {
        mail[static_cast<std::size_t>(w)] = n;
        board.publishMailbox(w, n > 0);
    }

    /** Take one parked frame; false when the mailbox is empty. */
    bool
    takeMailbox(int w)
    {
        if (mail[static_cast<std::size_t>(w)] == 0)
            return false;
        setMail(w, mail[static_cast<std::size_t>(w)] - 1);
        return true;
    }

    /**
     * Steal from @p w's deque: one frame, or a steal-half batch capped
     * at @p batch_max. One shared semantic for both drivers — the mock
     * replaces the engines' deque mechanics, not the core's decisions.
     * @return frames taken (0 == failed probe).
     */
    int
    takeDeque(int w, bool batch, int batch_max)
    {
        const int have = deq[static_cast<std::size_t>(w)];
        if (have == 0)
            return 0;
        int take = 1;
        if (batch) {
            int extras = (have - 1) / 2;
            if (extras > batch_max - 1)
                extras = batch_max - 1;
            take += extras;
        }
        setDeque(w, have - take);
        return take;
    }

    /** Periodic refill: pseudo-random but a pure function of the
     * refill RNG, identical across replays. */
    void
    refillSome()
    {
        for (int w = 0; w < dist.numWorkers(); ++w) {
            if (refill.nextBounded(4) == 0)
                setDeque(w, static_cast<int>(refill.nextBounded(6)));
            if (refill.nextBounded(8) == 0)
                setMail(w, static_cast<int>(refill.nextBounded(2)));
        }
    }

    /** Workers [first, last) of @p socket (even-spread packing). */
    std::pair<int, int>
    workersOfSocket(int socket) const
    {
        int first = -1, last = -1;
        for (int w = 0; w < dist.numWorkers(); ++w) {
            if (dist.socketOfWorker(w) == socket) {
                if (first < 0)
                    first = w;
                last = w + 1;
            }
        }
        return {first, last};
    }
};

std::string
serialize(const StealAction &a)
{
    std::ostringstream s;
    if (a.kind == StealAction::Kind::DryPoll)
        return "D";
    s << "P v" << a.victim << " l" << a.probedLevel
      << " m" << a.checkMailboxFirst << " i" << a.informedConsult
      << " b" << a.remoteBatch << ":" << a.batchMax;
    return s.str();
}

/**
 * One steal-path step, shaped like the named engine's driver. The two
 * shapes make the same core calls in the same order (that is PR 4's
 * point); they differ in how the surrounding mechanics would charge or
 * execute them, which the mock abstracts away. `threaded_shape` keeps
 * the cosmetic differences honest: e.g. the threaded driver passes
 * self=-1 to pickPushReceiver (its pusher is never in the target
 * range) where the sim passes its core id — same decision by contract.
 */
void
replayStep(StealCore &core, MockWorld &world, bool threaded_shape,
           int step, std::string &trace)
{
    if (step % 7 == 0)
        world.refillSome();

    const StealAction a = core.nextAction();
    trace += serialize(a);
    bool got = false;
    if (a.kind == StealAction::Kind::Probe) {
        if (a.checkMailboxFirst)
            got = world.takeMailbox(a.victim);
        if (!got)
            got = world.takeDeque(a.victim, a.remoteBatch, a.batchMax)
                  > 0;
        core.onStealResult(a, got);
        trace += got ? "|hit" : "|miss";
    }

    // A successful steal on every 3rd step runs a PUSHBACK episode
    // toward the next socket over (pusher outside the target range).
    if (got && step % 3 == 0) {
        const int sockets = world.board.numSockets();
        const int target = (core.socket() + 1) % sockets;
        const auto [first, last] = world.workersOfSocket(target);
        core.beginPushback(/*own_deque_depth=*/step % 9);
        uint32_t push_count = 0;
        while (push_count
               < static_cast<uint32_t>(core.pushThreshold())) {
            const int receiver = core.pickPushReceiver(
                first, last,
                threaded_shape ? -1 : core.self(), target);
            // Mock acceptance rule: capacity-1 mailboxes.
            const bool ok =
                world.mail[static_cast<std::size_t>(receiver)] == 0;
            trace += " push r" + std::to_string(receiver)
                     + (ok ? "+" : "-");
            core.onPushResult(ok);
            if (ok) {
                world.setMail(receiver,
                              world.mail[static_cast<std::size_t>(
                                  receiver)]
                                  + 1);
                break;
            }
            ++push_count;
        }
    }

    // Park protocol: fruitless steps feed the streak; a park request
    // resolves immediately against the board (the mock's "wake").
    if (got) {
        core.noteProgress();
    } else {
        core.noteFruitless();
        if (core.takeParkRequest()) {
            const bool found =
                world.board.anyWorkFor(core.socket());
            trace += " park t"
                     + std::to_string(
                         static_cast<int64_t>(core.parkTimeoutUs()))
                     + (found ? "w" : "d");
            core.onParkOutcome(found);
        }
    }
    trace += "\n";
}

SchedPolicy
fullPolicy()
{
    SchedPolicy p;
    p.hierarchicalSteals = true;
    p.victimPolicy = VictimPolicy::OccupancyAffinity;
    p.escalationPolicy = EscalationPolicy::Adaptive;
    p.pushPolicy.kind = PushPolicyKind::Adaptive;
    p.remoteStealHalf = true;
    p.parkTuning = ParkTuning::Ewma;
    p.parkSpinFailures = 4; // park often: exercise the tuner
    return p;
}

std::string
replay(bool threaded_shape, const SchedPolicy &policy, int self,
       uint64_t seed, int steps, StealCoreCounters *counters_out)
{
    const Machine machine = Machine::paperMachineSubset(16);
    StealDistribution dist(machine, 16, policy.biasWeights);
    MockWorld world(dist);
    StealCore core(policy, EngineView{&dist, &world.board}, self,
                   dist.socketOfWorker(self), seed);
    core.setAffinity(1u << dist.socketOfWorker(self));
    std::string trace;
    for (int step = 0; step < steps; ++step)
        replayStep(core, world, threaded_shape, step, trace);
    if (counters_out != nullptr)
        *counters_out = core.counters();
    return trace;
}

// ---------------------------------------------------------------------
// Differential engine parity
// ---------------------------------------------------------------------

TEST(EngineParity, DriversIssueByteIdenticalActionSequences)
{
    const SchedPolicy policy = fullPolicy();
    StealCoreCounters ct{}, cs{};
    const std::string threaded =
        replay(/*threaded_shape=*/true, policy, /*self=*/5,
               /*seed=*/0xfeed, /*steps=*/600, &ct);
    const std::string sim =
        replay(/*threaded_shape=*/false, policy, /*self=*/5,
               /*seed=*/0xfeed, /*steps=*/600, &cs);
    EXPECT_EQ(threaded, sim);
    // The decision counters are part of the contract too.
    EXPECT_EQ(ct.stealAttempts, cs.stealAttempts);
    EXPECT_EQ(ct.dryPolls, cs.dryPolls);
    EXPECT_EQ(ct.levelSkips, cs.levelSkips);
    EXPECT_EQ(ct.escalations, cs.escalations);
    // And the replay genuinely exercised the informed machinery.
    EXPECT_GT(ct.stealAttempts, 0u);
    EXPECT_GT(ct.dryPolls + ct.levelSkips, 0u);
}

TEST(EngineParity, HoldsAcrossSeedsWorkersAndPaperBaseline)
{
    for (const uint64_t seed : {1ULL, 0x5eedULL, 99991ULL}) {
        for (const int self : {0, 7, 15}) {
            const std::string a =
                replay(true, fullPolicy(), self, seed, 200, nullptr);
            const std::string b =
                replay(false, fullPolicy(), self, seed, 200, nullptr);
            EXPECT_EQ(a, b) << "seed=" << seed << " self=" << self;
            // The paper-literal baseline (flat search, timer parking,
            // random receivers) must agree as well.
            const SchedPolicy paper = SchedPolicy::paperBaseline();
            EXPECT_EQ(replay(true, paper, self, seed, 200, nullptr),
                      replay(false, paper, self, seed, 200, nullptr))
                << "paper seed=" << seed << " self=" << self;
        }
    }
}

TEST(EngineParity, SameSeedSameTraceAcrossRuns)
{
    // Determinism of the core itself: the property that keeps the
    // simulator byte-reproducible per seed while sharing this code.
    const std::string a =
        replay(true, fullPolicy(), 3, 0xabc, 300, nullptr);
    const std::string b =
        replay(true, fullPolicy(), 3, 0xabc, 300, nullptr);
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// EWMA park tuning
// ---------------------------------------------------------------------

TEST(ParkTuner, FixedIgnoresEvidence)
{
    ParkTuner t(ParkTuning::Fixed, 64);
    for (int i = 0; i < 100; ++i)
        t.observe(/*found_work=*/false);
    EXPECT_EQ(t.spinBudget(), 64);
    EXPECT_DOUBLE_EQ(t.timeoutScale(), 1.0);
}

TEST(ParkTuner, NeutralPriorMatchesFixedConstants)
{
    // The same shape as the adaptive escalation budget: at the neutral
    // prior the Ewma knobs equal the configured constants, so the two
    // modes start identical and diverge only with evidence.
    ParkTuner t(ParkTuning::Ewma, 64);
    EXPECT_DOUBLE_EQ(t.dryRate(), 0.5);
    EXPECT_EQ(t.spinBudget(), 64);
    EXPECT_DOUBLE_EQ(t.timeoutScale(), 1.0);
}

TEST(ParkTuner, ProductiveParksRaiseSpinAndShortenTimeouts)
{
    ParkTuner t(ParkTuning::Ewma, 64);
    for (int i = 0; i < 64; ++i)
        t.observe(/*found_work=*/true);
    EXPECT_LT(t.dryRate(), 0.01);
    EXPECT_EQ(t.spinBudget(), 2 * 64); // clamped at 2x the base
    EXPECT_DOUBLE_EQ(t.timeoutScale(), 0.5); // floor
}

TEST(ParkTuner, DryParksCutSpinAndStretchTimeouts)
{
    ParkTuner t(ParkTuning::Ewma, 64);
    for (int i = 0; i < 64; ++i)
        t.observe(/*found_work=*/false);
    EXPECT_GT(t.dryRate(), 0.99);
    EXPECT_EQ(t.spinBudget(), 64 / 4); // floor: base/4
    EXPECT_DOUBLE_EQ(t.timeoutScale(), 4.0); // ceiling
}

TEST(ParkTuner, BudgetNeverLeavesItsClamps)
{
    ParkTuner t(ParkTuning::Ewma, 2);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        t.observe(rng.flip());
        EXPECT_GE(t.spinBudget(), 1);
        EXPECT_LE(t.spinBudget(), 4);
        EXPECT_GE(t.timeoutScale(), 0.5);
        EXPECT_LE(t.timeoutScale(), 4.0);
    }
}

TEST(StealCorePark, EwmaTuningMovesTheCoreTimeout)
{
    SchedPolicy p;
    p.parkTuning = ParkTuning::Ewma;
    ASSERT_TRUE(p.boardParking()); // PR 4 default
    const Machine machine = Machine::paperMachineSubset(8);
    StealDistribution dist(machine, 8, p.biasWeights);
    OccupancyBoard board(8, dist.workerSockets());
    StealCore core(p, EngineView{&dist, &board}, 0, 0, 1);
    EXPECT_DOUBLE_EQ(core.parkTimeoutUs(), p.parkFallbackUs);
    for (int i = 0; i < 32; ++i)
        core.onParkOutcome(/*found_work=*/false);
    EXPECT_DOUBLE_EQ(core.parkTimeoutUs(), 4.0 * p.parkFallbackUs);
    for (int i = 0; i < 64; ++i)
        core.onParkOutcome(/*found_work=*/true);
    EXPECT_DOUBLE_EQ(core.parkTimeoutUs(), 0.5 * p.parkFallbackUs);
}

TEST(StealCorePark, SpinBudgetGovernsParkRequests)
{
    SchedPolicy p;
    p.parkSpinFailures = 3;
    const Machine machine = Machine::paperMachineSubset(8);
    StealDistribution dist(machine, 8, p.biasWeights);
    OccupancyBoard board(8, dist.workerSockets());
    StealCore core(p, EngineView{&dist, &board}, 0, 0, 1);
    core.noteFruitless();
    core.noteFruitless();
    EXPECT_FALSE(core.takeParkRequest());
    core.noteFruitless();
    EXPECT_TRUE(core.takeParkRequest());
    EXPECT_FALSE(core.takeParkRequest()); // consumed
    // Progress resets the streak.
    core.noteFruitless();
    core.noteFruitless();
    core.noteProgress();
    core.noteFruitless();
    core.noteFruitless();
    EXPECT_FALSE(core.takeParkRequest());
}

TEST(StealCorePark, TimerPolicyUsesTheTimerPeriod)
{
    SchedPolicy p = SchedPolicy::paperBaseline();
    ASSERT_FALSE(p.boardParking());
    const Machine machine = Machine::paperMachineSubset(8);
    StealDistribution dist(machine, 8, p.biasWeights);
    OccupancyBoard board(8, dist.workerSockets());
    StealCore core(p, EngineView{&dist, &board}, 0, 0, 1);
    EXPECT_DOUBLE_EQ(core.parkTimeoutUs(), p.parkTimerUs);
}

// ---------------------------------------------------------------------
// Publish-edge wake directives (the third engine touchpoint)
// ---------------------------------------------------------------------

TEST(StealCoreWake, DirectivesFollowTheParkPolicy)
{
    const Machine machine = Machine::paperMachineSubset(8);
    SchedPolicy board_park; // PR 4 default: board parking
    StealDistribution dist(machine, 8, board_park.biasWeights);
    OccupancyBoard board(8, dist.workerSockets());
    StealCore b(board_park, EngineView{&dist, &board}, 0, 0, 1);
    EXPECT_EQ(b.onPublishEdge(true), WakeDirective::TargetedSocket);
    EXPECT_EQ(b.onPublishEdge(false), WakeDirective::None);

    StealCore t(SchedPolicy::paperBaseline(), EngineView{&dist, &board},
                0, 0, 1);
    EXPECT_EQ(t.onPublishEdge(true), WakeDirective::Global);
    EXPECT_EQ(t.onPublishEdge(false), WakeDirective::Global);
}

} // namespace
