/**
 * @file
 * End-to-end regression tests pinning the paper's headline results at
 * bench methodology (the same code paths the fig7/fig8 binaries use):
 * NUMA-WS must reduce work inflation on the hinted benchmarks, leave the
 * unhinted ones unharmed, stay work efficient, and keep scheduling time
 * negligible. If a refactor breaks the reproduction, these fail before
 * anyone reads a bench table.
 */
#include <gtest/gtest.h>

#include "../bench/bench_common.h"

namespace numaws::bench {
namespace {

class HeadlineResults : public ::testing::Test
{
  protected:
    static constexpr double kScale = 0.1;

    static const std::vector<SimWorkload> &
    all()
    {
        static std::vector<SimWorkload> w = workloads::simWorkloads(kScale);
        return w;
    }

    static const SimWorkload &
    byName(const std::string &name)
    {
        for (const auto &w : all())
            if (w.name == name)
                return w;
        throw std::runtime_error("unknown workload " + name);
    }

    static double
    inflation(const sim::SimResult &r, double t1)
    {
        return r.workSeconds / t1;
    }
};

TEST_F(HeadlineResults, NumaWsReducesInflationOnHintedBenchmarks)
{
    for (const char *name : {"cg", "heat", "hull2", "cilksort"}) {
        const SimWorkload &wl = byName(name);
        const double cp_t1 = runClassic(wl, 1).elapsedSeconds;
        const double nw_t1 = runNumaWs(wl, 1).elapsedSeconds;
        const double cp = inflation(runClassic(wl, 32), cp_t1);
        const double nw = inflation(runNumaWs(wl, 32), nw_t1);
        EXPECT_LT(nw, cp * 0.97) << name << ": CP " << cp << " NW " << nw;
    }
}

TEST_F(HeadlineResults, NumaWsDoesNotHurtUnhintedBenchmarks)
{
    for (const char *name : {"matmul", "strassen", "strassen-z"}) {
        const SimWorkload &wl = byName(name);
        const double cp = runClassic(wl, 32).elapsedSeconds;
        const double nw = runNumaWs(wl, 32).elapsedSeconds;
        // "the additional scheduling mechanism ... does not adversely
        // impact performance": within 10% (paper: within ~2%).
        EXPECT_LT(nw, cp * 1.10) << name;
    }
}

TEST_F(HeadlineResults, NumaWsImprovesEndToEndTimeWhereHinted)
{
    for (const char *name : {"cg", "heat", "hull2"}) {
        const SimWorkload &wl = byName(name);
        const double cp = runClassic(wl, 32).elapsedSeconds;
        const double nw = runNumaWs(wl, 32).elapsedSeconds;
        EXPECT_LT(nw, cp) << name;
    }
}

TEST_F(HeadlineResults, BothPlatformsAreWorkEfficient)
{
    for (const auto &wl : all()) {
        const double ts = runSerial(wl);
        EXPECT_LT(runClassic(wl, 1).elapsedSeconds / ts, 1.06)
            << wl.name << " (classic)";
        EXPECT_LT(runNumaWs(wl, 1).elapsedSeconds / ts, 1.06)
            << wl.name << " (numa-ws)";
    }
}

TEST_F(HeadlineResults, SchedulingTimeStaysNegligible)
{
    // Paper: S32 under ~2% of W32 at full inputs. Scheduling cost is
    // per-steal while work shrinks with kScale, so the bound here is
    // looser; at --scale=0.25 the bench tables show <= 6%.
    for (const auto &wl : all()) {
        const sim::SimResult r = runNumaWs(wl, 32);
        EXPECT_LT(r.schedSeconds, r.workSeconds * 0.15) << wl.name;
    }
}

TEST_F(HeadlineResults, LayoutTransformationSpeedsUpSerialMatmul)
{
    const double row = runSerial(byName("matmul"));
    const double z = runSerial(byName("matmul-z"));
    // Paper: 190.86 -> 73.63 (2.6x). Shape: z at least 1.5x faster.
    EXPECT_GT(row / z, 1.5);
}

TEST_F(HeadlineResults, SpeedupScalesWithCores)
{
    // Processor-oblivious scaling for a hinted and an unhinted workload.
    for (const char *name : {"heat", "matmul-z"}) {
        const SimWorkload &wl = byName(name);
        const double t1 = runNumaWs(wl, 1).elapsedSeconds;
        double prev = t1;
        for (int cores : {2, 4, 8, 16, 32}) {
            const double tp = runNumaWs(wl, cores).elapsedSeconds;
            EXPECT_LT(tp, prev * 1.02)
                << name << " regressed going to P=" << cores;
            prev = tp;
        }
        EXPECT_GT(t1 / prev, 10.0) << name << " at P=32";
    }
}

TEST_F(HeadlineResults, NumaWsCutsRemoteTrafficWhereHinted)
{
    for (const char *name : {"cg", "heat", "cilksort"}) {
        const SimWorkload &wl = byName(name);
        const double cp = runClassic(wl, 32).memory.remoteFraction();
        const double nw = runNumaWs(wl, 32).memory.remoteFraction();
        EXPECT_LT(nw, cp) << name;
    }
}

} // namespace
} // namespace numaws::bench
