/**
 * @file
 * PR 10 interference resilience: the pressure-sensing math, the
 * InterferenceCore hysteresis ladder, the threaded worker-set
 * shrink/re-expand plumbing, the sim trace model's determinism and
 * byte-compat invariants, the graceful slab-carve fallback chain, and
 * the stall watchdog.
 *
 * Concurrency tests follow the repo's 1-core-host discipline: no
 * wall-clock speed assertions, only outcomes, counters, and bounded
 * liveness. The threaded shrink/re-expand test drives the socket's
 * pressure EWMA from the test thread (a publish is one relaxed CAS,
 * legal from any thread) instead of relying on a real co-runner, so
 * retirement and reinstatement are provoked deterministically on any
 * host; the real-co-runner catastrophe lives in the interference
 * bench, where it is gated on multi-core hosts only.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "mem/numa_arena.h"
#include "numaws.h"
#include "sched/interference_core.h"
#include "sim/serving.h"
#include "support/pressure.h"
#include "workloads/workloads.h"

using namespace numaws;
using namespace std::chrono_literals;

namespace {

/** Spin until @p cond returns true or ~@p limit elapses. */
template <typename Cond>
bool
awaitFor(Cond cond, std::chrono::milliseconds limit)
{
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (!cond()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(1ms);
    }
    return true;
}

} // namespace

// ---------------------------------------------------------------------
// Pressure math units (support/pressure.h)
// ---------------------------------------------------------------------

TEST(Pressure, PermilleIsLostWallShareGatedOnInvoluntarySwitches)
{
    // No involuntary context switch: skew alone is ambiguous, report 0.
    EXPECT_EQ(pressurePermille(1'000'000, 400'000, 0), 0);
    // Confirmed by a switch: 60% of the epoch lost -> 600 per-mille.
    EXPECT_EQ(pressurePermille(1'000'000, 400'000, 1), 600);
    EXPECT_EQ(pressurePermille(1'000'000, 999'000, 3), 1);
    // CPU >= wall (clock skew, nested accounting): never negative.
    EXPECT_EQ(pressurePermille(1'000'000, 1'100'000, 5), 0);
    // Degenerate epochs are silent, and the result clamps at 1000.
    EXPECT_EQ(pressurePermille(0, 0, 9), 0);
    EXPECT_EQ(pressurePermille(-5, 0, 9), 0);
    EXPECT_EQ(pressurePermille(1'000, -50'000, 2), 1000);
}

TEST(Pressure, BoardSeedsOnFirstSampleThenDecaysByShift)
{
    PressureBoard board(2, /*ewma_shift=*/2);
    EXPECT_EQ(board.pressure(0), 0); // unseeded reads calm
    board.publish(0, 800);
    EXPECT_EQ(board.pressure(0), 800); // first sample seeds, no blend
    board.publish(0, 0);               // decay: 800 + (0-800)>>2 = 600
    EXPECT_EQ(board.pressure(0), 600);
    board.publish(0, 1000); // 600 + (400>>2) = 700
    EXPECT_EQ(board.pressure(0), 700);
    EXPECT_EQ(board.pressure(1), 0); // sockets are independent
    board.reset();
    EXPECT_EQ(board.pressure(0), 0);
    board.publish(0, 123);
    EXPECT_EQ(board.pressure(0), 123); // reset really unseeds
}

// ---------------------------------------------------------------------
// InterferenceCore hysteresis units (sched/interference_core.h)
// ---------------------------------------------------------------------

namespace {

ServingPolicy
adaptPolicy(int shrink_epochs = 2, int expand_epochs = 2)
{
    ServingPolicy p;
    p.interference = InterferencePolicy::Adapt;
    p.interferenceShrinkEpochs = shrink_epochs;
    p.interferenceExpandEpochs = expand_epochs;
    return p;
}

} // namespace

TEST(InterferenceCore, OffKnobNeverMovesTheTarget)
{
    InterferenceCore core(ServingPolicy{}, 2);
    EXPECT_FALSE(core.enabled());
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(core.epochTick(0, 1000, 8));
    EXPECT_EQ(core.retiredTarget(0), 0);
    EXPECT_FALSE(core.socketPressured(0));
    EXPECT_EQ(core.steerSocket(0), 0); // identity when off
    EXPECT_EQ(core.shrinks(), 0u);
}

TEST(InterferenceCore, ShrinkNeedsTheFullHotStreak)
{
    InterferenceCore core(adaptPolicy(/*shrink_epochs=*/3), 2);
    EXPECT_FALSE(core.epochTick(0, 900, 8));
    EXPECT_FALSE(core.epochTick(0, 900, 8));
    EXPECT_TRUE(core.socketPressured(0)); // latched from the first hot
    EXPECT_EQ(core.retiredTarget(0), 0);  // ...but no retirement yet
    EXPECT_TRUE(core.epochTick(0, 900, 8));
    EXPECT_EQ(core.retiredTarget(0), 1);
    // One worker per completed streak, never a burst.
    EXPECT_FALSE(core.epochTick(0, 900, 8));
    EXPECT_FALSE(core.epochTick(0, 900, 8));
    EXPECT_TRUE(core.epochTick(0, 900, 8));
    EXPECT_EQ(core.retiredTarget(0), 2);
    EXPECT_EQ(core.shrinks(), 2u);
}

TEST(InterferenceCore, DeadBandResetsBothStreaks)
{
    ServingPolicy p = adaptPolicy(2, 2);
    InterferenceCore core(p, 1);
    // Flicker: hot, dead band, hot, dead band ... never retires.
    for (int i = 0; i < 8; ++i) {
        EXPECT_FALSE(core.epochTick(0, p.interferenceShrinkPermille, 8));
        EXPECT_FALSE(
            core.epochTick(0, p.interferenceShrinkPermille - 1, 8));
    }
    EXPECT_EQ(core.retiredTarget(0), 0);
    // The dead band holds whatever was already retired.
    EXPECT_FALSE(core.epochTick(0, 900, 8));
    EXPECT_TRUE(core.epochTick(0, 900, 8));
    EXPECT_EQ(core.retiredTarget(0), 1);
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(core.epochTick(0, 150, 8)); // between the edges
    EXPECT_EQ(core.retiredTarget(0), 1);
}

TEST(InterferenceCore, ExpandUnwindsOneWorkerPerCoolStreak)
{
    InterferenceCore core(adaptPolicy(1, 2), 1);
    for (int i = 0; i < 3; ++i)
        core.epochTick(0, 900, 8);
    EXPECT_EQ(core.retiredTarget(0), 3);
    EXPECT_FALSE(core.epochTick(0, 0, 8));
    EXPECT_TRUE(core.epochTick(0, 0, 8));
    EXPECT_EQ(core.retiredTarget(0), 2);
    EXPECT_FALSE(core.socketPressured(0)); // unlatched on the cool edge
    EXPECT_FALSE(core.epochTick(0, 0, 8));
    EXPECT_TRUE(core.epochTick(0, 0, 8));
    EXPECT_FALSE(core.epochTick(0, 0, 8));
    EXPECT_TRUE(core.epochTick(0, 0, 8));
    EXPECT_EQ(core.retiredTarget(0), 0);
    // Fully expanded: further cool epochs are no-ops.
    EXPECT_FALSE(core.epochTick(0, 0, 8));
    EXPECT_FALSE(core.epochTick(0, 0, 8));
    EXPECT_EQ(core.expands(), 3u);
}

TEST(InterferenceCore, FloorKeepsMinWorkersPerSocket)
{
    ServingPolicy p = adaptPolicy(1, 1);
    p.minWorkersPerSocket = 2;
    InterferenceCore core(p, 1);
    for (int i = 0; i < 20; ++i)
        core.epochTick(0, 1000, /*workersOnSocket=*/4);
    EXPECT_EQ(core.retiredTarget(0), 2); // 4 workers - floor of 2
    // Rank order: top ranks retire first, the leader (largest rank)
    // never goes below the floor.
    EXPECT_TRUE(core.workerRetired(0, 0));
    EXPECT_TRUE(core.workerRetired(0, 1));
    EXPECT_FALSE(core.workerRetired(0, 2));
    EXPECT_FALSE(core.workerRetired(0, 3));
}

TEST(InterferenceCore, SteeringPrefersTheFirstCalmSocketUpward)
{
    InterferenceCore core(adaptPolicy(1, 1), 4);
    core.epochTick(1, 900, 8); // socket 1 pressured
    core.epochTick(2, 900, 8); // socket 2 pressured
    EXPECT_EQ(core.steerSocket(0), 0); // calm: identity
    EXPECT_EQ(core.steerSocket(1), 3); // scan up: 2 is hot, 3 is calm
    EXPECT_EQ(core.steerSocket(2), 3);
    EXPECT_EQ(core.steerSocket(-1), -1); // out of range: identity
    EXPECT_EQ(core.steerSocket(7), 7);
    for (int s = 0; s < 4; ++s)
        core.epochTick(s, 900, 8);
    EXPECT_EQ(core.steerSocket(1), 1); // all pressured: hold position
    core.reset();
    EXPECT_EQ(core.steerSocket(1), 1);
    EXPECT_EQ(core.retiredTarget(1), 0);
}

// ---------------------------------------------------------------------
// Threaded engine: worker-set shrink and re-expand
// ---------------------------------------------------------------------

TEST(InterferenceRuntime, WorkersRetireUnderPressureAndReinstateOnDecay)
{
    RuntimeOptions o;
    o.numWorkers = 2;
    o.numPlaces = 1;
    o.sched.serving.interference = InterferencePolicy::Adapt;
    o.sched.serving.pressureEpochUs = 2000;
    o.sched.serving.interferenceShrinkEpochs = 1;
    o.sched.serving.interferenceExpandEpochs = 2;
    Runtime rt(o);

    // Phase 1: flood the socket EWMA with saturated pressure. The place
    // leader's epoch ticks read the board and must retire the top-rank
    // worker (one worker stays: the minWorkersPerSocket floor).
    std::atomic<bool> stop_flood{false};
    std::thread flood([&] {
        while (!stop_flood.load(std::memory_order_acquire)) {
            rt.pressureBoard().publish(0, 1000);
            std::this_thread::sleep_for(100us);
        }
    });
    EXPECT_TRUE(awaitFor([&] { return rt.retiredWorkers() == 1; }, 10s))
        << "worker never retired under saturated pressure";

    // The retired runtime still serves work: the remaining worker owns
    // the whole socket (graceful degradation, not a stall).
    std::atomic<int> ran{0};
    JobHandle mid = rt.submit([&] {
        TaskGroup tg;
        for (int i = 0; i < 32; ++i)
            tg.spawn([&] { ran.fetch_add(1); });
        tg.sync();
    });
    mid.wait();
    EXPECT_EQ(mid.outcome(), JobOutcome::Done);
    EXPECT_EQ(ran.load(), 32);

    // Phase 2: stop the flood; the leader's real samples (no co-runner
    // here) decay the EWMA through the expand threshold and the worker
    // must be reinstated.
    stop_flood.store(true, std::memory_order_release);
    flood.join();
    // Await the worker-observed reinstatement edge, not just the
    // gauge: retiredWorkers() reflects the policy target the instant
    // the leader's epoch tick expands, while the parked worker counts
    // the reinstate up to one park timeout later.
    EXPECT_TRUE(awaitFor(
                    [&] {
                        return rt.retiredWorkers() == 0
                               && rt.stats().counters.interferenceReinstates
                                      >= 1u;
                    },
                    30s))
        << "worker never reinstated after the pressure decayed";

    const RuntimeStats stats = rt.stats();
    EXPECT_GE(stats.counters.interferenceRetires, 1u);
    EXPECT_GE(stats.counters.interferenceReinstates, 1u);
    EXPECT_GE(rt.interferenceCore().shrinks(), 1u);
    EXPECT_GE(rt.interferenceCore().expands(), 1u);
}

TEST(InterferenceRuntime, OffByDefaultTouchesNothing)
{
    RuntimeOptions o;
    o.numWorkers = 2;
    o.numPlaces = 1;
    Runtime rt(o);
    EXPECT_EQ(o.sched.serving.interference, InterferencePolicy::Off);
    std::atomic<int> ran{0};
    JobHandle h = rt.submit([&] {
        TaskGroup tg;
        for (int i = 0; i < 64; ++i)
            tg.spawn([&] { ran.fetch_add(1); });
        tg.sync();
    });
    h.wait();
    EXPECT_EQ(ran.load(), 64);
    EXPECT_EQ(rt.retiredWorkers(), 0);
    const RuntimeStats stats = rt.stats();
    EXPECT_EQ(stats.counters.interferenceRetires, 0u);
    EXPECT_EQ(stats.counters.interferenceReinstates, 0u);
}

// ---------------------------------------------------------------------
// Simulator: trace determinism and byte-compat invariants
// ---------------------------------------------------------------------

namespace {

struct SimSetup
{
    sim::ComputationDag dag;
    std::vector<sim::SimJob> jobs;
};

SimSetup
servingSetup(int n, double rate_per_sec, uint64_t seed = 11)
{
    SimSetup s;
    std::vector<sim::FrameId> roots;
    roots.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        roots.push_back(s.dag.append(workloads::fibDag(10)));
    sim::ArrivalProcess p;
    p.ratePerSec = rate_per_sec;
    p.seed = seed;
    const auto at = sim::arrivalCycles(p, n, 2.2);
    s.jobs.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        s.jobs[static_cast<std::size_t>(i)] = {
            roots[static_cast<std::size_t>(i)],
            at[static_cast<std::size_t>(i)], i % 3};
    }
    return s;
}

/** Half of socket 0 stolen from early in the run (these serving runs
 * last ~300k cycles) to past its end, with a slowdown on the rest of
 * the socket. */
sim::InterferenceTrace
halfSocketTrace()
{
    sim::InterferenceTrace t;
    t.intervals.push_back(
        {30e3, 1e12, /*socket=*/0, /*coresStolen=*/4,
         /*slowdownPermille=*/500});
    return t;
}

sim::SimConfig
interferenceCfg(InterferencePolicy knob)
{
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.sched.serving.interference = knob;
    // 2us epochs = ~4.4k cycles: dozens of ladder ticks inside one
    // ~300k-cycle run, so shrink and re-expand both happen in-window.
    cfg.sched.serving.pressureEpochUs = 2;
    cfg.sched.serving.interferenceShrinkEpochs = 2;
    cfg.sched.serving.interferenceExpandEpochs = 2;
    return cfg;
}

} // namespace

TEST(SimInterference, TraceQueriesAreExactOnTheBoundaries)
{
    sim::InterferenceTrace t;
    t.intervals.push_back({100.0, 200.0, 0, 4, 300});
    EXPECT_EQ(t.stolenOn(0, 99.0), 0);
    EXPECT_EQ(t.stolenOn(0, 100.0), 4); // closed start
    EXPECT_EQ(t.stolenOn(0, 199.9), 4);
    EXPECT_EQ(t.stolenOn(0, 200.0), 0); // open end
    EXPECT_EQ(t.stolenOn(1, 150.0), 0); // other sockets untouched
    EXPECT_EQ(t.slowdownOn(0, 150.0), 300);
    // Stolen cores pay the time-slice factor, the rest the slowdown.
    EXPECT_DOUBLE_EQ(t.costFactor(0, 0, 150.0),
                     1.0 / sim::InterferenceTrace::kStolenShare);
    EXPECT_DOUBLE_EQ(t.costFactor(0, 4, 150.0), 1.3);
    EXPECT_DOUBLE_EQ(t.costFactor(0, 0, 50.0), 1.0);
    EXPECT_DOUBLE_EQ(t.costFactor(1, 0, 150.0), 1.0);
    // Pressure: 4 stolen cores lose 7/8 each, 4 slowed lose 300/1300.
    const int pm = t.pressureAt(0, 150.0, 8);
    EXPECT_GT(pm, 400);
    EXPECT_LT(pm, 700);
    EXPECT_EQ(t.pressureAt(0, 50.0, 8), 0);
    EXPECT_EQ(t.pressureAt(1, 150.0, 8), 0);
}

TEST(SimInterference, TracedRunsAreByteDeterministic)
{
    SimSetup s = servingSetup(120, 2e6);
    const sim::InterferenceTrace trace = halfSocketTrace();
    sim::SimConfig cfg = interferenceCfg(InterferencePolicy::Adapt);
    cfg.interference = &trace;
    const sim::ServingResult a =
        sim::simulateServingPacked(s.dag, s.jobs, 16, cfg);
    const sim::ServingResult b =
        sim::simulateServingPacked(s.dag, s.jobs, 16, cfg);
    EXPECT_EQ(a.sim.elapsedCycles, b.sim.elapsedCycles);
    EXPECT_EQ(a.sim.counters.interferenceRetires,
              b.sim.counters.interferenceRetires);
    EXPECT_EQ(a.sim.counters.stolenCycles, b.sim.counters.stolenCycles);
    EXPECT_EQ(a.p99Us, b.p99Us);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].outcome, b.jobs[i].outcome) << "job " << i;
        EXPECT_EQ(a.jobs[i].finishCycles, b.jobs[i].finishCycles);
    }
}

TEST(SimInterference, EmptyTraceIsByteIdenticalToNullTrace)
{
    // The hooks with nothing to charge must not perturb the schedule:
    // this is the Off-compat invariant the bench also gates.
    SimSetup s = servingSetup(100, 2e6);
    sim::SimConfig cfg = interferenceCfg(InterferencePolicy::Off);
    const sim::ServingResult null_run =
        sim::simulateServingPacked(s.dag, s.jobs, 16, cfg);
    const sim::InterferenceTrace empty;
    cfg.interference = &empty;
    const sim::ServingResult empty_run =
        sim::simulateServingPacked(s.dag, s.jobs, 16, cfg);
    EXPECT_EQ(null_run.sim.elapsedCycles, empty_run.sim.elapsedCycles);
    EXPECT_EQ(null_run.sim.counters.steals,
              empty_run.sim.counters.steals);
    EXPECT_EQ(null_run.sim.counters.stolenCycles, 0u);
    EXPECT_EQ(empty_run.sim.counters.stolenCycles, 0u);
    ASSERT_EQ(null_run.jobs.size(), empty_run.jobs.size());
    for (std::size_t i = 0; i < null_run.jobs.size(); ++i)
        EXPECT_EQ(null_run.jobs[i].finishCycles,
                  empty_run.jobs[i].finishCycles);
}

TEST(SimInterference, AdaptRetiresAndReexpandsAroundABurst)
{
    // A burst that ends mid-run: the ladder must shrink while it
    // stands and fully re-expand after it lifts.
    SimSetup s = servingSetup(200, 1e6);
    sim::InterferenceTrace trace;
    trace.intervals.push_back({30e3, 200e3, 0, 4, 500});
    sim::SimConfig cfg = interferenceCfg(InterferencePolicy::Adapt);
    cfg.interference = &trace;
    const sim::ServingResult r =
        sim::simulateServingPacked(s.dag, s.jobs, 16, cfg);
    EXPECT_GT(r.sim.counters.interferenceRetires, 0u);
    EXPECT_GT(r.sim.counters.interferenceReexpands, 0u);
    EXPECT_GT(r.sim.counters.stolenCycles, 0u);
    EXPECT_GT(r.sim.counters.slowedCycles, 0u);
    EXPECT_EQ(r.done + r.expired + r.cancelled + r.rejected,
              s.jobs.size());
}

TEST(SimInterference, OffKnobChargesTheTraceButNeverAdapts)
{
    SimSetup s = servingSetup(120, 2e6);
    const sim::InterferenceTrace trace = halfSocketTrace();
    sim::SimConfig cfg = interferenceCfg(InterferencePolicy::Off);
    cfg.interference = &trace;
    const sim::ServingResult r =
        sim::simulateServingPacked(s.dag, s.jobs, 16, cfg);
    EXPECT_GT(r.sim.counters.stolenCycles, 0u); // the bill is charged
    EXPECT_EQ(r.sim.counters.interferenceRetires, 0u); // no adaptation
    EXPECT_EQ(r.sim.counters.interferenceReexpands, 0u);
}

// ---------------------------------------------------------------------
// Graceful slab-carve failure (satellite 1)
// ---------------------------------------------------------------------

TEST(SlabFallback, CarveReturnsNullOnInjectedFailureThenRecovers)
{
    NumaArena::failNextCarvesForTesting(2);
    EXPECT_EQ(NumaArena::carveSlab(1 << 16), nullptr);
    EXPECT_EQ(NumaArena::carveSlab(1 << 16), nullptr);
    void *slab = NumaArena::carveSlab(1 << 16); // injection exhausted
    ASSERT_NE(slab, nullptr);
    NumaArena::releaseSlab(slab);
}

TEST(SlabFallback, RuntimeServesJobsOnHeapFramesWhenCarvesFail)
{
    RuntimeOptions o;
    o.numWorkers = 2;
    o.numPlaces = 1;
    Runtime rt(o);
    // Every carve for a while fails: first-spawn slow paths on both
    // workers degrade to plain heap frames instead of aborting.
    NumaArena::failNextCarvesForTesting(64);
    std::atomic<int> ran{0};
    JobHandle h = rt.submit([&] {
        TaskGroup tg;
        for (int i = 0; i < 128; ++i)
            tg.spawn([&] { ran.fetch_add(1); });
        tg.sync();
    });
    h.wait();
    NumaArena::failNextCarvesForTesting(0); // clear leftover injection
    EXPECT_EQ(h.outcome(), JobOutcome::Done);
    EXPECT_EQ(ran.load(), 128);
    EXPECT_GE(rt.stats().counters.slabFallbacks, 1u);
}

TEST(SlabFallback, DataPlaneFallsBackToPlainHeapBlocks)
{
    RuntimeOptions o;
    o.numWorkers = 1;
    o.numPlaces = 1;
    Runtime rt(o);
    NumaArena::failNextCarvesForTesting(64);
    std::atomic<bool> ok{false};
    JobHandle h = rt.submit([&] {
        // Pool-class size: heap allocateSlow fails its carve, falls
        // through to the arena (also failing) and lands on the plain
        // heap — the block must still be writable and freeable.
        void *p = numa::allocate(256);
        ok.store(p != nullptr);
        if (p != nullptr) {
            std::memset(p, 0xab, 256);
            numa::deallocate(p);
        }
    });
    h.wait();
    NumaArena::failNextCarvesForTesting(0);
    EXPECT_EQ(h.outcome(), JobOutcome::Done);
    EXPECT_TRUE(ok.load());
    EXPECT_GE(rt.stats().counters.dataSlabFallbacks, 1u);
}

// ---------------------------------------------------------------------
// Stall watchdog (satellite 2)
// ---------------------------------------------------------------------

TEST(Watchdog, WedgedJobProducesADumpAndRecoveryStopsThem)
{
    RuntimeOptions o;
    o.numWorkers = 1;
    o.numPlaces = 1;
    o.watchdogMs = 20;
    Runtime rt(o);

    std::atomic<bool> release{false};
    JobHandle h = rt.submit([&] {
        // Deliberately wedged: no task or job completes while this
        // spins, which is exactly the signature the watchdog dumps on.
        while (!release.load(std::memory_order_acquire))
            std::this_thread::yield();
    });
    EXPECT_TRUE(awaitFor([&] { return rt.watchdogDumps() >= 1; }, 10s))
        << "watchdog never fired on a wedged runtime";
    release.store(true, std::memory_order_release);
    h.wait();
    EXPECT_EQ(h.outcome(), JobOutcome::Done);

    // Recovered: progress resumed, so the dump count stabilizes. (The
    // watchdog only observes — it must never kill or unwedge work.)
    const uint64_t settled = rt.watchdogDumps();
    std::atomic<int> ran{0};
    JobHandle after = rt.submit([&] { ran.fetch_add(1); });
    after.wait();
    EXPECT_EQ(ran.load(), 1);
    std::this_thread::sleep_for(100ms);
    EXPECT_EQ(rt.watchdogDumps(), settled);
}

TEST(Watchdog, IdleRuntimeNeverDumps)
{
    RuntimeOptions o;
    o.numWorkers = 1;
    o.numPlaces = 1;
    o.watchdogMs = 10;
    Runtime rt(o);
    std::this_thread::sleep_for(100ms);
    EXPECT_EQ(rt.watchdogDumps(), 0u); // no active work, no stall
}

TEST(Watchdog, OffByDefaultSpawnsNoMonitor)
{
    RuntimeOptions o;
    o.numWorkers = 1;
    o.numPlaces = 1;
    Runtime rt(o);
    EXPECT_EQ(o.watchdogMs, 0);
    std::atomic<bool> release{false};
    JobHandle h = rt.submit([&] {
        while (!release.load(std::memory_order_acquire))
            std::this_thread::yield();
    });
    std::this_thread::sleep_for(50ms);
    EXPECT_EQ(rt.watchdogDumps(), 0u); // wedged, but nobody watches
    release.store(true, std::memory_order_release);
    h.wait();
    EXPECT_EQ(h.outcome(), JobOutcome::Done);
}
