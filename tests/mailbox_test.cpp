/**
 * @file
 * Mailbox tests. The single-entry capacity is load-bearing in the
 * Section IV analysis, so it is pinned down here, including under
 * concurrent contention.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "deque/mailbox.h"

namespace numaws {
namespace {

struct Frame
{
    int id;
};

TEST(Mailbox, PutTakeRoundTrip)
{
    Mailbox<Frame> m;
    Frame f{7};
    EXPECT_FALSE(m.full());
    EXPECT_TRUE(m.tryPut(&f));
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.peek(), &f);
    EXPECT_EQ(m.tryTake(), &f);
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.tryTake(), nullptr);
}

TEST(Mailbox, SecondPutFailsWhileFull)
{
    Mailbox<Frame> m;
    Frame a{1}, b{2};
    EXPECT_TRUE(m.tryPut(&a));
    // Capacity one: the pusher must retry elsewhere (PUSHBACK semantics).
    EXPECT_FALSE(m.tryPut(&b));
    EXPECT_EQ(m.tryTake(), &a);
    EXPECT_TRUE(m.tryPut(&b));
    EXPECT_EQ(m.tryTake(), &b);
}

TEST(Mailbox, PeekDoesNotRemove)
{
    Mailbox<Frame> m;
    Frame f{3};
    m.tryPut(&f);
    EXPECT_EQ(m.peek(), &f);
    EXPECT_EQ(m.peek(), &f);
    EXPECT_EQ(m.tryTake(), &f);
    EXPECT_EQ(m.peek(), nullptr);
}

TEST(Mailbox, DefaultCapacityIsOne)
{
    // The paper's protocol: exactly one parked frame per worker.
    Mailbox<Frame> m;
    EXPECT_EQ(m.capacity(), 1);
}

TEST(MailboxCapacity, HoldsExactlyCapacityFrames)
{
    Mailbox<Frame> m(4);
    EXPECT_EQ(m.capacity(), 4);
    Frame f[5] = {{0}, {1}, {2}, {3}, {4}};
    for (int i = 0; i < 4; ++i) {
        EXPECT_FALSE(m.full());
        EXPECT_TRUE(m.tryPut(&f[i])) << "slot " << i;
    }
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.occupied(), 4);
    EXPECT_FALSE(m.tryPut(&f[4])); // batch is bounded, PUSHBACK retries
    // Drain: every parked frame comes back exactly once.
    bool seen[4] = {};
    for (int i = 0; i < 4; ++i) {
        Frame *got = m.tryTake();
        ASSERT_NE(got, nullptr);
        ASSERT_GE(got->id, 0);
        ASSERT_LT(got->id, 4);
        EXPECT_FALSE(seen[got->id]);
        seen[got->id] = true;
    }
    EXPECT_EQ(m.tryTake(), nullptr);
    EXPECT_FALSE(m.full());
}

TEST(MailboxCapacity, ClampsToTheCompileTimeCap)
{
    Mailbox<Frame> m(1000);
    EXPECT_EQ(m.capacity(), kMaxMailboxCapacity);
    Mailbox<Frame> zero(0);
    EXPECT_EQ(zero.capacity(), 1);
}

TEST(MailboxBoard, PublishesOccupancyTransitions)
{
    OccupancyBoard board(2, {0, 0});
    Mailbox<Frame> m(2);
    m.attachBoard(&board, 1);
    Frame a{1}, b{2};
    EXPECT_FALSE(board.mailboxOccupied(1));
    m.tryPut(&a);
    EXPECT_TRUE(board.mailboxOccupied(1));
    m.tryPut(&b);
    EXPECT_TRUE(board.mailboxOccupied(1));
    m.tryTake();
    // One frame still parked: the bit stays up...
    EXPECT_TRUE(board.mailboxOccupied(1));
    m.tryTake();
    // ...and clears when the last one leaves.
    EXPECT_FALSE(board.mailboxOccupied(1));
    EXPECT_FALSE(board.mailboxOccupied(0)); // neighbor untouched
}

/** Many producers race to deposit; consumers race to take. Every frame is
 * taken exactly once and the slots never "hold" duplicate frames. */
void
exactlyOnceDelivery(int capacity)
{
    constexpr int kProducers = 3;
    constexpr int kFramesPer = 8000;
    Mailbox<Frame> m(capacity);
    std::vector<Frame> frames(kProducers * kFramesPer);
    for (int i = 0; i < static_cast<int>(frames.size()); ++i)
        frames[i].id = i;

    std::vector<std::atomic<int>> taken(frames.size());
    for (auto &t : taken)
        t.store(0);
    std::atomic<bool> done{false};

    std::thread consumer([&] {
        while (!done.load(std::memory_order_acquire)) {
            if (Frame *f = m.tryTake())
                taken[f->id].fetch_add(1);
            else
                std::this_thread::yield();
        }
        while (Frame *f = m.tryTake())
            taken[f->id].fetch_add(1);
    });

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kFramesPer; ++i) {
                Frame *f = &frames[p * kFramesPer + i];
                // Yield while the slot is full: a busy-spin here livelocks
                // single-core hosts (the consumer never gets scheduled).
                while (!m.tryPut(f))
                    std::this_thread::yield();
            }
        });
    }
    for (auto &t : producers)
        t.join();
    done.store(true, std::memory_order_release);
    consumer.join();

    for (std::size_t i = 0; i < frames.size(); ++i)
        ASSERT_EQ(taken[i].load(), 1) << "frame " << i;
}

TEST(MailboxStress, ExactlyOnceDelivery)
{
    exactlyOnceDelivery(1);
}

TEST(MailboxStress, ExactlyOnceDeliveryBatched)
{
    exactlyOnceDelivery(4);
}

} // namespace
} // namespace numaws
