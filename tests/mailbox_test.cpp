/**
 * @file
 * Mailbox tests. The single-entry capacity is load-bearing in the
 * Section IV analysis, so it is pinned down here, including under
 * concurrent contention.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "deque/mailbox.h"

namespace numaws {
namespace {

struct Frame
{
    int id;
};

TEST(Mailbox, PutTakeRoundTrip)
{
    Mailbox<Frame> m;
    Frame f{7};
    EXPECT_FALSE(m.full());
    EXPECT_TRUE(m.tryPut(&f));
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.peek(), &f);
    EXPECT_EQ(m.tryTake(), &f);
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.tryTake(), nullptr);
}

TEST(Mailbox, SecondPutFailsWhileFull)
{
    Mailbox<Frame> m;
    Frame a{1}, b{2};
    EXPECT_TRUE(m.tryPut(&a));
    // Capacity one: the pusher must retry elsewhere (PUSHBACK semantics).
    EXPECT_FALSE(m.tryPut(&b));
    EXPECT_EQ(m.tryTake(), &a);
    EXPECT_TRUE(m.tryPut(&b));
    EXPECT_EQ(m.tryTake(), &b);
}

TEST(Mailbox, PeekDoesNotRemove)
{
    Mailbox<Frame> m;
    Frame f{3};
    m.tryPut(&f);
    EXPECT_EQ(m.peek(), &f);
    EXPECT_EQ(m.peek(), &f);
    EXPECT_EQ(m.tryTake(), &f);
    EXPECT_EQ(m.peek(), nullptr);
}

/** Many producers race to deposit; consumers race to take. Every frame is
 * taken exactly once and the slot never "holds" two frames. */
TEST(MailboxStress, ExactlyOnceDelivery)
{
    constexpr int kProducers = 3;
    constexpr int kFramesPer = 8000;
    Mailbox<Frame> m;
    std::vector<Frame> frames(kProducers * kFramesPer);
    for (int i = 0; i < static_cast<int>(frames.size()); ++i)
        frames[i].id = i;

    std::vector<std::atomic<int>> taken(frames.size());
    for (auto &t : taken)
        t.store(0);
    std::atomic<bool> done{false};

    std::thread consumer([&] {
        while (!done.load(std::memory_order_acquire)) {
            if (Frame *f = m.tryTake())
                taken[f->id].fetch_add(1);
            else
                std::this_thread::yield();
        }
        while (Frame *f = m.tryTake())
            taken[f->id].fetch_add(1);
    });

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kFramesPer; ++i) {
                Frame *f = &frames[p * kFramesPer + i];
                // Yield while the slot is full: a busy-spin here livelocks
                // single-core hosts (the consumer never gets scheduled).
                while (!m.tryPut(f))
                    std::this_thread::yield();
            }
        });
    }
    for (auto &t : producers)
        t.join();
    done.store(true, std::memory_order_release);
    consumer.join();

    for (std::size_t i = 0; i < frames.size(); ++i)
        ASSERT_EQ(taken[i].load(), 1) << "frame " << i;
}

} // namespace
} // namespace numaws
