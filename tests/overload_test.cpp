/**
 * @file
 * PR 7 overload protection: job outcomes, cooperative cancellation,
 * deadlines, admission control, QueueDelay shedding, graceful teardown,
 * and the simulator mirror's byte-determinism under overload.
 *
 * Concurrency tests follow the repo's 1-core-host discipline: no
 * wall-clock speed assertions, only ordering, outcomes, counters, and
 * bounded liveness. Where a scenario needs a job to *stay queued*, a
 * blocker job pins the single worker so the queue state is
 * deterministic, and the blocker is released through an atomic flag.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "numaws.h"
#include "sched/shed_core.h"
#include "sim/serving.h"
#include "workloads/workloads.h"

using namespace numaws;
using namespace std::chrono_literals;

namespace {

RuntimeOptions
oneWorker()
{
    RuntimeOptions o;
    o.numWorkers = 1;
    o.numPlaces = 1;
    return o;
}

/** Spin until @p flag turns true (bounded by the test timeout). */
void
awaitFlag(const std::atomic<bool> &flag)
{
    while (!flag.load(std::memory_order_acquire))
        std::this_thread::yield();
}

/** A job body that parks its worker until released. */
struct Blocker
{
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};

    auto
    body()
    {
        return [this] {
            started.store(true, std::memory_order_release);
            while (!release.load(std::memory_order_acquire))
                std::this_thread::yield();
        };
    }
};

} // namespace

// ---------------------------------------------------------------------
// ShedCore units (the engine-shared brain)
// ---------------------------------------------------------------------

TEST(ShedCore, NonePolicyAdmitsEverythingEvenOverCapacity)
{
    ServingPolicy p;
    p.shed = ShedPolicy::None;
    p.laneCapacity[0] = 1;
    ShedCore core(p);
    EXPECT_FALSE(core.enabled());
    EXPECT_TRUE(core.admit(0, 1000));
    EXPECT_FALSE(core.overloaded());
}

TEST(ShedCore, RejectPolicyHonorsPerLaneCapacity)
{
    ServingPolicy p;
    p.shed = ShedPolicy::Reject;
    p.laneCapacity[0] = 2;
    p.laneCapacity[1] = 0; // 0 = unbounded
    ShedCore core(p);
    EXPECT_TRUE(core.enabled());
    EXPECT_TRUE(core.admit(0, 0));
    EXPECT_TRUE(core.admit(0, 1));
    EXPECT_FALSE(core.admit(0, 2));
    EXPECT_FALSE(core.admit(0, 100));
    EXPECT_TRUE(core.admit(1, 1 << 20));
    // Capacity alone never flags overload (that is QueueDelay's signal).
    EXPECT_FALSE(core.overloaded());
}

TEST(ShedCore, DelayEwmaSeedsThenConvergesAndFlagsOverload)
{
    ServingPolicy p;
    p.shed = ShedPolicy::QueueDelay;
    p.queueDelayTargetUs[0] = 100; // 100us target on the latency class
    p.queueDelayEwmaShift = 2;     // weight 1/4 for a fast test
    ShedCore core(p);
    EXPECT_EQ(core.delayEwmaNs(0), 0);
    EXPECT_FALSE(core.overloaded());
    // First observation seeds the filter outright.
    core.observeDelay(0, 40'000);
    EXPECT_EQ(core.delayEwmaNs(0), 40'000);
    EXPECT_FALSE(core.overloaded()); // 40us < 100us target
    // Sustained 200us observations walk the EWMA up past the target.
    for (int i = 0; i < 32; ++i)
        core.observeDelay(0, 200'000);
    EXPECT_GT(core.delayEwmaNs(0), 100'000);
    EXPECT_TRUE(core.overloaded());
    // And back down once the queue drains.
    for (int i = 0; i < 64; ++i)
        core.observeDelay(0, 0);
    EXPECT_FALSE(core.overloaded());
}

// ---------------------------------------------------------------------
// JobHandle hardening (invalid-use panics, not null derefs)
// ---------------------------------------------------------------------

using JobHandleDeathTest = ::testing::Test;

TEST(JobHandleDeathTest, AccessorsPanicWithMessageOnInvalidHandle)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    JobHandle h;
    ASSERT_FALSE(h.valid());
    EXPECT_DEATH(h.wait(), "JobHandle::wait on an invalid handle");
    EXPECT_DEATH((void)h.outcome(),
                 "JobHandle::outcome on an invalid handle");
    EXPECT_DEATH((void)h.cancel(),
                 "JobHandle::cancel on an invalid handle");
    EXPECT_DEATH((void)h.latencyNs(),
                 "JobHandle::latencyNs on an invalid handle");
    EXPECT_DEATH((void)h.waitFor(1000),
                 "JobHandle::waitFor on an invalid handle");
}

TEST(JobHandleDeathTest, MovedFromHandlePanicsToo)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Runtime rt(oneWorker());
    JobHandle h = rt.submit([] {});
    JobHandle moved = std::move(h);
    moved.wait();
    EXPECT_DEATH((void)h.done(), "JobHandle::done on an invalid handle");
}

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

TEST(Cancel, QueuedJobIsSkippedAtClaimTimeAndNeverStarts)
{
    Runtime rt(oneWorker());
    Blocker b;
    JobHandle blocker = rt.submit(b.body());
    awaitFlag(b.started);
    std::atomic<bool> ran{false};
    JobHandle victim = rt.submit([&ran] { ran.store(true); });
    EXPECT_TRUE(victim.cancel()); // recorded while still queued
    b.release.store(true, std::memory_order_release);
    blocker.wait();
    victim.wait(); // returns normally; the outcome tells the story
    EXPECT_FALSE(ran.load());
    EXPECT_EQ(victim.outcome(), JobOutcome::Cancelled);
    EXPECT_EQ(blocker.outcome(), JobOutcome::Done);
    const RuntimeStats s = rt.stats();
    const auto &normal =
        s.jobOutcomes[static_cast<int>(JobClass::Normal)];
    EXPECT_EQ(normal.cancelled, 1u);
    EXPECT_EQ(normal.done, 1u);
    // Never-ran jobs stay out of the latency percentiles.
    EXPECT_EQ(s.jobLatency.count(), 1u);
}

TEST(Cancel, RunningJobUnwindsAtSpawnBoundary)
{
    Runtime rt(oneWorker());
    std::atomic<bool> started{false};
    std::atomic<uint64_t> leaves{0};
    JobHandle h = rt.submit([&] {
        started.store(true, std::memory_order_release);
        // Spawn forever: only the cooperative boundary check can end
        // this loop. A missed cancellation hangs the test (bounded
        // liveness is the assertion).
        for (;;) {
            TaskGroup tg;
            tg.spawn([&leaves] { leaves.fetch_add(1); });
            tg.sync();
        }
    });
    awaitFlag(started);
    EXPECT_TRUE(h.cancel());
    h.wait();
    EXPECT_EQ(h.outcome(), JobOutcome::Cancelled);
    EXPECT_GE(h.execNs(), 0);
}

TEST(Cancel, TokenPollingBodyObservesCancelWithoutSpawning)
{
    Runtime rt(oneWorker());
    // Off-runtime there is no enclosing job: the token is invalid and
    // never reports cancellation.
    EXPECT_FALSE(currentCancelToken().valid());
    std::atomic<bool> started{false};
    std::atomic<bool> token_valid{false};
    JobHandle h = rt.submit([&] {
        const CancelToken tok = currentCancelToken();
        token_valid.store(tok.valid());
        started.store(true, std::memory_order_release);
        while (!tok.cancelled())
            std::this_thread::yield();
        tok.throwIfCancelled(); // the explicit-poll unwind
        ADD_FAILURE() << "throwIfCancelled did not throw";
    });
    awaitFlag(started);
    EXPECT_TRUE(h.cancel());
    h.wait();
    EXPECT_TRUE(token_valid.load());
    EXPECT_EQ(h.outcome(), JobOutcome::Cancelled);
}

TEST(Cancel, TokenPropagatesIntoSpawnedSubtasks)
{
    RuntimeOptions o;
    o.numWorkers = 2;
    o.numPlaces = 1;
    Runtime rt(o);
    std::atomic<bool> all_valid{true};
    rt.run([&] {
        TaskGroup tg;
        for (int i = 0; i < 16; ++i)
            tg.spawn([&all_valid] {
                if (!currentCancelToken().valid())
                    all_valid.store(false);
            });
        tg.sync();
    });
    EXPECT_TRUE(all_valid.load());
}

TEST(Cancel, DoubleCancelIsIdempotentAndLateCancelReportsFalse)
{
    Runtime rt(oneWorker());
    Blocker b;
    JobHandle blocker = rt.submit(b.body());
    awaitFlag(b.started);
    JobHandle victim = rt.submit([] {});
    EXPECT_TRUE(victim.cancel());
    EXPECT_TRUE(victim.cancel()); // still unresolved: both report true
    b.release.store(true, std::memory_order_release);
    victim.wait();
    EXPECT_EQ(victim.outcome(), JobOutcome::Cancelled);
    EXPECT_FALSE(victim.cancel()); // resolved: the request is moot
    blocker.wait();
    // A cancel that loses the race outright: the job already finished.
    JobHandle done = rt.submit([] {});
    done.wait();
    EXPECT_FALSE(done.cancel());
    EXPECT_EQ(done.outcome(), JobOutcome::Done);
}

TEST(Cancel, CancelVsStartAndFinishRacesAlwaysResolve)
{
    // Hammer the claim-time and finish-time races from a second thread:
    // whatever interleaving lands, every job resolves to Done or
    // Cancelled (never Pending, never Failed) and every wait returns.
    RuntimeOptions o;
    o.numWorkers = 2;
    o.numPlaces = 1;
    Runtime rt(o);
    int done_count = 0;
    int cancelled_count = 0;
    for (int i = 0; i < 300; ++i) {
        JobHandle h = rt.submit([] {
            volatile int x = 0;
            for (int k = 0; k < 50; ++k)
                x = x + k;
        });
        if (i % 3 == 0)
            std::this_thread::yield();
        h.cancel();
        h.wait();
        const JobOutcome out = h.outcome();
        ASSERT_TRUE(out == JobOutcome::Done
                    || out == JobOutcome::Cancelled)
            << "iteration " << i << ": " << jobOutcomeName(out);
        (out == JobOutcome::Done ? done_count : cancelled_count)++;
    }
    const auto &c = rt.stats().jobOutcomes[static_cast<int>(
        JobClass::Normal)];
    EXPECT_EQ(c.done, static_cast<uint64_t>(done_count));
    EXPECT_EQ(c.cancelled, static_cast<uint64_t>(cancelled_count));
}

// ---------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------

TEST(Deadline, ExpiresAtDequeueWithoutStarting)
{
    Runtime rt(oneWorker());
    Blocker b;
    JobHandle blocker = rt.submit(b.body());
    awaitFlag(b.started);
    std::atomic<bool> ran{false};
    JobOptions opts;
    opts.deadlineNs = 1'000'000; // 1ms, spent entirely in the queue
    JobHandle victim = rt.submit([&ran] { ran.store(true); }, opts);
    std::this_thread::sleep_for(5ms); // let the deadline lapse queued
    b.release.store(true, std::memory_order_release);
    victim.wait();
    EXPECT_FALSE(ran.load());
    EXPECT_EQ(victim.outcome(), JobOutcome::Expired);
    blocker.wait();
    EXPECT_EQ(rt.stats()
                  .jobOutcomes[static_cast<int>(JobClass::Normal)]
                  .expired,
              1u);
}

TEST(Deadline, ExpiresMidRunAtSpawnBoundary)
{
    Runtime rt(oneWorker());
    JobOptions opts;
    opts.deadlineNs = 10'000'000; // 10ms
    JobHandle h = rt.submit(
        [] {
            // Spawn until the deadline boundary check fires; a missed
            // expiry hangs the test.
            for (;;) {
                TaskGroup tg;
                tg.spawn([] {
                    std::this_thread::sleep_for(500us);
                });
                tg.sync();
            }
        },
        opts);
    h.wait();
    EXPECT_EQ(h.outcome(), JobOutcome::Expired);
}

TEST(Deadline, LateFinishWithoutBoundariesStillResolvesExpired)
{
    // A body that runs past its deadline but never hits a spawn/sync
    // boundary completes its work — and still resolves Expired at the
    // finish edge (the deterministic flip finishJob applies, matching
    // the simulator's clock-edge semantics).
    Runtime rt(oneWorker());
    JobOptions opts;
    // Wide margins: the claim must land inside the deadline (else the
    // job is skipped at claim time and never runs), so the deadline is
    // generous relative to any plausible claim latency on a loaded CI
    // host, and the sleep comfortably overshoots it.
    opts.deadlineNs = 50'000'000; // 50ms
    std::atomic<bool> ran{false};
    JobHandle h = rt.submit(
        [&ran] {
            std::this_thread::sleep_for(60ms);
            ran.store(true);
        },
        opts);
    h.wait();
    EXPECT_TRUE(ran.load()); // the work itself was not abandoned
    EXPECT_EQ(h.outcome(), JobOutcome::Expired);
    // Expired jobs stay out of the served-latency percentiles.
    EXPECT_EQ(rt.stats().jobLatency.count(), 0u);
}

TEST(Deadline, WaitForTimesOutThenSucceeds)
{
    Runtime rt(oneWorker());
    Blocker b;
    JobHandle blocker = rt.submit(b.body());
    awaitFlag(b.started);
    JobHandle h = rt.submit([] {});
    EXPECT_FALSE(h.waitFor(2'000'000)); // 2ms: still queued behind b
    EXPECT_FALSE(h.done());
    b.release.store(true, std::memory_order_release);
    h.wait();
    EXPECT_TRUE(h.waitFor(1)); // already done: true without blocking
    EXPECT_EQ(h.outcome(), JobOutcome::Done);
    blocker.wait();
}

// ---------------------------------------------------------------------
// Admission control and shedding
// ---------------------------------------------------------------------

TEST(Admission, RejectPolicyBoundsLaneDepthDeterministically)
{
    RuntimeOptions o = oneWorker();
    o.sched.serving.shed = ShedPolicy::Reject;
    o.sched.serving.laneCapacity[static_cast<int>(JobClass::Normal)] = 3;
    Runtime rt(o);
    Blocker b;
    JobHandle blocker = rt.submit(b.body());
    awaitFlag(b.started);
    // Worker pinned: exactly laneCapacity jobs queue, the rest bounce.
    std::vector<JobHandle> hs;
    for (int i = 0; i < 8; ++i)
        hs.push_back(rt.submit([] {}));
    int rejected = 0;
    for (JobHandle &h : hs) {
        if (h.outcome() == JobOutcome::Rejected) {
            ++rejected;
            // Rejected handles resolve synchronously at submit.
            EXPECT_TRUE(h.done());
            h.wait(); // returns immediately, no exception
        }
    }
    EXPECT_EQ(rejected, 5);
    b.release.store(true, std::memory_order_release);
    for (JobHandle &h : hs)
        h.wait();
    blocker.wait();
    const auto &c =
        rt.stats().jobOutcomes[static_cast<int>(JobClass::Normal)];
    EXPECT_EQ(c.rejected, 5u);
    EXPECT_EQ(c.shed, 0u);
    EXPECT_EQ(c.done, 4u); // blocker + the 3 queued jobs
}

TEST(Admission, MultiSubmitterStressNeverHangsAndTalliesAddUp)
{
    RuntimeOptions o;
    o.numWorkers = 2;
    o.numPlaces = 1;
    o.sched.serving.shed = ShedPolicy::Reject;
    for (int c = 0; c < kNumServingClasses; ++c)
        o.sched.serving.laneCapacity[c] = 2;
    Runtime rt(o);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 100;
    std::atomic<int> done{0};
    std::atomic<int> rejected{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&rt, &done, &rejected, t] {
            for (int i = 0; i < kPerThread; ++i) {
                JobOptions opts;
                opts.cls =
                    static_cast<JobClass>((t + i) % kNumJobClasses);
                JobHandle h = rt.submit(
                    [] {
                        volatile int x = 0;
                        for (int k = 0; k < 200; ++k)
                            x = x + k;
                    },
                    opts);
                h.wait();
                const JobOutcome out = h.outcome();
                if (out == JobOutcome::Done)
                    done.fetch_add(1);
                else if (out == JobOutcome::Rejected)
                    rejected.fetch_add(1);
                else
                    ADD_FAILURE()
                        << "unexpected outcome " << jobOutcomeName(out);
            }
        });
    }
    for (std::thread &t : submitters)
        t.join();
    EXPECT_EQ(done.load() + rejected.load(), kThreads * kPerThread);
    uint64_t stat_done = 0;
    uint64_t stat_rejected = 0;
    const RuntimeStats s = rt.stats();
    for (int c = 0; c < kNumJobClasses; ++c) {
        stat_done += s.jobOutcomes[c].done;
        stat_rejected += s.jobOutcomes[c].rejected;
        EXPECT_EQ(s.jobOutcomes[c].shed, 0u);
    }
    EXPECT_EQ(stat_done, static_cast<uint64_t>(done.load()));
    EXPECT_EQ(stat_rejected, static_cast<uint64_t>(rejected.load()));
    // Latency percentiles cover exactly the served jobs.
    EXPECT_EQ(s.jobLatency.count(), stat_done);
}

TEST(Shedding, QueueDelayShedsOnceOverloadedAndCountsTheCause)
{
    RuntimeOptions o = oneWorker();
    o.sched.serving.shed = ShedPolicy::QueueDelay;
    for (int c = 0; c < kNumServingClasses; ++c)
        o.sched.serving.queueDelayTargetUs[c] = 1; // 1us: trip easily
    Runtime rt(o);
    // Phase 1: trip the delay EWMA over target — pin the worker, let a
    // job soak in the queue, release. Either the soaked job's claim
    // observes the multi-millisecond delay, or an earlier claim already
    // tripped the 1us target and the soaked job was itself shed; both
    // paths end overloaded.
    Blocker b1;
    JobHandle blocker1 = rt.submit(b1.body());
    awaitFlag(b1.started);
    JobHandle soaked = rt.submit([] {});
    std::this_thread::sleep_for(5ms); // queue delay >> 1us target
    b1.release.store(true, std::memory_order_release);
    soaked.wait();
    blocker1.wait();
    EXPECT_TRUE(rt.shedCore().overloaded());
    // Phase 2: pin the worker again — the blocker arrives into empty
    // lanes, so CoDel's standing-queue rule admits it unshed and the
    // worker claims it. Every further admission finds a standing queue
    // while overloaded and sheds one victim from the lowest class:
    // submitting Batch B1, Batch B2, then Latency L sheds B1 (B2's
    // admission) and B2 (L's admission), leaving only L queued — the
    // Latency job is structurally the last to feel the shedding.
    Blocker b2;
    JobHandle blocker2 = rt.submit(b2.body());
    awaitFlag(b2.started);
    JobOptions batch;
    batch.cls = JobClass::Batch;
    JobHandle victim1 = rt.submit([] {}, batch);
    JobHandle victim2 = rt.submit([] {}, batch);
    EXPECT_EQ(victim1.outcome(), JobOutcome::Rejected);
    JobOptions lat;
    lat.cls = JobClass::Latency;
    JobHandle protectee = rt.submit([] {}, lat);
    EXPECT_EQ(victim2.outcome(), JobOutcome::Rejected);
    b2.release.store(true, std::memory_order_release);
    protectee.wait();
    blocker2.wait();
    EXPECT_EQ(protectee.outcome(), JobOutcome::Done);
    const RuntimeStats s = rt.stats();
    const auto &batch_counts =
        s.jobOutcomes[static_cast<int>(JobClass::Batch)];
    EXPECT_EQ(batch_counts.shed, 2u);
    EXPECT_EQ(batch_counts.rejected, 0u); // sheds, not capacity bounces
    EXPECT_EQ(s.jobOutcomes[static_cast<int>(JobClass::Latency)].shed,
              0u);
}

// ---------------------------------------------------------------------
// Graceful shutdown
// ---------------------------------------------------------------------

TEST(Shutdown, CancelQueuedResolvesEveryLaneWithoutRunning)
{
    Blocker b;
    std::atomic<int> ran{0};
    std::vector<JobHandle> queued;
    std::thread releaser;
    {
        RuntimeOptions o = oneWorker();
        o.shutdownPolicy = ShutdownPolicy::CancelQueued;
        Runtime rt(o);
        JobHandle blocker = rt.submit(b.body());
        awaitFlag(b.started);
        // One queued job in every lane while the only worker is pinned.
        for (int c = 0; c < kNumJobClasses; ++c) {
            JobOptions opts;
            opts.cls = static_cast<JobClass>(c);
            queued.push_back(
                rt.submit([&ran] { ran.fetch_add(1); }, opts));
        }
        // The destructor first cancels the queue (the worker is still
        // pinned, so all three are there), then waits for the blocker —
        // released from a helper thread so teardown can finish.
        releaser = std::thread([&b] {
            std::this_thread::sleep_for(20ms);
            b.release.store(true, std::memory_order_release);
        });
    }
    releaser.join();
    EXPECT_EQ(ran.load(), 0);
    for (JobHandle &h : queued) {
        EXPECT_TRUE(h.done());
        EXPECT_EQ(h.outcome(), JobOutcome::Cancelled);
        h.wait(); // returns normally after the runtime is gone
    }
}

TEST(Shutdown, DrainPolicyStillRunsQueuedJobs)
{
    std::atomic<int> ran{0};
    {
        Runtime rt(oneWorker()); // default ShutdownPolicy::Drain
        for (int i = 0; i < 4; ++i)
            rt.submit([&ran] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 4);
}

// ---------------------------------------------------------------------
// Simulator mirror
// ---------------------------------------------------------------------

namespace {

struct SimOverloadSetup
{
    sim::ComputationDag dag;
    std::vector<sim::SimJob> jobs;
};

/** @p n fib(10) jobs arriving at @p rate_per_sec, round-robin classes. */
SimOverloadSetup
overloadSetup(int n, double rate_per_sec, uint64_t seed = 7)
{
    SimOverloadSetup s;
    std::vector<sim::FrameId> roots;
    roots.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        roots.push_back(s.dag.append(workloads::fibDag(10)));
    sim::ArrivalProcess p;
    p.ratePerSec = rate_per_sec;
    p.seed = seed;
    const auto at = sim::arrivalCycles(p, n, 2.2);
    s.jobs.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        s.jobs[static_cast<std::size_t>(i)] = {
            roots[static_cast<std::size_t>(i)], at[static_cast<std::size_t>(i)],
            i % 3};
    }
    return s;
}

} // namespace

TEST(SimOverload, OutcomeTalliesPartitionTheJobsAndShedOnlyUnderQueueDelay)
{
    SimOverloadSetup s = overloadSetup(120, 2e6); // far over capacity
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.sched.serving.shed = ShedPolicy::None;
    const sim::ServingResult none =
        sim::simulateServingPacked(s.dag, s.jobs, 4, cfg);
    EXPECT_EQ(none.done, s.jobs.size());
    EXPECT_EQ(none.rejected + none.expired + none.cancelled, 0u);
    EXPECT_GT(none.goodputPerSec, 0.0);

    cfg.sched.serving.shed = ShedPolicy::QueueDelay;
    for (int c = 0; c < kNumServingClasses; ++c)
        cfg.sched.serving.queueDelayTargetUs[c] = 5;
    const sim::ServingResult qd =
        sim::simulateServingPacked(s.dag, s.jobs, 4, cfg);
    EXPECT_EQ(qd.done + qd.expired + qd.cancelled + qd.rejected,
              s.jobs.size());
    EXPECT_GT(qd.shed, 0u);
    EXPECT_EQ(qd.shed, qd.rejected); // no capacities: all rejects are sheds
    // Shedding keeps the claim queue short: the served jobs' queue
    // delay collapses against the unprotected run's.
    EXPECT_LT(qd.queueP99Us, none.queueP99Us);
}

TEST(SimOverload, RejectPolicyBouncesAtArrivalWhenLanesAreFull)
{
    SimOverloadSetup s = overloadSetup(120, 2e6);
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.sched.serving.shed = ShedPolicy::Reject;
    for (int c = 0; c < kNumServingClasses; ++c)
        cfg.sched.serving.laneCapacity[c] = 2;
    const sim::ServingResult r =
        sim::simulateServingPacked(s.dag, s.jobs, 4, cfg);
    EXPECT_GT(r.rejected, 0u);
    EXPECT_EQ(r.shed, 0u); // submit-time rejections, not sheds
    EXPECT_EQ(r.done + r.rejected + r.expired + r.cancelled,
              s.jobs.size());
    // Rejected jobs resolve at their arrival instant.
    for (const sim::SimJobStats &j : r.jobs) {
        if (j.outcome == JobOutcome::Rejected && !j.shed) {
            EXPECT_DOUBLE_EQ(j.finishCycles, j.arrivalCycles);
        }
    }
}

TEST(SimOverload, DeadlinesExpireQueuedAndLateJobsDeterministically)
{
    SimOverloadSetup s = overloadSetup(60, 2e6);
    // Give every third job a deadline too tight for an overloaded
    // queue; cancel every seventh shortly after its arrival.
    for (std::size_t i = 0; i < s.jobs.size(); ++i) {
        if (i % 3 == 0)
            s.jobs[i].deadlineCycles = s.jobs[i].arrivalCycles + 1000.0;
        if (i % 7 == 0)
            s.jobs[i].cancelAtCycles = s.jobs[i].arrivalCycles + 500.0;
    }
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    const sim::ServingResult r =
        sim::simulateServingPacked(s.dag, s.jobs, 4, cfg);
    EXPECT_GT(r.expired, 0u);
    EXPECT_GT(r.cancelled, 0u);
    EXPECT_EQ(r.done + r.expired + r.cancelled + r.rejected,
              s.jobs.size());
    // Latency percentiles are a statement about served jobs only.
    EXPECT_EQ(r.latency.count(), r.done);
}

TEST(SimOverload, OverloadRunsAreByteDeterministic)
{
    SimOverloadSetup s = overloadSetup(100, 2e6);
    for (std::size_t i = 0; i < s.jobs.size(); ++i)
        if (i % 4 == 0)
            s.jobs[i].deadlineCycles =
                s.jobs[i].arrivalCycles + 50'000.0;
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.modelParking = true;
    cfg.sched.parkSpinFailures = 4;
    cfg.sched.serving.shed = ShedPolicy::QueueDelay;
    for (int c = 0; c < kNumServingClasses; ++c)
        cfg.sched.serving.queueDelayTargetUs[c] = 10;

    const sim::ServingResult a =
        sim::simulateServingPacked(s.dag, s.jobs, 4, cfg);
    const sim::ServingResult b =
        sim::simulateServingPacked(s.dag, s.jobs, 4, cfg);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].outcome, b.jobs[i].outcome) << "job " << i;
        EXPECT_EQ(a.jobs[i].shed, b.jobs[i].shed) << "job " << i;
        // Bitwise-equal doubles, not approximately equal: the decision
        // sequence must be identical, not merely close.
        EXPECT_EQ(a.jobs[i].startCycles, b.jobs[i].startCycles);
        EXPECT_EQ(a.jobs[i].finishCycles, b.jobs[i].finishCycles);
    }
    EXPECT_EQ(a.done, b.done);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.expired, b.expired);
    EXPECT_EQ(a.sim.elapsedCycles, b.sim.elapsedCycles);
    EXPECT_EQ(a.p99Us, b.p99Us);
    EXPECT_EQ(a.queueP99Us, b.queueP99Us);
    EXPECT_EQ(a.goodputPerSec, b.goodputPerSec);
}
