/**
 * @file
 * Task-frame pool tests: steady-state recycling through the runtime,
 * the cross-thread remote-free stack under stress (the ASan job runs
 * this), exception-path frame release, slab growth past the initial
 * carve, teardown with frames parked on remote stacks, heap fallbacks,
 * and the double-free panic.
 */
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/api.h"
#include "runtime/task_pool.h"

namespace numaws {
namespace {

RuntimeOptions
pooledOptions(int workers, TaskPoolPolicy pool = TaskPoolPolicy::Pooled)
{
    RuntimeOptions o;
    o.numWorkers = workers;
    o.taskPool = pool;
    return o;
}

int64_t
outstandingFrames(Runtime &rt)
{
    int64_t n = 0;
    for (int w = 0; w < rt.numWorkers(); ++w)
        n += rt.worker(w).framePool().outstanding();
    return n;
}

void
spawnBurst(Runtime &rt, int spawns)
{
    rt.run([&] {
        TaskGroup tg;
        for (int i = 0; i < spawns; ++i)
            tg.spawn([] {});
        tg.sync();
    });
}

TEST(TaskFramePool, ClassSelectionAndAlignment)
{
    EXPECT_EQ(TaskFramePool::classForBytes(1), 0);
    // Payload capacity of class c is kClassBytes[c] minus the header.
    EXPECT_EQ(TaskFramePool::classForBytes(
                  TaskFramePool::kClassBytes[0]
                  - TaskFramePool::kFrameHeaderBytes),
              0);
    EXPECT_EQ(TaskFramePool::classForBytes(
                  TaskFramePool::kClassBytes[0]
                  - TaskFramePool::kFrameHeaderBytes + 1),
              1);
    // Oversized requests must report the heap fallback.
    EXPECT_EQ(TaskFramePool::classForBytes(
                  TaskFramePool::kClassBytes[TaskFramePool::kNumClasses
                                             - 1]),
              -1);

    TaskFramePool pool(0, /*enabled=*/true);
    for (int i = 0; i < 8; ++i) {
        void *p = pool.allocate(64 + 64 * i);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p)
                      % TaskFramePool::kFrameAlign,
                  0u);
    }
}

TEST(TaskFramePool, DisabledPoolAllocatesNothing)
{
    TaskFramePool pool(0, /*enabled=*/false);
    EXPECT_EQ(pool.allocate(64), nullptr);
    EXPECT_EQ(pool.slabBytes(), 0u);
}

TEST(TaskFramePool, LocalFreeListRecyclesLifo)
{
    TaskFramePool pool(0, /*enabled=*/true);
    void *a = pool.allocate(64);
    void *b = pool.allocate(64);
    ASSERT_NE(a, b);
    pool.freeLocal(TaskFramePool::headerOf(a));
    pool.freeLocal(TaskFramePool::headerOf(b));
    // LIFO: the most recently freed frame comes back first.
    EXPECT_EQ(pool.allocate(64), b);
    EXPECT_EQ(pool.allocate(64), a);
    EXPECT_EQ(pool.framesRecycled(), 2u);
    pool.freeLocal(TaskFramePool::headerOf(a));
    pool.freeLocal(TaskFramePool::headerOf(b));
    EXPECT_EQ(pool.outstanding(), 0);
}

TEST(TaskFramePool, SlabGrowthPastTheInitialCarve)
{
    TaskFramePool pool(0, /*enabled=*/true);
    const std::size_t per_slab =
        TaskFramePool::kSlabBytes / TaskFramePool::kClassBytes[0];
    std::vector<void *> live;
    for (std::size_t i = 0; i < per_slab + 1; ++i)
        live.push_back(pool.allocate(64));
    EXPECT_EQ(pool.slabsCarved(), 2u);
    EXPECT_EQ(pool.slabBytes(), 2 * TaskFramePool::kSlabBytes);
    for (void *p : live)
        pool.freeLocal(TaskFramePool::headerOf(p));
    EXPECT_EQ(pool.outstanding(), 0);
    // The grown pool recycles rather than carrying on carving.
    for (std::size_t i = 0; i < per_slab + 1; ++i)
        pool.allocate(64);
    EXPECT_EQ(pool.slabsCarved(), 2u);
}

/** Thieves free while the owner spawns: the MPSC remote-free stack
 * under real contention, with every frame accounted for at the end.
 * The sanitizer job runs this against races. */
TEST(TaskFramePool, RemoteFreeStressManyThreads)
{
    TaskFramePool pool(0, /*enabled=*/true);
    constexpr int kThreads = 4;
    constexpr int kRounds = 200;
    constexpr int kBatch = 64;

    for (int round = 0; round < kRounds; ++round) {
        // Owner allocates a batch and hands it to the "thieves"...
        std::array<void *, kThreads * kBatch> frames{};
        for (auto &f : frames)
            f = pool.allocate(48 + (round % 3) * 100);
        std::vector<std::thread> thieves;
        for (int t = 0; t < kThreads; ++t) {
            thieves.emplace_back([&pool, &frames, t] {
                for (int i = 0; i < kBatch; ++i)
                    pool.freeRemote(TaskFramePool::headerOf(
                        frames[static_cast<std::size_t>(t) * kBatch
                               + i]));
            });
        }
        // ...and keeps allocating/freeing locally while they push.
        for (int i = 0; i < kBatch; ++i) {
            void *p = pool.allocate(64);
            pool.freeLocal(TaskFramePool::headerOf(p));
        }
        pool.drainRemote();
        for (auto &th : thieves)
            th.join();
    }
    pool.drainRemote();
    EXPECT_EQ(pool.outstanding(), 0);
    EXPECT_EQ(pool.remoteFrees(),
              static_cast<uint64_t>(kThreads) * kBatch * kRounds);
}

TEST(TaskPoolRuntime, SteadyStateRecyclesEverySpawn)
{
    Runtime rt(pooledOptions(1));
    spawnBurst(rt, 1000); // cold: carve and fill the free lists
    rt.resetStats();
    spawnBurst(rt, 1000); // steady state
    const WorkerCounters c = rt.stats().counters;
    EXPECT_EQ(c.spawns, 1000u);
    EXPECT_GE(c.framesRecycled, 950u); // the ablation gate's 0.95 shape
    EXPECT_EQ(outstandingFrames(rt), 0);
}

TEST(TaskPoolRuntime, HeapPolicyBypassesThePool)
{
    Runtime rt(pooledOptions(2, TaskPoolPolicy::Heap));
    spawnBurst(rt, 500);
    const WorkerCounters c = rt.stats().counters;
    EXPECT_EQ(c.framesRecycled, 0u);
    EXPECT_EQ(c.slabBytes, 0u);
    EXPECT_EQ(outstandingFrames(rt), 0);
}

TEST(TaskPoolRuntime, SlabGrowthUnderDeepSpawnBurst)
{
    Runtime rt(pooledOptions(1));
    // All spawns of a burst are live at once on one worker (the
    // spawner only drains at sync), so 2000 frames force growth past
    // the initial 64 KiB carve of the small class.
    spawnBurst(rt, 2000);
    const WorkerCounters c = rt.stats().counters;
    EXPECT_GT(c.slabBytes, TaskFramePool::kSlabBytes);
    EXPECT_EQ(outstandingFrames(rt), 0);
}

TEST(TaskPoolRuntime, ExceptionPathStillRecyclesFrames)
{
    Runtime rt(pooledOptions(1));
    for (int round = 0; round < 3; ++round) {
        EXPECT_THROW(rt.run([&] {
            TaskGroup tg;
            for (int i = 0; i < 64; ++i)
                tg.spawn([i] {
                    if (i % 8 == 3)
                        throw std::runtime_error("task body threw");
                });
            tg.sync();
        }),
                     std::runtime_error);
        EXPECT_EQ(outstandingFrames(rt), 0);
    }
    // The thrown bodies' frames feed later spawns like any other.
    rt.resetStats();
    spawnBurst(rt, 64);
    EXPECT_GE(rt.stats().counters.framesRecycled, 60u);
}

/** A capture whose copy constructor throws once its fuse burns down.
 * Fuse 2: the capture into the lambda succeeds (copy 1), the closure's
 * transfer into the task frame throws (copy 2 — the user-declared copy
 * ctor also suppresses the move ctor, so spawn's forward copies) —
 * i.e. the throw lands mid-placement-new, inside spawn. */
struct ThrowingCapture
{
    explicit ThrowingCapture(int fuse) : fuse(fuse) {}
    ThrowingCapture(const ThrowingCapture &o) : fuse(o.fuse - 1)
    {
        if (fuse <= 0)
            throw std::runtime_error("capture copy threw");
    }
    int fuse;
};

TEST(TaskPoolRuntime, ThrowingClosureMoveReleasesTheFrame)
{
    Runtime rt(pooledOptions(1));
    EXPECT_THROW(rt.run([&] {
        ThrowingCapture cap(2);
        TaskGroup tg;
        tg.spawn([cap] { (void)cap.fuse; });
        tg.sync();
    }),
                 std::runtime_error);
    // The frame the failed construction claimed must be back in the
    // pool, not stranded live in its slab.
    EXPECT_EQ(outstandingFrames(rt), 0);
    spawnBurst(rt, 8);
    EXPECT_EQ(outstandingFrames(rt), 0);
}

TEST(TaskPoolRuntime, OversizedTasksFallBackToTheHeap)
{
    Runtime rt(pooledOptions(1));
    std::array<char, 2048> big{};
    big[0] = 1;
    std::atomic<int> ran{0};
    rt.run([&] {
        TaskGroup tg;
        for (int i = 0; i < 16; ++i)
            tg.spawn([big, &ran] { ran += big[0]; });
        tg.sync();
    });
    EXPECT_EQ(ran.load(), 16);
    EXPECT_EQ(outstandingFrames(rt), 0);
}

/** Cross-worker traffic: hinted tasks migrate to the other place via
 * steals/PUSHBACK, so thieves free frames they do not own. Repeated
 * runs + teardown must leak nothing (ASan) whether or not the owners
 * ever drained their remote stacks again. */
TEST(TaskPoolRuntime, CrossWorkerRemoteFreesAndTeardown)
{
    for (int round = 0; round < 3; ++round) {
        RuntimeOptions o = pooledOptions(4);
        o.numPlaces = 2;
        Runtime rt(o);
        std::atomic<int64_t> sum{0};
        rt.run([&] {
            TaskGroup tg;
            for (int i = 0; i < 4000; ++i)
                tg.spawn([&sum, i] { sum += i; },
                         /*place=*/i % 2);
            tg.sync();
        });
        EXPECT_EQ(sum.load(), 4000LL * 3999 / 2);
        // Quiescent now, but frames may still sit on remote stacks —
        // outstanding() already counts a remotely freed frame as free,
        // and the destructor reclaims the slabs wholesale.
        EXPECT_EQ(outstandingFrames(rt), 0);
    } // ~Runtime: teardown with whatever was left parked remotely
}

TEST(TaskFramePoolDeathTest, DoubleFreePanics)
{
    TaskFramePool pool(0, /*enabled=*/true);
    void *p = pool.allocate(64);
    pool.freeLocal(TaskFramePool::headerOf(p));
    EXPECT_DEATH(pool.freeLocal(TaskFramePool::headerOf(p)),
                 "assertion failed");
    void *q = pool.allocate(64); // p again, legitimately recycled
    pool.freeLocal(TaskFramePool::headerOf(q));
    EXPECT_DEATH(pool.freeRemote(TaskFramePool::headerOf(q)),
                 "assertion failed");
}

} // namespace
} // namespace numaws
