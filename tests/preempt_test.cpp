/**
 * @file
 * PR 8 latency-class preemption, priority aging, and shed-aware unpark:
 * the yield directive in StealCore, checkpoint/resume correctness across
 * spawn/sync boundaries (including exception paths), aging monotonicity
 * in ShedCore, the simulator mirror's byte-determinism with the new
 * knobs on, and a no-lost-wakeup stress for the unpark escalation.
 *
 * Concurrency tests follow the repo's 1-core-host discipline: no
 * wall-clock speed assertions, only ordering, outcomes, counters, and
 * bounded liveness. Preemption scenarios pin a single worker so "all
 * workers busy" is deterministic, and bodies spawn in bounded loops
 * until the preempting job's side effect is observed.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "numaws.h"
#include "sched/shed_core.h"
#include "sched/steal_core.h"
#include "sim/serving.h"
#include "workloads/workloads.h"

using namespace numaws;
using namespace std::chrono_literals;

namespace {

RuntimeOptions
oneWorker()
{
    RuntimeOptions o;
    o.numWorkers = 1;
    o.numPlaces = 1;
    return o;
}

/** Spin until @p flag turns true (bounded by the test timeout). */
void
awaitFlag(const std::atomic<bool> &flag)
{
    while (!flag.load(std::memory_order_acquire))
        std::this_thread::yield();
}

/** Spawn/sync in a bounded loop until @p stop turns true: every
 * iteration is a preemption boundary, so a raised yield directive is
 * serviced within one iteration. Returns the iterations taken. */
int
spawnUntil(const std::atomic<bool> &stop, int bound = 20'000'000)
{
    int i = 0;
    for (; i < bound && !stop.load(std::memory_order_acquire); ++i) {
        TaskGroup tg;
        tg.spawn([] {});
        tg.sync();
    }
    return i;
}

} // namespace

// ---------------------------------------------------------------------
// StealCore yield-directive units (the engine-shared flag)
// ---------------------------------------------------------------------

TEST(YieldDirective, RaiseObserveTakeIsOneShot)
{
    StealCore core;
    EXPECT_FALSE(core.yieldRequested());
    EXPECT_FALSE(core.takeYieldRequest()); // nothing raised: no-op
    core.requestYield();
    EXPECT_TRUE(core.yieldRequested());
    core.requestYield(); // re-raise coalesces, it does not queue
    EXPECT_TRUE(core.takeYieldRequest());
    EXPECT_FALSE(core.yieldRequested()); // consumed exactly once
    EXPECT_FALSE(core.takeYieldRequest());
}

TEST(YieldDirective, CopyPreservesTheRaisedState)
{
    // The sim re-seeds its brains by copy-assignment; a raised directive
    // must survive both copy construction and assignment (the wrapper
    // exists precisely because a raw std::atomic would delete them).
    StealCore a;
    a.requestYield();
    StealCore b(a);
    EXPECT_TRUE(b.yieldRequested());
    StealCore c;
    c = a;
    EXPECT_TRUE(c.takeYieldRequest());
    // The copies are independent flags, not shared state.
    EXPECT_TRUE(a.yieldRequested());
    EXPECT_FALSE(c.yieldRequested());
}

TEST(YieldDirective, ServicedYieldsAreCounted)
{
    StealCore core;
    EXPECT_EQ(core.counters().yields, 0u);
    core.noteYieldServiced();
    core.noteYieldServiced();
    EXPECT_EQ(core.counters().yields, 2u);
}

TEST(PreemptVictim, AbstainsWheneverAnyWorkerIsIdle)
{
    // An idle worker means the admission wake already has a taker.
    const int8_t running[] = {2, -1, 2, 1};
    EXPECT_EQ(StealCore::pickPreemptVictim(0, running, 4), -1);
}

TEST(PreemptVictim, PicksTheWorstStrictlyLowerClass)
{
    const int8_t running[] = {1, 2, 1, 2};
    // Latency (0) preempts the first Batch (2) worker: worst class,
    // lowest index tie-break — both engines must agree on the victim.
    EXPECT_EQ(StealCore::pickPreemptVictim(0, running, 4), 1);
    // Normal (1) also targets Batch, never a peer Normal.
    EXPECT_EQ(StealCore::pickPreemptVictim(1, running, 4), 1);
    // Batch (2) has nothing strictly below it to preempt.
    EXPECT_EQ(StealCore::pickPreemptVictim(2, running, 4), -1);
}

TEST(PreemptVictim, NeverSelfPreemptsAnEqualClass)
{
    const int8_t running[] = {0, 0};
    EXPECT_EQ(StealCore::pickPreemptVictim(0, running, 2), -1);
}

// ---------------------------------------------------------------------
// ShedCore aging and unpark-pressure units
// ---------------------------------------------------------------------

TEST(Aging, EffectiveClassIsMonotonicInHeadWaitAndFlooredAtZero)
{
    ServingPolicy p;
    p.agingWaitUs = 100; // one class per 100us of head wait
    ShedCore core(p);
    EXPECT_EQ(core.effectiveClass(2, 0), 2);
    EXPECT_EQ(core.effectiveClass(2, 99'999), 2);
    EXPECT_EQ(core.effectiveClass(2, 100'000), 1);
    EXPECT_EQ(core.effectiveClass(2, 199'999), 1);
    EXPECT_EQ(core.effectiveClass(2, 200'000), 0);
    EXPECT_EQ(core.effectiveClass(2, 1'000'000'000), 0); // floored
    // Monotonic: more waiting never demotes.
    int prev = 2;
    for (int64_t w = 0; w <= 400'000; w += 10'000) {
        const int eff = core.effectiveClass(2, w);
        EXPECT_LE(eff, prev);
        prev = eff;
    }
    // The latency class is already at the top: aging is the identity.
    EXPECT_EQ(core.effectiveClass(0, 1'000'000'000), 0);
}

TEST(Aging, DisabledKnobIsTheNominalIdentity)
{
    ShedCore off{ServingPolicy{}};
    EXPECT_EQ(off.effectiveClass(2, 1'000'000'000), 2);
    EXPECT_EQ(off.effectiveClass(1, 1'000'000'000), 1);
}

TEST(UnparkPressure, FiresAtTheConfiguredFractionOfTheShedTarget)
{
    ServingPolicy p;
    p.shed = ShedPolicy::QueueDelay;
    p.queueDelayTargetUs[0] = 100; // 100us target
    p.queueDelayEwmaShift = 0;     // EWMA == last observation
    p.unparkLeadPct = 50;          // pressure at 50us
    ShedCore core(p);
    EXPECT_FALSE(core.unparkPressure());
    core.observeDelay(0, 40'000);
    EXPECT_FALSE(core.unparkPressure()); // 40us < 50us lead point
    EXPECT_FALSE(core.overloaded());
    core.observeDelay(0, 60'000);
    EXPECT_TRUE(core.unparkPressure()); // past the lead point...
    EXPECT_FALSE(core.overloaded());    // ...but not yet shedding
    core.observeDelay(0, 200'000);
    EXPECT_TRUE(core.unparkPressure());
    EXPECT_TRUE(core.overloaded()); // pressure precedes the crossing
}

TEST(UnparkPressure, OffByDefaultAndOutsideQueueDelay)
{
    ServingPolicy p;
    p.shed = ShedPolicy::QueueDelay;
    p.queueDelayTargetUs[0] = 100;
    ShedCore knob_off(p); // unparkLeadPct defaults to 0
    knob_off.observeDelay(0, 1'000'000);
    EXPECT_FALSE(knob_off.unparkPressure());

    p.shed = ShedPolicy::Reject;
    p.unparkLeadPct = 50;
    ShedCore reject(p); // no delay targets to lead
    reject.observeDelay(0, 1'000'000);
    EXPECT_FALSE(reject.unparkPressure());
}

// ---------------------------------------------------------------------
// Threaded engine: checkpoint/resume across spawn/sync boundaries
// ---------------------------------------------------------------------

TEST(Preempt, LatencyJobRunsNestedInsideASaturatedBatchJob)
{
    RuntimeOptions o = oneWorker();
    o.sched.serving.preempt = true;
    Runtime rt(o);

    std::atomic<bool> batch_started{false};
    std::atomic<bool> latency_ran{false};
    std::atomic<bool> batch_finished{false};
    std::atomic<bool> nested{false};

    JobOptions batch_opts;
    batch_opts.cls = JobClass::Batch;
    JobHandle batch = rt.submit(
        [&] {
            batch_started.store(true, std::memory_order_release);
            // Bounded spawn loop: the preemption boundary fires within
            // one iteration of the directive being raised.
            spawnUntil(latency_ran);
            batch_finished.store(true, std::memory_order_release);
        },
        batch_opts);
    awaitFlag(batch_started);

    // The single worker runs Batch: admitting Latency must raise the
    // yield directive and run it *nested*, before the batch body ends.
    JobOptions lat_opts;
    lat_opts.cls = JobClass::Latency;
    JobHandle latency = rt.submit(
        [&] {
            nested.store(!batch_finished.load(std::memory_order_acquire),
                         std::memory_order_release);
            latency_ran.store(true, std::memory_order_release);
        },
        lat_opts);

    latency.wait();
    batch.wait();
    EXPECT_EQ(latency.outcome(), JobOutcome::Done);
    EXPECT_EQ(batch.outcome(), JobOutcome::Done);
    EXPECT_TRUE(nested.load()); // ran while the batch body was live
    EXPECT_GE(rt.stats().counters.yields, 1u);
}

TEST(Preempt, NestedJobExceptionDoesNotPoisonThePreemptedJob)
{
    RuntimeOptions o = oneWorker();
    o.sched.serving.preempt = true;
    Runtime rt(o);

    std::atomic<bool> batch_started{false};
    std::atomic<bool> latency_ran{false};

    JobOptions batch_opts;
    batch_opts.cls = JobClass::Batch;
    JobHandle batch = rt.submit(
        [&] {
            batch_started.store(true, std::memory_order_release);
            spawnUntil(latency_ran);
        },
        batch_opts);
    awaitFlag(batch_started);

    JobOptions lat_opts;
    lat_opts.cls = JobClass::Latency;
    JobHandle latency = rt.submit(
        [&] {
            latency_ran.store(true, std::memory_order_release);
            throw std::runtime_error("nested failure");
        },
        lat_opts);

    // The nested job resolves Failed inside its own wrapper; the
    // preempted batch body resumes at the boundary and finishes Done.
    EXPECT_THROW(latency.wait(), std::runtime_error);
    EXPECT_EQ(latency.outcome(), JobOutcome::Failed);
    batch.wait();
    EXPECT_EQ(batch.outcome(), JobOutcome::Done);
    EXPECT_GE(rt.stats().counters.yields, 1u);
}

TEST(Preempt, DirectiveExpiresWhenTheJobWasClaimedElsewhere)
{
    // With preemption on but no higher-class job queued by the time the
    // boundary fires, the spawn path must stay a no-op: submit only
    // same-class jobs and assert no yields are ever serviced.
    RuntimeOptions o = oneWorker();
    o.sched.serving.preempt = true;
    Runtime rt(o);
    std::atomic<int> ran{0};
    std::vector<JobHandle> jobs;
    JobOptions opts;
    opts.cls = JobClass::Batch;
    for (int i = 0; i < 8; ++i)
        jobs.push_back(rt.submit(
            [&ran] {
                TaskGroup tg;
                tg.spawn([] {});
                tg.sync();
                ran.fetch_add(1);
            },
            opts));
    for (JobHandle &h : jobs)
        h.wait();
    EXPECT_EQ(ran.load(), 8);
    // Same-class admissions never pick a victim (strictly-lower only).
    EXPECT_EQ(rt.stats().counters.yields, 0u);
}

// ---------------------------------------------------------------------
// Threaded engine: priority aging at the claim path
// ---------------------------------------------------------------------

TEST(Aging, StarvedBatchOutranksAFresherNormalJobAtClaimTime)
{
    RuntimeOptions o = oneWorker();
    o.sched.serving.agingWaitUs = 50'000; // one class per 50ms head wait
    Runtime rt(o);

    std::atomic<bool> blocker_started{false};
    std::atomic<bool> release{false};
    JobHandle blocker = rt.submit([&] {
        blocker_started.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire))
            std::this_thread::yield();
    });
    awaitFlag(blocker_started);

    std::atomic<int> order{0};
    std::atomic<int> batch_order{-1};
    std::atomic<int> normal_order{-1};
    JobOptions batch_opts;
    batch_opts.cls = JobClass::Batch;
    JobHandle batch = rt.submit(
        [&] { batch_order.store(order.fetch_add(1)); }, batch_opts);
    // Let the Batch head age past two promotion steps (2 * 50ms), so
    // its effective class reaches 0; the Normal job submitted below is
    // fresh (effective class 1) when the worker frees up.
    std::this_thread::sleep_for(120ms);
    JobOptions normal_opts;
    normal_opts.cls = JobClass::Normal;
    JobHandle normal = rt.submit(
        [&] { normal_order.store(order.fetch_add(1)); }, normal_opts);

    release.store(true, std::memory_order_release);
    blocker.wait();
    batch.wait();
    normal.wait();
    EXPECT_EQ(batch_order.load(), 0); // aged Batch claimed first
    EXPECT_EQ(normal_order.load(), 1);
    EXPECT_GE(rt.stats().counters.agedClaims, 1u);
}

TEST(Aging, OffByDefaultKeepsStrictNominalOrder)
{
    Runtime rt(oneWorker());
    std::atomic<bool> blocker_started{false};
    std::atomic<bool> release{false};
    JobHandle blocker = rt.submit([&] {
        blocker_started.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire))
            std::this_thread::yield();
    });
    awaitFlag(blocker_started);

    std::atomic<int> order{0};
    std::atomic<int> batch_order{-1};
    std::atomic<int> normal_order{-1};
    JobOptions batch_opts;
    batch_opts.cls = JobClass::Batch;
    JobHandle batch = rt.submit(
        [&] { batch_order.store(order.fetch_add(1)); }, batch_opts);
    std::this_thread::sleep_for(20ms); // head wait is irrelevant: no aging
    JobOptions normal_opts;
    normal_opts.cls = JobClass::Normal;
    JobHandle normal = rt.submit(
        [&] { normal_order.store(order.fetch_add(1)); }, normal_opts);

    release.store(true, std::memory_order_release);
    blocker.wait();
    batch.wait();
    normal.wait();
    EXPECT_EQ(normal_order.load(), 0); // nominal order: Normal first
    EXPECT_EQ(batch_order.load(), 1);
    EXPECT_EQ(rt.stats().counters.agedClaims, 0u);
}

// ---------------------------------------------------------------------
// Shed-aware unpark: no lost wakeups under bursty admission
// ---------------------------------------------------------------------

TEST(UnparkPressure, BurstAdmissionUnderPressureNeverLosesAJob)
{
    // Multiple submitters flood a 2-worker pool with parking enabled
    // and the unpark escalation armed; bounded liveness (every handle
    // resolves) plus a full outcome partition is the lost-wakeup check.
    RuntimeOptions o;
    o.numWorkers = 2;
    o.numPlaces = 1;
    o.sched.serving.shed = ShedPolicy::QueueDelay;
    for (int c = 0; c < kNumServingClasses; ++c)
        o.sched.serving.queueDelayTargetUs[c] = 50;
    o.sched.serving.unparkLeadPct = 50;
    o.sched.serving.preempt = true;
    Runtime rt(o);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 64;
    std::atomic<int> ran{0};
    std::vector<std::vector<JobHandle>> handles(kThreads);
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            handles[t].reserve(kPerThread);
            for (int i = 0; i < kPerThread; ++i) {
                JobOptions opts;
                opts.cls = static_cast<JobClass>(i % kNumJobClasses);
                handles[t].push_back(
                    rt.submit([&ran] { ran.fetch_add(1); }, opts));
            }
        });
    }
    for (std::thread &s : submitters)
        s.join();

    int done = 0;
    int resolved_unrun = 0;
    for (auto &per_thread : handles) {
        for (JobHandle &h : per_thread) {
            h.wait(); // bounded liveness: no handle may hang
            if (h.outcome() == JobOutcome::Done)
                ++done;
            else
                ++resolved_unrun;
        }
    }
    EXPECT_EQ(done, ran.load());
    EXPECT_EQ(done + resolved_unrun, kThreads * kPerThread);
}

// ---------------------------------------------------------------------
// Simulator mirror
// ---------------------------------------------------------------------

namespace {

struct SimSetup
{
    sim::ComputationDag dag;
    std::vector<sim::SimJob> jobs;
};

/** @p n fib(10) jobs at @p rate_per_sec, classes via @p cls_of. */
template <typename ClsOf>
SimSetup
servingSetup(int n, double rate_per_sec, ClsOf cls_of, uint64_t seed = 7)
{
    SimSetup s;
    std::vector<sim::FrameId> roots;
    roots.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        roots.push_back(s.dag.append(workloads::fibDag(10)));
    sim::ArrivalProcess p;
    p.ratePerSec = rate_per_sec;
    p.seed = seed;
    const auto at = sim::arrivalCycles(p, n, 2.2);
    s.jobs.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        s.jobs[static_cast<std::size_t>(i)] = {
            roots[static_cast<std::size_t>(i)],
            at[static_cast<std::size_t>(i)], cls_of(i)};
    }
    return s;
}

} // namespace

TEST(SimPreempt, SaturatedRunsYieldAndStayFullyAccounted)
{
    // Mostly-Batch saturation with a sprinkle of Latency arrivals: the
    // preempt knob must produce actual yields, and every job must still
    // resolve exactly once.
    SimSetup s = servingSetup(120, 2e6,
                              [](int i) { return i % 8 == 0 ? 0 : 2; });
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.sched.serving.preempt = true;
    const sim::ServingResult r =
        sim::simulateServingPacked(s.dag, s.jobs, 4, cfg);
    EXPECT_GT(r.sim.counters.yields, 0u);
    EXPECT_EQ(r.done + r.expired + r.cancelled + r.rejected,
              s.jobs.size());
    EXPECT_EQ(r.done, s.jobs.size()); // nothing sheds without a policy
}

TEST(SimPreempt, KnobsOnRunsAreByteDeterministic)
{
    SimSetup s = servingSetup(100, 2e6,
                              [](int i) { return i % 3; });
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.modelParking = true;
    cfg.sched.parkSpinFailures = 4;
    cfg.sched.serving.shed = ShedPolicy::QueueDelay;
    for (int c = 0; c < kNumServingClasses; ++c)
        cfg.sched.serving.queueDelayTargetUs[c] = 10;
    cfg.sched.serving.preempt = true;
    cfg.sched.serving.agingWaitUs = 50;
    cfg.sched.serving.unparkLeadPct = 50;

    const sim::ServingResult a =
        sim::simulateServingPacked(s.dag, s.jobs, 4, cfg);
    const sim::ServingResult b =
        sim::simulateServingPacked(s.dag, s.jobs, 4, cfg);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].outcome, b.jobs[i].outcome) << "job " << i;
        // Bitwise-equal doubles: the decision sequence must be
        // identical, not merely close.
        EXPECT_EQ(a.jobs[i].startCycles, b.jobs[i].startCycles);
        EXPECT_EQ(a.jobs[i].finishCycles, b.jobs[i].finishCycles);
    }
    EXPECT_EQ(a.sim.counters.yields, b.sim.counters.yields);
    EXPECT_EQ(a.sim.counters.agedClaims, b.sim.counters.agedClaims);
    EXPECT_EQ(a.sim.elapsedCycles, b.sim.elapsedCycles);
    EXPECT_EQ(a.p99Us, b.p99Us);
    EXPECT_EQ(a.goodputPerSec, b.goodputPerSec);
}

TEST(SimPreempt, AgingPromotesStarvedBatchClaims)
{
    // Heavy Latency flood plus a few Batch jobs: with aging on, starved
    // Batch heads are eventually claimed via promotion.
    SimSetup s = servingSetup(150, 2e6,
                              [](int i) { return i % 10 == 0 ? 2 : 0; });
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.sched.serving.agingWaitUs = 5;
    const sim::ServingResult r =
        sim::simulateServingPacked(s.dag, s.jobs, 4, cfg);
    EXPECT_GT(r.sim.counters.agedClaims, 0u);
    EXPECT_EQ(r.done + r.expired + r.cancelled + r.rejected,
              s.jobs.size());
}

TEST(SimPreempt, UnparkPressureLeadsTheShedCrossing)
{
    SimSetup s = servingSetup(150, 2e6, [](int i) { return i % 3; });
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.modelParking = true;
    cfg.sched.parkSpinFailures = 4;
    cfg.sched.serving.shed = ShedPolicy::QueueDelay;
    for (int c = 0; c < kNumServingClasses; ++c)
        cfg.sched.serving.queueDelayTargetUs[c] = 10;
    cfg.sched.serving.unparkLeadPct = 50;
    const sim::ServingResult r =
        sim::simulateServingPacked(s.dag, s.jobs, 4, cfg);
    // This arrival rate drives the EWMA through both thresholds; the
    // 50% lead point must fire no later than the crossing itself.
    ASSERT_GT(r.sim.firstShedCrossCycles, 0u);
    ASSERT_GT(r.sim.firstUnparkPressureCycles, 0u);
    EXPECT_LE(r.sim.firstUnparkPressureCycles,
              r.sim.firstShedCrossCycles);
}
