/**
 * @file
 * ParkingLot, socket-edge reporting, and board-guided PUSHBACK tests.
 *
 * Concurrency tests here follow the repo's 1-core-host discipline: no
 * assertions on wall-clock speed, only on ordering, counters, and the
 * bounded-timeout liveness guarantee (a parker always returns, wake or
 * no wake). parking_test runs under ASan/UBSan in CI's sanitizer job —
 * the park/publish stress below is the lost-wakeup race it exists for.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/runtime.h"
#include "sched/occupancy.h"
#include "sched/parking.h"
#include "sim/scheduler.h"
#include "workloads/workloads.h"

using namespace numaws;
using namespace std::chrono_literals;

namespace {

/** Spin (yielding) until @p pred or ~2s; returns pred(). */
template <typename Pred>
bool
eventually(Pred pred)
{
    for (int i = 0; i < 2000; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(1ms);
    }
    return pred();
}

} // namespace

// ---------------------------------------------------------------------
// ParkingLot
// ---------------------------------------------------------------------

TEST(ParkingLot, DisabledLotIsInert)
{
    ParkingLot lot;
    EXPECT_FALSE(lot.enabled());
    EXPECT_FALSE(lot.park(0, 10ms)); // returns immediately, no wait
    lot.wake(0);                     // no-ops, no crash
    lot.wakeAll();
}

TEST(ParkingLot, BoundedTimeoutLiveness)
{
    // The core guarantee the scheduler is written against: with no wake
    // at all, park() still returns after one timeout period.
    ParkingLot lot(1);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(lot.park(0, 20ms));
    EXPECT_GE(std::chrono::steady_clock::now() - t0, 15ms);
    EXPECT_EQ(lot.waiters(0), 0);
}

TEST(ParkingLot, PredicateShortCircuitsTheWait)
{
    ParkingLot lot(1);
    // True predicate: no sleep at all, reported as a (logical) wake.
    EXPECT_TRUE(lot.park(0, 1000ms, [] { return true; }));
}

TEST(ParkingLot, WakeTargetsOnlyItsSocket)
{
    ParkingLot lot(2);
    std::atomic<bool> release{false};
    std::atomic<int> woken_by_wake{-1};

    std::thread parker([&] {
        // Long timeout: only an explicit wake(1) should end this park.
        const bool w =
            lot.park(1, 5000ms, [&] { return release.load(); });
        woken_by_wake.store(w ? 1 : 0);
    });

    ASSERT_TRUE(eventually([&] { return lot.waiters(1) == 1; }));
    // Storm socket 0: socket 1's waiter must stay parked.
    for (int i = 0; i < 64; ++i)
        lot.wake(0);
    std::this_thread::sleep_for(20ms);
    EXPECT_EQ(lot.waiters(1), 1);
    EXPECT_EQ(lot.wakesDelivered(0), 0u); // no waiter there: fast path
    EXPECT_EQ(woken_by_wake.load(), -1);

    release.store(true);
    lot.wake(1);
    parker.join();
    EXPECT_EQ(woken_by_wake.load(), 1);
    EXPECT_GE(lot.wakesDelivered(1), 1u);
}

TEST(ParkingLot, WakeAllReachesEverySocket)
{
    constexpr int kSockets = 3;
    ParkingLot lot(kSockets);
    std::atomic<int> woken{0};
    std::vector<std::thread> parkers;
    for (int s = 0; s < kSockets; ++s) {
        parkers.emplace_back([&, s] {
            if (lot.park(s, 5000ms))
                woken.fetch_add(1);
        });
    }
    ASSERT_TRUE(eventually([&] {
        for (int s = 0; s < kSockets; ++s)
            if (lot.waiters(s) != 1)
                return false;
        return true;
    }));
    lot.wakeAll();
    for (auto &t : parkers)
        t.join();
    EXPECT_EQ(woken.load(), kSockets);
}

TEST(ParkingLot, LostWakeupStress)
{
    // Parkers and wakers race on one slot with a short fallback; a lost
    // wakeup may cost one period but can never wedge a parker. The test
    // passes iff every thread finishes its iterations (liveness) with
    // no sanitizer findings (the CI job runs this under ASan/UBSan).
    constexpr int kParkers = 3;
    constexpr int kRounds = 200;
    ParkingLot lot(1);
    std::atomic<uint64_t> published{0};

    std::vector<std::thread> parkers;
    std::atomic<int> done{0};
    for (int p = 0; p < kParkers; ++p) {
        parkers.emplace_back([&] {
            uint64_t seen = 0;
            for (int i = 0; i < kRounds; ++i) {
                lot.park(0, 500us, [&] {
                    return published.load(std::memory_order_acquire)
                           > seen;
                });
                seen = published.load(std::memory_order_acquire);
            }
            done.fetch_add(1);
        });
    }
    std::thread waker([&] {
        while (done.load() < kParkers) {
            published.fetch_add(1, std::memory_order_release);
            lot.wake(0);
            std::this_thread::yield();
        }
    });
    for (auto &t : parkers)
        t.join();
    waker.join();
    EXPECT_EQ(done.load(), kParkers);
    EXPECT_EQ(lot.waiters(0), 0);
}

// ---------------------------------------------------------------------
// OccupancyBoard socket-edge reporting (what targeted wakes ride on)
// ---------------------------------------------------------------------

TEST(OccupancyEdges, OnlyTheFirstPublicationOfASocketIsAnEdge)
{
    // Workers 0,1 on socket 0; workers 2,3 on socket 1.
    OccupancyBoard b(4, {0, 0, 1, 1});
    EXPECT_TRUE(b.publishDeque(0, true));    // socket 0: 0 -> nonzero
    EXPECT_FALSE(b.publishDeque(0, true));   // no transition at all
    EXPECT_FALSE(b.publishDeque(1, true));   // bit edge, socket already up
    EXPECT_FALSE(b.publishMailbox(0, true)); // same socket, other word
    EXPECT_TRUE(b.publishDeque(2, true));    // socket 1 is independent
    // Clears never report an edge.
    EXPECT_FALSE(b.publishDeque(0, false));
    EXPECT_FALSE(b.publishDeque(1, false));
    EXPECT_FALSE(b.publishMailbox(0, false));
    // Socket 0 fully dark again: the next set is an edge again.
    EXPECT_TRUE(b.publishMailbox(1, true));
}

// ---------------------------------------------------------------------
// Board-guided PUSHBACK receiver selection
// ---------------------------------------------------------------------

TEST(PushTargetBoard, FullMailboxesAreSkipped)
{
    // Workers 4..7 on the target place; bits 0..3 in its socket word.
    // Workers 4 and 6 advertise a parked frame (capacity-1: full).
    const auto mask_of = [](int w) { return 1ULL << (w - 4); };
    const uint64_t bits = mask_of(4) | mask_of(6);
    Rng rng(7);
    for (int i = 0; i < 256; ++i) {
        const int r = pickClearMailbox(4, 8, -1, bits, mask_of, rng);
        ASSERT_TRUE(r == 5 || r == 7) << "picked full mailbox " << r;
    }
    // Both clear slots are actually reachable.
    bool saw5 = false, saw7 = false;
    for (int i = 0; i < 256 && !(saw5 && saw7); ++i) {
        const int r = pickClearMailbox(4, 8, -1, bits, mask_of, rng);
        saw5 |= r == 5;
        saw7 |= r == 7;
    }
    EXPECT_TRUE(saw5 && saw7);
}

TEST(PushTargetBoard, SaturatedComplementFallsBackToRandom)
{
    const auto mask_of = [](int w) { return 1ULL << w; };
    Rng rng(11);
    // Every mailbox advertises a frame: no candidate.
    EXPECT_EQ(pickClearMailbox(0, 4, -1, 0xF, mask_of, rng), -1);
    // The only clear slot is the pusher itself: still no candidate.
    EXPECT_EQ(pickClearMailbox(0, 4, 2, 0xB, mask_of, rng), -1);
    // Empty range degenerates safely.
    EXPECT_EQ(pickClearMailbox(3, 3, -1, 0, mask_of, rng), -1);
}

// ---------------------------------------------------------------------
// Threaded runtime end to end under the new knobs
// ---------------------------------------------------------------------

TEST(RuntimeParking, FibCorrectUnderEveryParkPushCombination)
{
    const int n = 18;
    const uint64_t expected = workloads::fibSerial(n);
    for (const ParkPolicy park : {ParkPolicy::Timer, ParkPolicy::Board}) {
        for (const PushTarget push :
             {PushTarget::Random, PushTarget::Board}) {
            RuntimeOptions o;
            o.numWorkers = 3;
            o.numPlaces = 3;
            o.sched.hierarchicalSteals = true;
            o.sched.parkPolicy = park;
            o.sched.pushTarget = push;
            // Short fallback: the 1-core host serializes threads, so
            // parks and timeouts genuinely occur during the run.
            o.sched.parkFallbackUs = 200;
            o.seed = 21;
            Runtime rt(o);
            EXPECT_EQ(workloads::fibParallel(rt, n, 10), expected)
                << parkPolicyName(park) << "/" << pushTargetName(push);
            const RuntimeStats stats = rt.stats();
            // Every park ends at most once, by a wake or a timeout; a
            // worker parked *right now* (post-run idle) has entered but
            // not resolved, so the gap is bounded by the worker count.
            const uint64_t resolved = stats.counters.parkWakes
                                      + stats.counters.parkTimeouts;
            EXPECT_GE(stats.counters.parks, resolved);
            EXPECT_LE(stats.counters.parks,
                      resolved
                          + static_cast<uint64_t>(o.numWorkers));
        }
    }
}

TEST(RuntimeParking, BoardParkingShutsDownCleanly)
{
    // Workers parked in per-socket slots at destruction time must all
    // be reachable by the shutdown wakeAll (no join hang). Construct,
    // let workers reach the parked state, destroy.
    RuntimeOptions o;
    o.numWorkers = 4;
    o.numPlaces = 2;
    o.sched.parkPolicy = ParkPolicy::Board;
    o.sched.parkFallbackUs = 50000; // long: shutdown must not wait for it
    Runtime rt(o);
    std::this_thread::sleep_for(20ms);
    // Destructor runs at scope exit; a hang here is the failure mode.
}

// ---------------------------------------------------------------------
// Simulator parking model
// ---------------------------------------------------------------------

TEST(SimParking, ModelOffByDefaultAndInert)
{
    const sim::ComputationDag dag = workloads::fibDag(16);
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    ASSERT_FALSE(cfg.modelParking);
    const sim::SimResult r = sim::simulatePacked(dag, 16, cfg);
    EXPECT_EQ(r.counters.parks, 0u);
    EXPECT_EQ(r.counters.wakeups, 0u);
    EXPECT_EQ(r.counters.spuriousWakeups, 0u);
}

TEST(SimParking, PoliciesExecuteTheSameWork)
{
    const sim::ComputationDag dag = workloads::fibDag(16);
    // The Board defaults flipped in PR 4: the timer baseline must ask
    // for the retired policy explicitly.
    sim::SimConfig timer = sim::SimConfig::adaptiveNumaWs();
    timer.modelParking = true;
    timer.sched.parkSpinFailures = 4;
    timer.sched.parkPolicy = ParkPolicy::Timer;
    sim::SimConfig board = timer;
    board.sched.parkPolicy = ParkPolicy::Board;

    const sim::SimResult rt = sim::simulatePacked(dag, 16, timer);
    const sim::SimResult rb = sim::simulatePacked(dag, 16, board);
    EXPECT_EQ(rt.counters.strandsExecuted, rb.counters.strandsExecuted);
    EXPECT_EQ(rt.counters.spawns, rb.counters.spawns);
    // Timer wakes are never edge-targeted; board wakes may be.
    EXPECT_EQ(rt.counters.boardWakes, 0u);
}

TEST(SimParking, BoardWakesTargetSocketsWithWork)
{
    // An idle-heavy shape: one long serial strand, then a wide fan.
    // Cores park during the strand; under board parking the fan's
    // occupancy edges wake them, so spurious wakeups collapse vs the
    // periodic timer.
    sim::DagBuilder b;
    b.beginRoot();
    for (int burst = 0; burst < 4; ++burst) {
        b.strand(2.2e6, {}); // ~5 timer periods of machine-wide idling
        for (int t = 0; t < 32; ++t)
            b.spawnLeaf(kAnyPlace, 20000.0, {});
        b.sync();
    }
    b.end();
    const sim::ComputationDag dag = b.finish();

    sim::SimConfig timer = sim::SimConfig::adaptiveNumaWs();
    timer.modelParking = true;
    timer.sched.parkSpinFailures = 4;
    timer.sched.parkPolicy = ParkPolicy::Timer;
    sim::SimConfig board = timer;
    board.sched.parkPolicy = ParkPolicy::Board;

    const sim::SimResult rt = sim::simulatePacked(dag, 16, timer);
    const sim::SimResult rb = sim::simulatePacked(dag, 16, board);
    ASSERT_GT(rt.counters.parks, 0u);
    ASSERT_GT(rb.counters.parks, 0u);
    EXPECT_GT(rb.counters.boardWakes, 0u);
    // The acceptance-gate shape, at unit-test scale: at least 2x fewer
    // spurious wakeups, no simulated-time regression beyond 2%.
    EXPECT_LE(2 * rb.counters.spuriousWakeups,
              rt.counters.spuriousWakeups);
    EXPECT_LE(rb.elapsedCycles, 1.02 * rt.elapsedCycles);
}

TEST(SimParking, DeterministicPerSeed)
{
    const sim::ComputationDag dag = workloads::fibDag(14);
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.modelParking = true;
    cfg.sched.parkSpinFailures = 4;
    cfg.seed = 99;
    const sim::SimResult a = sim::simulatePacked(dag, 8, cfg);
    const sim::SimResult b2 = sim::simulatePacked(dag, 8, cfg);
    EXPECT_EQ(a.elapsedCycles, b2.elapsedCycles);
    EXPECT_EQ(a.counters.parks, b2.counters.parks);
    EXPECT_EQ(a.counters.wakeups, b2.counters.wakeups);
    EXPECT_EQ(a.counters.spuriousWakeups, b2.counters.spuriousWakeups);
}

TEST(SimPushTarget, BoardReceiversReducePushAttemptsOnHintedWork)
{
    // Heavily hinted work saturates place-0 mailboxes: random receivers
    // burn attempts on full slots, board-guided receivers only pick
    // advertised room (and never more attempts than random).
    sim::DagBuilder b;
    b.beginRoot();
    for (int m = 0; m < 64; ++m) {
        b.spawn(/*place=*/0);
        for (int l = 0; l < 4; ++l)
            b.spawnLeaf(kInheritPlace, 3000.0, {});
        b.sync();
        b.end();
    }
    b.sync();
    b.end();
    const sim::ComputationDag dag = b.finish();

    // numaWs() is the paper-literal factory, so its receivers are
    // already the explicit Random baseline the Board row compares to.
    sim::SimConfig rnd = sim::SimConfig::numaWs();
    ASSERT_EQ(rnd.sched.pushTarget, PushTarget::Random);
    rnd.seed = 5;
    sim::SimConfig guided = rnd;
    guided.sched.pushTarget = PushTarget::Board;

    const sim::SimResult rr = sim::simulatePacked(dag, 16, rnd);
    const sim::SimResult rg = sim::simulatePacked(dag, 16, guided);
    ASSERT_GT(rr.counters.pushAttempts, 0u);
    EXPECT_EQ(rr.counters.strandsExecuted, rg.counters.strandsExecuted);
    EXPECT_LE(rg.counters.pushAttempts, rr.counters.pushAttempts);
}
