/**
 * @file
 * Empirical checks of the Section IV guarantees on the simulated
 * scheduler: TP <= T1/P + c*Tinf, steals bounded by O(P * Tinf), and the
 * pushback amortization (pushes bounded per successful steal). These are
 * property-style sweeps over randomized fork-join dags and core counts.
 */
#include <gtest/gtest.h>

#include "sim/scheduler.h"
#include "support/rng.h"

namespace numaws::sim {
namespace {

/** Random fork-join dag: irregular spawn trees with mixed leaf sizes. */
ComputationDag
randomDag(uint64_t seed, int max_depth, double min_leaf, double max_leaf)
{
    Rng rng(seed);
    DagBuilder b;
    b.beginRoot();
    auto rec = [&](auto &&self, int depth) -> void {
        if (depth == 0 || rng.nextBounded(8) == 0) {
            b.strand(min_leaf + rng.nextDouble() * (max_leaf - min_leaf),
                     {});
            return;
        }
        const int kids = 1 + static_cast<int>(rng.nextBounded(3));
        for (int k = 0; k < kids; ++k) {
            b.spawn(kAnyPlace);
            self(self, depth - 1);
            b.end();
        }
        b.strand(min_leaf, {});
        b.sync();
        if (rng.nextBounded(2) == 0) {
            b.spawn(kAnyPlace);
            self(self, depth - 1);
            b.end();
            b.sync();
        }
    };
    rec(rec, max_depth);
    b.end();
    return b.finish();
}

struct BoundsCase
{
    uint64_t seed;
    int cores;
};

class SchedulerBounds
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, bool>>
{
};

TEST_P(SchedulerBounds, ExecutionTimeWithinGreedyBound)
{
    const auto [seed, cores, numa] = GetParam();
    const ComputationDag dag = randomDag(seed, 7, 200.0, 2000.0);
    const SimConfig cfg =
        numa ? SimConfig::numaWs() : SimConfig::classicWs();
    const Machine m = Machine::paperMachine();

    // Nominal work/span with the engine's spawn/sync costs included.
    const WorkSpan ws =
        dag.workSpan(cfg.spawnCost, cfg.syncTrivialCost);
    const SimResult r = simulate(dag, m, cores, cfg);

    // TP <= T1/P + c * Tinf for a concrete constant c. The constant
    // absorbs steal/promotion/push costs along the critical path; 40x
    // the per-steal cost against the span is generous yet far below a
    // bound-free schedule (which would be ~T1).
    const double c = 40.0;
    EXPECT_LE(r.elapsedCycles, ws.work / cores + c * ws.span)
        << "P=" << cores << " seed=" << seed << " numa=" << numa;
    // And never faster than the trivial lower bounds.
    EXPECT_GE(r.elapsedCycles * 1.0000001, ws.work / cores);
    EXPECT_GE(r.elapsedCycles * 1.0000001, ws.span);
}

TEST_P(SchedulerBounds, StealsBoundedByPTimesSpan)
{
    const auto [seed, cores, numa] = GetParam();
    const ComputationDag dag = randomDag(seed, 7, 200.0, 2000.0);
    const SimConfig cfg =
        numa ? SimConfig::numaWs() : SimConfig::classicWs();
    const WorkSpan ws = dag.workSpan(cfg.spawnCost, cfg.syncTrivialCost);
    const SimResult r = simulate(dag, Machine::paperMachine(), cores, cfg);

    // Successful steals are O(P * Tinf); with unit-ish strand granularity
    // the span in "nodes" is ~span/minLeaf. Use a loose constant.
    const double span_nodes = ws.span / 200.0;
    EXPECT_LE(static_cast<double>(r.counters.steals),
              8.0 * cores * span_nodes + 64.0)
        << "P=" << cores << " seed=" << seed;
}

TEST_P(SchedulerBounds, PushesAmortizeAgainstSteals)
{
    const auto [seed, cores, numa] = GetParam();
    if (!numa)
        GTEST_SKIP() << "pushback exists only under NUMA-WS";
    // Hinted dag: alternate subtree hints across places.
    Rng rng(seed);
    DagBuilder b;
    b.beginRoot();
    auto rec = [&](auto &&self, int depth, Place p) -> void {
        if (depth == 0) {
            b.strand(300.0 + rng.nextDouble() * 700.0, {});
            return;
        }
        for (int k = 0; k < 2; ++k) {
            b.spawn(depth == 6 ? static_cast<Place>(k * 2) : kAnyPlace);
            self(self, depth - 1, p);
            b.end();
        }
        b.sync();
    };
    rec(rec, 6, kAnyPlace);
    b.end();
    const ComputationDag dag = b.finish();

    SimConfig cfg = SimConfig::numaWs();
    cfg.seed = seed;
    const SimResult r = simulate(dag, Machine::paperMachine(), cores, cfg);

    // Section IV: at most two push-triggering events per successful
    // steal, each bounded by the pushing threshold.
    const double limit =
        2.0 * static_cast<double>(cfg.sched.pushThreshold)
            * static_cast<double>(r.counters.steals
                                  + r.counters.mailboxSteals)
        + 2.0 * cfg.sched.pushThreshold; // slack for the root frame
    EXPECT_LE(static_cast<double>(r.counters.pushAttempts), limit)
        << "P=" << cores << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerBounds,
    ::testing::Combine(::testing::Values(1ULL, 2ULL, 3ULL, 4ULL),
                       ::testing::Values(2, 4, 8, 16, 32),
                       ::testing::Bool()),
    [](const auto &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) + "_P"
               + std::to_string(std::get<1>(info.param))
               + (std::get<2>(info.param) ? "_numaws" : "_classic");
    });

/** Hinted random dag, the shape PushesAmortizeAgainstSteals uses. */
ComputationDag
hintedDag(uint64_t seed)
{
    Rng rng(seed);
    DagBuilder b;
    b.beginRoot();
    auto rec = [&](auto &&self, int depth) -> void {
        if (depth == 0) {
            b.strand(300.0 + rng.nextDouble() * 700.0, {});
            return;
        }
        for (int k = 0; k < 2; ++k) {
            b.spawn(depth == 6 ? static_cast<Place>(k * 2) : kAnyPlace);
            self(self, depth - 1);
            b.end();
        }
        b.sync();
    };
    rec(rec, 6);
    b.end();
    return b.finish();
}

/**
 * Section IV's top-heavy-deques argument, re-checked with batched
 * mailboxes (capacity > 1). The argument needs (a) every frame's
 * PUSHBACK attempts bounded by the pushing threshold regardless of how
 * many frames can park per worker, and (b) the greedy execution-time
 * bound surviving, since up to capacity frames per worker now bypass
 * the deques. Capacity scales the number of frames in flight through
 * mailboxes — visible as more mailbox deliveries — but both bounds'
 * *shapes* must hold unchanged at capacity 1 and 4.
 */
TEST(SchedulerBounds, MailboxCapacityPreservesSectionFourBounds)
{
    for (const uint64_t seed : {1ULL, 5ULL}) {
        const ComputationDag dag = hintedDag(seed);
        const Machine m = Machine::paperMachine();
        const WorkSpan ws = dag.workSpan(8.0, 2.0);
        for (const int capacity : {1, 4}) {
            SimConfig cfg = SimConfig::numaWs();
            cfg.seed = seed;
            cfg.sched.mailboxCapacity = capacity;
            const SimResult r = simulate(dag, m, 16, cfg);

            // (a) Push attempts amortize: each push-triggering event
            // (steal, mailbox delivery, resume) pays at most
            // pushThreshold attempts, and the number of such events per
            // successful acquisition is a constant — independent of the
            // mailbox capacity.
            const double acquisitions = static_cast<double>(
                r.counters.steals + r.counters.mailboxSteals
                + r.counters.mailboxPops + r.counters.resumes);
            const double limit =
                2.0 * cfg.sched.pushThreshold * acquisitions
                + 2.0 * cfg.sched.pushThreshold;
            EXPECT_LE(static_cast<double>(r.counters.pushAttempts),
                      limit)
                << "capacity=" << capacity << " seed=" << seed;

            // (b) The greedy bound survives frames bypassing the deque.
            EXPECT_LE(r.elapsedCycles, ws.work / 16 + 40.0 * ws.span)
                << "capacity=" << capacity << " seed=" << seed;

            // Sanity: the knob is live — capacity 4 must be able to
            // park frames (deliveries counted via pops + steals).
            EXPECT_GT(r.counters.mailboxPops + r.counters.mailboxSteals,
                      0u)
                << "capacity=" << capacity;
        }
    }
}

TEST(SchedulerBounds, MailboxCapacityDoesNotChangeTheWorkTerm)
{
    // Batching changes *where* frames wait, never what executes.
    const ComputationDag dag = hintedDag(9);
    SimConfig one = SimConfig::numaWs();
    SimConfig four = SimConfig::numaWs();
    four.sched.mailboxCapacity = 4;
    const SimResult r1 = simulate(dag, Machine::paperMachine(), 16, one);
    const SimResult r4 = simulate(dag, Machine::paperMachine(), 16, four);
    EXPECT_EQ(r1.counters.strandsExecuted, r4.counters.strandsExecuted);
    EXPECT_EQ(r1.counters.spawns, r4.counters.spawns);
}

TEST(SchedulerBounds, WorkFirstOverheadOnWorkTermIsSmall)
{
    // The work-first principle: T1/TS stays close to one even for a
    // fine-grained dag (spawn overhead is the only work-path cost).
    const ComputationDag dag = randomDag(7, 8, 500.0, 1500.0);
    const Machine m = Machine::paperMachine();
    const double ts =
        simulate(dag, m, 1, SimConfig::serial()).elapsedCycles;
    const double t1 =
        simulate(dag, m, 1, SimConfig::numaWs()).elapsedCycles;
    EXPECT_LT(t1 / ts, 1.05);
}

} // namespace
} // namespace numaws::sim
