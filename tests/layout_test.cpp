/**
 * @file
 * Z-Morton layout tests: bit interleaving bijectivity, the Figure 6
 * orderings (cell Z-Morton vs blocked Z-Morton), block contiguity, and
 * row-major round trips.
 */
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "layout/blocked_matrix.h"
#include "layout/zmorton.h"
#include "mem/numa_arena.h"

namespace numaws {
namespace {

TEST(ZMorton, MatchesFigure6aOrdering)
{
    // Figure 6a's top-left 4x4 of the 8x8 Z-Morton matrix.
    EXPECT_EQ(zMortonEncode(0, 0), 0u);
    EXPECT_EQ(zMortonEncode(0, 1), 1u);
    EXPECT_EQ(zMortonEncode(1, 0), 2u);
    EXPECT_EQ(zMortonEncode(1, 1), 3u);
    EXPECT_EQ(zMortonEncode(0, 2), 4u);
    EXPECT_EQ(zMortonEncode(0, 3), 5u);
    EXPECT_EQ(zMortonEncode(1, 2), 6u);
    EXPECT_EQ(zMortonEncode(1, 3), 7u);
    EXPECT_EQ(zMortonEncode(2, 0), 8u);
    EXPECT_EQ(zMortonEncode(3, 3), 15u);
    EXPECT_EQ(zMortonEncode(7, 7), 63u);
}

TEST(ZMorton, EncodeDecodeRoundTrip)
{
    for (uint32_t r : {0u, 1u, 5u, 100u, 65535u, 1u << 20})
        for (uint32_t c : {0u, 3u, 77u, 4096u, (1u << 20) - 1}) {
            uint32_t r2 = 0, c2 = 0;
            zMortonDecode(zMortonEncode(r, c), r2, c2);
            EXPECT_EQ(r2, r);
            EXPECT_EQ(c2, c);
        }
}

TEST(ZMorton, IsBijectiveOnGrid)
{
    std::set<uint64_t> codes;
    for (uint32_t r = 0; r < 32; ++r)
        for (uint32_t c = 0; c < 32; ++c)
            codes.insert(zMortonEncode(r, c));
    EXPECT_EQ(codes.size(), 1024u);
    EXPECT_EQ(*codes.rbegin(), 1023u);
}

TEST(ZMorton, SpreadCompactInverse)
{
    for (uint64_t x : {0ULL, 1ULL, 0xdeadULL, 0xffffffffULL})
        EXPECT_EQ(compactBits(spreadBits(x)), x);
}

TEST(BlockedZOffset, MatchesFigure6b)
{
    // Figure 6b: 8x8 matrix, 4x4 blocks laid on the Z curve, row-major
    // inside each block. Element (0,4) starts the second block -> 16.
    EXPECT_EQ(blockedZOffset(0, 0, 4, 2), 0u);
    EXPECT_EQ(blockedZOffset(0, 3, 4, 2), 3u);
    EXPECT_EQ(blockedZOffset(1, 0, 4, 2), 4u);
    EXPECT_EQ(blockedZOffset(0, 4, 4, 2), 16u);
    EXPECT_EQ(blockedZOffset(4, 0, 4, 2), 32u);
    EXPECT_EQ(blockedZOffset(4, 4, 4, 2), 48u);
    EXPECT_EQ(blockedZOffset(7, 7, 4, 2), 63u);
}

TEST(BlockedZMatrix, OffsetsArePermutation)
{
    const uint32_t n = 16, block = 4;
    std::set<uint64_t> seen;
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t j = 0; j < n; ++j)
            seen.insert(blockedZOffset(i, j, block, n / block));
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n) * n);
    EXPECT_EQ(*seen.rbegin(), static_cast<uint64_t>(n) * n - 1);
}

TEST(BlockedZMatrix, BlocksAreContiguous)
{
    BlockedZMatrix<double> m(16, 4);
    // Every element of block (bi,bj) lies in one 16-element span starting
    // at blockPtr.
    for (uint32_t bi = 0; bi < 4; ++bi)
        for (uint32_t bj = 0; bj < 4; ++bj) {
            double *base = m.blockPtr(bi, bj);
            for (uint32_t i = 0; i < 4; ++i)
                for (uint32_t j = 0; j < 4; ++j) {
                    double *el = &m.at(bi * 4 + i, bj * 4 + j);
                    EXPECT_GE(el, base);
                    EXPECT_LT(el, base + 16);
                }
        }
}

TEST(BlockedZMatrix, RowMajorRoundTrip)
{
    const uint32_t n = 32;
    std::vector<double> src(n * n);
    std::iota(src.begin(), src.end(), 0.0);
    BlockedZMatrix<double> m(n, 8);
    m.fromRowMajor(src.data());
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t j = 0; j < n; ++j)
            EXPECT_DOUBLE_EQ(m.at(i, j), src[i * n + j]);
    std::vector<double> dst(n * n, -1.0);
    m.toRowMajor(dst.data());
    EXPECT_EQ(src, dst);
}

TEST(BlockedZMatrix, BindBlocksPartitionsZOrder)
{
    PageMap pm(4);
    NumaArena arena(pm);
    BlockedZMatrix<double> m(64, 32); // 4 blocks, one per socket quadrant
    m.bindBlocksToSockets(arena, 4);
    EXPECT_EQ(pm.homeOf(reinterpret_cast<uint64_t>(m.blockPtr(0, 0))), 0);
    EXPECT_EQ(pm.homeOf(reinterpret_cast<uint64_t>(m.blockPtr(0, 1))), 1);
    EXPECT_EQ(pm.homeOf(reinterpret_cast<uint64_t>(m.blockPtr(1, 0))), 2);
    EXPECT_EQ(pm.homeOf(reinterpret_cast<uint64_t>(m.blockPtr(1, 1))), 3);
}

TEST(RowMajorMatrix, BasicIndexing)
{
    RowMajorMatrix<int> m(4);
    m.at(2, 3) = 42;
    EXPECT_EQ(m.data()[2 * 4 + 3], 42);
}

} // namespace
} // namespace numaws
