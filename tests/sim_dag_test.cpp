/**
 * @file
 * Computation-dag builder tests: structure, implicit syncs, work/span
 * arithmetic, and region home resolution.
 */
#include <gtest/gtest.h>

#include "sim/dag.h"

namespace numaws::sim {
namespace {

TEST(DagBuilder, SingleStrandRoot)
{
    DagBuilder b;
    b.beginRoot();
    b.strand(100.0, {});
    b.end();
    const ComputationDag dag = b.finish();
    EXPECT_EQ(dag.numFrames(), 1u);
    EXPECT_EQ(dag.numStrands(), 1u);
    const WorkSpan ws = dag.workSpan();
    EXPECT_DOUBLE_EQ(ws.work, 100.0);
    EXPECT_DOUBLE_EQ(ws.span, 100.0);
}

TEST(DagBuilder, SpawnCreatesParallelism)
{
    DagBuilder b;
    b.beginRoot();
    b.spawn(kAnyPlace);
    b.strand(50.0, {});
    b.end();
    b.strand(50.0, {});
    b.sync();
    b.end();
    const ComputationDag dag = b.finish();
    const WorkSpan ws = dag.workSpan();
    EXPECT_DOUBLE_EQ(ws.work, 100.0);
    EXPECT_DOUBLE_EQ(ws.span, 50.0); // the two strands overlap
}

TEST(DagBuilder, ImplicitSyncAtFrameEnd)
{
    DagBuilder b;
    b.beginRoot();
    b.spawn(kAnyPlace);
    b.strand(10.0, {});
    b.end();
    // no explicit sync before end(): builder must insert one
    b.end();
    const ComputationDag dag = b.finish();
    const Frame &root = dag.frame(dag.root());
    EXPECT_EQ(dag.item(root.itemEnd - 1).kind, ItemKind::Sync);
}

TEST(DagBuilder, SequentialDependenceViaSync)
{
    DagBuilder b;
    b.beginRoot();
    b.spawn(kAnyPlace);
    b.strand(30.0, {});
    b.end();
    b.sync(); // serialize
    b.spawn(kAnyPlace);
    b.strand(30.0, {});
    b.end();
    b.sync();
    b.end();
    const WorkSpan ws = b.finish().workSpan();
    EXPECT_DOUBLE_EQ(ws.work, 60.0);
    EXPECT_DOUBLE_EQ(ws.span, 60.0);
}

TEST(DagBuilder, SpawnSyncCostsAppearInWorkSpan)
{
    DagBuilder b;
    b.beginRoot();
    b.spawn(kAnyPlace);
    b.strand(10.0, {});
    b.end();
    b.strand(10.0, {});
    b.sync();
    b.end();
    const WorkSpan ws = b.finish().workSpan(5.0, 3.0);
    // work = 2 strands + spawn + sync = 10+10+5+3.
    EXPECT_DOUBLE_EQ(ws.work, 28.0);
    // span = spawn + max(child, continuation) + sync = 5 + 10 + 3.
    EXPECT_DOUBLE_EQ(ws.span, 18.0);
}

TEST(DagBuilder, ParentResumeItemPointsPastSpawn)
{
    DagBuilder b;
    b.beginRoot();
    b.strand(1.0, {});
    b.spawn(kAnyPlace);
    b.strand(2.0, {});
    b.end();
    b.strand(3.0, {});
    b.sync();
    b.end();
    const ComputationDag dag = b.finish();
    const Frame &root = dag.frame(0);
    const Frame &child = dag.frame(1);
    EXPECT_EQ(child.parent, 0);
    // Root items: strand, spawn, strand, sync. Spawn at itemBegin+1 ->
    // resume at itemBegin+2.
    EXPECT_EQ(child.parentResumeItem, root.itemBegin + 2);
    EXPECT_EQ(dag.item(child.parentResumeItem).kind, ItemKind::Strand);
}

TEST(DagBuilder, PlaceHintsRecorded)
{
    DagBuilder b;
    b.beginRoot();
    b.spawn(Place{2});
    b.strand(1.0, {});
    b.end();
    b.end();
    const ComputationDag dag = b.finish();
    EXPECT_EQ(dag.frame(1).place, 2);
    EXPECT_EQ(dag.frame(0).place, kAnyPlace);
}

TEST(Regions, HomeResolutionPerPolicy)
{
    DagBuilder b;
    const RegionId single = b.region("s", 1 << 20, RegionPolicy::Single, 2);
    const RegionId inter = b.region("i", 1 << 20,
                                    RegionPolicy::Interleaved);
    const RegionId part = b.region("p", 1 << 20,
                                   RegionPolicy::Partitioned);
    const RegionId custom = b.regionCustom(
        "c", 1 << 20, [](uint64_t off) { return off < 512 ? 1 : 3; });
    b.beginRoot();
    b.strand(1.0, {});
    b.end();
    const ComputationDag dag = b.finish();

    EXPECT_EQ(dag.homeOf(single, 0, 4), 2);
    EXPECT_EQ(dag.homeOf(single, 0, 2), 0); // clamped when out of range

    EXPECT_EQ(dag.homeOf(inter, 0, 4), 0);
    EXPECT_EQ(dag.homeOf(inter, 4096, 4), 1);
    EXPECT_EQ(dag.homeOf(inter, 4 * 4096, 4), 0);

    EXPECT_EQ(dag.homeOf(part, 0, 4), 0);
    EXPECT_EQ(dag.homeOf(part, (1 << 20) - 1, 4), 3);
    EXPECT_EQ(dag.homeOf(part, 1 << 19, 4), 2);

    EXPECT_EQ(dag.homeOf(custom, 0, 4), 1);
    EXPECT_EQ(dag.homeOf(custom, 600, 4), 3);
}

TEST(Regions, DistinctBasesWithGuardGap)
{
    DagBuilder b;
    b.region("a", 100, RegionPolicy::Single, 0);
    b.region("b", 100, RegionPolicy::Single, 0);
    b.beginRoot();
    b.strand(1.0, {});
    b.end();
    const ComputationDag dag = b.finish();
    EXPECT_GT(dag.region(1).base,
              dag.region(0).base + dag.region(0).bytes);
}

TEST(Dag, AccessBoundsValidated)
{
    DagBuilder b;
    const RegionId r = b.region("r", 1024, RegionPolicy::Single, 0);
    b.beginRoot();
    b.strand(1.0, {{r, 0, 1024}}); // exactly at the bound: fine
    b.end();
    EXPECT_EQ(b.finish().numStrands(), 1u);
}

} // namespace
} // namespace numaws::sim
