/**
 * @file
 * Simulated-scheduler tests: execution completeness, determinism, work
 * conservation across policies, serial elision semantics, and basic
 * sanity of the time split.
 */
#include <gtest/gtest.h>

#include "sim/scheduler.h"
#include "workloads/workloads.h"

namespace numaws::sim {
namespace {

ComputationDag
balancedTree(int depth, double leaf_cycles)
{
    DagBuilder b;
    b.beginRoot();
    // Recursive lambda building a binary spawn tree.
    auto rec = [&](auto &&self, int d) -> void {
        if (d == 0) {
            b.strand(leaf_cycles, {});
            return;
        }
        b.spawn(kAnyPlace);
        self(self, d - 1);
        b.end();
        self(self, d - 1);
        b.sync();
    };
    rec(rec, depth);
    b.end();
    return b.finish();
}

TEST(SimScheduler, ExecutesEveryStrand)
{
    const ComputationDag dag = balancedTree(6, 100.0);
    for (int cores : {1, 2, 8, 32}) {
        const SimResult r = simulate(dag, Machine::paperMachine(), cores,
                                     SimConfig::classicWs());
        EXPECT_EQ(r.counters.strandsExecuted, 64u) << "P=" << cores;
        EXPECT_EQ(r.counters.spawns, 63u);
    }
}

TEST(SimScheduler, DeterministicForSeed)
{
    const ComputationDag dag = balancedTree(8, 500.0);
    SimConfig cfg = SimConfig::numaWs();
    cfg.seed = 99;
    const SimResult a = simulate(dag, Machine::paperMachine(), 16, cfg);
    const SimResult b = simulate(dag, Machine::paperMachine(), 16, cfg);
    EXPECT_DOUBLE_EQ(a.elapsedCycles, b.elapsedCycles);
    EXPECT_EQ(a.counters.steals, b.counters.steals);
    EXPECT_EQ(a.counters.pushSuccesses, b.counters.pushSuccesses);
}

TEST(SimScheduler, SingleCoreHasNoStealsOrIdle)
{
    const ComputationDag dag = balancedTree(6, 100.0);
    const SimResult r =
        simulate(dag, Machine::paperMachine(), 1, SimConfig::numaWs());
    EXPECT_EQ(r.counters.steals, 0u);
    EXPECT_EQ(r.counters.stealAttempts, 0u);
    EXPECT_DOUBLE_EQ(r.idleSeconds, 0.0);
    EXPECT_DOUBLE_EQ(r.schedSeconds, 0.0);
}

TEST(SimScheduler, SerialElisionCheaperThanOneWorker)
{
    const ComputationDag dag = balancedTree(10, 200.0);
    const Machine m = Machine::paperMachine();
    const double ts =
        simulate(dag, m, 1, SimConfig::serial()).elapsedCycles;
    const double t1 =
        simulate(dag, m, 1, SimConfig::classicWs()).elapsedCycles;
    EXPECT_LT(ts, t1);          // spawn overhead exists...
    EXPECT_LT(t1 / ts, 1.15);   // ...but is small (work efficiency)
}

TEST(SimScheduler, WorkConservedAcrossPolicies)
{
    // Same dag, same strand count under any policy and core count.
    const ComputationDag dag = balancedTree(9, 300.0);
    const uint64_t expected = 512;
    for (const SimConfig &cfg :
         {SimConfig::classicWs(), SimConfig::numaWs()}) {
        for (int cores : {2, 7, 32}) {
            const SimResult r =
                simulate(dag, Machine::paperMachine(), cores, cfg);
            EXPECT_EQ(r.counters.strandsExecuted, expected);
        }
    }
}

TEST(SimScheduler, ParallelismGivesSpeedup)
{
    const ComputationDag dag = balancedTree(12, 400.0);
    const Machine m = Machine::paperMachine();
    const double t1 =
        simulate(dag, m, 1, SimConfig::classicWs()).elapsedCycles;
    const double t8 =
        simulate(dag, m, 8, SimConfig::classicWs()).elapsedCycles;
    const double t32 =
        simulate(dag, m, 32, SimConfig::classicWs()).elapsedCycles;
    EXPECT_GT(t1 / t8, 5.0);
    EXPECT_GT(t1 / t32, 14.0);
    EXPECT_LT(t32, t8);
}

TEST(SimScheduler, StealsOccurWhenParallel)
{
    const ComputationDag dag = balancedTree(10, 200.0);
    const SimResult r = simulate(dag, Machine::paperMachine(), 8,
                                 SimConfig::classicWs());
    EXPECT_GT(r.counters.steals, 0u);
    EXPECT_GT(r.counters.stealAttempts, r.counters.steals);
}

TEST(SimScheduler, TimeSplitAddsUpToCoresTimesElapsed)
{
    const ComputationDag dag = balancedTree(10, 300.0);
    for (int cores : {4, 16}) {
        const SimResult r = simulate(dag, Machine::paperMachine(), cores,
                                     SimConfig::numaWs());
        const double total = r.totalProcessingSeconds();
        const double wall = r.elapsedSeconds * cores;
        // A core can overrun the finish instant by at most its final
        // step; allow a few percent.
        EXPECT_NEAR(total, wall, wall * 0.05) << "P=" << cores;
    }
}

TEST(SimScheduler, MailboxTrafficOnlyWithHints)
{
    // A hinted dag on NUMA-WS should push frames; the same dag with
    // hints stripped (kAnyPlace everywhere) must not.
    workloads::HeatParams p;
    p.nx = 256;
    p.ny = 256;
    p.steps = 4;
    p.baseRows = 16;
    const auto hinted = workloads::heatDag(
        p, 4, workloads::Placement::Partitioned, true);
    const auto unhinted = workloads::heatDag(
        p, 4, workloads::Placement::Partitioned, false);
    const SimResult rh =
        simulate(hinted, Machine::paperMachine(), 32, SimConfig::numaWs());
    const SimResult ru = simulate(unhinted, Machine::paperMachine(), 32,
                                  SimConfig::numaWs());
    EXPECT_GT(rh.counters.pushAttempts, 0u);
    EXPECT_EQ(ru.counters.pushAttempts, 0u);
}

TEST(SimScheduler, ClassicConfigNeverTouchesMailboxes)
{
    workloads::HeatParams p;
    p.nx = 256;
    p.ny = 256;
    p.steps = 4;
    p.baseRows = 16;
    const auto dag = workloads::heatDag(
        p, 4, workloads::Placement::Partitioned, true);
    const SimResult r = simulate(dag, Machine::paperMachine(), 32,
                                 SimConfig::classicWs());
    EXPECT_EQ(r.counters.pushAttempts, 0u);
    EXPECT_EQ(r.counters.mailboxPops, 0u);
    EXPECT_EQ(r.counters.mailboxSteals, 0u);
}

TEST(SimScheduler, PackedSubsetUsesFewestSockets)
{
    const ComputationDag dag = balancedTree(8, 200.0);
    const SimResult r = simulatePacked(dag, 8, SimConfig::numaWs());
    EXPECT_EQ(r.cores, 8);
    // On one socket, no access can be remote.
    EXPECT_EQ(r.memory.remoteDramLines, 0u);
}

} // namespace
} // namespace numaws::sim
