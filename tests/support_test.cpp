/**
 * @file
 * Unit tests for the support utilities: RNG quality basics, statistics
 * accumulators, the table printer, and the CLI parser.
 */
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "support/cache_aligned.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/spin_lock.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/timing.h"

namespace numaws {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, FlipIsRoughlyFair)
{
    Rng rng(5);
    int heads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        heads += rng.flip() ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.02);
}

TEST(RunningStat, MeanAndStddev)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(CategoryCounter, FractionsSumToOne)
{
    CategoryCounter c(4);
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        c.add(rng.nextBounded(4));
    double sum = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
        sum += c.fraction(i);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_EQ(c.total(), 1000);
}

TEST(Table, RendersAlignedCells)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "2.5"});
    const std::string s = t.str();
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("| longer-name"), std::string::npos);
    EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(Table::fmtRatio(1.07), "1.07x");
    EXPECT_EQ(Table::fmtSeconds(123.456), "123.5");
    EXPECT_EQ(Table::fmtSeconds(1.234), "1.23");
    EXPECT_EQ(Table::fmtSeconds(0.1234), "0.123");
    EXPECT_EQ(Table::fmtSecondsWithRatio(2.0, 1.5), "2.00 (1.50x)");
}

TEST(Cli, ParsesTypedValues)
{
    const char *argv[] = {"prog", "--n=100", "--ratio=2.5",
                          "--name=hello", "--flag", "--list=1,2,3"};
    Cli cli(6, argv);
    EXPECT_EQ(cli.getInt("n", 0), 100);
    EXPECT_DOUBLE_EQ(cli.getDouble("ratio", 0.0), 2.5);
    EXPECT_EQ(cli.getString("name", ""), "hello");
    EXPECT_TRUE(cli.getBool("flag", false));
    EXPECT_EQ(cli.getIntList("list", {}),
              (std::vector<int64_t>{1, 2, 3}));
}

TEST(Cli, DefaultsApplyWhenAbsent)
{
    const char *argv[] = {"prog"};
    Cli cli(1, argv);
    EXPECT_EQ(cli.getInt("n", 7), 7);
    EXPECT_FALSE(cli.has("n"));
    EXPECT_EQ(cli.getIntList("cores", {1, 2}),
              (std::vector<int64_t>{1, 2}));
}

TEST(Cli, QueriesRegisterKeysAndUnknownKeysSurface)
{
    const char *argv[] = {"prog", "--n=1", "--dead-flag", "--typo=3"};
    Cli cli(4, argv);
    // Nothing queried yet: every provided key is unknown.
    EXPECT_EQ(cli.unknownKeys(),
              (std::vector<std::string>{"dead-flag", "n", "typo"}));
    // A query registers its key whether or not it was provided.
    EXPECT_EQ(cli.getInt("n", 0), 1);
    EXPECT_EQ(cli.getInt("absent", 9), 9);
    EXPECT_EQ(cli.unknownKeys(),
              (std::vector<std::string>{"dead-flag", "typo"}));
    // has() and declareKey() register too (conditional-path keys).
    EXPECT_TRUE(cli.has("dead-flag"));
    cli.declareKey("typo");
    EXPECT_TRUE(cli.unknownKeys().empty());
    // Destructor runs checkUnknownKeys(): clean here by construction.
}

TEST(CliDeathTest, UnknownKeyIsFatalAtExit)
{
    // The header's promise: a dead --flag in a CI invocation must fail
    // loudly. The fatal fires in checkUnknownKeys (destructor-time for
    // real binaries).
    const auto die = [] {
        const char *argv[] = {"prog", "--no-such-knob=1"};
        Cli cli(2, argv);
        (void)cli.getInt("n", 0);
        cli.checkUnknownKeys();
    };
    EXPECT_DEATH(die(), "unknown key");
}

TEST(SpinLock, MutualExclusionUnderContention)
{
    SpinLock lock;
    int64_t counter = 0;
    const int threads = 4;
    const int iters = 20000;
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&] {
            for (int i = 0; i < iters; ++i) {
                std::lock_guard<SpinLock> g(lock);
                ++counter;
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(counter, static_cast<int64_t>(threads) * iters);
}

TEST(CachePadded, OccupiesDistinctLines)
{
    CachePadded<int> a(1), b(2);
    EXPECT_GE(sizeof(a), kCacheLineBytes);
    EXPECT_EQ(*a, 1);
    EXPECT_EQ(*b, 2);
}

TEST(TimeSplit, BucketsAccumulateAndMerge)
{
    TimeSplit a, b;
    a.add(TimeSplit::Work, 100);
    a.add(TimeSplit::Idle, 50);
    b.add(TimeSplit::Work, 25);
    a.merge(b);
    EXPECT_EQ(a.ns(TimeSplit::Work), 125);
    EXPECT_EQ(a.ns(TimeSplit::Idle), 50);
    EXPECT_EQ(a.ns(TimeSplit::Scheduling), 0);
}

} // namespace
} // namespace numaws
