/**
 * @file
 * NUMA-WS mechanism tests on the threaded runtime: place hints and
 * inheritance, lazy pushback via mailboxes, biased steal configuration,
 * and the work-first property that local pops never pay pushback costs.
 */
#include <gtest/gtest.h>

#include <atomic>

#include "runtime/api.h"

namespace numaws {
namespace {

RuntimeOptions
numaOptions(int workers, int places)
{
    RuntimeOptions o;
    o.numWorkers = workers;
    o.numPlaces = places;
    o.sched.biasedSteals = true;
    o.sched.useMailboxes = true;
    return o;
}

TEST(RuntimeNuma, WorkersOfPlacePartitionsWorkers)
{
    Runtime rt(numaOptions(4, 2));
    const auto [b0, e0] = rt.workersOfPlace(0);
    const auto [b1, e1] = rt.workersOfPlace(1);
    EXPECT_EQ(b0, 0);
    EXPECT_EQ(e0, 2);
    EXPECT_EQ(b1, 2);
    EXPECT_EQ(e1, 4);
}

TEST(RuntimeNuma, PlaceHintInheritance)
{
    Runtime rt(numaOptions(4, 2));
    std::atomic<int> inherited_ok{0};
    rt.run([&] {
        TaskGroup tg;
        tg.spawn(
            [&] {
                // This task carries hint 1; a child spawned without an
                // explicit place must inherit it.
                TaskGroup inner;
                inner.spawn([&] {
                    Worker *w = Worker::current();
                    // The child's resolved hint equals the parent's.
                    if (w->currentHint() == 1)
                        inherited_ok.fetch_add(1);
                });
                inner.sync();
            },
            Place{1});
        tg.sync();
    });
    EXPECT_EQ(inherited_ok.load(), 1);
}

TEST(RuntimeNuma, AnyPlaceUnsetsHint)
{
    Runtime rt(numaOptions(4, 2));
    std::atomic<int> ok{0};
    rt.run([&] {
        TaskGroup tg;
        tg.spawn(
            [&] {
                TaskGroup inner;
                inner.spawn(
                    [&] {
                        if (Worker::current()->currentHint() == kAnyPlace)
                            ok.fetch_add(1);
                    },
                    kAnyPlace);
                inner.sync();
            },
            Place{1});
        tg.sync();
    });
    EXPECT_EQ(ok.load(), 1);
}

TEST(RuntimeNuma, HintedTasksMostlyRunAtTheirPlace)
{
    // Plenty of hinted work per place: the overwhelming majority should
    // execute on a worker of the hinted place (best effort, not strict).
    Runtime rt(numaOptions(4, 2));
    rt.resetStats();
    std::atomic<int64_t> on_place{0}, total{0};
    rt.run([&] {
        TaskGroup tg;
        for (int rep = 0; rep < 200; ++rep)
            for (Place p = 0; p < 2; ++p)
                tg.spawn(
                    [&, p] {
                        total.fetch_add(1);
                        if (currentPlace() == p)
                            on_place.fetch_add(1);
                        // A little work so tasks spread out.
                        volatile double x = 1.0;
                        for (int i = 0; i < 2000; ++i)
                            x = x * 1.0000001 + 0.1;
                    },
                    p);
        tg.sync();
    });
    EXPECT_EQ(total.load(), 400);
    // Best-effort: at least half land where hinted (typically ~all; the
    // bound is loose because load balancing may override). Inclusive
    // because on an oversubscribed single-CPU host the spawning worker
    // can run every task itself, which yields exactly half on-place.
    EXPECT_GE(on_place.load(), total.load() / 2);
}

TEST(RuntimeNuma, PushbackEventuallyGivesUpAtThreshold)
{
    RuntimeOptions o = numaOptions(2, 2);
    o.sched.pushThreshold = 2;
    Runtime rt(o);
    // One worker per place; hint everything at place 1. Work must still
    // complete (load balance beats locality when pushes fail).
    std::atomic<int> n{0};
    rt.run([&] {
        TaskGroup tg;
        for (int i = 0; i < 100; ++i)
            tg.spawn([&] { n.fetch_add(1); }, Place{1});
        tg.sync();
    });
    EXPECT_EQ(n.load(), 100);
}

TEST(RuntimeNuma, MailboxesDisabledStillCompletes)
{
    RuntimeOptions o = numaOptions(4, 2);
    o.sched.useMailboxes = false;
    Runtime rt(o);
    std::atomic<int> n{0};
    rt.run([&] {
        TaskGroup tg;
        for (int i = 0; i < 200; ++i)
            tg.spawn([&] { n.fetch_add(1); }, Place{i % 2});
        tg.sync();
    });
    EXPECT_EQ(n.load(), 200);
    EXPECT_EQ(rt.stats().counters.pushbackAttempts, 0u);
}

TEST(RuntimeNuma, UnhintedProgramUnaffectedByKnobs)
{
    // "not specifying locality hints ... result in comparable performance"
    // — at minimum, identical results and no pushback traffic.
    for (bool mailboxes : {false, true}) {
        RuntimeOptions o = numaOptions(4, 2);
        o.sched.useMailboxes = mailboxes;
        Runtime rt(o);
        rt.resetStats();
        std::atomic<int64_t> sum{0};
        rt.run([&] {
            parallelFor(0, 10000, 64,
                        [&](int64_t i) { sum.fetch_add(i); });
        });
        EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
        EXPECT_EQ(rt.stats().counters.pushbackAttempts, 0u);
    }
}

TEST(RuntimeNuma, BiasedStealsStillBalanceLoad)
{
    // All real work hinted at place 0; the other place's workers must
    // still steal it rather than idle forever (hints are hints).
    Runtime rt(numaOptions(4, 2));
    std::atomic<int> n{0};
    rt.run([&] {
        TaskGroup tg;
        for (int i = 0; i < 64; ++i)
            tg.spawn(
                [&] {
                    volatile double x = 1.0;
                    for (int k = 0; k < 50000; ++k)
                        x = x * 1.0000001 + 0.1;
                    n.fetch_add(1);
                },
                Place{0});
        tg.sync();
    });
    EXPECT_EQ(n.load(), 64);
}

TEST(RuntimeNuma, StatsTrackHintedPlacement)
{
    Runtime rt(numaOptions(4, 2));
    rt.resetStats();
    rt.run([&] {
        TaskGroup tg;
        for (int i = 0; i < 100; ++i)
            tg.spawn([] {}, Place{0});
        tg.sync();
    });
    const RuntimeStats s = rt.stats();
    EXPECT_GT(s.counters.tasksOnHintedPlace, 0u);
    EXPECT_LE(s.counters.tasksOnHintedPlace, 100u);
}

} // namespace
} // namespace numaws
