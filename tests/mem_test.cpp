/**
 * @file
 * Memory substrate tests: page map interval semantics, the NUMA arena's
 * placement policies, LLC hit/miss behaviour, and latency ordering
 * (local LLC < local DRAM < remote DRAM, growing with hops).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "mem/latency_model.h"
#include "mem/llc_model.h"
#include "mem/numa_arena.h"
#include "mem/page_map.h"
#include "mem/parted_vec.h"
#include "runtime/api.h"

namespace numaws {
namespace {

TEST(PageMap, UnknownAddressDefaultsToSocketZero)
{
    PageMap pm(4);
    EXPECT_EQ(pm.homeOf(0x123456), 0);
}

TEST(PageMap, SingleRangeResolves)
{
    PageMap pm(4);
    pm.registerRange(0x10000, 0x4000, PagePolicy::Single, 2);
    EXPECT_EQ(pm.homeOf(0x10000), 2);
    EXPECT_EQ(pm.homeOf(0x13fff), 2);
    EXPECT_EQ(pm.homeOf(0x14000), 0); // past the end
    EXPECT_EQ(pm.homeOf(0x0ffff), 0); // before the start
}

TEST(PageMap, InterleavedRoundRobinsPages)
{
    PageMap pm(4);
    pm.registerRange(0x100000, 8 * kPageBytes, PagePolicy::Interleaved);
    for (uint64_t page = 0; page < 8; ++page)
        EXPECT_EQ(pm.homeOf(0x100000 + page * kPageBytes + 17),
                  static_cast<int>(page % 4));
}

TEST(PageMap, ReRegistrationSplitsExisting)
{
    PageMap pm(4);
    pm.registerRange(0x10000, 0x8000, PagePolicy::Single, 1);
    // Re-home the middle.
    pm.registerRange(0x12000, 0x2000, PagePolicy::Single, 3);
    EXPECT_EQ(pm.homeOf(0x10000), 1);
    EXPECT_EQ(pm.homeOf(0x12000), 3);
    EXPECT_EQ(pm.homeOf(0x13fff), 3);
    EXPECT_EQ(pm.homeOf(0x14000), 1);
    EXPECT_EQ(pm.homeOf(0x17fff), 1);
}

TEST(NumaArena, AllocOnSocketHomesWholeBlock)
{
    PageMap pm(4);
    NumaArena arena(pm);
    void *p = arena.allocOnSocket(10 * kPageBytes, 3);
    ASSERT_NE(p, nullptr);
    const auto base = reinterpret_cast<uint64_t>(p);
    for (uint64_t off = 0; off < 10 * kPageBytes; off += kPageBytes)
        EXPECT_EQ(pm.homeOf(base + off), 3);
    arena.free(p);
    EXPECT_EQ(pm.homeOf(base), 0);
}

TEST(NumaArena, PartitionedSplitsAcrossSockets)
{
    PageMap pm(4);
    NumaArena arena(pm);
    const std::size_t bytes = 16 * kPageBytes;
    void *p = arena.allocPartitioned(bytes, 4);
    const auto base = reinterpret_cast<uint64_t>(p);
    EXPECT_EQ(pm.homeOf(base), 0);
    EXPECT_EQ(pm.homeOf(base + 5 * kPageBytes), 1);
    EXPECT_EQ(pm.homeOf(base + 9 * kPageBytes), 2);
    EXPECT_EQ(pm.homeOf(base + 15 * kPageBytes), 3);
    arena.free(p);
}

TEST(NumaArena, InterleavedAlternatesPages)
{
    PageMap pm(2);
    NumaArena arena(pm);
    void *p = arena.allocInterleaved(4 * kPageBytes);
    const auto base = reinterpret_cast<uint64_t>(p);
    EXPECT_EQ(pm.homeOf(base), 0);
    EXPECT_EQ(pm.homeOf(base + kPageBytes), 1);
    EXPECT_EQ(pm.homeOf(base + 2 * kPageBytes), 0);
    arena.free(p);
}

TEST(NumaArena, CarveSlabIsPageAlignedAndUsable)
{
    // The static carve-out bypasses registration (runtime-internal
    // metadata): page-aligned, writable end to end, released without
    // an arena.
    void *slab = NumaArena::carveSlab(3 * kPageBytes + 7);
    ASSERT_NE(slab, nullptr);
    EXPECT_EQ(reinterpret_cast<uint64_t>(slab) % kPageBytes, 0u);
    std::memset(slab, 0xab, 4 * kPageBytes); // rounded up to pages
    NumaArena::releaseSlab(slab);
}

TEST(NumaArena, CarveSlabOnSocketRegistersHomes)
{
    PageMap pm(4);
    NumaArena arena(pm);
    void *slab = arena.carveSlabOnSocket(2 * kPageBytes, 2);
    const auto base = reinterpret_cast<uint64_t>(slab);
    EXPECT_EQ(pm.homeOf(base), 2);
    EXPECT_EQ(pm.homeOf(base + kPageBytes), 2);
    arena.free(slab);
    EXPECT_EQ(pm.homeOf(base), 0);
}

TEST(PageMap, RegisteredHomeOfDistinguishesUnknownAddresses)
{
    PageMap pm(4);
    pm.registerRange(0x10000, 0x4000, PagePolicy::Single, 2);
    EXPECT_EQ(pm.registeredHomeOf(0x10000), 2);
    EXPECT_EQ(pm.registeredHomeOf(0x13fff), 2);
    // homeOf would say socket 0 for all of these; placement must not.
    EXPECT_EQ(pm.registeredHomeOf(0x14000), -1);
    EXPECT_EQ(pm.registeredHomeOf(0x0ffff), -1);
    EXPECT_EQ(pm.registeredHomeOf(0x123456), -1);
}

RuntimeOptions
partedOptions(int places, DataHeapPolicy heap = DataHeapPolicy::Pooled)
{
    RuntimeOptions o;
    o.numWorkers = places;
    o.numPlaces = places;
    o.dataHeap = heap;
    return o;
}

TEST(PartedVec, ShardMathWithGranule)
{
    Runtime rt(partedOptions(4));
    // 100 elements in granules of 8: 13 granules, ceil(13/4) = 4 per
    // shard -> stride 32 elements; the last shard takes the tail.
    PartedVec<double> v(rt, 100, 8);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v.numShards(), 4);
    EXPECT_EQ(v.shardStride(), 32u);
    EXPECT_EQ(v.shardSize(0), 32u);
    EXPECT_EQ(v.shardSize(2), 32u);
    EXPECT_EQ(v.shardSize(3), 4u);
    EXPECT_EQ(v.shardFor(0), 0);
    EXPECT_EQ(v.shardFor(31), 0);
    EXPECT_EQ(v.shardFor(32), 1);
    EXPECT_EQ(v.shardBegin(1), 32u);
    EXPECT_EQ(v.homeOf(99), 3);
}

TEST(PartedVec, ShardsRegisterAndUnregisterTheirHomes)
{
    Runtime rt(partedOptions(2));
    const std::size_t before = rt.dataPageMap().rangeCount();
    {
        PartedVec<int> v(rt, 1000);
        EXPECT_EQ(rt.dataPageMap().rangeCount(), before + 2);
        for (int s = 0; s < v.numShards(); ++s) {
            EXPECT_EQ(rt.dataPageMap().registeredHomeOf(
                          reinterpret_cast<uint64_t>(v.shardData(s))),
                      s);
        }
    }
    // Destruction returns the shards and their registrations.
    EXPECT_EQ(rt.dataPageMap().rangeCount(), before);
}

TEST(PartedVec, ElementAccessIsCoherentAcrossViews)
{
    Runtime rt(partedOptions(3));
    PartedVec<int> v(rt, 50, 4);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<int>(i);
    for (std::size_t i = 0; i < v.size(); ++i) {
        EXPECT_EQ(*v.ptr(i), static_cast<int>(i));
        const int s = v.shardFor(i);
        EXPECT_EQ(v.shardData(s)[i - v.shardBegin(s)],
                  static_cast<int>(i));
    }
    // Value-construction zeroed every element before we wrote.
    PartedVec<int> z(rt, 50, 4);
    for (std::size_t i = 0; i < z.size(); ++i)
        EXPECT_EQ(z[i], 0);
}

TEST(PartedVec, ForEachShardVisitsEveryElementOnce)
{
    Runtime rt(partedOptions(2));
    PartedVec<int> v(rt, 301, 10);
    std::atomic<int> shards_seen{0};
    rt.run([&] {
        v.forEachShard([&](int, int *data, std::size_t count) {
            for (std::size_t i = 0; i < count; ++i)
                data[i] += 1;
            shards_seen.fetch_add(1);
        });
    });
    EXPECT_EQ(shards_seen.load(), v.numShards());
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(v[i], 1);
}

TEST(PartedVec, HeapPolicyShardsAreUnregistered)
{
    Runtime rt(partedOptions(2, DataHeapPolicy::Heap));
    const std::size_t before = rt.dataPageMap().rangeCount();
    PartedVec<int> v(rt, 100);
    EXPECT_EQ(rt.dataPageMap().rangeCount(), before);
    EXPECT_EQ(rt.dataPageMap().registeredHomeOf(
                  reinterpret_cast<uint64_t>(v.shardData(0))),
              -1);
    // Sharding math is policy-independent (the ablation contract).
    EXPECT_EQ(v.numShards(), 2);
    v[99] = 7;
    EXPECT_EQ(*v.ptr(99), 7);
}

TEST(LlcModel, MissThenHit)
{
    LlcModel llc(1 << 20, 4096, 8);
    EXPECT_FALSE(llc.access(0x1000));
    EXPECT_TRUE(llc.access(0x1000));
    EXPECT_TRUE(llc.access(0x1fff)); // same granule
    EXPECT_FALSE(llc.access(0x2000)); // next granule
    EXPECT_EQ(llc.hits(), 2u);
    EXPECT_EQ(llc.misses(), 2u);
}

TEST(LlcModel, CapacityEviction)
{
    // 64 KB cache of 4 KB granules = 16 entries; stream 64 distinct
    // granules twice: the second pass must still miss (LRU evicted them).
    LlcModel llc(64 << 10, 4096, 8);
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t g = 0; g < 64; ++g)
            llc.access(g * 4096);
    EXPECT_EQ(llc.hits(), 0u);
    EXPECT_EQ(llc.misses(), 128u);
}

TEST(LlcModel, WorkingSetWithinCapacityHits)
{
    LlcModel llc(1 << 20, 4096, 8); // 256 entries
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t g = 0; g < 64; ++g)
            llc.access(g * 4096);
    // First pass misses, later passes hit.
    EXPECT_EQ(llc.misses(), 64u);
    EXPECT_EQ(llc.hits(), 128u);
}

TEST(LlcModel, ClearDropsContents)
{
    LlcModel llc(1 << 20);
    llc.access(0);
    llc.clear();
    EXPECT_FALSE(llc.contains(0));
    EXPECT_EQ(llc.hits(), 0u);
}

TEST(LatencyModel, OrderingMatchesPaperProse)
{
    const LatencyModel lat;
    // "tens of cycles (local LLC), over a hundred (local DRAM), a few
    // hundreds (remote DRAM)".
    EXPECT_LT(lat.lineCost(true, 0), 100.0);
    EXPECT_GT(lat.lineCost(false, 0), 100.0);
    EXPECT_GT(lat.lineCost(false, 1), lat.lineCost(false, 0));
    EXPECT_GT(lat.lineCost(false, 2), lat.lineCost(false, 1));
}

TEST(LatencyModel, ClassifiesAccessLevels)
{
    const LatencyModel lat;
    EXPECT_EQ(lat.classify(true, 2), AccessLevel::LocalLlc);
    EXPECT_EQ(lat.classify(false, 0), AccessLevel::LocalDram);
    EXPECT_EQ(lat.classify(false, 1), AccessLevel::RemoteDram);
}

} // namespace
} // namespace numaws
