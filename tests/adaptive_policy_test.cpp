/**
 * @file
 * Tests for the adaptive scheduling policies: the pluggable pushing
 * threshold (PushPolicy) and the hierarchical steal escalation as wired
 * into both engines, including the load-balance-first invariant that a
 * starving worker steals against the place hint rather than idling.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "mem/numa_arena.h"
#include "mem/page_map.h"
#include "runtime/api.h"
#include "sched/push_policy.h"
#include "sim/dag.h"
#include "sim/scheduler.h"
#include "workloads/workloads.h"

namespace numaws {
namespace {

// ---------------------------------------------------------------------
// PushPolicy unit tests (deterministic, no threads)
// ---------------------------------------------------------------------

TEST(PushPolicy, ConstantIgnoresEverySignal)
{
    PushPolicyConfig cfg;
    cfg.kind = PushPolicyKind::Constant;
    PushPolicy p(4, cfg);
    EXPECT_EQ(p.threshold(), 4);
    for (int i = 0; i < 10; ++i)
        p.onMailboxFull();
    p.observeDequeDepth(1000);
    p.onPushSuccess();
    EXPECT_EQ(p.threshold(), 4);
    EXPECT_EQ(p.kind(), PushPolicyKind::Constant);
}

TEST(PushPolicy, AdaptiveTightensAfterConsecutiveRejections)
{
    PushPolicyConfig cfg;
    cfg.kind = PushPolicyKind::Adaptive;
    cfg.minThreshold = 1;
    cfg.tightenAfterFailures = 2;
    PushPolicy p(4, cfg);
    p.onMailboxFull();
    EXPECT_EQ(p.threshold(), 4); // one rejection is not a streak
    p.onMailboxFull();
    EXPECT_EQ(p.threshold(), 3);
    p.onMailboxFull();
    p.onMailboxFull();
    EXPECT_EQ(p.threshold(), 2);
    p.onMailboxFull();
    p.onMailboxFull();
    EXPECT_EQ(p.threshold(), 1);
    // Clamped at the floor: pushing never becomes unbounded give-up.
    p.onMailboxFull();
    p.onMailboxFull();
    EXPECT_EQ(p.threshold(), 1);
}

TEST(PushPolicy, SuccessBreaksTheRejectionStreak)
{
    PushPolicyConfig cfg;
    cfg.kind = PushPolicyKind::Adaptive;
    cfg.tightenAfterFailures = 2;
    PushPolicy p(4, cfg);
    p.onMailboxFull();
    p.onPushSuccess();
    p.onMailboxFull();
    // Two rejections separated by a success must not tighten.
    EXPECT_EQ(p.threshold(), 4);
}

TEST(PushPolicy, AdaptiveWidensUnderDequePressure)
{
    PushPolicyConfig cfg;
    cfg.kind = PushPolicyKind::Adaptive;
    cfg.maxThreshold = 6;
    cfg.dequeHighWatermark = 4;
    PushPolicy p(4, cfg);
    p.observeDequeDepth(3);
    EXPECT_EQ(p.threshold(), 4); // below the watermark: no pressure
    p.observeDequeDepth(4);
    EXPECT_EQ(p.threshold(), 5);
    p.observeDequeDepth(100);
    EXPECT_EQ(p.threshold(), 6);
    p.observeDequeDepth(100);
    EXPECT_EQ(p.threshold(), 6); // clamped at the ceiling
}

TEST(PushPolicy, CongestionBlocksWidening)
{
    PushPolicyConfig cfg;
    cfg.kind = PushPolicyKind::Adaptive;
    cfg.dequeHighWatermark = 4;
    cfg.tightenAfterFailures = 2;
    PushPolicy p(4, cfg);
    p.onMailboxFull(); // open rejection streak
    p.observeDequeDepth(100);
    // Pressure must not fight an active congestion signal.
    EXPECT_EQ(p.threshold(), 4);
}

TEST(PushPolicy, SuccessRelaxesTowardTheBase)
{
    PushPolicyConfig cfg;
    cfg.kind = PushPolicyKind::Adaptive;
    cfg.tightenAfterFailures = 1;
    cfg.dequeHighWatermark = 1;
    cfg.maxThreshold = 8;
    PushPolicy p(4, cfg);
    p.onMailboxFull();
    p.onMailboxFull();
    EXPECT_EQ(p.threshold(), 2);
    p.onPushSuccess();
    p.onPushSuccess();
    EXPECT_EQ(p.threshold(), 4); // back up to base...
    p.onPushSuccess();
    EXPECT_EQ(p.threshold(), 4); // ...and not past it
    p.observeDequeDepth(10);
    p.observeDequeDepth(10);
    EXPECT_EQ(p.threshold(), 6);
    p.onPushSuccess();
    EXPECT_EQ(p.threshold(), 5); // widened threshold relaxes down too
}

TEST(PushPolicy, ResetRestoresTheStartingState)
{
    PushPolicyConfig cfg;
    cfg.kind = PushPolicyKind::Adaptive;
    cfg.tightenAfterFailures = 1;
    PushPolicy p(4, cfg);
    p.onMailboxFull();
    p.onMailboxFull();
    EXPECT_NE(p.threshold(), 4);
    p.reset();
    EXPECT_EQ(p.threshold(), 4);
}

TEST(PushPolicy, DescribeNamesTheKind)
{
    PushPolicyConfig cfg;
    PushPolicy constant(4, cfg);
    EXPECT_NE(constant.describe().find("constant"), std::string::npos);
    cfg.kind = PushPolicyKind::Adaptive;
    PushPolicy adaptive(4, cfg);
    EXPECT_NE(adaptive.describe().find("adaptive"), std::string::npos);
}

// ---------------------------------------------------------------------
// Simulator: the starving-worker invariant
// ---------------------------------------------------------------------

/**
 * All parallel work hinted at place 0 of a two-socket machine. Sixteen
 * mid frames fan out eight leaves each; socket 0 alone would need
 * work/8 cycles, so finishing well under that bound proves socket-1
 * cores stole against the hint instead of idling.
 */
sim::ComputationDag
placeZeroHeavyDag(int mids, int leaves_per_mid, double leaf_cycles)
{
    sim::DagBuilder b;
    b.beginRoot();
    for (int m = 0; m < mids; ++m) {
        b.spawn(/*place=*/0);
        for (int l = 0; l < leaves_per_mid; ++l) {
            b.spawn(); // inherits place 0
            b.strand(leaf_cycles, {});
            b.end();
        }
        b.sync();
        b.end();
    }
    b.sync();
    b.end();
    return b.finish();
}

TEST(AdaptiveSim, StarvingWorkersStealAgainstTheHint)
{
    const sim::ComputationDag dag = placeZeroHeavyDag(16, 8, 5000.0);
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.seed = 99;
    const sim::SimResult r = sim::simulatePacked(dag, 16, cfg);

    const double work = 16.0 * 8.0 * 5000.0;
    const double socket0_only_bound = work / 8.0; // 8 cores on socket 0
    // Finishing beneath the single-socket bound is only possible if
    // off-place cores executed hinted work (load balance over locality).
    EXPECT_LT(r.elapsedCycles, 0.9 * socket0_only_bound);
    // Sanity: more than trivially parallel, and the pushing machinery
    // actually engaged rather than being sidestepped.
    EXPECT_GT(r.elapsedCycles, work / 16.0);
    EXPECT_GT(r.counters.pushAttempts, 0u);
}

TEST(AdaptiveSim, AdaptiveConfigMatchesWorkOfBaseline)
{
    // The adaptive knobs change *where* and *in what order* work runs,
    // never *what* runs: strand count and spawn count are invariant.
    const sim::ComputationDag dag = placeZeroHeavyDag(8, 4, 2000.0);
    sim::SimConfig base = sim::SimConfig::numaWs();
    sim::SimConfig adaptive = sim::SimConfig::adaptiveNumaWs();
    const sim::SimResult rb = sim::simulatePacked(dag, 16, base);
    const sim::SimResult ra = sim::simulatePacked(dag, 16, adaptive);
    EXPECT_EQ(rb.counters.strandsExecuted, ra.counters.strandsExecuted);
    EXPECT_EQ(rb.counters.spawns, ra.counters.spawns);
}

TEST(AdaptiveSim, RemoteStealHalfMovesBatches)
{
    // fib at depth 20 creates deep deques; on the four-socket machine
    // remote-level victims exist, so batching must fire.
    const sim::ComputationDag dag = workloads::fibDag(20);
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    const sim::SimResult r = sim::simulatePacked(dag, 32, cfg);
    EXPECT_GT(r.counters.batchedSteals, 0u);
    EXPECT_GE(r.counters.batchedFrames, r.counters.batchedSteals);

    // And the knob really is the gate: no batches without it.
    sim::SimConfig off = sim::SimConfig::numaWs();
    const sim::SimResult r2 = sim::simulatePacked(dag, 32, off);
    EXPECT_EQ(r2.counters.batchedSteals, 0u);
    EXPECT_EQ(r2.counters.batchedFrames, 0u);
}

// ---------------------------------------------------------------------
// Threaded runtime: adaptive knobs end to end
// ---------------------------------------------------------------------

TEST(AdaptiveRuntime, HintedWorkCompletesUnderAdaptiveKnobs)
{
    RuntimeOptions o;
    o.numWorkers = 4;
    o.numPlaces = 2;
    o.sched.hierarchicalSteals = true;
    o.sched.remoteStealHalf = true;
    o.sched.pushPolicy.kind = PushPolicyKind::Adaptive;
    o.seed = 7;
    Runtime rt(o);

    std::atomic<int64_t> sum{0};
    rt.run([&] {
        TaskGroup g;
        for (int i = 0; i < 256; ++i) {
            // Everything hinted at place 0: the other place's workers
            // must still help once mailboxes saturate.
            g.spawn(
                [&sum, i] {
                    int64_t acc = 0;
                    for (int k = 0; k < 2000; ++k)
                        acc += (i * 31 + k) % 7;
                    sum.fetch_add(acc + 1,
                                  std::memory_order_relaxed);
                },
                /*place=*/0);
        }
        g.sync();
    });

    const RuntimeStats stats = rt.stats();
    EXPECT_GE(stats.counters.tasksExecuted, 256u);
    EXPECT_GT(sum.load(), 0);
}

TEST(AdaptiveRuntime, FibMatchesSerialUnderAllKnobCombinations)
{
    const int n = 18;
    const uint64_t expected = workloads::fibSerial(n);
    for (const bool hierarchical : {false, true}) {
        for (const bool adaptive : {false, true}) {
            RuntimeOptions o;
            o.numWorkers = 3;
            o.numPlaces = 3;
            o.sched.hierarchicalSteals = hierarchical;
            o.sched.remoteStealHalf = hierarchical;
            o.sched.pushPolicy.kind = adaptive ? PushPolicyKind::Adaptive
                                         : PushPolicyKind::Constant;
            Runtime rt(o);
            EXPECT_EQ(workloads::fibParallel(rt, n, 10), expected)
                << "hierarchical=" << hierarchical
                << " adaptive=" << adaptive;
        }
    }
}

TEST(AdaptiveSim, InformedPoliciesMatchWorkOfDistance)
{
    // Victim policy changes where thieves look, never what executes.
    const sim::ComputationDag dag = placeZeroHeavyDag(8, 4, 2000.0);
    sim::SimResult base;
    bool first = true;
    for (const VictimPolicy policy :
         {VictimPolicy::Distance, VictimPolicy::Occupancy,
          VictimPolicy::OccupancyAffinity}) {
        sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
        cfg.sched.victimPolicy = policy;
        const sim::SimResult r = sim::simulatePacked(dag, 16, cfg);
        if (first) {
            base = r;
            first = false;
            EXPECT_EQ(r.counters.levelSkips, 0u); // blind ladder
        } else {
            EXPECT_EQ(r.counters.strandsExecuted,
                      base.counters.strandsExecuted);
            EXPECT_EQ(r.counters.spawns, base.counters.spawns);
        }
    }
}

TEST(AdaptiveSim, InformedPolicySkipsProbesOnHintedWork)
{
    // Heavily hinted work makes local levels run dry: the board must
    // actually skip levels and replace probes with dry polls.
    const sim::ComputationDag dag = placeZeroHeavyDag(16, 8, 5000.0);
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.sched.victimPolicy = VictimPolicy::Occupancy;
    const sim::SimResult r = sim::simulatePacked(dag, 16, cfg);

    // adaptiveNumaWs() defaults to OccupancyAffinity since PR 3: the
    // blind baseline must ask for the Distance ladder explicitly.
    sim::SimConfig blind = sim::SimConfig::adaptiveNumaWs();
    blind.sched.victimPolicy = VictimPolicy::Distance;
    const sim::SimResult rb = sim::simulatePacked(dag, 16, blind);

    EXPECT_GT(r.counters.levelSkips + r.counters.boardDryPolls, 0u);
    // The informed policy must not probe more than the blind ladder.
    EXPECT_LE(r.counters.stealAttempts, rb.counters.stealAttempts);
    // And the starving-worker invariant still holds (work completes).
    EXPECT_EQ(r.counters.strandsExecuted, rb.counters.strandsExecuted);
}

TEST(AdaptiveRuntime, VictimPoliciesComputeCorrectResults)
{
    const int n = 18;
    const uint64_t expected = workloads::fibSerial(n);
    for (const VictimPolicy policy :
         {VictimPolicy::Distance, VictimPolicy::Occupancy,
          VictimPolicy::OccupancyAffinity}) {
        RuntimeOptions o;
        o.numWorkers = 4;
        o.numPlaces = 2;
        o.sched.hierarchicalSteals = true;
        o.sched.victimPolicy = policy;
        o.sched.escalationPolicy = EscalationPolicy::Adaptive;
        o.sched.mailboxCapacity = 2;
        Runtime rt(o);
        EXPECT_EQ(workloads::fibParallel(rt, n, 10), expected)
            << victimPolicyName(policy);
    }
}

TEST(AdaptiveRuntime, AffinityResolvesDataHomesThroughThePageMap)
{
    PageMap pm(2);
    NumaArena arena(pm);
    const std::size_t bytes = 1 << 16;
    void *block0 = arena.allocOnSocket(bytes, 0);
    void *block1 = arena.allocOnSocket(bytes, 1);

    RuntimeOptions o;
    o.numWorkers = 4;
    o.numPlaces = 2;
    o.sched.hierarchicalSteals = true;
    o.sched.victimPolicy = VictimPolicy::OccupancyAffinity;
    o.pageMap = &pm;
    Runtime rt(o);

    std::atomic<int64_t> sum{0};
    rt.run([&] {
        TaskGroup g;
        for (int i = 0; i < 128; ++i) {
            void *data = (i & 1) != 0 ? block1 : block0;
            g.spawn(
                [&sum, data] {
                    auto *p = static_cast<unsigned char *>(data);
                    int64_t acc = 0;
                    for (int k = 0; k < 512; ++k)
                        acc += p[k] + 1;
                    sum.fetch_add(acc, std::memory_order_relaxed);
                },
                /*place=*/i & 1, data, bytes);
        }
        g.sync();
    });
    EXPECT_GE(sum.load(), 128 * 512);
    EXPECT_GE(rt.stats().counters.tasksExecuted, 128u);

    arena.free(block0);
    arena.free(block1);
}

TEST(AdaptiveRuntime, EscalationCountersAdvanceUnderStarvation)
{
    // Two workers, almost no work: steal attempts mostly fail, so the
    // hierarchical ladder must widen (the counter proves escalation ran).
    RuntimeOptions o;
    o.numWorkers = 2;
    o.numPlaces = 2;
    o.sched.hierarchicalSteals = true;
    // Pin the blind ladder: under the OccupancyAffinity default a
    // starving worker's dry-board polls *replace* failed probes, so
    // escalation can legitimately never fire here. Pin timer parking
    // too: under the Board default the starving worker sleeps through
    // these microsecond-long runs on its own socket's slot (spawn
    // edges wake socket 0 only — the designed bounded-delay trade) and
    // may make zero probes before each run ends.
    o.sched.victimPolicy = VictimPolicy::Distance;
    o.sched.parkPolicy = ParkPolicy::Timer;
    Runtime rt(o);
    // On a contended 1-core host the starving worker may not get
    // scheduled at all during one of these microsecond-long runs (the
    // -j2 regime flushed exactly that flake out of a fixed 20-run
    // count), so run until the counter proves the ladder widened, with
    // a generous bound.
    uint64_t escalations = 0;
    for (int rep = 0; rep < 2000 && escalations == 0; ++rep) {
        rt.run([] {
            TaskGroup g;
            g.spawn([] {});
            g.sync();
        });
        escalations = rt.stats().counters.escalations;
    }
    EXPECT_GT(escalations, 0u);
}

} // namespace
} // namespace numaws