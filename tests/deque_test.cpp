/**
 * @file
 * THE-protocol deque tests: sequential LIFO/FIFO semantics, the
 * one-element owner/thief conflict, and a multithreaded stress test
 * checking that every pushed item is extracted exactly once.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "deque/ws_deque.h"

namespace numaws {
namespace {

struct Node
{
    int value;
};

TEST(WsDeque, OwnerLifoOrder)
{
    WsDeque<Node> d(16);
    Node a{1}, b{2}, c{3};
    d.pushTail(&a);
    d.pushTail(&b);
    d.pushTail(&c);
    EXPECT_EQ(d.popTail(), &c);
    EXPECT_EQ(d.popTail(), &b);
    EXPECT_EQ(d.popTail(), &a);
    EXPECT_EQ(d.popTail(), nullptr);
}

TEST(WsDeque, ThiefFifoOrder)
{
    WsDeque<Node> d(16);
    Node a{1}, b{2}, c{3};
    d.pushTail(&a);
    d.pushTail(&b);
    d.pushTail(&c);
    EXPECT_EQ(d.stealHead(), &a);
    EXPECT_EQ(d.stealHead(), &b);
    EXPECT_EQ(d.stealHead(), &c);
    EXPECT_EQ(d.stealHead(), nullptr);
}

TEST(WsDeque, OwnerAndThiefMeetInTheMiddle)
{
    WsDeque<Node> d(16);
    Node n[4] = {{0}, {1}, {2}, {3}};
    for (auto &x : n)
        d.pushTail(&x);
    EXPECT_EQ(d.stealHead(), &n[0]);
    EXPECT_EQ(d.popTail(), &n[3]);
    EXPECT_EQ(d.stealHead(), &n[1]);
    EXPECT_EQ(d.popTail(), &n[2]);
    EXPECT_TRUE(d.empty());
}

TEST(WsDeque, EmptyChecks)
{
    WsDeque<Node> d(8);
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.size(), 0);
    Node a{1};
    d.pushTail(&a);
    EXPECT_FALSE(d.empty());
    EXPECT_EQ(d.size(), 1);
    d.popTail();
    EXPECT_TRUE(d.empty());
}

TEST(WsDeque, WrapsAroundRingBuffer)
{
    WsDeque<Node> d(4);
    Node n[3] = {{0}, {1}, {2}};
    for (int round = 0; round < 10; ++round) {
        for (auto &x : n)
            d.pushTail(&x);
        EXPECT_EQ(d.stealHead(), &n[0]);
        EXPECT_EQ(d.popTail(), &n[2]);
        EXPECT_EQ(d.popTail(), &n[1]);
        EXPECT_EQ(d.popTail(), nullptr);
    }
}

TEST(WsDequeStealHalf, TakesHalfFromTheHeadOldestFirst)
{
    WsDeque<Node> d(16);
    Node n[8] = {{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}};
    for (auto &x : n)
        d.pushTail(&x);
    Node *batch[8] = {};
    // Half of 8 is 4, oldest first.
    EXPECT_EQ(d.stealHalf(batch, 8), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(batch[i], &n[i]);
    EXPECT_EQ(d.size(), 4);
    // Remaining half again: ceil(4/2) == 2.
    EXPECT_EQ(d.stealHalf(batch, 8), 2u);
    EXPECT_EQ(batch[0], &n[4]);
    EXPECT_EQ(batch[1], &n[5]);
    // Owner still finds the youngest items at the tail.
    EXPECT_EQ(d.popTail(), &n[7]);
    EXPECT_EQ(d.popTail(), &n[6]);
    EXPECT_EQ(d.popTail(), nullptr);
}

TEST(WsDequeStealHalf, RespectsTheCapAndTheSingleItem)
{
    WsDeque<Node> d(16);
    Node n[6] = {{0}, {1}, {2}, {3}, {4}, {5}};
    for (auto &x : n)
        d.pushTail(&x);
    Node *batch[8] = {};
    // Cap below half: only max_n items move.
    EXPECT_EQ(d.stealHalf(batch, 2), 2u);
    EXPECT_EQ(batch[0], &n[0]);
    EXPECT_EQ(batch[1], &n[1]);
    // A single remaining item is still stolen (ceil(1/2) == 1).
    while (d.size() > 1)
        d.popTail();
    EXPECT_EQ(d.stealHalf(batch, 8), 1u);
    EXPECT_EQ(d.stealHalf(batch, 8), 0u); // empty deque yields nothing
    EXPECT_EQ(d.stealHalf(batch, 0), 0u); // zero capacity is a no-op
}

/** Batch thieves race the owner; nothing may be lost or duplicated. */
TEST(WsDequeStress, StealHalfNoLossNoDuplication)
{
    constexpr int kItems = 100000;
    constexpr int kThieves = 2;
    WsDeque<Node> d(1 << 17);
    std::vector<Node> nodes(kItems);
    for (int i = 0; i < kItems; ++i)
        nodes[i].value = i;

    std::vector<std::atomic<int>> extracted(kItems);
    for (auto &e : extracted)
        e.store(0);
    std::atomic<bool> done{false};
    std::atomic<int64_t> total{0};

    std::vector<std::thread> thieves;
    for (int t = 0; t < kThieves; ++t) {
        thieves.emplace_back([&] {
            Node *batch[8];
            int64_t mine = 0;
            auto drain = [&](std::size_t got) {
                for (std::size_t i = 0; i < got; ++i) {
                    extracted[batch[i]->value].fetch_add(1);
                    ++mine;
                }
            };
            while (!done.load(std::memory_order_acquire)) {
                drain(d.stealHalf(batch, 8));
                std::this_thread::yield();
            }
            while (std::size_t got = d.stealHalf(batch, 8))
                drain(got);
            total.fetch_add(mine);
        });
    }

    int64_t owner_got = 0;
    for (int i = 0; i < kItems; ++i) {
        d.pushTail(&nodes[i]);
        // Pop in bursts so the owner regularly contends at the tail
        // while batches are claimed at the head.
        if (i % 5 == 0) {
            if (Node *n = d.popTail()) {
                extracted[n->value].fetch_add(1);
                ++owner_got;
            }
        }
    }
    while (Node *n = d.popTail()) {
        extracted[n->value].fetch_add(1);
        ++owner_got;
    }
    done.store(true, std::memory_order_release);
    for (auto &t : thieves)
        t.join();
    total.fetch_add(owner_got);

    EXPECT_EQ(total.load(), kItems);
    for (int i = 0; i < kItems; ++i)
        ASSERT_EQ(extracted[i].load(), 1) << "item " << i;
}

/** Owner pushes/pops while thieves steal; every node must be extracted
 * exactly once across all parties. */
TEST(WsDequeStress, NoLossNoDuplication)
{
    constexpr int kItems = 200000;
    constexpr int kThieves = 3;
    // Capacity covers the worst case (owner pushes all items before any
    // extraction); overflow is a panic by design, not a resize.
    WsDeque<Node> d(1 << 18);
    std::vector<Node> nodes(kItems);
    for (int i = 0; i < kItems; ++i)
        nodes[i].value = i;

    std::vector<std::atomic<int>> extracted(kItems);
    for (auto &e : extracted)
        e.store(0);
    std::atomic<bool> done{false};
    std::atomic<int64_t> total{0};

    std::vector<std::thread> thieves;
    for (int t = 0; t < kThieves; ++t) {
        thieves.emplace_back([&] {
            int64_t mine = 0;
            while (!done.load(std::memory_order_acquire)) {
                if (Node *n = d.stealHead()) {
                    extracted[n->value].fetch_add(1);
                    ++mine;
                }
            }
            // Final drain.
            while (Node *n = d.stealHead()) {
                extracted[n->value].fetch_add(1);
                ++mine;
            }
            total.fetch_add(mine);
        });
    }

    int64_t owner_got = 0;
    for (int i = 0; i < kItems; ++i) {
        d.pushTail(&nodes[i]);
        // Pop occasionally so the owner contends at the tail.
        if (i % 3 == 0) {
            if (Node *n = d.popTail()) {
                extracted[n->value].fetch_add(1);
                ++owner_got;
            }
        }
    }
    while (Node *n = d.popTail()) {
        extracted[n->value].fetch_add(1);
        ++owner_got;
    }
    done.store(true, std::memory_order_release);
    for (auto &t : thieves)
        t.join();
    total.fetch_add(owner_got);

    EXPECT_EQ(total.load(), kItems);
    for (int i = 0; i < kItems; ++i)
        ASSERT_EQ(extracted[i].load(), 1) << "item " << i;
}

} // namespace
} // namespace numaws
