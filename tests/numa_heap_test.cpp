/**
 * @file
 * NUMA data-plane heap tests: size-class selection, local recycling,
 * PageMap registration of carved slabs, the cross-thread remote-free
 * stack under stress (the ASan job runs this), the arena big-object
 * fallback, routing through numa::allocate/deallocate on a live
 * runtime, teardown with blocks parked on remote stacks, the
 * DataHeapPolicy::Heap bypass, and the double-free panic.
 */
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <thread>
#include <vector>

#include "mem/numa_heap.h"
#include "mem/page_map.h"
#include "runtime/api.h"

namespace numaws {
namespace {

RuntimeOptions
dataOptions(int workers, DataHeapPolicy heap = DataHeapPolicy::Pooled)
{
    RuntimeOptions o;
    o.numWorkers = workers;
    o.dataHeap = heap;
    return o;
}

int64_t
outstandingBlocks(Runtime &rt)
{
    int64_t n = 0;
    for (int w = 0; w < rt.numWorkers(); ++w)
        n += rt.worker(w).dataHeap().outstanding();
    return n;
}

TEST(NumaHeapUnit, ClassSelectionBoundaries)
{
    EXPECT_EQ(NumaHeap::classForBytes(1), 0);
    EXPECT_EQ(NumaHeap::classForBytes(64), 0);
    EXPECT_EQ(NumaHeap::classForBytes(65), 1);
    EXPECT_EQ(NumaHeap::classForBytes(128), 1);
    EXPECT_EQ(NumaHeap::classForBytes(129), 2);
    EXPECT_EQ(NumaHeap::classForBytes(32768), 9);
    // Past the largest class: the caller falls through to the arena.
    EXPECT_EQ(NumaHeap::classForBytes(32769), -1);
}

TEST(NumaHeapUnit, DisabledHeapAllocatesNothing)
{
    NumaHeap heap(0, 0, /*arena=*/nullptr);
    EXPECT_FALSE(heap.enabled());
    EXPECT_EQ(heap.allocate(64), nullptr);
    EXPECT_EQ(heap.slabBytes(), 0u);
}

TEST(NumaHeapUnit, LocalFreeListRecyclesLifo)
{
    PageMap pm(2);
    NumaArena arena(pm);
    NumaHeap heap(0, 0, &arena);
    void *a = heap.allocate(200);
    void *b = heap.allocate(200);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(a, b);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % NumaHeap::kDataAlign, 0u);
    heap.freeLocal(NumaHeap::headerOf(a));
    heap.freeLocal(NumaHeap::headerOf(b));
    // LIFO: the most recently freed block comes back first.
    EXPECT_EQ(heap.allocate(200), b);
    EXPECT_EQ(heap.allocate(200), a);
    EXPECT_EQ(heap.blocksRecycled(), 2u);
    heap.freeLocal(NumaHeap::headerOf(a));
    heap.freeLocal(NumaHeap::headerOf(b));
    EXPECT_EQ(heap.outstanding(), 0);
}

TEST(NumaHeapUnit, SlabsAreRegisteredOnTheOwnersSocket)
{
    PageMap pm(4);
    NumaArena arena(pm);
    NumaHeap heap(/*owner_worker=*/0, /*socket=*/2, &arena);
    void *p = heap.allocate(1024);
    ASSERT_NE(p, nullptr);
    // The block sits inside a slab carveSlabOnSocket registered, so
    // placement decisions can see its home.
    EXPECT_EQ(pm.registeredHomeOf(reinterpret_cast<uint64_t>(p)), 2);
    EXPECT_EQ(heap.slabBytes(), NumaHeap::kSlabBytes);
    EXPECT_EQ(heap.slabsCarved(), 1u);
    heap.freeLocal(NumaHeap::headerOf(p));
}

/** Remote threads free while the owner allocates: the MPSC stack under
 * real contention, every block accounted for. The sanitizer job runs
 * this against races. */
TEST(NumaHeapUnit, RemoteFreeStressManyThreads)
{
    PageMap pm(2);
    NumaArena arena(pm);
    NumaHeap heap(0, 0, &arena);
    constexpr int kThreads = 4;
    constexpr int kRounds = 200;
    constexpr int kBatch = 64;

    for (int round = 0; round < kRounds; ++round) {
        std::array<void *, kThreads * kBatch> blocks{};
        for (auto &b : blocks)
            b = heap.allocate(48 + (round % 3) * 100);
        std::vector<std::thread> remotes;
        for (int t = 0; t < kThreads; ++t) {
            remotes.emplace_back([&heap, &blocks, t] {
                for (int i = 0; i < kBatch; ++i)
                    heap.freeRemote(NumaHeap::headerOf(
                        blocks[static_cast<std::size_t>(t) * kBatch
                               + i]));
            });
        }
        for (int i = 0; i < kBatch; ++i) {
            void *p = heap.allocate(64);
            heap.freeLocal(NumaHeap::headerOf(p));
        }
        heap.drainRemote();
        for (auto &th : remotes)
            th.join();
    }
    heap.drainRemote();
    EXPECT_EQ(heap.outstanding(), 0);
    EXPECT_EQ(heap.remoteFrees(),
              static_cast<uint64_t>(kThreads) * kBatch * kRounds);
}

TEST(NumaHeapRuntime, WorkerAllocationsPoolAndRecycle)
{
    Runtime rt(dataOptions(1));
    constexpr int kAllocs = 1000;
    auto burst = [&] {
        rt.run([&] {
            for (int i = 0; i < kAllocs; ++i) {
                void *p = numa::allocate(256);
                static_cast<char *>(p)[0] = 1;
                numa::deallocate(p);
            }
        });
    };
    burst(); // cold: carve and fill the free list
    rt.resetStats();
    burst(); // steady state
    const WorkerCounters c = rt.stats().counters;
    EXPECT_EQ(c.dataBytesPooled, 256u * kAllocs);
    EXPECT_GT(c.dataSlabBytes, 0u);
    EXPECT_EQ(c.dataRemoteFrees, 0u);
    EXPECT_EQ(outstandingBlocks(rt), 0);
}

TEST(NumaHeapRuntime, NonOwnerDeallocateTakesTheRemotePath)
{
    Runtime rt(dataOptions(1));
    void *p = nullptr;
    rt.run([&] { p = numa::allocate(512); });
    ASSERT_NE(p, nullptr);
    // This thread is not the owning worker: the free must cross the
    // remote stack, not touch the owner's free list.
    numa::deallocate(p);
    EXPECT_GE(rt.stats().counters.dataRemoteFrees, 1u);
    EXPECT_EQ(outstandingBlocks(rt), 0);
}

TEST(NumaHeapRuntime, BigObjectsFallThroughToTheRegisteredArena)
{
    Runtime rt(dataOptions(1));
    const std::size_t before = rt.dataPageMap().rangeCount();
    void *p = nullptr;
    rt.run([&] { p = numa::allocate(NumaHeap::kMaxPooledBytes + 1); });
    ASSERT_NE(p, nullptr);
    // Registered (placement can see it), not pooled (too big).
    EXPECT_GE(rt.dataPageMap().registeredHomeOf(
                  reinterpret_cast<uint64_t>(p)),
              0);
    EXPECT_GT(rt.dataPageMap().rangeCount(), before);
    EXPECT_EQ(rt.stats().counters.dataBytesPooled, 0u);
    numa::deallocate(p);
    EXPECT_EQ(rt.dataPageMap().rangeCount(), before);
}

TEST(NumaHeapRuntime, NonWorkerThreadsUseTheAmbientArena)
{
    Runtime rt(dataOptions(1));
    // No worker binding on this thread: the ambient (runtime-owned)
    // arena serves the request, registered in the PageMap.
    void *p = numa::allocate(256);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(rt.dataPageMap().registeredHomeOf(
                  reinterpret_cast<uint64_t>(p)),
              0);
    numa::deallocate(p);
}

TEST(NumaHeapRuntime, ExplicitPlaceAllocatesOnThatSocket)
{
    RuntimeOptions o = dataOptions(2);
    o.numPlaces = 2;
    Runtime rt(o);
    void *p = numa::allocate(4096, /*place=*/1);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(rt.dataPageMap().registeredHomeOf(
                  reinterpret_cast<uint64_t>(p)),
              1);
    numa::deallocate(p);
}

TEST(NumaHeapRuntime, HeapPolicyBypassesPoolAndRegistry)
{
    Runtime rt(dataOptions(1, DataHeapPolicy::Heap));
    void *p = nullptr;
    rt.run([&] { p = numa::allocate(256); });
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(rt.dataPageMap().registeredHomeOf(
                  reinterpret_cast<uint64_t>(p)),
              -1);
    numa::deallocate(p);
    const WorkerCounters c = rt.stats().counters;
    EXPECT_EQ(c.dataBytesPooled, 0u);
    EXPECT_EQ(c.dataSlabBytes, 0u);
}

TEST(NumaHeapRuntime, NoRuntimeFallsBackToThePlainHeap)
{
    // No Runtime alive at all: the plain path still works, so
    // data-plane containers are usable in tools and tests.
    void *p = numa::allocate(300);
    ASSERT_NE(p, nullptr);
    static_cast<char *>(p)[0] = 1;
    numa::deallocate(p);
}

/** Teardown with blocks still parked on remote stacks must leak
 * nothing: the heap destructor reclaims slabs wholesale (ASan job). */
TEST(NumaHeapRuntime, TeardownWithParkedRemoteFrees)
{
    for (int round = 0; round < 3; ++round) {
        Runtime rt(dataOptions(2));
        std::vector<void *> blocks(64);
        rt.run([&] {
            for (auto &b : blocks)
                b = numa::allocate(128);
        });
        // Freed from the main thread: all land on remote stacks, and
        // nothing forces the owners to drain before ~Runtime.
        for (void *b : blocks)
            numa::deallocate(b);
        EXPECT_EQ(outstandingBlocks(rt), 0);
    }
}

TEST(NumaHeapRuntime, NumaAllocatorPlacesVectorStorage)
{
    RuntimeOptions o = dataOptions(2);
    o.numPlaces = 2;
    Runtime rt(o);
    std::vector<int, NumaAllocator<int>> v{NumaAllocator<int>(1)};
    v.reserve(1024);
    for (int i = 0; i < 1024; ++i)
        v.push_back(i);
    EXPECT_EQ(rt.dataPageMap().registeredHomeOf(
                  reinterpret_cast<uint64_t>(v.data())),
              1);
    EXPECT_EQ(v[1023], 1023);
    // Copies propagate the place (stateful allocator contract).
    std::vector<int, NumaAllocator<int>> w = v;
    EXPECT_EQ(w.get_allocator().place(), 1);
    EXPECT_EQ(rt.dataPageMap().registeredHomeOf(
                  reinterpret_cast<uint64_t>(w.data())),
              1);
}

TEST(NumaHeapDeathTest, DoubleFreePanics)
{
    PageMap pm(2);
    NumaArena arena(pm);
    NumaHeap heap(0, 0, &arena);
    void *p = heap.allocate(64);
    heap.freeLocal(NumaHeap::headerOf(p));
    EXPECT_DEATH(heap.freeLocal(NumaHeap::headerOf(p)),
                 "assertion failed");
    void *q = heap.allocate(64); // p again, legitimately recycled
    heap.freeLocal(NumaHeap::headerOf(q));
    EXPECT_DEATH(heap.freeRemote(NumaHeap::headerOf(q)),
                 "assertion failed");
}

} // namespace
} // namespace numaws
