/**
 * @file
 * Protocol-level tests of the simulated scheduler against the paper's
 * Figures 2 and 5: shadow vs full frames (trivial vs nontrivial syncs),
 * suspension and CHECK_PARENT resumption, mailbox outcomes, the coin
 * flip, and the pushing threshold.
 */
#include <gtest/gtest.h>

#include "sim/scheduler.h"

namespace numaws::sim {
namespace {

/** Dag with one long child and a short continuation: guarantees a steal
 * and an unsuccessful nontrivial sync (parent must suspend). */
ComputationDag
suspendingDag()
{
    DagBuilder b;
    b.beginRoot();
    b.spawn(kAnyPlace);
    b.strand(100000.0, {}); // long child keeps the victim busy
    b.end();
    b.strand(10.0, {}); // stolen continuation finishes immediately
    b.sync();           // thief must suspend here
    b.strand(10.0, {}); // resumed after the child returns
    b.end();
    return b.finish();
}

TEST(SimProtocol, UnsuccessfulSyncSuspendsAndResumes)
{
    const SimResult r = simulate(suspendingDag(), Machine::paperMachine(),
                                 2, SimConfig::classicWs());
    EXPECT_GE(r.counters.steals, 1u);
    EXPECT_GE(r.counters.nontrivialSyncs, 1u);
    EXPECT_GE(r.counters.suspensions, 1u);
    EXPECT_GE(r.counters.resumes, 1u);
    EXPECT_EQ(r.counters.strandsExecuted, 3u);
}

TEST(SimProtocol, NoStealMeansOnlyTrivialSyncs)
{
    const SimResult r = simulate(suspendingDag(), Machine::paperMachine(),
                                 1, SimConfig::classicWs());
    EXPECT_EQ(r.counters.steals, 0u);
    EXPECT_EQ(r.counters.nontrivialSyncs, 0u);
    EXPECT_EQ(r.counters.suspensions, 0u);
    EXPECT_GE(r.counters.trivialSyncs, 1u);
}

/**
 * Wide dag whose hinted children contain internal spawn structure.
 *
 * With continuation stealing, a freshly spawned child always executes on
 * the spawning worker (Section III-A states this explicitly), so a hinted
 * *leaf* frame never migrates. Hints take effect when a hinted frame's
 * continuation is stolen — then the stolen full frame carries the place
 * and gets pushed toward its socket. Children therefore need spawns of
 * their own.
 */
ComputationDag
hintedWideDag(Place place, int leaves)
{
    DagBuilder b;
    b.beginRoot();
    for (int i = 0; i < leaves; ++i) {
        b.spawn(place);
        for (int k = 0; k < 4; ++k) {
            b.spawn(); // inherits `place`
            b.strand(5000.0, {});
            b.end();
        }
        b.strand(1000.0, {});
        b.sync();
        b.end();
    }
    b.sync();
    b.end();
    return b.finish();
}

TEST(SimProtocol, HintedFramesArePushedToTheirSocket)
{
    // Root runs on socket 0; every spawn is earmarked for socket 2.
    // Thieves that steal these frames must push them toward socket 2.
    SimConfig cfg = SimConfig::numaWs();
    const SimResult r = simulate(hintedWideDag(2, 64),
                                 Machine::paperMachine(), 32, cfg);
    EXPECT_GT(r.counters.pushAttempts, 0u);
    EXPECT_GT(r.counters.pushSuccesses, 0u);
    EXPECT_GT(r.counters.mailboxPops + r.counters.mailboxSteals, 0u);
}

TEST(SimProtocol, PushingThresholdCapsAttemptsPerFrame)
{
    SimConfig cfg = SimConfig::numaWs();
    cfg.sched.pushThreshold = 1;
    const SimResult r1 = simulate(hintedWideDag(2, 64),
                                  Machine::paperMachine(), 32, cfg);
    cfg.sched.pushThreshold = 8;
    const SimResult r8 = simulate(hintedWideDag(2, 64),
                                  Machine::paperMachine(), 32, cfg);
    // Larger threshold permits more attempts in the worst case; with
    // threshold 1 every frame gives up after one failed attempt.
    EXPECT_LE(r1.counters.pushAttempts,
              r1.counters.steals + r1.counters.mailboxSteals
                  + r1.counters.nontrivialSyncs + r1.counters.resumes
                  + 64u);
    EXPECT_GE(r8.counters.pushAttempts, r1.counters.pushAttempts / 4);
}

TEST(SimProtocol, MailboxesOffDisablesPushing)
{
    SimConfig cfg = SimConfig::numaWs();
    cfg.sched.useMailboxes = false;
    const SimResult r = simulate(hintedWideDag(2, 64),
                                 Machine::paperMachine(), 32, cfg);
    EXPECT_EQ(r.counters.pushAttempts, 0u);
    EXPECT_EQ(r.counters.mailboxPops, 0u);
    EXPECT_EQ(r.counters.strandsExecuted, 320u); // still completes
}

TEST(SimProtocol, CoinFlipOffStillCompletes)
{
    SimConfig cfg = SimConfig::numaWs();
    cfg.sched.coinFlip = false; // ablation: always inspect the mailbox first
    const SimResult r = simulate(hintedWideDag(2, 64),
                                 Machine::paperMachine(), 32, cfg);
    EXPECT_EQ(r.counters.strandsExecuted, 320u);
}

TEST(SimProtocol, UnsatisfiableHintIsIgnored)
{
    // Hint at socket 3 while only sockets 0-1 have cores: the place
    // check must treat the hint as unsatisfiable, not push forever.
    const SimResult r = simulate(hintedWideDag(3, 32),
                                 Machine::paperMachineSubset(16), 16,
                                 SimConfig::numaWs());
    EXPECT_EQ(r.counters.strandsExecuted, 160u);
    EXPECT_EQ(r.counters.pushAttempts, 0u);
}

TEST(SimProtocol, DeepSequentialChainNoParallelism)
{
    // span == work: any P must take ~T1 and steal nothing useful.
    DagBuilder b;
    b.beginRoot();
    for (int i = 0; i < 200; ++i)
        b.strand(100.0, {});
    b.end();
    const ComputationDag dag = b.finish();
    const SimResult r =
        simulate(dag, Machine::paperMachine(), 8, SimConfig::classicWs());
    EXPECT_EQ(r.counters.steals, 0u);
    EXPECT_GE(r.elapsedCycles, 20000.0);
}

TEST(SimProtocol, EveryStrandRunsExactlyOnceUnderChaos)
{
    // Deep, irregular, hinted dag under every policy knob combination:
    // strand conservation is the master invariant.
    DagBuilder b;
    b.beginRoot();
    auto rec = [&](auto &&self, int d) -> void {
        if (d == 0) {
            b.strand(50.0, {});
            return;
        }
        b.spawn(static_cast<Place>(d % 4));
        self(self, d - 1);
        b.end();
        b.strand(25.0, {});
        if (d % 2 == 0)
            b.sync();
        b.spawn(kAnyPlace);
        self(self, d - 1);
        b.end();
        b.sync();
    };
    rec(rec, 9);
    b.end();
    const ComputationDag dag = b.finish();
    const uint64_t strands = dag.numStrands();

    for (bool mailboxes : {false, true})
        for (bool coin : {false, true})
            for (bool bias : {false, true}) {
                SimConfig cfg;
                cfg.sched.useMailboxes = mailboxes;
                cfg.sched.coinFlip = coin;
                cfg.sched.biasedSteals = bias;
                const SimResult r =
                    simulate(dag, Machine::paperMachine(), 32, cfg);
                ASSERT_EQ(r.counters.strandsExecuted, strands)
                    << "mailboxes=" << mailboxes << " coin=" << coin
                    << " bias=" << bias;
            }
}

} // namespace
} // namespace numaws::sim
