/**
 * @file
 * The PR 6 serving front door: submit/JobHandle lifecycle, JobQueue
 * priority order, LatencyHist units, the elastic worker pool's
 * park/unpark behavior, sampled time-split fidelity, and serving-mode
 * determinism in the simulator.
 *
 * Concurrency tests follow the repo's 1-core-host discipline: no
 * wall-clock speed assertions, only ordering, counters, and bounded
 * liveness (every wait() returns, every admitted job completes).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "numaws.h"
#include "sim/serving.h"
#include "support/latency_hist.h"
#include "workloads/workloads.h"

using namespace numaws;
using namespace std::chrono_literals;

namespace {

RuntimeOptions
smallRuntime(int workers)
{
    RuntimeOptions o;
    o.numWorkers = workers;
    o.numPlaces = workers >= 2 ? 2 : 1;
    return o;
}

} // namespace

// ---------------------------------------------------------------------
// submit / JobHandle
// ---------------------------------------------------------------------

TEST(Job, SubmitWaitRunsTheBody)
{
    Runtime rt(smallRuntime(2));
    std::atomic<int> ran{0};
    JobHandle h = rt.submit([&] { ran.store(1); });
    h.wait();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_TRUE(h.done());
    EXPECT_GE(h.latencyNs(), 0);
    EXPECT_GE(h.execNs(), 0);
    EXPECT_GE(h.queueNs(), 0);
}

TEST(Job, RunIsSubmitWait)
{
    Runtime rt(smallRuntime(2));
    int x = 0;
    rt.run([&] { x = 42; });
    EXPECT_EQ(x, 42);
    EXPECT_EQ(rt.jobsSubmitted(), 1u);
}

TEST(Job, ManyConcurrentJobsAllComplete)
{
    Runtime rt(smallRuntime(4));
    constexpr int kJobs = 64;
    std::atomic<int> done{0};
    std::vector<JobHandle> handles;
    handles.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
        JobOptions opts;
        opts.cls = static_cast<JobClass>(i % kNumJobClasses);
        handles.push_back(rt.submit(
            [&done] {
                TaskGroup tg;
                tg.spawn([&done] { done.fetch_add(1); });
                tg.sync();
            },
            opts));
    }
    for (JobHandle &h : handles)
        h.wait();
    EXPECT_EQ(done.load(), kJobs);
    const RuntimeStats s = rt.stats();
    EXPECT_EQ(s.counters.jobsCompleted, static_cast<uint64_t>(kJobs));
    EXPECT_EQ(s.jobLatency.count(), static_cast<uint64_t>(kJobs));
    uint64_t by_class = 0;
    for (int c = 0; c < kNumJobClasses; ++c)
        by_class += s.jobLatencyByClass[c].count();
    EXPECT_EQ(by_class, static_cast<uint64_t>(kJobs));
}

TEST(Job, ExceptionRethrownOnEveryWait)
{
    Runtime rt(smallRuntime(2));
    JobHandle h =
        rt.submit([] { throw std::runtime_error("job failed"); });
    EXPECT_THROW(h.wait(), std::runtime_error);
    // A second wait on the same handle rethrows again.
    EXPECT_THROW(h.wait(), std::runtime_error);
}

TEST(Job, DestructorDrainsUnwaitedJobs)
{
    std::atomic<int> ran{0};
    {
        Runtime rt(smallRuntime(2));
        for (int i = 0; i < 8; ++i)
            rt.submit([&ran] { ran.fetch_add(1); });
        // Handles dropped without wait(): the runtime must drain them
        // before the workers join.
    }
    EXPECT_EQ(ran.load(), 8);
}

TEST(Job, HandleOutlivesRuntime)
{
    JobHandle h;
    EXPECT_FALSE(h.valid());
    {
        Runtime rt(smallRuntime(2));
        h = rt.submit([] {});
        h.wait();
    }
    // The state block is shared; the handle stays readable after the
    // runtime is gone.
    EXPECT_TRUE(h.valid());
    EXPECT_TRUE(h.done());
    EXPECT_GE(h.latencyNs(), 0);
}

TEST(Job, NestedSubmitAndWaitOnWorkerDoesNotDeadlock)
{
    // A job body that submits and joins another job must make progress
    // even with one worker: JobHandle::wait() on a worker helps (and
    // claims queued jobs) instead of blocking the only thread.
    Runtime rt(smallRuntime(1));
    int inner = 0;
    rt.run([&] {
        JobHandle h = rt.submit([&] { inner = 7; });
        h.wait();
    });
    EXPECT_EQ(inner, 7);
}

TEST(Job, PlaceHintRespectedAsStartingSocket)
{
    Runtime rt(smallRuntime(2)); // 2 places, 1 worker each
    for (int p = 0; p < rt.numPlaces(); ++p) {
        Place seen = kAnyPlace;
        JobOptions opts;
        opts.place = static_cast<Place>(p);
        rt.submit([&seen] { seen = currentPlace(); }, opts).wait();
        // The hint steers admission (the wake targets the hinted
        // socket); steals may still move the root, so this asserts
        // only that the job ran at a real place.
        EXPECT_TRUE(isConcretePlace(seen));
    }
}

// ---------------------------------------------------------------------
// JobQueue priority lanes
// ---------------------------------------------------------------------

TEST(JobQueue, PopsHigherClassFirstThenFifo)
{
    JobQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.tryPop().valid());
    // TaskBase pointers are opaque to the queue; tag with fake
    // addresses. Each entry carries a real JobState (the class rides
    // on it since PR 7).
    auto tag = [](uintptr_t v) {
        return reinterpret_cast<TaskBase *>(v);
    };
    auto push = [&q, &tag](uintptr_t v, JobClass cls) {
        auto state = std::make_shared<JobState>();
        state->opts.cls = cls;
        q.push(tag(v), std::move(state));
    };
    push(0xB1, JobClass::Batch);
    push(0xA1, JobClass::Normal);
    push(0xC1, JobClass::Latency);
    push(0xC2, JobClass::Latency);
    push(0xA2, JobClass::Normal);
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.pushes(), 5u);
    EXPECT_EQ(q.laneDepth(static_cast<int>(JobClass::Latency)), 2);
    EXPECT_EQ(q.laneDepth(static_cast<int>(JobClass::Normal)), 2);
    EXPECT_EQ(q.laneDepth(static_cast<int>(JobClass::Batch)), 1);
    EXPECT_EQ(q.tryPop().root, tag(0xC1));
    EXPECT_EQ(q.tryPop().root, tag(0xC2));
    EXPECT_EQ(q.tryPop().root, tag(0xA1));
    EXPECT_EQ(q.tryPop().root, tag(0xA2));
    EXPECT_EQ(q.tryPop().root, tag(0xB1));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.tryPop().valid());
}

TEST(JobQueue, ShedVictimComesFromLowestClassFirst)
{
    JobQueue q;
    EXPECT_FALSE(q.popShedVictim().valid());
    auto tag = [](uintptr_t v) {
        return reinterpret_cast<TaskBase *>(v);
    };
    auto push = [&q, &tag](uintptr_t v, JobClass cls) {
        auto state = std::make_shared<JobState>();
        state->opts.cls = cls;
        q.push(tag(v), std::move(state));
    };
    push(0xC1, JobClass::Latency);
    push(0xB1, JobClass::Batch);
    push(0xB2, JobClass::Batch);
    push(0xA1, JobClass::Normal);
    // Batch first (FIFO within the lane), then Normal, then — only
    // when nothing lower remains — Latency.
    EXPECT_EQ(q.popShedVictim().root, tag(0xB1));
    EXPECT_EQ(q.popShedVictim().root, tag(0xB2));
    EXPECT_EQ(q.popShedVictim().root, tag(0xA1));
    EXPECT_EQ(q.popShedVictim().root, tag(0xC1));
    EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------
// LatencyHist units
// ---------------------------------------------------------------------

TEST(LatencyHist, ExactBelowEightAndBucketBoundaries)
{
    // Values below kSub land in exact unit buckets.
    for (uint64_t v = 0; v < 8; ++v)
        EXPECT_EQ(LatencyHist::lowerBound(LatencyHist::indexOf(v)), v);
    // Every bucket's lowerBound maps back to its own index, and
    // lowerBounds are strictly increasing (no overlapping buckets).
    for (std::size_t i = 1; i < LatencyHist::kBuckets; ++i) {
        const uint64_t lo = LatencyHist::lowerBound(i);
        EXPECT_EQ(LatencyHist::indexOf(lo), i) << "bucket " << i;
        EXPECT_GT(lo, LatencyHist::lowerBound(i - 1));
    }
    // Relative bucket width is 2^-kSubBits = 12.5%.
    const uint64_t v = 1000000;
    const std::size_t idx = LatencyHist::indexOf(v);
    const uint64_t lo = LatencyHist::lowerBound(idx);
    const uint64_t hi = LatencyHist::lowerBound(idx + 1);
    EXPECT_LE(lo, v);
    EXPECT_GT(hi, v);
    EXPECT_LE(static_cast<double>(hi - lo) / lo, 0.125 + 1e-9);
}

TEST(LatencyHist, RecordCountsMinMaxMean)
{
    LatencyHist h;
    EXPECT_EQ(h.count(), 0u);
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LatencyHist, MergeMatchesCombinedRecording)
{
    LatencyHist a, b, combined;
    uint64_t state = 42;
    for (int i = 0; i < 500; ++i) {
        const uint64_t v = splitmix64(state) % 1000000;
        (i % 2 == 0 ? a : b).record(v);
        combined.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
    for (const double q : {0.5, 0.9, 0.99})
        EXPECT_EQ(a.quantile(q), combined.quantile(q));
}

TEST(LatencyHist, QuantileWithinBucketWidthOfSortedReference)
{
    LatencyHist h;
    std::vector<uint64_t> values;
    uint64_t state = 7;
    for (int i = 0; i < 2000; ++i) {
        // Log-uniform-ish spread across several octaves.
        const uint64_t v = 1 + splitmix64(state) % (1ULL << (10 + i % 16));
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        auto idx = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(values.size())));
        idx = idx > 0 ? idx - 1 : 0;
        const double exact = static_cast<double>(values[idx]);
        const double est = static_cast<double>(h.quantile(q));
        // One log-bucket of error: 12.5% relative width plus the
        // midpoint convention.
        EXPECT_NEAR(est, exact, exact * 0.14 + 1.0) << "q=" << q;
    }
}

TEST(LatencyHist, HugeValuesClampWithoutOverflow)
{
    LatencyHist h;
    h.record(~0ULL);
    h.record(1ULL << 62);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_GT(h.quantile(0.5), 0u);
}

// ---------------------------------------------------------------------
// Elastic worker pool
// ---------------------------------------------------------------------

TEST(ElasticPool, WorkersParkBetweenBursts)
{
    Runtime rt(smallRuntime(2));
    auto burst = [&rt] {
        std::vector<JobHandle> hs;
        for (int i = 0; i < 4; ++i)
            hs.push_back(rt.submit([] {
                volatile int x = 0;
                for (int k = 0; k < 1000; ++k)
                    x = x + k;
            }));
        for (JobHandle &h : hs)
            h.wait();
    };
    burst();
    const uint64_t parks0 = rt.stats().counters.parks;
    const uint64_t parked0 = rt.stats().counters.parkedNs;
    // A quiet gap: idle workers must hand their time back via parking.
    std::this_thread::sleep_for(50ms);
    const RuntimeStats after = rt.stats();
    EXPECT_GT(after.counters.parks, parks0);
    EXPECT_GT(after.counters.parkedNs, parked0);
    // And the pool still serves the next burst (liveness after park).
    burst();
    EXPECT_EQ(rt.stats().counters.jobsCompleted, 8u);
}

TEST(ElasticPool, NoLostWakeupOnAdmissionEdge)
{
    // Hammer the racy edge: submit a single job right after the pool
    // has gone fully idle, many times. A lost admission wake would
    // stall wait() until the parking fallback; a truly lost wake would
    // hang. Bounded liveness is the assertion: every wait returns.
    Runtime rt(smallRuntime(2));
    for (int i = 0; i < 200; ++i) {
        if (i % 10 == 0)
            std::this_thread::sleep_for(1ms); // let workers park
        std::atomic<int> ran{0};
        JobOptions opts;
        opts.place = static_cast<Place>(i % rt.numPlaces());
        rt.submit([&ran] { ran.store(1); }, opts).wait();
        ASSERT_EQ(ran.load(), 1) << "iteration " << i;
    }
}

// ---------------------------------------------------------------------
// Sampled time-split
// ---------------------------------------------------------------------

TEST(SampledTimeSplit, TotalsStayWallExactAndWorkFractionTracks)
{
    // fig3-breakdown fidelity: sampling clock reads 1-in-16 must not
    // change where the time overwhelmingly goes, and the bucket totals
    // always sum to measured wall time by construction.
    //
    // Noise design, in order of load-bearing-ness: single worker (on a
    // timeshared host a multi-worker run inflates unsampled tasks'
    // wall time with the sibling thread's timeslices, invisible to the
    // per-task estimate; exact mode brackets every task so preemption
    // lands in Work either way); tasks of ~1 ms (long against an OS
    // timeslice, so a co-scheduled process — ctest -j — inflates
    // sampled and unsampled tasks about equally and the running-mean
    // estimate absorbs it); and a retry loop for the window where a
    // burst of foreign CPU lands entirely inside the sampled run.
    auto work_fraction = [](int shift) {
        RuntimeOptions o = smallRuntime(1);
        o.timeSplitSampleShift = shift;
        Runtime rt(o);
        rt.run([] {
            TaskGroup tg;
            for (int i = 0; i < 48; ++i)
                tg.spawn([] {
                    volatile double x = 1.0;
                    for (int k = 0; k < 300000; ++k)
                        x = x * 1.0000001;
                });
            tg.sync();
        });
        const TimeSplit &t = rt.stats().time;
        const double total =
            t.seconds(TimeSplit::Work)
            + t.seconds(TimeSplit::Scheduling)
            + t.seconds(TimeSplit::Idle);
        EXPECT_GT(total, 0.0);
        return t.seconds(TimeSplit::Work) / total;
    };
    // Generous tolerance: CI hosts are noisy; the failure mode this
    // guards (work time collapsing to ~0 because unsampled tasks are
    // charged to Idle) is a ~1.0 absolute shift.
    double exact = 0.0;
    double sampled = 0.0;
    for (int attempt = 0; attempt < 4; ++attempt) {
        exact = work_fraction(0);
        sampled = work_fraction(4);
        if (exact > 0.5 && std::abs(sampled - exact) <= 0.35)
            break;
    }
    EXPECT_GT(exact, 0.5);
    if (std::abs(sampled - exact) <= 0.35) {
        SUCCEED();
    } else {
        // Every attempt ran on a heavily contended host (ctest -j on
        // one core): foreign timeslices landing inside unsampled tasks
        // are invisible to a wall-clock estimator, and no tolerance on
        // the exact-vs-sampled comparison is meaningful. Fall back to
        // the hard floor that still catches the guarded failure mode:
        // unsampled work charged wholly to Idle collapses the sampled
        // work fraction to ~1/16.
        EXPECT_GT(sampled, 0.25)
            << "sampled work fraction collapsed (exact was " << exact
            << ")";
    }
}

// ---------------------------------------------------------------------
// Simulated serving
// ---------------------------------------------------------------------

namespace {

sim::ComputationDag
threeJobDag(std::vector<sim::FrameId> &roots)
{
    sim::ComputationDag dag;
    for (int i = 0; i < 3; ++i)
        roots.push_back(dag.append(workloads::fibDag(8)));
    return dag;
}

} // namespace

TEST(SimServing, AppendRemapsAndPreservesWork)
{
    const sim::ComputationDag one = workloads::fibDag(8);
    std::vector<sim::FrameId> roots;
    const sim::ComputationDag merged = threeJobDag(roots);
    EXPECT_EQ(merged.numFrames(), 3 * one.numFrames());
    EXPECT_EQ(merged.numStrands(), 3 * one.numStrands());
    EXPECT_EQ(roots.size(), 3u);
    // First appended tree becomes the dag root; every root is parentless.
    EXPECT_EQ(merged.root(), roots[0]);
    for (const sim::FrameId r : roots)
        EXPECT_EQ(merged.frame(r).parent, sim::kNoFrame);
    // workSpan() walks the root tree only; the merge must leave each
    // job's own work untouched, so the root tree reports one job.
    EXPECT_DOUBLE_EQ(merged.workSpan().work, one.workSpan().work);
}

TEST(SimServing, SeededArrivalsAreDeterministicAndSorted)
{
    sim::ArrivalProcess p;
    p.ratePerSec = 10000.0;
    p.seed = 123;
    const auto a = sim::arrivalCycles(p, 100, 2.2);
    const auto b = sim::arrivalCycles(p, 100, 2.2);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    p.seed = 124;
    EXPECT_NE(sim::arrivalCycles(p, 100, 2.2), a);
    // Burst arrivals: same count, grouped instants.
    p.kind = sim::ArrivalProcess::Kind::Burst;
    p.burstSize = 4;
    const auto burst = sim::arrivalCycles(p, 100, 2.2);
    EXPECT_EQ(burst.size(), 100u);
    EXPECT_TRUE(std::is_sorted(burst.begin(), burst.end()));
    EXPECT_EQ(burst[0], burst[3]); // one burst shares an instant
}

TEST(SimServing, RunsAllJobsAndIsByteDeterministic)
{
    std::vector<sim::FrameId> roots;
    const sim::ComputationDag dag = threeJobDag(roots);
    sim::ArrivalProcess p;
    p.ratePerSec = 50000.0;
    p.seed = 99;
    const auto at = sim::arrivalCycles(p, 3, 2.2);
    std::vector<sim::SimJob> jobs(3);
    for (int i = 0; i < 3; ++i)
        jobs[i] = {roots[i], at[i], i % 3};

    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.modelParking = true;
    cfg.sched.parkSpinFailures = 4;
    const sim::ServingResult a =
        sim::simulateServingPacked(dag, jobs, 4, cfg);
    ASSERT_EQ(a.jobs.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(a.jobs[i].arrivalCycles, at[i]);
        EXPECT_GE(a.jobs[i].startCycles, a.jobs[i].arrivalCycles);
        EXPECT_GT(a.jobs[i].finishCycles, a.jobs[i].startCycles);
    }
    EXPECT_EQ(a.latency.count(), 3u);
    EXPECT_GT(a.p99Us, 0.0);

    // Byte determinism: identical stats on a repeated run.
    const sim::ServingResult b =
        sim::simulateServingPacked(dag, jobs, 4, cfg);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(a.jobs[i].startCycles, b.jobs[i].startCycles);
        EXPECT_EQ(a.jobs[i].finishCycles, b.jobs[i].finishCycles);
    }
    EXPECT_EQ(a.sim.elapsedCycles, b.sim.elapsedCycles);
    EXPECT_EQ(a.sim.counters.steals, b.sim.counters.steals);
    EXPECT_EQ(a.sim.counters.parks, b.sim.counters.parks);
}

TEST(SimServing, LowRateParksHighRateMostlyDoesNot)
{
    // The elastic-pool trade, deterministic in the sim: sparse arrivals
    // park cores between jobs; the parked share of idle time collapses
    // when arrivals saturate.
    std::vector<sim::FrameId> roots;
    sim::ComputationDag dag;
    for (int i = 0; i < 40; ++i)
        roots.push_back(dag.append(workloads::fibDag(10)));
    sim::SimConfig cfg = sim::SimConfig::adaptiveNumaWs();
    cfg.modelParking = true;
    cfg.sched.parkSpinFailures = 4;

    auto parked_frac = [&](double rate) {
        sim::ArrivalProcess p;
        p.ratePerSec = rate;
        p.seed = 5;
        const auto at =
            sim::arrivalCycles(p, static_cast<int>(roots.size()), 2.2);
        std::vector<sim::SimJob> jobs(roots.size());
        for (std::size_t i = 0; i < roots.size(); ++i)
            jobs[i] = {roots[i], at[i], 1};
        const sim::ServingResult r =
            sim::simulateServingPacked(dag, jobs, 4, cfg);
        const double idle_cycles = r.sim.idleSeconds * 2.2e9;
        return static_cast<double>(r.sim.counters.parkedCycles)
               / std::max(1.0, idle_cycles);
    };
    const double low = parked_frac(20000.0);
    EXPECT_GT(low, 0.8);
}
