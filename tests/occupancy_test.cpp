/**
 * @file
 * OccupancyBoard tests: 0<->1 transition correctness single-threaded,
 * and the concurrency contract under real threads (run under ASan/UBSan
 * in CI): a set bit is never *invented* — reading "occupied" with
 * acquire semantics happens-after a real deposit, so the deposited frame
 * is visible — while a transiently unset bit over real work
 * (false-empty) is allowed and must only delay, never lose, work.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "deque/mailbox.h"
#include "sched/occupancy.h"

namespace numaws {
namespace {

/** 8 workers spread over 2 sockets (4 each), socket-major. */
std::vector<int>
twoSockets()
{
    return {0, 0, 0, 0, 1, 1, 1, 1};
}

TEST(OccupancyBoard, EmptyBoardIsInertAndDisabled)
{
    OccupancyBoard b;
    EXPECT_FALSE(b.enabled());
    b.publishDeque(0, true);    // must not crash
    b.publishMailbox(0, true);
    EXPECT_FALSE(b.dequeNonempty(0));
    EXPECT_FALSE(b.anyWork());
}

TEST(OccupancyBoard, TransitionsSetAndClearExactly)
{
    OccupancyBoard b(8, twoSockets());
    EXPECT_EQ(b.numWorkers(), 8);
    EXPECT_EQ(b.numSockets(), 2);
    for (int w = 0; w < 8; ++w) {
        EXPECT_FALSE(b.dequeNonempty(w));
        EXPECT_FALSE(b.mailboxOccupied(w));
    }
    EXPECT_FALSE(b.anyWork());

    b.publishDeque(2, true);
    EXPECT_TRUE(b.dequeNonempty(2));
    EXPECT_TRUE(b.workerHasWork(2));
    EXPECT_FALSE(b.mailboxOccupied(2));
    EXPECT_TRUE(b.socketHasWork(0));
    EXPECT_FALSE(b.socketHasWork(1));
    EXPECT_TRUE(b.anyWork());

    b.publishMailbox(5, true);
    EXPECT_TRUE(b.mailboxOccupied(5));
    EXPECT_TRUE(b.socketHasWork(1));
    EXPECT_EQ(b.mailboxBits(1), 1ULL << 1); // second worker on socket 1

    // Idempotent publishes: re-asserting a state changes nothing.
    b.publishDeque(2, true);
    EXPECT_EQ(b.dequeBits(0), 1ULL << 2);
    b.publishDeque(2, false);
    b.publishDeque(2, false);
    EXPECT_FALSE(b.dequeNonempty(2));
    EXPECT_FALSE(b.socketHasWork(0));
    b.publishMailbox(5, false);
    EXPECT_FALSE(b.anyWork());
}

TEST(OccupancyBoard, BitsAreIndependentPerWorkerAndKind)
{
    OccupancyBoard b(8, twoSockets());
    for (int w = 0; w < 8; ++w)
        b.publishDeque(w, true);
    b.publishDeque(3, false);
    for (int w = 0; w < 8; ++w)
        EXPECT_EQ(b.dequeNonempty(w), w != 3) << "worker " << w;
    // Mailbox bits never moved.
    EXPECT_EQ(b.mailboxBits(0), 0u);
    EXPECT_EQ(b.mailboxBits(1), 0u);
}

TEST(OccupancyBoard, AnyWorkForCountsMailboxOnlyOnOwnSocket)
{
    OccupancyBoard b(8, twoSockets());
    // A parked frame on socket 1 is earmarked for socket 1's place:
    // stealable for socket-1 thieves, churn for socket-0 thieves.
    b.publishMailbox(5, true);
    EXPECT_TRUE(b.anyWork());
    EXPECT_TRUE(b.anyWorkFor(1));
    EXPECT_FALSE(b.anyWorkFor(0));
    // Deque work counts for everyone.
    b.publishMailbox(5, false);
    b.publishDeque(5, true);
    EXPECT_TRUE(b.anyWorkFor(0));
    EXPECT_TRUE(b.anyWorkFor(1));
}

struct Frame
{
    std::atomic<int> payload{0};
};

/**
 * The release/acquire pairing, end to end through Mailbox: a consumer
 * that observes the occupancy bit must also observe the frame deposited
 * before the bit was set — occupancy is never invented. Payload writes
 * happen strictly before tryPut; the consumer asserts it never reads a
 * stale payload through a set bit.
 */
TEST(OccupancyBoardStress, SetBitAlwaysHappensAfterADeposit)
{
    constexpr int kWorkers = 4;
    // Each round is a full produce->publish->observe->drain handshake,
    // i.e. kWorkers * kRounds *serialized* cross-thread handoffs. On a
    // contended 1-core host every handoff can cost a scheduler
    // timeslice, so the count directly bounds worst-case wall time —
    // 1500 rounds flaked into the ctest timeout under -j2 plus load;
    // 500 keeps the same happens-after coverage at a third the cost.
    constexpr int kRounds = 500;
    OccupancyBoard board(kWorkers, {0, 0, 1, 1});
    std::vector<Mailbox<Frame>> boxes(kWorkers);
    for (int w = 0; w < kWorkers; ++w)
        boxes[w].attachBoard(&board, w);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> delivered{0};
    std::vector<Frame> frames(kWorkers);

    std::vector<std::thread> producers;
    for (int w = 0; w < kWorkers; ++w) {
        producers.emplace_back([&, w] {
            for (int r = 1; r <= kRounds; ++r) {
                frames[w].payload.store(r, std::memory_order_relaxed);
                while (!boxes[w].tryPut(&frames[w]))
                    std::this_thread::yield();
                // Wait until a consumer drained the slot before reusing
                // the frame (each frame object cycles through its box).
                while (boxes[w].peek() != nullptr
                       && !stop.load(std::memory_order_relaxed))
                    std::this_thread::yield();
            }
        });
    }

    std::vector<std::thread> consumers;
    for (int c = 0; c < 2; ++c) {
        consumers.emplace_back([&] {
            unsigned sweep = 0;
            while (!stop.load(std::memory_order_acquire)) {
                // The bit is advisory: false-empty is allowed, so a
                // consumer gated *only* on it could strand a parked
                // frame forever. Mirror the product's insurance probe:
                // mostly trust the board, but every 8th *pass* probe
                // every slot regardless. The cadence must be per pass,
                // not per observation — a per-observation counter with
                // kWorkers dividing the cadence always falls through on
                // the same worker index, which livelocked this test
                // when the one stale-cleared frame sat on a different
                // worker.
                const bool full_sweep = (++sweep & 7) == 0;
                for (int w = 0; w < kWorkers; ++w) {
                    if (!board.mailboxOccupied(w) && !full_sweep)
                        continue;
                    // Bit observed with acquire: the deposit (and the
                    // payload written before it) must be visible. The
                    // frame may already be gone (another consumer), but
                    // occupancy was never invented: when we do get the
                    // frame, its payload is a real round number.
                    if (Frame *f = boxes[w].tryTake()) {
                        const int p =
                            f->payload.load(std::memory_order_relaxed);
                        ASSERT_GE(p, 1);
                        ASSERT_LE(p, kRounds);
                        delivered.fetch_add(1,
                                            std::memory_order_relaxed);
                    }
                }
            }
        });
    }

    for (auto &t : producers)
        t.join();
    // Drain what is left, then stop the consumers.
    while (delivered.load() < static_cast<uint64_t>(kWorkers) * kRounds)
        std::this_thread::yield();
    stop.store(true, std::memory_order_release);
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(delivered.load(),
              static_cast<uint64_t>(kWorkers) * kRounds);

    // Quiescence: all frames consumed, every publication complete — the
    // board must now be exact (no stale false-nonempty survives).
    for (int w = 0; w < kWorkers; ++w)
        EXPECT_FALSE(board.mailboxOccupied(w)) << "worker " << w;
    EXPECT_FALSE(board.anyWork());
}

/**
 * Concurrent deque-bit publishing from every worker plus observers:
 * after all threads quiesce with known final states the board matches
 * them exactly, and during the run observers only ever see bit patterns
 * some worker actually published (no cross-worker corruption from the
 * fetch_or/fetch_and masks).
 */
TEST(OccupancyBoardStress, ConcurrentTogglesNeverCorruptNeighbors)
{
    constexpr int kWorkers = 8;
    constexpr int kToggles = 20000;
    OccupancyBoard board(kWorkers, twoSockets());

    // Workers 0 and 4 stay permanently occupied; everyone else toggles.
    board.publishDeque(0, true);
    board.publishDeque(4, true);

    std::vector<std::thread> togglers;
    for (int w : {1, 2, 3, 5, 6, 7}) {
        togglers.emplace_back([&board, w] {
            for (int i = 0; i < kToggles; ++i) {
                board.publishDeque(w, (i & 1) == 0);
                board.publishMailbox(w, (i & 1) != 0);
            }
            board.publishDeque(w, false);
            board.publishMailbox(w, false);
        });
    }

    std::atomic<bool> stop{false};
    std::thread observer([&] {
        while (!stop.load(std::memory_order_acquire)) {
            // The permanently-published bits must never flicker: masks
            // are per-worker, so neighbors' RMWs cannot clear them.
            ASSERT_TRUE(board.dequeNonempty(0));
            ASSERT_TRUE(board.dequeNonempty(4));
            ASSERT_TRUE(board.anyWork());
            ASSERT_TRUE(board.anyWorkFor(0));
            ASSERT_TRUE(board.anyWorkFor(1));
        }
    });

    for (auto &t : togglers)
        t.join();
    stop.store(true, std::memory_order_release);
    observer.join();

    // Quiescent exactness.
    EXPECT_EQ(board.dequeBits(0), 1ULL << 0);
    EXPECT_EQ(board.dequeBits(1), 1ULL << 0); // worker 4 is bit 0 there
    EXPECT_EQ(board.mailboxBits(0), 0u);
    EXPECT_EQ(board.mailboxBits(1), 0u);
}

TEST(OccupancyBoard, DescribeMentionsShape)
{
    OccupancyBoard b(8, twoSockets());
    const std::string d = b.describe();
    EXPECT_NE(d.find("8w"), std::string::npos);
    EXPECT_NE(d.find("2s"), std::string::npos);
}

} // namespace
} // namespace numaws
