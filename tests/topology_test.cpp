/**
 * @file
 * Tests for the machine topology and the locality-biased steal
 * distribution, including the theory-critical property that every victim
 * keeps probability >= 1/(cP) (Section IV's Lemma 1 precondition).
 */
#include <gtest/gtest.h>

#include "support/stats.h"
#include "topology/machine.h"
#include "topology/steal_distribution.h"

namespace numaws {
namespace {

TEST(Machine, PaperMachineMatchesFigure1)
{
    const Machine m = Machine::paperMachine();
    EXPECT_EQ(m.numSockets(), 4);
    EXPECT_EQ(m.coresPerSocket(), 8);
    EXPECT_EQ(m.numCores(), 32);
    EXPECT_DOUBLE_EQ(m.ghz(), 2.2);
    // QPI square: 0-1, 0-2, 1-3, 2-3 adjacent; 0-3, 1-2 two hops.
    EXPECT_EQ(m.hops(0, 0), 0);
    EXPECT_EQ(m.hops(0, 1), 1);
    EXPECT_EQ(m.hops(0, 2), 1);
    EXPECT_EQ(m.hops(0, 3), 2);
    EXPECT_EQ(m.hops(1, 2), 2);
    EXPECT_EQ(m.hops(2, 3), 1);
    EXPECT_EQ(m.maxHops(), 2);
}

TEST(Machine, DistanceMatrixIsSymmetric)
{
    const Machine m = Machine::paperMachine();
    for (int i = 0; i < m.numSockets(); ++i)
        for (int j = 0; j < m.numSockets(); ++j)
            EXPECT_EQ(m.distance(i, j), m.distance(j, i));
}

TEST(Machine, SocketOfCorePacksSocketMajor)
{
    const Machine m = Machine::paperMachine();
    EXPECT_EQ(m.socketOfCore(0), 0);
    EXPECT_EQ(m.socketOfCore(7), 0);
    EXPECT_EQ(m.socketOfCore(8), 1);
    EXPECT_EQ(m.socketOfCore(31), 3);
    const auto [b, e] = m.coreRangeOfSocket(2);
    EXPECT_EQ(b, 16);
    EXPECT_EQ(e, 24);
}

TEST(Machine, SubsetUsesFewestSockets)
{
    EXPECT_EQ(Machine::paperMachineSubset(1).numSockets(), 1);
    EXPECT_EQ(Machine::paperMachineSubset(8).numSockets(), 1);
    EXPECT_EQ(Machine::paperMachineSubset(9).numSockets(), 2);
    EXPECT_EQ(Machine::paperMachineSubset(16).numSockets(), 2);
    EXPECT_EQ(Machine::paperMachineSubset(24).numSockets(), 3);
    EXPECT_EQ(Machine::paperMachineSubset(32).numSockets(), 4);
}

TEST(Machine, CyclesToSecondsUsesFrequency)
{
    const Machine m = Machine::paperMachine();
    EXPECT_DOUBLE_EQ(m.cyclesToSeconds(2.2e9), 1.0);
}

TEST(Machine, DescribeMentionsTopology)
{
    const std::string d = Machine::paperMachine().describe();
    EXPECT_NE(d.find("4-socket"), std::string::npos);
    EXPECT_NE(d.find("SLIT"), std::string::npos);
}

TEST(StealDistribution, RowsSumToOne)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    for (int t = 0; t < 32; ++t) {
        double sum = 0.0;
        for (int v = 0; v < 32; ++v)
            sum += d.probability(t, v);
        EXPECT_NEAR(sum, 1.0, 1e-9);
        EXPECT_DOUBLE_EQ(d.probability(t, t), 0.0);
    }
}

TEST(StealDistribution, BiasOrdersByHopCount)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    // Thief on socket 0: local victims > one-hop victims > two-hop.
    const double local = d.probability(0, 1);   // worker 1, socket 0
    const double one_hop = d.probability(0, 8); // worker 8, socket 1
    const double two_hop = d.probability(0, 24); // worker 24, socket 3
    EXPECT_GT(local, one_hop);
    EXPECT_GT(one_hop, two_hop);
    EXPECT_GT(two_hop, 0.0);
}

TEST(StealDistribution, UniformWeightsRecoverClassic)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights::uniform());
    for (int v = 1; v < 32; ++v)
        EXPECT_NEAR(d.probability(0, v), 1.0 / 31.0, 1e-12);
}

TEST(StealDistribution, MinProbabilityStaysConstantFactorOfUniform)
{
    // The proof needs every victim hit with probability >= 1/(cP); with
    // the default 8:2:1 weights, c is a small constant.
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    const double uniform = 1.0 / 31.0;
    EXPECT_GT(d.minProbability(), uniform / 8.0);
}

TEST(StealDistribution, SamplingMatchesProbabilities)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 16, BiasWeights{});
    Rng rng(123);
    CategoryCounter counts(16);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        counts.add(static_cast<std::size_t>(d.sample(3, rng)));
    EXPECT_EQ(counts.count(3), 0); // never self
    for (int v = 0; v < 16; ++v) {
        if (v == 3)
            continue;
        EXPECT_NEAR(counts.fraction(static_cast<std::size_t>(v)),
                    d.probability(3, v), 0.01)
            << "victim " << v;
    }
}

TEST(StealDistribution, EvenSpreadAssignsWorkersToSockets)
{
    const Machine m = Machine::paperMachine();
    // 12 workers on the 4-socket machine: ceil(12/4)=3 per socket.
    const StealDistribution d(m, 12, BiasWeights{});
    EXPECT_EQ(d.socketOfWorker(0), 0);
    EXPECT_EQ(d.socketOfWorker(2), 0);
    EXPECT_EQ(d.socketOfWorker(3), 1);
    EXPECT_EQ(d.socketOfWorker(11), 3);
}

TEST(StealDistribution, TwoWorkersAlwaysPickEachOther)
{
    const Machine m = Machine::singleSocket(2);
    const StealDistribution d(m, 2, BiasWeights{});
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(d.sample(0, rng), 1);
        EXPECT_EQ(d.sample(1, rng), 0);
    }
}

// ---------------------------------------------------------------------
// Hierarchical victim search
// ---------------------------------------------------------------------

TEST(StealHierarchy, LevelOfMatchesTopology)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    // Thief 0 on socket 0: worker 1 is its pair buddy, 2..7 share the
    // socket, sockets 1 and 2 are one hop, socket 3 is two hops.
    EXPECT_EQ(d.levelOf(0, 1), kLevelCore);
    EXPECT_EQ(d.levelOf(0, 2), kLevelPlace);
    EXPECT_EQ(d.levelOf(0, 7), kLevelPlace);
    EXPECT_EQ(d.levelOf(0, 8), kLevelSocket);  // socket 1, one hop
    EXPECT_EQ(d.levelOf(0, 16), kLevelSocket); // socket 2, one hop
    EXPECT_EQ(d.levelOf(0, 24), kLevelRemote); // socket 3, two hops
    // Levels are symmetric for pair buddies and socket mates.
    EXPECT_EQ(d.levelOf(1, 0), kLevelCore);
    EXPECT_EQ(d.levelOf(9, 8), kLevelCore);
    // Thief 8 on socket 1: sockets 0 and 3 adjacent, socket 2 two hops.
    EXPECT_EQ(d.levelOf(8, 0), kLevelSocket);
    EXPECT_EQ(d.levelOf(8, 16), kLevelRemote);
}

TEST(StealHierarchy, PrefixCountsAreMonotoneAndComplete)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    for (int t = 0; t < 32; ++t) {
        int prev = 0;
        for (int level = 0; level < kNumStealLevels; ++level) {
            const int n = d.victimsWithinLevel(t, level);
            EXPECT_GE(n, prev);
            prev = n;
        }
        // The outermost prefix always covers every other worker, which
        // is what lets a starving thief reach any victim.
        EXPECT_EQ(d.victimsWithinLevel(t, kLevelRemote), 31);
    }
    // Thief 0 concretely: 1 pair buddy, 6 socket mates, 16 one-hop
    // workers, 8 two-hop workers.
    EXPECT_EQ(d.victimsWithinLevel(0, kLevelCore), 1);
    EXPECT_EQ(d.victimsWithinLevel(0, kLevelPlace), 7);
    EXPECT_EQ(d.victimsWithinLevel(0, kLevelSocket), 23);
    EXPECT_EQ(d.victimsWithinLevel(0, kLevelRemote), 31);
}

TEST(StealHierarchy, SampleAtLevelStaysInsideTheRadius)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const int v_core = d.sampleAtLevel(0, kLevelCore, rng);
        EXPECT_EQ(v_core, 1); // the only pair buddy
        const int v_place = d.sampleAtLevel(0, kLevelPlace, rng);
        EXPECT_GE(v_place, 1);
        EXPECT_LE(v_place, 7);
        const int v_socket = d.sampleAtLevel(0, kLevelSocket, rng);
        EXPECT_LE(d.levelOf(0, v_socket), kLevelSocket);
        const int v_any = d.sampleAtLevel(0, kLevelRemote, rng);
        EXPECT_NE(v_any, 0); // never the thief
    }
}

TEST(StealHierarchy, EmptyInnerLevelsEscalateInternally)
{
    // One worker per socket: no Core or Place victims exist, so a
    // Core-level sample must silently widen instead of spinning.
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 4, BiasWeights{});
    EXPECT_EQ(d.victimsWithinLevel(0, kLevelCore), 0);
    EXPECT_EQ(d.victimsWithinLevel(0, kLevelPlace), 0);
    EXPECT_EQ(d.victimsWithinLevel(0, kLevelSocket), 2);
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        const int v = d.sampleAtLevel(0, kLevelCore, rng);
        // Workers 1 and 2 sit on the one-hop sockets of the QPI square.
        EXPECT_TRUE(v == 1 || v == 2) << "victim " << v;
    }
}

TEST(StealHierarchy, SamplingAtOutermostLevelIsUniform)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 16, BiasWeights{});
    Rng rng(123);
    CategoryCounter counts(16);
    const int n = 150000;
    for (int i = 0; i < n; ++i)
        counts.add(static_cast<std::size_t>(
            d.sampleAtLevel(3, kLevelRemote, rng)));
    EXPECT_EQ(counts.count(3), 0);
    for (int v = 0; v < 16; ++v) {
        if (v == 3)
            continue;
        EXPECT_NEAR(counts.fraction(static_cast<std::size_t>(v)),
                    1.0 / 15.0, 0.01)
            << "victim " << v;
    }
}

TEST(StealEscalation, WidensAfterConsecutiveFailuresOnly)
{
    StealEscalation e(2);
    EXPECT_EQ(e.level(), kLevelCore);
    e.onFailedSteal();
    EXPECT_EQ(e.level(), kLevelCore); // one failure is not enough
    e.onFailedSteal();
    EXPECT_EQ(e.level(), kLevelPlace);
    e.onFailedSteal();
    e.onFailedSteal();
    EXPECT_EQ(e.level(), kLevelSocket);
    e.onFailedSteal();
    e.onFailedSteal();
    EXPECT_EQ(e.level(), kLevelRemote);
    EXPECT_TRUE(e.atOutermostLevel());
    // Saturates at the outermost level: a starving worker keeps probing
    // the whole machine instead of idling.
    e.onFailedSteal();
    e.onFailedSteal();
    EXPECT_EQ(e.level(), kLevelRemote);
}

TEST(StealEscalation, SuccessNarrowsOneLevel)
{
    StealEscalation e(1);
    e.onFailedSteal();
    e.onFailedSteal();
    e.onFailedSteal();
    EXPECT_EQ(e.level(), kLevelRemote);
    e.onSuccessfulSteal();
    EXPECT_EQ(e.level(), kLevelSocket); // one step, not a full reset
    e.onSuccessfulSteal();
    e.onSuccessfulSteal();
    e.onSuccessfulSteal();
    EXPECT_EQ(e.level(), kLevelCore); // floors at the innermost level
}

TEST(StealEscalation, SuccessResetsTheFailureStreak)
{
    StealEscalation e(2);
    e.onFailedSteal();
    e.onSuccessfulSteal();
    e.onFailedSteal();
    // Two non-consecutive failures must not widen the search.
    EXPECT_EQ(e.level(), kLevelCore);
}

// ---------------------------------------------------------------------
// Self-tuning escalation (EscalationPolicy::Adaptive)
// ---------------------------------------------------------------------

TEST(StealEscalation, FixedConfigMatchesLegacyConstructor)
{
    EscalationConfig cfg;
    cfg.kind = EscalationPolicy::Fixed;
    cfg.failuresPerLevel = 2;
    StealEscalation via_cfg(cfg);
    StealEscalation legacy(2);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(via_cfg.level(), legacy.level()) << "step " << i;
        EXPECT_EQ(via_cfg.failureBudget(), legacy.failureBudget());
        via_cfg.onFailedSteal();
        legacy.onFailedSteal();
    }
}

TEST(StealEscalation, AdaptiveStartsAtTheFixedBudget)
{
    EscalationConfig cfg;
    cfg.kind = EscalationPolicy::Adaptive;
    cfg.failuresPerLevel = 4;
    StealEscalation e(cfg);
    // Neutral prior 0.5: 2 * base * 0.5 == base.
    EXPECT_EQ(e.failureBudget(), 4);
    EXPECT_DOUBLE_EQ(e.successRate(kLevelCore), 0.5);
}

TEST(StealEscalation, AdaptiveAbandonsAFailingLevelFaster)
{
    EscalationConfig cfg;
    cfg.kind = EscalationPolicy::Adaptive;
    cfg.failuresPerLevel = 4;
    StealEscalation adaptive(cfg);
    StealEscalation fixed(4);
    // Drive both with pure failures: the adaptive budget shrinks with
    // the EWMA, so the adaptive ladder reaches the outermost level
    // first.
    int adaptive_steps = 0, fixed_steps = 0;
    while (!adaptive.atOutermostLevel()) {
        adaptive.onFailedSteal();
        ++adaptive_steps;
    }
    while (!fixed.atOutermostLevel()) {
        fixed.onFailedSteal();
        ++fixed_steps;
    }
    EXPECT_LT(adaptive_steps, fixed_steps);
    // And the observed rate at the abandoned level collapsed.
    EXPECT_LT(adaptive.successRate(kLevelCore), 0.5);
}

TEST(StealEscalation, AdaptiveEarnsPatienceFromSuccesses)
{
    EscalationConfig cfg;
    cfg.kind = EscalationPolicy::Adaptive;
    cfg.failuresPerLevel = 4;
    cfg.maxFailures = 8;
    StealEscalation e(cfg);
    for (int i = 0; i < 20; ++i)
        e.onSuccessfulSteal(); // all at the floor level
    EXPECT_GT(e.successRate(kLevelCore), 0.9);
    EXPECT_GT(e.failureBudget(), 4); // more patience than the base
    EXPECT_LE(e.failureBudget(), 8); // but clamped
}

TEST(StealEscalation, AdaptiveBudgetStaysWithinClamp)
{
    EscalationConfig cfg;
    cfg.kind = EscalationPolicy::Adaptive;
    cfg.failuresPerLevel = 4;
    cfg.minFailures = 1;
    cfg.maxFailures = 6;
    StealEscalation e(cfg);
    for (int i = 0; i < 100; ++i) {
        e.onFailedSteal();
        EXPECT_GE(e.failureBudget(), 1);
        EXPECT_LE(e.failureBudget(), 6);
    }
    // Saturated at the outermost level regardless of budget.
    EXPECT_TRUE(e.atOutermostLevel());
}

// ---------------------------------------------------------------------
// Informed victim selection (OccupancyBoard-weighted sampling)
// ---------------------------------------------------------------------

/** Board for @p d's worker layout with no bits set. */
OccupancyBoard
boardFor(const StealDistribution &d)
{
    return OccupancyBoard(d.numWorkers(), d.workerSockets());
}

TEST(VictimPolicyNames, AreStable)
{
    EXPECT_STREQ(victimPolicyName(VictimPolicy::Distance), "distance");
    EXPECT_STREQ(victimPolicyName(VictimPolicy::Occupancy), "occupancy");
    EXPECT_STREQ(victimPolicyName(VictimPolicy::OccupancyAffinity),
                 "occupancy+affinity");
}

TEST(VictimWeighting, OccupiedVictimOutranksAnyDryOne)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    OccupancyBoard board = boardFor(d);
    board.publishDeque(24, true); // two-hop victim, the worst distance
    // Thief 0: occupied two-hop victim must outweigh a dry pair buddy.
    const double occupied_far =
        d.victimWeight(0, 24, VictimPolicy::Occupancy, board, 0);
    const double dry_near =
        d.victimWeight(0, 1, VictimPolicy::Occupancy, board, 0);
    EXPECT_GT(occupied_far, dry_near);
}

TEST(VictimWeighting, AffinityBoostsOnlyLiveVictims)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    OccupancyBoard board = boardFor(d);
    board.publishDeque(8, true); // socket 1
    const uint32_t affinity = 1u << 1; // thief's data homes on socket 1
    // Live + affine beats live alone...
    const double live_affine = d.victimWeight(
        0, 8, VictimPolicy::OccupancyAffinity, board, affinity);
    const double live_plain = d.victimWeight(
        0, 8, VictimPolicy::OccupancyAffinity, board, 0);
    EXPECT_GT(live_affine, live_plain);
    // ...but a dry victim gains nothing from affinity: the inward bias
    // that caused the PR 1 heat regression must not come back.
    const double dry_affine = d.victimWeight(
        0, 9, VictimPolicy::OccupancyAffinity, board,
        affinity | (1u << 0));
    const double dry_plain =
        d.victimWeight(0, 9, VictimPolicy::OccupancyAffinity, board, 0);
    EXPECT_DOUBLE_EQ(dry_affine, dry_plain);
}

TEST(VictimWeighting, AffinityTiesBreakByDistance)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    OccupancyBoard board = boardFor(d);
    board.publishDeque(8, true);  // socket 1: one hop from thief 0
    board.publishDeque(24, true); // socket 3: two hops from thief 0
    const uint32_t affinity = (1u << 1) | (1u << 3); // both affine
    const double one_hop = d.victimWeight(
        0, 8, VictimPolicy::OccupancyAffinity, board, affinity);
    const double two_hop = d.victimWeight(
        0, 24, VictimPolicy::OccupancyAffinity, board, affinity);
    EXPECT_GT(one_hop, two_hop);
}

TEST(VictimWeighting, CrossSocketMailboxIsNotLive)
{
    // A parked frame is earmarked for its own socket's place: mailbox
    // occupancy makes a victim live for same-socket thieves only.
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    OccupancyBoard board = boardFor(d);
    board.publishMailbox(8, true); // socket 1
    EXPECT_TRUE(d.victimLive(9, 8, board));  // same socket: live
    EXPECT_FALSE(d.victimLive(0, 8, board)); // cross socket: churn
    EXPECT_EQ(d.victimWeight(0, 8, VictimPolicy::Occupancy, board, 0),
              d.victimWeight(0, 9, VictimPolicy::Occupancy, board, 0));
}

TEST(VictimWeighting, EveryVictimKeepsPositiveWeight)
{
    // The Section IV lower bound needs every victim reachable with
    // probability >= 1/(cP); weights must never hit zero.
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    OccupancyBoard board = boardFor(d);
    board.publishDeque(5, true);
    for (int v = 0; v < 32; ++v) {
        if (v == 0)
            continue;
        EXPECT_GT(d.victimWeight(0, v, VictimPolicy::OccupancyAffinity,
                                 board, 0xf),
                  0.0)
            << "victim " << v;
    }
}

TEST(VictimSampling, AllDryBoardFallsBackToUniformWithinLevel)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    const OccupancyBoard board = boardFor(d); // nothing published
    Rng rng(42);
    // Thief 0 at the Place level: victims 1..7, all dry and equidistant
    // -> uniform, and never the thief.
    CategoryCounter counts(32);
    const int n = 70000;
    for (int i = 0; i < n; ++i)
        counts.add(static_cast<std::size_t>(d.sampleVictim(
            0, kLevelPlace, VictimPolicy::Occupancy, &board, 0, rng)));
    EXPECT_EQ(counts.count(0), 0);
    for (int v = 1; v <= 7; ++v)
        EXPECT_NEAR(counts.fraction(static_cast<std::size_t>(v)),
                    1.0 / 7.0, 0.02)
            << "victim " << v;
    for (int v = 8; v < 32; ++v)
        EXPECT_EQ(counts.count(static_cast<std::size_t>(v)), 0u);
}

TEST(VictimSampling, ConcentratesOnTheOccupiedVictim)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    OccupancyBoard board = boardFor(d);
    board.publishDeque(6, true);
    Rng rng(7);
    CategoryCounter counts(32);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        counts.add(static_cast<std::size_t>(d.sampleVictim(
            0, kLevelPlace, VictimPolicy::Occupancy, &board, 0, rng)));
    // Occupied victim 6 carries 16/(16 + 6) of the level weight.
    EXPECT_GT(counts.fraction(6), 0.6);
    EXPECT_EQ(counts.count(0), 0);
}

TEST(VictimSampling, DistancePolicyIgnoresTheBoard)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    OccupancyBoard board = boardFor(d);
    board.publishDeque(24, true);
    Rng rng_a(11), rng_b(11);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(d.sampleVictim(0, kLevelPlace, VictimPolicy::Distance,
                                 &board, 0, rng_a),
                  d.sampleAtLevel(0, kLevelPlace, rng_b));
    }
}

TEST(VictimSampling, SingleSocketDegenerateStaysValid)
{
    const Machine m = Machine::singleSocket(4);
    const StealDistribution d(m, 4, BiasWeights{});
    OccupancyBoard board = boardFor(d);
    EXPECT_EQ(board.numSockets(), 1);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const int v = d.sampleVictim(1, kLevelCore,
                                     VictimPolicy::OccupancyAffinity,
                                     &board, 1u, rng);
        EXPECT_NE(v, 1);
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 4);
    }
    board.publishDeque(3, true);
    EXPECT_EQ(d.firstLiveLevel(1, kLevelCore, board),
              d.levelOf(1, 3));
}

TEST(FirstLiveLevel, SkipsDryLevelsToThePublishedWork)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    OccupancyBoard board = boardFor(d);
    board.publishDeque(24, true); // only socket 3 (remote) has work
    EXPECT_EQ(d.firstLiveLevel(0, kLevelCore, board), kLevelRemote);
    // Work within the current radius keeps the level unchanged.
    board.publishDeque(1, true);
    EXPECT_EQ(d.firstLiveLevel(0, kLevelCore, board), kLevelCore);
    // An already-wide radius never narrows back.
    EXPECT_EQ(d.firstLiveLevel(0, kLevelSocket, board), kLevelSocket);
}

TEST(FirstLiveLevel, AllDryBoardGoesOutermost)
{
    const Machine m = Machine::paperMachine();
    const StealDistribution d(m, 32, BiasWeights{});
    const OccupancyBoard board = boardFor(d);
    // Every level provably dry: one machine-wide (insurance) probe
    // replaces a ladder of cheap local ones.
    EXPECT_EQ(d.firstLiveLevel(0, kLevelCore, board), kLevelRemote);
    EXPECT_EQ(d.firstLiveLevel(0, kLevelRemote, board), kLevelRemote);
}

} // namespace
} // namespace numaws
