/**
 * @file
 * Threaded runtime tests: fork-join correctness, nesting, exceptions,
 * parallel_for semantics, repeated runs, and work-stealing liveness.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/api.h"
#include "workloads/workloads.h"

namespace numaws {
namespace {

RuntimeOptions
smallOptions(int workers, int places = 1)
{
    RuntimeOptions o;
    o.numWorkers = workers;
    o.numPlaces = places;
    return o;
}

TEST(Runtime, RunsRootToCompletion)
{
    Runtime rt(smallOptions(2));
    int x = 0;
    rt.run([&] { x = 42; });
    EXPECT_EQ(x, 42);
}

TEST(Runtime, RepeatedRunsWork)
{
    Runtime rt(smallOptions(2));
    int total = 0;
    for (int i = 0; i < 20; ++i)
        rt.run([&] { ++total; });
    EXPECT_EQ(total, 20);
}

TEST(Runtime, SingleWorkerExecutesEverything)
{
    Runtime rt(smallOptions(1));
    EXPECT_EQ(workloads::fibParallel(rt, 20, 5),
              workloads::fibSerial(20));
}

TEST(Runtime, FibMatchesSerial)
{
    Runtime rt(smallOptions(4));
    EXPECT_EQ(workloads::fibParallel(rt, 24, 10),
              workloads::fibSerial(24));
}

TEST(Runtime, SpawnsActuallyRunConcurrentTasks)
{
    Runtime rt(smallOptions(2));
    std::atomic<int> count{0};
    rt.run([&] {
        TaskGroup tg;
        for (int i = 0; i < 100; ++i)
            tg.spawn([&] { count.fetch_add(1); });
        tg.sync();
    });
    EXPECT_EQ(count.load(), 100);
}

TEST(Runtime, NestedGroups)
{
    Runtime rt(smallOptions(3));
    std::atomic<int> leaves{0};
    rt.run([&] {
        TaskGroup outer;
        for (int i = 0; i < 8; ++i) {
            outer.spawn([&] {
                TaskGroup inner;
                for (int j = 0; j < 8; ++j)
                    inner.spawn([&] { leaves.fetch_add(1); });
                inner.sync();
            });
        }
        outer.sync();
    });
    EXPECT_EQ(leaves.load(), 64);
}

TEST(Runtime, GroupDestructorSyncs)
{
    Runtime rt(smallOptions(2));
    std::atomic<int> done{0};
    rt.run([&] {
        {
            TaskGroup tg;
            for (int i = 0; i < 16; ++i)
                tg.spawn([&] { done.fetch_add(1); });
            // no explicit sync: the destructor must wait
        }
        EXPECT_EQ(done.load(), 16);
    });
}

TEST(Runtime, ExceptionPropagatesFromSpawnedTask)
{
    Runtime rt(smallOptions(2));
    EXPECT_THROW(
        rt.run([&] {
            TaskGroup tg;
            tg.spawn([] { throw std::runtime_error("boom"); });
            tg.sync();
        }),
        std::runtime_error);
}

TEST(Runtime, ExceptionFromRootPropagates)
{
    Runtime rt(smallOptions(2));
    EXPECT_THROW(rt.run([] { throw std::logic_error("root"); }),
                 std::logic_error);
    // The runtime stays usable afterwards.
    int x = 0;
    rt.run([&] { x = 1; });
    EXPECT_EQ(x, 1);
}

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    Runtime rt(smallOptions(4));
    std::vector<std::atomic<int>> hits(1000);
    rt.run([&] {
        parallelFor(0, 1000, 16, [&](int64_t i) { hits[i].fetch_add(1); });
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges)
{
    Runtime rt(smallOptions(2));
    std::atomic<int> count{0};
    rt.run([&] {
        parallelFor(5, 5, 4, [&](int64_t) { count.fetch_add(1); });
        parallelFor(5, 6, 4, [&](int64_t) { count.fetch_add(1); });
    });
    EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForPlaces, CoversRange)
{
    Runtime rt(smallOptions(4, 2));
    std::vector<std::atomic<int>> hits(512);
    rt.run([&] {
        parallelForPlaces(0, 512, 8,
                          [&](int64_t lo, int64_t hi) {
                              for (int64_t i = lo; i < hi; ++i)
                                  hits[i].fetch_add(1);
                          });
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ChunkOf, PartitionsEvenly)
{
    int64_t covered = 0;
    for (int c = 0; c < 7; ++c) {
        const RangeChunk rc = chunkOf(100, 7, c);
        covered += rc.end - rc.begin;
        EXPECT_LE(rc.end - rc.begin, 15);
        EXPECT_GE(rc.end - rc.begin, 14);
    }
    EXPECT_EQ(covered, 100);
    EXPECT_EQ(chunkOf(100, 7, 0).begin, 0);
    EXPECT_EQ(chunkOf(100, 7, 6).end, 100);
}

TEST(Runtime, StatsCountSpawnsAndTasks)
{
    Runtime rt(smallOptions(2));
    rt.resetStats();
    rt.run([&] {
        TaskGroup tg;
        for (int i = 0; i < 50; ++i)
            tg.spawn([] {});
        tg.sync();
    });
    const RuntimeStats s = rt.stats();
    EXPECT_EQ(s.counters.spawns, 50u);
    // 50 spawned tasks + 1 root.
    EXPECT_EQ(s.counters.tasksExecuted, 51u);
}

TEST(Runtime, ApiQueriesInsideAndOutside)
{
    EXPECT_EQ(currentPlace(), kAnyPlace);
    EXPECT_EQ(currentRuntime(), nullptr);
    Runtime rt(smallOptions(4, 2));
    rt.run([&] {
        EXPECT_EQ(numPlaces(), 2);
        EXPECT_NE(currentRuntime(), nullptr);
        EXPECT_GE(currentPlace(), 0);
    });
}

TEST(Runtime, ManySmallRunsDoNotLeakWork)
{
    Runtime rt(smallOptions(3));
    for (int round = 0; round < 30; ++round) {
        std::atomic<int> n{0};
        rt.run([&] {
            TaskGroup tg;
            for (int i = 0; i < 20; ++i)
                tg.spawn([&] { n.fetch_add(1); });
            tg.sync();
        });
        ASSERT_EQ(n.load(), 20) << "round " << round;
    }
}

} // namespace
} // namespace numaws
