/**
 * @file
 * Direct tests of the simulated memory system: locality cost ordering,
 * LLC reuse across strands, the streaming discount, and the region-home
 * interaction that produces work inflation.
 */
#include <gtest/gtest.h>

#include "mem/page_map.h"
#include "sim/memory.h"
#include "sim/scheduler.h"

namespace numaws::sim {
namespace {

/** Dag with one region and one strand touching [0, bytes). */
ComputationDag
touchDag(uint64_t bytes, RegionPolicy policy, int home, int touches = 1)
{
    DagBuilder b;
    const RegionId r = b.region("r", bytes, policy, home);
    b.beginRoot();
    for (int t = 0; t < touches; ++t)
        b.strand(0.0, {{r, 0, bytes}});
    b.end();
    return b.finish();
}

double
costOn(const ComputationDag &dag, int socket)
{
    const Machine m = Machine::paperMachine();
    SimMemory mem(m, dag);
    MemCounters counters;
    const Frame &root = dag.frame(dag.root());
    const Item &item = dag.item(root.itemBegin);
    return mem.cost(socket, item.accessBegin, item.accessEnd, counters);
}

TEST(SimMemory, LocalCheaperThanRemote)
{
    const auto dag = touchDag(1 << 20, RegionPolicy::Single, 0);
    const double local = costOn(dag, 0);
    const double one_hop = costOn(dag, 1);
    const double two_hop = costOn(dag, 3);
    EXPECT_LT(local, one_hop);
    EXPECT_LT(one_hop, two_hop);
}

TEST(SimMemory, SecondTouchHitsLlc)
{
    const auto dag = touchDag(1 << 20, RegionPolicy::Single, 2, 2);
    const Machine m = Machine::paperMachine();
    SimMemory mem(m, dag);
    MemCounters counters;
    const Frame &root = dag.frame(dag.root());
    const Item &first = dag.item(root.itemBegin);
    const Item &second = dag.item(root.itemBegin + 1);
    const double cold =
        mem.cost(0, first.accessBegin, first.accessEnd, counters);
    const double warm =
        mem.cost(0, second.accessBegin, second.accessEnd, counters);
    // Remote region, but the second touch is served from the local LLC.
    EXPECT_LT(warm, cold * 0.5);
    EXPECT_GT(counters.llcHitLines, 0u);
    EXPECT_GT(counters.remoteDramLines, 0u);
}

TEST(SimMemory, WorkingSetBeyondLlcKeepsMissing)
{
    // 64 MB through a 16 MB LLC: the second pass misses again.
    const auto dag = touchDag(64ULL << 20, RegionPolicy::Single, 0, 2);
    const Machine m = Machine::paperMachine();
    SimMemory mem(m, dag);
    MemCounters counters;
    const Frame &root = dag.frame(dag.root());
    const Item &first = dag.item(root.itemBegin);
    const Item &second = dag.item(root.itemBegin + 1);
    const double cold =
        mem.cost(0, first.accessBegin, first.accessEnd, counters);
    const double warm =
        mem.cost(0, second.accessBegin, second.accessEnd, counters);
    EXPECT_NEAR(warm, cold, cold * 0.05);
}

TEST(SimMemory, StreamingDiscountRewardsContiguity)
{
    // Same bytes, one contiguous access vs many 64-byte accesses.
    DagBuilder b;
    const RegionId r = b.region("r", 1 << 16, RegionPolicy::Single, 0);
    b.beginRoot();
    b.strand(0.0, {{r, 0, 1 << 16}}); // contiguous
    std::vector<MemAccess> scattered;
    for (uint64_t off = 0; off < (1 << 16); off += 4096)
        scattered.push_back({r, off, 64});
    b.strand(0.0, scattered); // one line per granule: no streaming
    b.end();
    const auto dag = b.finish();

    const Machine m = Machine::paperMachine();
    const Frame &root = dag.frame(dag.root());
    const Item &contig = dag.item(root.itemBegin);
    const Item &sparse = dag.item(root.itemBegin + 1);

    SimMemory mem1(m, dag);
    MemCounters c1;
    const double contig_cost =
        mem1.cost(0, contig.accessBegin, contig.accessEnd, c1);
    SimMemory mem2(m, dag);
    MemCounters c2;
    const double sparse_cost =
        mem2.cost(0, sparse.accessBegin, sparse.accessEnd, c2);

    // Contiguous touches 64x the lines (1024 vs 16) but streams most of
    // them: cost must stay well under half the unstreamed linear scaling.
    EXPECT_GT(contig_cost, sparse_cost);
    EXPECT_LT(contig_cost, sparse_cost * 32.0);
}

TEST(SimMemory, InterleavedSpreadsHomes)
{
    const auto dag =
        touchDag(16 * kPageBytes, RegionPolicy::Interleaved, 0);
    const Machine m = Machine::paperMachine();
    SimMemory mem(m, dag);
    MemCounters counters;
    const Frame &root = dag.frame(dag.root());
    const Item &item = dag.item(root.itemBegin);
    mem.cost(0, item.accessBegin, item.accessEnd, counters);
    // A quarter of the pages are local, the rest remote.
    EXPECT_GT(counters.remoteDramLines, 0u);
    EXPECT_GT(counters.localDramLines, 0u);
    EXPECT_NEAR(static_cast<double>(counters.localDramLines)
                    / static_cast<double>(counters.totalLines()),
                0.25, 0.05);
}

TEST(SimMemory, CountersClassifyEveryLineExactlyOnce)
{
    const auto dag = touchDag(1 << 20, RegionPolicy::Partitioned, 0);
    const Machine m = Machine::paperMachine();
    SimMemory mem(m, dag);
    MemCounters counters;
    const Frame &root = dag.frame(dag.root());
    const Item &item = dag.item(root.itemBegin);
    mem.cost(1, item.accessBegin, item.accessEnd, counters);
    EXPECT_EQ(counters.totalLines(), (1u << 20) / 64);
}

} // namespace
} // namespace numaws::sim
