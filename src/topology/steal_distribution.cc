#include "topology/steal_distribution.h"

#include <algorithm>

#include "support/panic.h"

namespace numaws {

StealDistribution::StealDistribution(const Machine &machine, int workers,
                                     const BiasWeights &weights)
    : _numWorkers(workers)
{
    NUMAWS_ASSERT(workers >= 1);
    for (int h = 0; h <= std::min(machine.maxHops(), 2); ++h)
        NUMAWS_ASSERT(weights.perHop[h] > 0.0);

    // Spread workers evenly across sockets, packed socket-major: the first
    // ceil(W/S) workers on socket 0, and so on. This matches the runtime's
    // startup policy ("spreads out the worker threads evenly across the
    // sockets and groups the threads on a given socket into a single
    // group").
    _workerSocket.resize(workers);
    const int sockets = machine.numSockets();
    const int per = (workers + sockets - 1) / sockets;
    for (int w = 0; w < workers; ++w)
        _workerSocket[w] = std::min(w / per, sockets - 1);

    _probability.assign(static_cast<std::size_t>(workers) * workers, 0.0);
    _cumulative.assign(static_cast<std::size_t>(workers) * workers, 0.0);

    for (int thief = 0; thief < workers; ++thief) {
        double total = 0.0;
        for (int victim = 0; victim < workers; ++victim) {
            if (victim == thief)
                continue;
            const int h = std::min(
                machine.hops(_workerSocket[thief], _workerSocket[victim]), 2);
            total += weights.perHop[h];
        }
        double run = 0.0;
        for (int victim = 0; victim < workers; ++victim) {
            double p = 0.0;
            if (victim != thief && total > 0.0) {
                const int h = std::min(
                    machine.hops(_workerSocket[thief],
                                 _workerSocket[victim]),
                    2);
                p = weights.perHop[h] / total;
            }
            run += p;
            const std::size_t idx =
                static_cast<std::size_t>(thief) * workers + victim;
            _probability[idx] = p;
            _cumulative[idx] = run;
        }
        // Guard against floating point drift so sampling never walks off
        // the end of the row.
        if (workers > 1)
            _cumulative[static_cast<std::size_t>(thief) * workers
                        + (workers - 1)] = 1.0;
    }
}

int
StealDistribution::sample(int thief, Rng &rng) const
{
    NUMAWS_ASSERT(_numWorkers > 1);
    const double x = rng.nextDouble();
    const double *row =
        _cumulative.data() + static_cast<std::size_t>(thief) * _numWorkers;
    // Binary search for the first cumulative value > x.
    const double *it = std::upper_bound(row, row + _numWorkers, x);
    int victim = static_cast<int>(it - row);
    if (victim >= _numWorkers)
        victim = _numWorkers - 1;
    if (victim == thief) {
        // Zero-probability self entries share a cumulative value with the
        // preceding entry; upper_bound never lands on them unless the
        // thief is worker 0 with x == 0. Skip forward deterministically.
        victim = (victim + 1) % _numWorkers;
    }
    return victim;
}

double
StealDistribution::probability(int thief, int victim) const
{
    return _probability[static_cast<std::size_t>(thief) * _numWorkers
                        + victim];
}

double
StealDistribution::minProbability() const
{
    double min_p = 1.0;
    for (int t = 0; t < _numWorkers; ++t)
        for (int v = 0; v < _numWorkers; ++v)
            if (t != v)
                min_p = std::min(min_p, probability(t, v));
    return min_p;
}

} // namespace numaws
