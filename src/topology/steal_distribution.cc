#include "topology/steal_distribution.h"

#include <algorithm>

#include "support/panic.h"

namespace numaws {

const char *
victimPolicyName(VictimPolicy p)
{
    switch (p) {
      case VictimPolicy::Distance:
        return "distance";
      case VictimPolicy::Occupancy:
        return "occupancy";
      case VictimPolicy::OccupancyAffinity:
        return "occupancy+affinity";
    }
    return "unknown";
}

StealDistribution::StealDistribution(const Machine &machine, int workers,
                                     const BiasWeights &weights)
    : _numWorkers(workers), _weights(weights)
{
    NUMAWS_ASSERT(workers >= 1);
    double w_min = weights.perHop[0], w_max = weights.perHop[0];
    for (int h = 0; h <= std::min(machine.maxHops(), 2); ++h) {
        NUMAWS_ASSERT(weights.perHop[h] > 0.0);
        w_min = std::min(w_min, weights.perHop[h]);
        w_max = std::max(w_max, weights.perHop[h]);
    }
    // Occupancy must dominate whatever distance spread is configured: an
    // occupied victim at the worst distance weight must outrank a dry
    // one at the best (see kOccupancyBoost).
    _occupancyBoost = std::max(kOccupancyBoost, 2.0 * w_max / w_min);

    // Spread workers evenly across sockets, packed socket-major: the first
    // ceil(W/S) workers on socket 0, and so on. This matches the runtime's
    // startup policy ("spreads out the worker threads evenly across the
    // sockets and groups the threads on a given socket into a single
    // group").
    _workerSocket.resize(workers);
    _workerCoreGroup.resize(workers);
    const int sockets = machine.numSockets();
    _numSockets = sockets;
    _socketHops.resize(static_cast<std::size_t>(sockets) * sockets);
    for (int i = 0; i < sockets; ++i)
        for (int j = 0; j < sockets; ++j)
            _socketHops[static_cast<std::size_t>(i) * sockets + j] =
                machine.hops(i, j);
    const int per = (workers + sockets - 1) / sockets;
    for (int w = 0; w < workers; ++w) {
        _workerSocket[w] = std::min(w / per, sockets - 1);
        // Pair buddies: adjacent worker indices within a socket share a
        // core group (the hierarchical Core level).
        const int first_on_socket = _workerSocket[w] * per;
        _workerCoreGroup[w] = (w - first_on_socket) / kCoreGroupSize;
    }

    _probability.assign(static_cast<std::size_t>(workers) * workers, 0.0);
    _cumulative.assign(static_cast<std::size_t>(workers) * workers, 0.0);

    for (int thief = 0; thief < workers; ++thief) {
        double total = 0.0;
        for (int victim = 0; victim < workers; ++victim) {
            if (victim == thief)
                continue;
            const int h = std::min(
                machine.hops(_workerSocket[thief], _workerSocket[victim]), 2);
            total += weights.perHop[h];
        }
        double run = 0.0;
        for (int victim = 0; victim < workers; ++victim) {
            double p = 0.0;
            if (victim != thief && total > 0.0) {
                const int h = std::min(
                    machine.hops(_workerSocket[thief],
                                 _workerSocket[victim]),
                    2);
                p = weights.perHop[h] / total;
            }
            run += p;
            const std::size_t idx =
                static_cast<std::size_t>(thief) * workers + victim;
            _probability[idx] = p;
            _cumulative[idx] = run;
        }
        // Guard against floating point drift so sampling never walks off
        // the end of the row.
        if (workers > 1)
            _cumulative[static_cast<std::size_t>(thief) * workers
                        + (workers - 1)] = 1.0;
    }

    // Hierarchical ranking: per thief, victims sorted by distance level
    // (stable by id within a level) plus cumulative per-level counts.
    const std::size_t row = static_cast<std::size_t>(workers - 1);
    _victimsByLevel.resize(static_cast<std::size_t>(workers) * row);
    _levelPrefix.assign(
        static_cast<std::size_t>(workers) * kNumStealLevels, 0);
    for (int thief = 0; thief < workers; ++thief) {
        int *out = _victimsByLevel.data()
                   + static_cast<std::size_t>(thief) * row;
        int rank = 0;
        for (int level = 0; level < kNumStealLevels; ++level) {
            for (int victim = 0; victim < workers; ++victim)
                if (victim != thief && levelOf(thief, victim) == level)
                    out[rank++] = victim;
            _levelPrefix[static_cast<std::size_t>(thief) * kNumStealLevels
                         + level] = rank;
        }
        NUMAWS_ASSERT(rank == workers - 1);
    }
}

int
StealDistribution::levelOf(int thief, int victim) const
{
    NUMAWS_ASSERT(thief != victim);
    if (_workerSocket[thief] == _workerSocket[victim]) {
        return _workerCoreGroup[thief] == _workerCoreGroup[victim]
                   ? kLevelCore
                   : kLevelPlace;
    }
    const int hops =
        _socketHops[static_cast<std::size_t>(_workerSocket[thief])
                        * _numSockets
                    + _workerSocket[victim]];
    return hops <= 1 ? kLevelSocket : kLevelRemote;
}

int
StealDistribution::victimsWithinLevel(int thief, int level) const
{
    NUMAWS_ASSERT(level >= 0 && level < kNumStealLevels);
    return _levelPrefix[static_cast<std::size_t>(thief) * kNumStealLevels
                        + level];
}

int
StealDistribution::sampleAtLevel(int thief, int level, Rng &rng) const
{
    NUMAWS_ASSERT(_numWorkers > 1);
    level = std::min(std::max(level, 0), kNumStealLevels - 1);
    // Escalate internally past empty prefixes (e.g. a lone worker on its
    // socket has no Core or Place victims).
    int n = victimsWithinLevel(thief, level);
    while (n == 0 && level < kNumStealLevels - 1)
        n = victimsWithinLevel(thief, ++level);
    NUMAWS_ASSERT(n > 0); // outermost prefix holds all W-1 victims
    const int *row = _victimsByLevel.data()
                     + static_cast<std::size_t>(thief) * (_numWorkers - 1);
    return row[rng.nextBounded(static_cast<uint64_t>(n))];
}

/**
 * One-shot copy of the board's per-socket words: a steal decision reads
 * a consistent snapshot (two acquire loads per socket, <= 2 * sockets
 * total) instead of re-polling the atomics per victim, and the level
 * skip and the two weighted-sampling passes agree by construction — a
 * bit flipping mid-decision cannot skew the choice.
 */
struct StealDistribution::Snap
{
    static constexpr int kMaxSockets = 64;
    uint64_t dq[kMaxSockets];
    uint64_t mb[kMaxSockets];
    bool valid = false;

    explicit Snap(const OccupancyBoard &b)
    {
        if (!b.enabled() || b.numSockets() > kMaxSockets)
            return; // fall back to live per-victim reads
        for (int s = 0; s < b.numSockets(); ++s) {
            dq[s] = b.dequeBits(s);
            mb[s] = b.mailboxBits(s);
        }
        valid = true;
    }

    /** victimLive() against the snapshot (live reads if !valid). */
    bool
    live(const OccupancyBoard &b, int thief_socket, int victim,
         int victim_socket, uint64_t mask) const
    {
        if (!valid) {
            if (b.dequeNonempty(victim))
                return true;
            return thief_socket == victim_socket
                   && b.mailboxOccupied(victim);
        }
        if ((dq[victim_socket] & mask) != 0)
            return true;
        return thief_socket == victim_socket
               && (mb[victim_socket] & mask) != 0;
    }
};

int
StealDistribution::liveLevelFrom(int thief, int level,
                                 const OccupancyBoard &board,
                                 const Snap &snap) const
{
    const int tsock = _workerSocket[thief];
    const int total = _numWorkers - 1;
    const int *row = _victimsByLevel.data()
                     + static_cast<std::size_t>(thief) * total;
    const int within = victimsWithinLevel(thief, level);
    // The row is sorted by level, so the first victim with published
    // work identifies the first live level at or outside the radius.
    for (int i = 0; i < total; ++i) {
        const int v = row[i];
        if (snap.live(board, tsock, v, _workerSocket[v],
                      board.workerMask(v)))
            return i < within ? level : levelOf(thief, v);
    }
    // Board all-dry: every level is provably dry, so go straight to the
    // outermost. The probe there still runs (false-empty means the board
    // may lag reality, so probing never stops), but one machine-wide
    // probe replaces a ladder of cheap local ones — during genuine dry
    // spells this is what keeps the probe *count* down.
    return kNumStealLevels - 1;
}

int
StealDistribution::firstLiveLevel(int thief, int level,
                                  const OccupancyBoard &board) const
{
    level = std::min(std::max(level, 0), kNumStealLevels - 1);
    if (!board.enabled() || level == kNumStealLevels - 1)
        return level;
    return liveLevelFrom(thief, level, board, Snap(board));
}

double
StealDistribution::weightOf(int thief, int victim, VictimPolicy policy,
                            bool live, uint32_t affinity_sockets) const
{
    const int h =
        std::min(_socketHops[static_cast<std::size_t>(
                                 _workerSocket[thief])
                                 * _numSockets
                             + _workerSocket[victim]],
                 2);
    double w = _weights.perHop[h];
    if (policy == VictimPolicy::Distance)
        return w;
    if (live) {
        w *= _occupancyBoost;
        // Affinity refines the choice *among live candidates* only: a
        // dry victim on a data-home socket must never outrank an
        // occupied one elsewhere, or the inward bias that caused PR 1's
        // heat regression comes straight back.
        // Affinity masks cover 32 sockets; victims beyond that (huge
        // flat-SLIT machines) simply get no boost — shifting by >= 32
        // would be UB.
        if (policy == VictimPolicy::OccupancyAffinity
            && _workerSocket[victim] < 32
            && ((affinity_sockets >> _workerSocket[victim]) & 1u) != 0)
            w *= kAffinityBoost;
    }
    return w;
}

double
StealDistribution::victimWeight(int thief, int victim, VictimPolicy policy,
                                const OccupancyBoard &board,
                                uint32_t affinity_sockets) const
{
    return weightOf(thief, victim, policy,
                    victimLive(thief, victim, board), affinity_sockets);
}

int
StealDistribution::sampleFromSnap(int thief, int level, VictimPolicy policy,
                                  const OccupancyBoard &board,
                                  const Snap &snap,
                                  uint32_t affinity_sockets,
                                  Rng &rng) const
{
    int n = victimsWithinLevel(thief, level);
    while (n == 0 && level < kNumStealLevels - 1)
        n = victimsWithinLevel(thief, ++level);
    NUMAWS_ASSERT(n > 0);
    const int *row = _victimsByLevel.data()
                     + static_cast<std::size_t>(thief) * (_numWorkers - 1);

    // Two passes over one snapshot keep the steal path allocation free
    // and the passes mutually consistent; n <= P-1 and each weight is a
    // couple of bit tests against the snapshot.
    const int tsock = _workerSocket[thief];
    const auto weight = [&](int v) {
        return weightOf(thief, v, policy,
                        snap.live(board, tsock, v, _workerSocket[v],
                                  board.workerMask(v)),
                        affinity_sockets);
    };
    double total = 0.0;
    for (int i = 0; i < n; ++i)
        total += weight(row[i]);
    double x = rng.nextDouble() * total;
    for (int i = 0; i < n; ++i) {
        x -= weight(row[i]);
        if (x < 0.0)
            return row[i];
    }
    return row[n - 1]; // floating point drift lands on the last victim
}

int
StealDistribution::sampleVictim(int thief, int level, VictimPolicy policy,
                                const OccupancyBoard *board,
                                uint32_t affinity_sockets, Rng &rng) const
{
    NUMAWS_ASSERT(_numWorkers > 1);
    if (policy == VictimPolicy::Distance || board == nullptr
        || !board->enabled())
        return sampleAtLevel(thief, level, rng);
    level = std::min(std::max(level, 0), kNumStealLevels - 1);
    return sampleFromSnap(thief, level, policy, *board, Snap(*board),
                          affinity_sockets, rng);
}

int
StealDistribution::sampleVictimInformed(int thief, int *level_io,
                                        VictimPolicy policy,
                                        const OccupancyBoard &board,
                                        uint32_t affinity_sockets,
                                        Rng &rng) const
{
    NUMAWS_ASSERT(_numWorkers > 1);
    NUMAWS_ASSERT(level_io != nullptr);
    int level = std::min(std::max(*level_io, 0), kNumStealLevels - 1);
    if (policy == VictimPolicy::Distance || !board.enabled()) {
        *level_io = level;
        return sampleAtLevel(thief, level, rng);
    }
    const Snap snap(board);
    if (level < kNumStealLevels - 1)
        level = liveLevelFrom(thief, level, board, snap);
    *level_io = level;
    return sampleFromSnap(thief, level, policy, board, snap,
                          affinity_sockets, rng);
}

int
StealDistribution::sample(int thief, Rng &rng) const
{
    NUMAWS_ASSERT(_numWorkers > 1);
    const double x = rng.nextDouble();
    const double *row =
        _cumulative.data() + static_cast<std::size_t>(thief) * _numWorkers;
    // Binary search for the first cumulative value > x.
    const double *it = std::upper_bound(row, row + _numWorkers, x);
    int victim = static_cast<int>(it - row);
    if (victim >= _numWorkers)
        victim = _numWorkers - 1;
    if (victim == thief) {
        // Zero-probability self entries share a cumulative value with the
        // preceding entry; upper_bound never lands on them unless the
        // thief is worker 0 with x == 0. Skip forward deterministically.
        victim = (victim + 1) % _numWorkers;
    }
    return victim;
}

double
StealDistribution::probability(int thief, int victim) const
{
    return _probability[static_cast<std::size_t>(thief) * _numWorkers
                        + victim];
}

double
StealDistribution::minProbability() const
{
    double min_p = 1.0;
    for (int t = 0; t < _numWorkers; ++t)
        for (int v = 0; v < _numWorkers; ++v)
            if (t != v)
                min_p = std::min(min_p, probability(t, v));
    return min_p;
}

} // namespace numaws
