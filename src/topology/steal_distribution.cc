#include "topology/steal_distribution.h"

#include <algorithm>

#include "support/panic.h"

namespace numaws {

StealDistribution::StealDistribution(const Machine &machine, int workers,
                                     const BiasWeights &weights)
    : _numWorkers(workers)
{
    NUMAWS_ASSERT(workers >= 1);
    for (int h = 0; h <= std::min(machine.maxHops(), 2); ++h)
        NUMAWS_ASSERT(weights.perHop[h] > 0.0);

    // Spread workers evenly across sockets, packed socket-major: the first
    // ceil(W/S) workers on socket 0, and so on. This matches the runtime's
    // startup policy ("spreads out the worker threads evenly across the
    // sockets and groups the threads on a given socket into a single
    // group").
    _workerSocket.resize(workers);
    _workerCoreGroup.resize(workers);
    const int sockets = machine.numSockets();
    _numSockets = sockets;
    _socketHops.resize(static_cast<std::size_t>(sockets) * sockets);
    for (int i = 0; i < sockets; ++i)
        for (int j = 0; j < sockets; ++j)
            _socketHops[static_cast<std::size_t>(i) * sockets + j] =
                machine.hops(i, j);
    const int per = (workers + sockets - 1) / sockets;
    for (int w = 0; w < workers; ++w) {
        _workerSocket[w] = std::min(w / per, sockets - 1);
        // Pair buddies: adjacent worker indices within a socket share a
        // core group (the hierarchical Core level).
        const int first_on_socket = _workerSocket[w] * per;
        _workerCoreGroup[w] = (w - first_on_socket) / kCoreGroupSize;
    }

    _probability.assign(static_cast<std::size_t>(workers) * workers, 0.0);
    _cumulative.assign(static_cast<std::size_t>(workers) * workers, 0.0);

    for (int thief = 0; thief < workers; ++thief) {
        double total = 0.0;
        for (int victim = 0; victim < workers; ++victim) {
            if (victim == thief)
                continue;
            const int h = std::min(
                machine.hops(_workerSocket[thief], _workerSocket[victim]), 2);
            total += weights.perHop[h];
        }
        double run = 0.0;
        for (int victim = 0; victim < workers; ++victim) {
            double p = 0.0;
            if (victim != thief && total > 0.0) {
                const int h = std::min(
                    machine.hops(_workerSocket[thief],
                                 _workerSocket[victim]),
                    2);
                p = weights.perHop[h] / total;
            }
            run += p;
            const std::size_t idx =
                static_cast<std::size_t>(thief) * workers + victim;
            _probability[idx] = p;
            _cumulative[idx] = run;
        }
        // Guard against floating point drift so sampling never walks off
        // the end of the row.
        if (workers > 1)
            _cumulative[static_cast<std::size_t>(thief) * workers
                        + (workers - 1)] = 1.0;
    }

    // Hierarchical ranking: per thief, victims sorted by distance level
    // (stable by id within a level) plus cumulative per-level counts.
    const std::size_t row = static_cast<std::size_t>(workers - 1);
    _victimsByLevel.resize(static_cast<std::size_t>(workers) * row);
    _levelPrefix.assign(
        static_cast<std::size_t>(workers) * kNumStealLevels, 0);
    for (int thief = 0; thief < workers; ++thief) {
        int *out = _victimsByLevel.data()
                   + static_cast<std::size_t>(thief) * row;
        int rank = 0;
        for (int level = 0; level < kNumStealLevels; ++level) {
            for (int victim = 0; victim < workers; ++victim)
                if (victim != thief && levelOf(thief, victim) == level)
                    out[rank++] = victim;
            _levelPrefix[static_cast<std::size_t>(thief) * kNumStealLevels
                         + level] = rank;
        }
        NUMAWS_ASSERT(rank == workers - 1);
    }
}

int
StealDistribution::levelOf(int thief, int victim) const
{
    NUMAWS_ASSERT(thief != victim);
    if (_workerSocket[thief] == _workerSocket[victim]) {
        return _workerCoreGroup[thief] == _workerCoreGroup[victim]
                   ? kLevelCore
                   : kLevelPlace;
    }
    const int hops =
        _socketHops[static_cast<std::size_t>(_workerSocket[thief])
                        * _numSockets
                    + _workerSocket[victim]];
    return hops <= 1 ? kLevelSocket : kLevelRemote;
}

int
StealDistribution::victimsWithinLevel(int thief, int level) const
{
    NUMAWS_ASSERT(level >= 0 && level < kNumStealLevels);
    return _levelPrefix[static_cast<std::size_t>(thief) * kNumStealLevels
                        + level];
}

int
StealDistribution::sampleAtLevel(int thief, int level, Rng &rng) const
{
    NUMAWS_ASSERT(_numWorkers > 1);
    level = std::min(std::max(level, 0), kNumStealLevels - 1);
    // Escalate internally past empty prefixes (e.g. a lone worker on its
    // socket has no Core or Place victims).
    int n = victimsWithinLevel(thief, level);
    while (n == 0 && level < kNumStealLevels - 1)
        n = victimsWithinLevel(thief, ++level);
    NUMAWS_ASSERT(n > 0); // outermost prefix holds all W-1 victims
    const int *row = _victimsByLevel.data()
                     + static_cast<std::size_t>(thief) * (_numWorkers - 1);
    return row[rng.nextBounded(static_cast<uint64_t>(n))];
}

int
StealDistribution::sample(int thief, Rng &rng) const
{
    NUMAWS_ASSERT(_numWorkers > 1);
    const double x = rng.nextDouble();
    const double *row =
        _cumulative.data() + static_cast<std::size_t>(thief) * _numWorkers;
    // Binary search for the first cumulative value > x.
    const double *it = std::upper_bound(row, row + _numWorkers, x);
    int victim = static_cast<int>(it - row);
    if (victim >= _numWorkers)
        victim = _numWorkers - 1;
    if (victim == thief) {
        // Zero-probability self entries share a cumulative value with the
        // preceding entry; upper_bound never lands on them unless the
        // thief is worker 0 with x == 0. Skip forward deterministically.
        victim = (victim + 1) % _numWorkers;
    }
    return victim;
}

double
StealDistribution::probability(int thief, int victim) const
{
    return _probability[static_cast<std::size_t>(thief) * _numWorkers
                        + victim];
}

double
StealDistribution::minProbability() const
{
    double min_p = 1.0;
    for (int t = 0; t < _numWorkers; ++t)
        for (int v = 0; v < _numWorkers; ++v)
            if (t != v)
                min_p = std::min(min_p, probability(t, v));
    return min_p;
}

} // namespace numaws
