#include "topology/affinity.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace numaws {

int
hostCpuCount()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

bool
pinCurrentThread(int cpu)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu % hostCpuCount(), &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

} // namespace numaws
