/**
 * @file
 * NUMA machine description: sockets, cores per socket, and the inter-socket
 * distance matrix (as `numactl --hardware` reports it).
 *
 * This is the substrate both engines consume: the threaded runtime uses it
 * to group workers into virtual places and bias steals; the discrete-event
 * simulator uses it to model the paper's evaluation machine (a four-socket,
 * 32-core Intel Xeon E5-4620 with the QPI square of Figure 1).
 */
#ifndef NUMAWS_TOPOLOGY_MACHINE_H
#define NUMAWS_TOPOLOGY_MACHINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "topology/place.h"

namespace numaws {

/**
 * Immutable machine topology.
 *
 * Distances follow the numactl/ACPI SLIT convention: 10 for the local
 * socket, and >10 for remote sockets scaled by hop count (20 for one hop,
 * 30 for two hops on the paper's machine).
 */
class Machine
{
  public:
    /**
     * @param cores_per_socket cores on each socket (uniform).
     * @param distances row-major numSockets x numSockets SLIT matrix.
     * @param ghz nominal core frequency used to convert cycles to seconds.
     * @param llc_bytes per-socket shared last-level cache capacity.
     */
    Machine(int sockets, int cores_per_socket,
            std::vector<int> distances, double ghz, uint64_t llc_bytes);

    /**
     * The paper's evaluation machine (Figure 1 / Section V): four sockets,
     * eight cores each, 2.2 GHz, 16 MB LLC per socket, QPI square where
     * sockets 0-1, 0-2, 1-3, 2-3 are adjacent and 0-3, 1-2 are two hops.
     */
    static Machine paperMachine();

    /** A single-socket machine (for baselines and host-like tests). */
    static Machine singleSocket(int cores);

    /**
     * A machine with the paper's socket fabric but an arbitrary number of
     * sockets in {1, 2, 4} and cores per socket, used for packed-socket
     * scalability sweeps (Figure 9 packs P cores onto ceil(P/8) sockets).
     */
    static Machine paperMachineSubset(int cores_in_use);

    int numSockets() const { return _numSockets; }
    int coresPerSocket() const { return _coresPerSocket; }
    int numCores() const { return _numSockets * _coresPerSocket; }
    double ghz() const { return _ghz; }
    uint64_t llcBytes() const { return _llcBytes; }

    /** SLIT distance between two sockets (10 == local). */
    int distance(int from_socket, int to_socket) const;

    /** Hop count derived from the SLIT entry (0 local, 1, 2, ...). */
    int hops(int from_socket, int to_socket) const;

    /** Largest hop count anywhere in the matrix. */
    int maxHops() const;

    /** Socket that owns a core (cores are packed socket-major). */
    int
    socketOfCore(int core) const
    {
        return core / _coresPerSocket;
    }

    /** Cores [begin, end) belonging to @p socket. */
    std::pair<int, int>
    coreRangeOfSocket(int socket) const
    {
        return {socket * _coresPerSocket, (socket + 1) * _coresPerSocket};
    }

    /** Seconds represented by @p cycles at this machine's frequency. */
    double
    cyclesToSeconds(double cycles) const
    {
        return cycles / (_ghz * 1e9);
    }

    /** Human-readable topology dump (used by example binaries). */
    std::string describe() const;

  private:
    int _numSockets;
    int _coresPerSocket;
    std::vector<int> _distances;
    double _ghz;
    uint64_t _llcBytes;
};

} // namespace numaws

#endif // NUMAWS_TOPOLOGY_MACHINE_H
