/**
 * @file
 * Locality-biased victim selection (Section III-B), flat and hierarchical.
 *
 * Classic work stealing picks a victim uniformly at random. NUMA-WS biases
 * the distribution by socket distance: victims on the thief's socket are
 * preferred, then one-hop sockets, then two-hop sockets. The bias must keep
 * every victim's probability at least 1/(cP) for a constant c — that lower
 * bound is what preserves the O(P * Tinf) steal bound of Section IV — so
 * weights are strictly positive by construction and validated here.
 *
 * On top of the flat biased distribution this file provides the *adaptive
 * hierarchical* victim search: victims are ranked into distance levels
 * (core -> place -> socket -> remote) and a thief samples uniformly among
 * victims at or inside its current level, escalating one level outward
 * after a run of consecutive failed steals (StealEscalation). At the
 * outermost level every victim is reachable, so a starving worker always
 * ends up stealing against any place hint rather than idling, and each
 * victim keeps probability >= 1/(P-1) there — the same 1/(cP) shape the
 * proof needs, reached after a constant number of failures.
 */
#ifndef NUMAWS_TOPOLOGY_STEAL_DISTRIBUTION_H
#define NUMAWS_TOPOLOGY_STEAL_DISTRIBUTION_H

#include <vector>

#include "support/rng.h"
#include "topology/machine.h"

namespace numaws {

/** Per-hop-count steal weights; index 0 is the local socket. */
struct BiasWeights
{
    /** Default matches the paper's "highest / medium / lowest" intent. */
    double perHop[3] = {8.0, 2.0, 1.0};

    /** Uniform weights recover the classic scheduler's distribution. */
    static BiasWeights
    uniform()
    {
        return BiasWeights{{1.0, 1.0, 1.0}};
    }
};

/**
 * Distance levels for hierarchical victim search, innermost first.
 *
 * Core: the thief's pair buddies (workers sharing its core group — adjacent
 * worker indices on the same socket, modelling a shared mid-level cache).
 * Place: the rest of the thief's socket (its virtual place).
 * Socket: one-hop sockets. Remote: two-or-more-hop sockets.
 */
enum StealLevel : int
{
    kLevelCore = 0,
    kLevelPlace = 1,
    kLevelSocket = 2,
    kLevelRemote = 3,
};

inline constexpr int kNumStealLevels = 4;

/** Workers per core group at the Core level (pair buddies). */
inline constexpr int kCoreGroupSize = 2;

/**
 * Per-thief escalation ladder for hierarchical stealing.
 *
 * A thief starts at its innermost nonempty level; each run of
 * @p failures_per_level consecutive failed steal attempts widens the
 * search by one level, and a successful acquisition narrows it by one
 * level (not a full reset: under steady cross-socket load the ladder
 * settles at the level where work actually is, instead of re-climbing
 * from the core level after every hit). Escalation reaches kLevelRemote
 * (all victims) after at most failures_per_level * kNumStealLevels
 * failures, which keeps the steal bound within a constant factor of the
 * flat scheme.
 */
class StealEscalation
{
  public:
    explicit StealEscalation(int failures_per_level = 2)
        : _failuresPerLevel(failures_per_level > 0 ? failures_per_level : 1)
    {}

    int level() const { return _level; }
    bool atOutermostLevel() const { return _level == kNumStealLevels - 1; }

    /** A steal attempt found nothing: maybe widen the search. */
    void
    onFailedSteal()
    {
        if (++_failures >= _failuresPerLevel
            && _level < kNumStealLevels - 1) {
            ++_level;
            _failures = 0;
        }
    }

    /** Work was acquired: narrow the search by one level. */
    void
    onSuccessfulSteal()
    {
        if (_level > 0)
            --_level;
        _failures = 0;
    }

  private:
    int _failuresPerLevel;
    int _level = 0;
    int _failures = 0;
};

/**
 * Precomputed per-thief victim distribution over all workers of a machine.
 *
 * One instance is built per (machine, worker count, weights) configuration;
 * sampling is a binary search over a cumulative table, O(log P) with no
 * allocation, cheap enough for the steal path.
 *
 * The same instance also precomputes the distance-level ranking used by
 * hierarchical stealing: sampleAtLevel(thief, L) picks uniformly among the
 * victims whose level is <= L (escalating internally past empty levels),
 * so at kLevelRemote it degenerates to uniform over all victims.
 */
class StealDistribution
{
  public:
    /**
     * @param workers total number of workers, packed socket-major
     *        (worker w lives on socket w / coresPerSocket').
     * Workers are spread evenly across the machine's sockets: worker w is
     * on socket w * numSockets / workers when workers < cores, matching
     * the runtime's even-spread startup policy.
     */
    StealDistribution(const Machine &machine, int workers,
                      const BiasWeights &weights);

    /** Socket a worker belongs to under the even-spread policy. */
    int socketOfWorker(int worker) const { return _workerSocket[worker]; }

    /**
     * Sample a victim for @p thief; never returns the thief itself.
     */
    int sample(int thief, Rng &rng) const;

    /** Probability that @p thief targets @p victim on one attempt. */
    double probability(int thief, int victim) const;

    /** Smallest nonzero victim probability across all pairs. */
    double minProbability() const;

    int numWorkers() const { return _numWorkers; }

    /** @name Hierarchical victim search */
    /// @{
    /** Distance level of @p victim as seen from @p thief. */
    int levelOf(int thief, int victim) const;

    /** Victims of @p thief at level <= @p level (monotone in level). */
    int victimsWithinLevel(int thief, int level) const;

    /**
     * Sample uniformly among victims at level <= @p level; empty prefixes
     * escalate internally, so a victim is always returned when P > 1.
     * Never returns the thief.
     */
    int sampleAtLevel(int thief, int level, Rng &rng) const;
    /// @}

  private:
    int _numWorkers;
    int _numSockets;
    std::vector<int> _workerSocket;
    std::vector<int> _workerCoreGroup; ///< pair-buddy group within socket
    std::vector<int> _socketHops;      ///< row-major socket hop matrix
    // Row-major [thief][victim] cumulative probabilities.
    std::vector<double> _cumulative;
    std::vector<double> _probability;
    // Row-major [thief][rank]: victims sorted by level then id (W-1 per
    // thief), plus [thief][level] counts of victims at level <= L.
    std::vector<int> _victimsByLevel;
    std::vector<int> _levelPrefix;
};

} // namespace numaws

#endif // NUMAWS_TOPOLOGY_STEAL_DISTRIBUTION_H
