/**
 * @file
 * Locality-biased victim selection (Section III-B), flat and hierarchical.
 *
 * Classic work stealing picks a victim uniformly at random. NUMA-WS biases
 * the distribution by socket distance: victims on the thief's socket are
 * preferred, then one-hop sockets, then two-hop sockets. The bias must keep
 * every victim's probability at least 1/(cP) for a constant c — that lower
 * bound is what preserves the O(P * Tinf) steal bound of Section IV — so
 * weights are strictly positive by construction and validated here.
 *
 * On top of the flat biased distribution this file provides the *adaptive
 * hierarchical* victim search: victims are ranked into distance levels
 * (core -> place -> socket -> remote) and a thief samples uniformly among
 * victims at or inside its current level, escalating one level outward
 * after a run of consecutive failed steals (StealEscalation). At the
 * outermost level every victim is reachable, so a starving worker always
 * ends up stealing against any place hint rather than idling, and each
 * victim keeps probability >= 1/(P-1) there — the same 1/(cP) shape the
 * proof needs, reached after a constant number of failures.
 */
#ifndef NUMAWS_TOPOLOGY_STEAL_DISTRIBUTION_H
#define NUMAWS_TOPOLOGY_STEAL_DISTRIBUTION_H

#include <cstdint>
#include <vector>

#include "sched/occupancy.h"
#include "support/rng.h"
#include "topology/machine.h"

namespace numaws {

/**
 * How hierarchical victim selection uses runtime information.
 *
 * Distance reproduces PR 1's blind ladder: uniform sampling within the
 * escalation radius, ordered by topology alone. Occupancy additionally
 * consults the OccupancyBoard: provably-dry levels are skipped without
 * burning the failures-per-level budget, and victims with published work
 * are weighted up. OccupancyAffinity further boosts victims on sockets
 * that home the thief's current data regions (PageMap/NumaArena homing in
 * the runtime; region homes in the simulator), so a thief gravitates to
 * the socket its working set lives on. Each step is separately ablatable.
 */
enum class VictimPolicy : uint8_t
{
    Distance,
    Occupancy,
    OccupancyAffinity,
};

/** Stable name for bench JSON / CLI ("distance", "occupancy",
 * "occupancy+affinity"). */
const char *victimPolicyName(VictimPolicy p);

/** Floor for the occupancy weight multiplier. The effective boost is
 * max(kOccupancyBoost, 2 * configured distance spread), computed per
 * StealDistribution, so occupancy always dominates distance: a dry
 * nearby victim never outranks an occupied remote one, whatever
 * BiasWeights the user configured. With the default 8:2:1 weights the
 * effective boost is exactly this floor. */
inline constexpr double kOccupancyBoost = 16.0;

/** Weight multiplier for a victim on a socket homing the thief's data.
 * Smaller than the distance spread, so equal-affinity candidates are
 * still ordered by distance (affinity ties break by distance). */
inline constexpr double kAffinityBoost = 2.0;

/** Per-hop-count steal weights; index 0 is the local socket. */
struct BiasWeights
{
    /** Default matches the paper's "highest / medium / lowest" intent. */
    double perHop[3] = {8.0, 2.0, 1.0};

    /** Uniform weights recover the classic scheduler's distribution. */
    static BiasWeights
    uniform()
    {
        return BiasWeights{{1.0, 1.0, 1.0}};
    }
};

/**
 * Distance levels for hierarchical victim search, innermost first.
 *
 * Core: the thief's pair buddies (workers sharing its core group — adjacent
 * worker indices on the same socket, modelling a shared mid-level cache).
 * Place: the rest of the thief's socket (its virtual place).
 * Socket: one-hop sockets. Remote: two-or-more-hop sockets.
 */
enum StealLevel : int
{
    kLevelCore = 0,
    kLevelPlace = 1,
    kLevelSocket = 2,
    kLevelRemote = 3,
};

inline constexpr int kNumStealLevels = 4;

/** Workers per core group at the Core level (pair buddies). */
inline constexpr int kCoreGroupSize = 2;

/**
 * How the escalation ladder sets its failures-per-level budget.
 *
 * Fixed reproduces PR 1: a constant budget at every level. Adaptive
 * derives each level's budget from an EWMA of the steal-success rate
 * observed *at that level*: a level that keeps paying off earns patience
 * (budget grows toward twice the base), a level that keeps failing is
 * abandoned after as little as one failure. Both stay within
 * [minFailures, maxFailures], so escalation still reaches the outermost
 * level after a bounded number of failures and the steal bound keeps its
 * constant factor.
 */
enum class EscalationPolicy : uint8_t
{
    Fixed,
    Adaptive,
};

/** Escalation-ladder tuning; the EWMA fields matter only to Adaptive. */
struct EscalationConfig
{
    EscalationPolicy kind = EscalationPolicy::Fixed;
    /** Fixed budget, and the Adaptive rule's base (budget at rate 0.5). */
    int failuresPerLevel = 2;
    /** Clamp for the adaptive budget. */
    int minFailures = 1;
    int maxFailures = 8;
    /** Weight of the newest steal outcome in the per-level EWMA. */
    double ewmaAlpha = 0.25;
};

/**
 * Per-thief escalation ladder for hierarchical stealing.
 *
 * A thief starts at its innermost nonempty level; each run of
 * failureBudget() consecutive failed steal attempts widens the search by
 * one level, and a successful acquisition narrows it by one level (not a
 * full reset: under steady cross-socket load the ladder settles at the
 * level where work actually is, instead of re-climbing from the core
 * level after every hit). Escalation reaches kLevelRemote (all victims)
 * after at most maxFailures * kNumStealLevels failures, which keeps the
 * steal bound within a constant factor of the flat scheme.
 *
 * Under EscalationPolicy::Adaptive the budget self-tunes from the
 * observed per-level steal-success rate (see EscalationPolicy docs); the
 * Fixed policy is the PR 1 behavior, kept for ablation.
 */
class StealEscalation
{
  public:
    /** Fixed-policy ladder with a constant budget (PR 1 behavior). */
    explicit StealEscalation(int failures_per_level = 2)
    {
        _cfg.failuresPerLevel =
            failures_per_level > 0 ? failures_per_level : 1;
        initRates();
    }

    explicit StealEscalation(const EscalationConfig &cfg) : _cfg(cfg)
    {
        if (_cfg.failuresPerLevel < 1)
            _cfg.failuresPerLevel = 1;
        if (_cfg.minFailures < 1)
            _cfg.minFailures = 1;
        if (_cfg.maxFailures < _cfg.minFailures)
            _cfg.maxFailures = _cfg.minFailures;
        if (_cfg.ewmaAlpha <= 0.0 || _cfg.ewmaAlpha > 1.0)
            _cfg.ewmaAlpha = 0.25;
        initRates();
    }

    int level() const { return _level; }
    bool atOutermostLevel() const { return _level == kNumStealLevels - 1; }
    const EscalationConfig &config() const { return _cfg; }

    /**
     * Consecutive failures tolerated before widening, judged at the
     * level the probes are actually sampling (the board's level-skip
     * can probe wider than the ladder sits — evidence and budget must
     * come from the same level, or the adaptive rule would freeze at
     * the prior and degenerate to Fixed). Fixed: the constant.
     * Adaptive: 2 * base * successRate, clamped — at the neutral rate
     * 0.5 this equals the fixed budget, so the two policies start out
     * identical and diverge only with evidence.
     */
    int
    failureBudgetAt(int level) const
    {
        if (_cfg.kind == EscalationPolicy::Fixed)
            return _cfg.failuresPerLevel;
        const int at =
            level >= 0 && level < kNumStealLevels ? level : _level;
        const int b = static_cast<int>(2.0 * _cfg.failuresPerLevel
                                           * _rate[at]
                                       + 0.5);
        return b < _cfg.minFailures
                   ? _cfg.minFailures
                   : (b > _cfg.maxFailures ? _cfg.maxFailures : b);
    }

    /** failureBudgetAt() at the ladder's own level. */
    int failureBudget() const { return failureBudgetAt(_level); }

    /** EWMA steal-success rate observed at @p level (test hook). */
    double successRate(int level) const { return _rate[level]; }

    /**
     * A steal attempt found nothing: maybe widen the search.
     * @param probed_level the level the probe actually sampled at — the
     *        board's level-skip can widen past the ladder's level, and
     *        the EWMA must credit the level that produced the outcome,
     *        not the level the ladder sat at. Defaults to the ladder
     *        level (the blind-search case).
     */
    void
    onFailedSteal(int probed_level = -1)
    {
        observe(probed_level, 0.0);
        if (++_failures >= failureBudgetAt(probed_level)
            && _level < kNumStealLevels - 1) {
            ++_level;
            _failures = 0;
        }
    }

    /** Work was acquired: narrow the search by one level. */
    void
    onSuccessfulSteal(int probed_level = -1)
    {
        observe(probed_level, 1.0);
        if (_level > 0)
            --_level;
        _failures = 0;
    }

  private:
    void
    initRates()
    {
        for (double &r : _rate)
            r = 0.5; // neutral prior: adaptive starts at the fixed budget
    }

    void
    observe(int probed_level, double outcome)
    {
        if (_cfg.kind != EscalationPolicy::Adaptive)
            return;
        const int at = probed_level >= 0 && probed_level < kNumStealLevels
                           ? probed_level
                           : _level;
        _rate[at] = (1.0 - _cfg.ewmaAlpha) * _rate[at]
                    + _cfg.ewmaAlpha * outcome;
    }

    EscalationConfig _cfg;
    int _level = 0;
    int _failures = 0;
    double _rate[kNumStealLevels] = {};
};

/**
 * Precomputed per-thief victim distribution over all workers of a machine.
 *
 * One instance is built per (machine, worker count, weights) configuration;
 * sampling is a binary search over a cumulative table, O(log P) with no
 * allocation, cheap enough for the steal path.
 *
 * The same instance also precomputes the distance-level ranking used by
 * hierarchical stealing: sampleAtLevel(thief, L) picks uniformly among the
 * victims whose level is <= L (escalating internally past empty levels),
 * so at kLevelRemote it degenerates to uniform over all victims.
 */
class StealDistribution
{
  public:
    /**
     * @param workers total number of workers, packed socket-major
     *        (worker w lives on socket w / coresPerSocket').
     * Workers are spread evenly across the machine's sockets: worker w is
     * on socket w * numSockets / workers when workers < cores, matching
     * the runtime's even-spread startup policy.
     */
    StealDistribution(const Machine &machine, int workers,
                      const BiasWeights &weights);

    /** Socket a worker belongs to under the even-spread policy. */
    int socketOfWorker(int worker) const { return _workerSocket[worker]; }

    /** Socket of every worker, the shape OccupancyBoard's constructor
     * takes. */
    const std::vector<int> &workerSockets() const { return _workerSocket; }

    /**
     * Sample a victim for @p thief; never returns the thief itself.
     */
    int sample(int thief, Rng &rng) const;

    /** Probability that @p thief targets @p victim on one attempt. */
    double probability(int thief, int victim) const;

    /** Smallest nonzero victim probability across all pairs. */
    double minProbability() const;

    int numWorkers() const { return _numWorkers; }

    /** @name Hierarchical victim search */
    /// @{
    /** Distance level of @p victim as seen from @p thief. */
    int levelOf(int thief, int victim) const;

    /** Victims of @p thief at level <= @p level (monotone in level). */
    int victimsWithinLevel(int thief, int level) const;

    /**
     * Sample uniformly among victims at level <= @p level; empty prefixes
     * escalate internally, so a victim is always returned when P > 1.
     * Never returns the thief.
     */
    int sampleAtLevel(int thief, int level, Rng &rng) const;
    /// @}

    /** @name Informed (occupancy/affinity-weighted) victim search */
    /// @{
    /**
     * Does @p victim hold work @p thief can use? Deque work counts from
     * anywhere; mailbox work only on the thief's own socket, because
     * PUSHBACK parks frames on their *place* — a cross-socket thief
     * taking one mostly forwards it straight back (churn, not
     * progress).
     */
    bool
    victimLive(int thief, int victim, const OccupancyBoard &board) const
    {
        if (board.dequeNonempty(victim))
            return true;
        return _workerSocket[thief] == _workerSocket[victim]
               && board.mailboxOccupied(victim);
    }

    /**
     * Smallest level >= @p level whose victim prefix contains a worker
     * with published work — the escalation level-skip: a thief jumps
     * straight past provably-dry levels without burning its
     * failures-per-level budget there. When the board shows no work at
     * any level the result is the outermost level: every level is
     * provably dry, so the (insurance) probe that still runs validates
     * the whole machine at once instead of a ladder of cheap local
     * misses. The probe itself never stops, so a false-empty board can
     * delay but never prevent any victim being reached.
     */
    int firstLiveLevel(int thief, int level,
                       const OccupancyBoard &board) const;

    /**
     * Sampling weight of @p victim for @p thief: the product of the
     * distance bias (perHop weights), kOccupancyBoost when the board
     * shows work at the victim, and kAffinityBoost when policy is
     * OccupancyAffinity and the victim's socket is in
     * @p affinity_sockets (bit s == thief's data homed on socket s).
     * Strictly positive for every victim, so every victim keeps
     * probability >= 1/(cP) within the sampled prefix — the Section IV
     * lower bound survives with c <= kOccupancyBoost * kAffinityBoost *
     * max-distance-spread.
     */
    double victimWeight(int thief, int victim, VictimPolicy policy,
                        const OccupancyBoard &board,
                        uint32_t affinity_sockets) const;

    /**
     * Weighted sample among victims at level <= @p level per
     * victimWeight(); VictimPolicy::Distance (or a null/empty board)
     * degenerates to sampleAtLevel(). Never returns the thief. No
     * level-skip — engines use sampleVictimInformed(), which performs
     * skip and sample against one board snapshot.
     */
    int sampleVictim(int thief, int level, VictimPolicy policy,
                     const OccupancyBoard *board,
                     uint32_t affinity_sockets, Rng &rng) const;

    /**
     * The engines' steal-path entry point: firstLiveLevel() level-skip
     * plus weighted sampling, both evaluated against a single board
     * snapshot (one pair of loads per socket per attempt, and the level
     * choice and the weights cannot disagree about a flipping bit).
     * @param level_io in: the escalation ladder's level; out: the level
     *        actually sampled (callers diff the two to count skips).
     */
    int sampleVictimInformed(int thief, int *level_io, VictimPolicy policy,
                             const OccupancyBoard &board,
                             uint32_t affinity_sockets, Rng &rng) const;
    /// @}

  private:
    /** One-shot copy of the board's socket words (defined in the .cc). */
    struct Snap;

    /** victimWeight with the liveness verdict precomputed (sampling
     * evaluates it against one board snapshot for consistency). */
    double weightOf(int thief, int victim, VictimPolicy policy, bool live,
                    uint32_t affinity_sockets) const;

    /** firstLiveLevel() against an existing snapshot. */
    int liveLevelFrom(int thief, int level, const OccupancyBoard &board,
                      const Snap &snap) const;

    /** Weighted pick among victims at level <= @p level from @p snap. */
    int sampleFromSnap(int thief, int level, VictimPolicy policy,
                       const OccupancyBoard &board, const Snap &snap,
                       uint32_t affinity_sockets, Rng &rng) const;

    int _numWorkers;
    int _numSockets;
    BiasWeights _weights;
    /** max(kOccupancyBoost, 2 * distance spread): see kOccupancyBoost. */
    double _occupancyBoost = kOccupancyBoost;
    std::vector<int> _workerSocket;
    std::vector<int> _workerCoreGroup; ///< pair-buddy group within socket
    std::vector<int> _socketHops;      ///< row-major socket hop matrix
    // Row-major [thief][victim] cumulative probabilities.
    std::vector<double> _cumulative;
    std::vector<double> _probability;
    // Row-major [thief][rank]: victims sorted by level then id (W-1 per
    // thief), plus [thief][level] counts of victims at level <= L.
    std::vector<int> _victimsByLevel;
    std::vector<int> _levelPrefix;
};

} // namespace numaws

#endif // NUMAWS_TOPOLOGY_STEAL_DISTRIBUTION_H
