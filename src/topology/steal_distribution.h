/**
 * @file
 * Locality-biased victim selection (Section III-B).
 *
 * Classic work stealing picks a victim uniformly at random. NUMA-WS biases
 * the distribution by socket distance: victims on the thief's socket are
 * preferred, then one-hop sockets, then two-hop sockets. The bias must keep
 * every victim's probability at least 1/(cP) for a constant c — that lower
 * bound is what preserves the O(P * Tinf) steal bound of Section IV — so
 * weights are strictly positive by construction and validated here.
 */
#ifndef NUMAWS_TOPOLOGY_STEAL_DISTRIBUTION_H
#define NUMAWS_TOPOLOGY_STEAL_DISTRIBUTION_H

#include <vector>

#include "support/rng.h"
#include "topology/machine.h"

namespace numaws {

/** Per-hop-count steal weights; index 0 is the local socket. */
struct BiasWeights
{
    /** Default matches the paper's "highest / medium / lowest" intent. */
    double perHop[3] = {8.0, 2.0, 1.0};

    /** Uniform weights recover the classic scheduler's distribution. */
    static BiasWeights
    uniform()
    {
        return BiasWeights{{1.0, 1.0, 1.0}};
    }
};

/**
 * Precomputed per-thief victim distribution over all workers of a machine.
 *
 * One instance is built per (machine, worker count, weights) configuration;
 * sampling is a binary search over a cumulative table, O(log P) with no
 * allocation, cheap enough for the steal path.
 */
class StealDistribution
{
  public:
    /**
     * @param workers total number of workers, packed socket-major
     *        (worker w lives on socket w / coresPerSocket').
     * Workers are spread evenly across the machine's sockets: worker w is
     * on socket w * numSockets / workers when workers < cores, matching
     * the runtime's even-spread startup policy.
     */
    StealDistribution(const Machine &machine, int workers,
                      const BiasWeights &weights);

    /** Socket a worker belongs to under the even-spread policy. */
    int socketOfWorker(int worker) const { return _workerSocket[worker]; }

    /**
     * Sample a victim for @p thief; never returns the thief itself.
     */
    int sample(int thief, Rng &rng) const;

    /** Probability that @p thief targets @p victim on one attempt. */
    double probability(int thief, int victim) const;

    /** Smallest nonzero victim probability across all pairs. */
    double minProbability() const;

    int numWorkers() const { return _numWorkers; }

  private:
    int _numWorkers;
    std::vector<int> _workerSocket;
    // Row-major [thief][victim] cumulative probabilities.
    std::vector<double> _cumulative;
    std::vector<double> _probability;
};

} // namespace numaws

#endif // NUMAWS_TOPOLOGY_STEAL_DISTRIBUTION_H
