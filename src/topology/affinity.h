/**
 * @file
 * Thread-to-core pinning (Section III-A fixes worker-thread-to-core
 * affinity at startup).
 *
 * On a real NUMA box this maps virtual places to physical sockets; inside
 * a container the pinning is best-effort and the virtual places remain
 * meaningful to the scheduler even when the physical mapping is flat.
 */
#ifndef NUMAWS_TOPOLOGY_AFFINITY_H
#define NUMAWS_TOPOLOGY_AFFINITY_H

namespace numaws {

/** Number of logical CPUs visible to this process. */
int hostCpuCount();

/**
 * Pin the calling thread to host CPU @p cpu (mod the host CPU count).
 * @return true if the affinity call succeeded.
 */
bool pinCurrentThread(int cpu);

} // namespace numaws

#endif // NUMAWS_TOPOLOGY_AFFINITY_H
