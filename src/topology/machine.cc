#include "topology/machine.h"

#include <sstream>

#include "support/panic.h"

namespace numaws {

Machine::Machine(int sockets, int cores_per_socket,
                 std::vector<int> distances, double ghz, uint64_t llc_bytes)
    : _numSockets(sockets),
      _coresPerSocket(cores_per_socket),
      _distances(std::move(distances)),
      _ghz(ghz),
      _llcBytes(llc_bytes)
{
    NUMAWS_ASSERT(sockets > 0 && cores_per_socket > 0);
    NUMAWS_ASSERT(_distances.size()
                  == static_cast<std::size_t>(sockets) * sockets);
    for (int i = 0; i < sockets; ++i) {
        NUMAWS_ASSERT(distance(i, i) == 10);
        for (int j = 0; j < sockets; ++j) {
            NUMAWS_ASSERT(distance(i, j) >= 10);
            NUMAWS_ASSERT(distance(i, j) == distance(j, i));
        }
    }
}

Machine
Machine::paperMachine()
{
    // QPI square of Figure 1: 0-1, 0-2, 1-3, 2-3 adjacent; diagonals two
    // hops. SLIT convention: 10 local, 20 one hop, 30 two hops.
    const std::vector<int> slit = {
        10, 20, 20, 30, //
        20, 10, 30, 20, //
        20, 30, 10, 20, //
        30, 20, 20, 10, //
    };
    return Machine(4, 8, slit, 2.2, 16ULL << 20);
}

Machine
Machine::singleSocket(int cores)
{
    return Machine(1, cores, {10}, 2.2, 16ULL << 20);
}

Machine
Machine::paperMachineSubset(int cores_in_use)
{
    NUMAWS_ASSERT(cores_in_use >= 1 && cores_in_use <= 32);
    const int sockets = (cores_in_use + 7) / 8;
    if (sockets == 1)
        return singleSocket(8);
    if (sockets == 2) {
        // Two adjacent sockets of the QPI square.
        const std::vector<int> slit = {
            10, 20, //
            20, 10, //
        };
        return Machine(2, 8, slit, 2.2, 16ULL << 20);
    }
    if (sockets == 3) {
        // Sockets {0, 1, 2}: 1 and 2 are the two-hop diagonal.
        const std::vector<int> slit = {
            10, 20, 20, //
            20, 10, 30, //
            20, 30, 10, //
        };
        return Machine(3, 8, slit, 2.2, 16ULL << 20);
    }
    return paperMachine();
}

int
Machine::distance(int from_socket, int to_socket) const
{
    NUMAWS_ASSERT(from_socket >= 0 && from_socket < _numSockets);
    NUMAWS_ASSERT(to_socket >= 0 && to_socket < _numSockets);
    return _distances[static_cast<std::size_t>(from_socket) * _numSockets
                      + to_socket];
}

int
Machine::hops(int from_socket, int to_socket) const
{
    // SLIT 10 -> 0 hops, 20 -> 1 hop, 30 -> 2 hops.
    return (distance(from_socket, to_socket) - 10) / 10;
}

int
Machine::maxHops() const
{
    int h = 0;
    for (int i = 0; i < _numSockets; ++i)
        for (int j = 0; j < _numSockets; ++j)
            h = std::max(h, hops(i, j));
    return h;
}

std::string
Machine::describe() const
{
    std::ostringstream out;
    out << _numSockets << "-socket x " << _coresPerSocket << "-core machine @ "
        << _ghz << " GHz, " << (_llcBytes >> 20) << " MB LLC per socket\n";
    out << "SLIT distance matrix:\n";
    for (int i = 0; i < _numSockets; ++i) {
        out << "  socket " << i << ":";
        for (int j = 0; j < _numSockets; ++j)
            out << ' ' << distance(i, j);
        out << '\n';
    }
    return out.str();
}

} // namespace numaws
