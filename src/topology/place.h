/**
 * @file
 * Virtual places: the paper's basic unit of locality (Section III-A).
 *
 * At startup the runtime spreads worker threads evenly across the sockets
 * in use and groups the workers on one socket into a single virtual place.
 * Locality hints name these places; kAnyPlace ("@ANY" in the paper's
 * Figure 4) unsets the hint.
 */
#ifndef NUMAWS_TOPOLOGY_PLACE_H
#define NUMAWS_TOPOLOGY_PLACE_H

#include <cstdint>

namespace numaws {

/** Identifier of a virtual place (== socket index while running). */
using Place = int32_t;

/** "No place constraint": the scheduler is free to run the task anywhere
 * (the paper's @ANY, which also unsets an inherited hint). */
inline constexpr Place kAnyPlace = -1;

/** Default for spawns: adopt the spawning frame's locality hint (the
 * paper's inheritance rule, Section III-A). */
inline constexpr Place kInheritPlace = -2;

/** True if @p p names a concrete place (not kAnyPlace). */
constexpr bool
isConcretePlace(Place p)
{
    return p >= 0;
}

} // namespace numaws

#endif // NUMAWS_TOPOLOGY_PLACE_H
