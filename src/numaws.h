/**
 * @file
 * Umbrella header: the whole public surface of the NUMA-WS runtime.
 *
 * Since PR 6 the front door is *job submission*: build a Runtime, then
 * `submit()` work and `wait()` on the returned handle. Everything an
 * application needs for that — and for the intra-job parallelism the
 * paper's API expresses — comes through this one include:
 *
 *  - Runtime / RuntimeOptions, Runtime::submit() -> JobHandle and the
 *    synchronous Runtime::run() convenience (runtime/runtime.h)
 *  - Job vocabulary: JobOptions, JobClass, JobHandle (runtime/job.h)
 *  - Intra-job layer: TaskGroup, parallelFor / parallelForRange /
 *    parallelForPlaces, place introspection (runtime/api.h)
 *  - SchedPolicy and its knob table (sched/policy.h)
 *  - Place vocabulary: kAnyPlace, kInheritPlace (topology/place.h)
 *  - NUMA data plane: numa::allocate / numa::deallocate,
 *    NumaAllocator<T>, the DataHeapPolicy knob (mem/numa_heap.h) and
 *    the socket-sharded PartedVec<T> (mem/parted_vec.h)
 *
 * Migration from the pre-PR 6 surface:
 *
 *  | old                                  | new                         |
 *  |--------------------------------------|-----------------------------|
 *  | #include "runtime/runtime.h" +       | #include "numaws.h"         |
 *  |   "runtime/api.h"                    |                             |
 *  | rt.run(fn)                           | unchanged — now sugar for   |
 *  |                                      |   rt.submit(fn).wait()      |
 *  | fire-and-forget (not expressible)    | auto h = rt.submit(fn);     |
 *  |                                      |   ... h.wait();             |
 *  | per-run latency (hand-timed)         | h.latencyNs(), h.queueNs(), |
 *  |                                      |   stats().jobLatency        |
 *  | root place/priority (not             | rt.submit(fn, {place, cls}) |
 *  |   expressible)                       |                             |
 *
 * TaskGroup and the parallelFor family are unchanged: they express
 * parallelism *inside* a job, running on whichever worker executes the
 * job's root task.
 */
#ifndef NUMAWS_NUMAWS_H
#define NUMAWS_NUMAWS_H

#include "mem/numa_heap.h"
#include "mem/parted_vec.h"
#include "runtime/api.h"
#include "runtime/job.h"
#include "runtime/runtime.h"
#include "sched/policy.h"
#include "topology/place.h"

#endif // NUMAWS_NUMAWS_H
