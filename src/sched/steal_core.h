/**
 * @file
 * StealCore: the engine-agnostic scheduling brain, one per worker/core.
 *
 * Everything that *chooses* on the steal path lives here — dry-poll
 * cadence, hierarchical/informed victim sampling, the mailbox-vs-deque
 * coin flip and its informed override, remote steal-half eligibility,
 * escalation bookkeeping, PUSHBACK receiver selection and threshold
 * control, the park-after-N-failures streak, and the EWMA-tuned parking
 * constants. The threaded runtime (runtime/worker.cc) and the simulator
 * (sim/scheduler.cc) are thin drivers that *execute* the returned
 * actions (probe victim V, poll the board, push to mailbox M, park on
 * socket S) against their own mechanics, so a policy decision exists in
 * exactly one place and the engines cannot diverge.
 *
 * Determinism contract: for a fixed SchedPolicy, EngineView contents,
 * seed, and call sequence, the core draws from its private RNG in a
 * fixed order and returns an identical action sequence — the property
 * policy_core_test's differential engine-parity test locks down, and
 * what lets the simulator stay byte-reproducible per seed while sharing
 * this code with real threads (the sim feeds its virtual clock and
 * seeded RNG through the same transitions).
 *
 * Thread safety: none, with one deliberate exception — the yield
 * directive (requestYield / yieldRequested / takeYieldRequest) is an
 * atomic flag raised by *another* thread (the admitting submitter in
 * the threaded engine) and consumed by the owner at its next
 * spawn/sync boundary. Everything else is owner-only.
 */
#ifndef NUMAWS_SCHED_STEAL_CORE_H
#define NUMAWS_SCHED_STEAL_CORE_H

#include <atomic>
#include <cstdint>

#include "sched/policy.h"
#include "support/rng.h"
#include "topology/place.h"

namespace numaws {

/**
 * Narrow view of engine state the core consults when deciding. Both
 * pointers outlive the core; @p board may be null or disabled (the
 * core then behaves as if nothing were published — blind sampling).
 */
struct EngineView
{
    const StealDistribution *dist = nullptr;
    const OccupancyBoard *board = nullptr;
};

/** One steal-path decision, returned by StealCore::nextAction(). */
struct StealAction
{
    enum class Kind : uint8_t
    {
        /** The board advertises no stealable work anywhere: skip the
         * victim probe outright this round (the probe the board was
         * built to save). The engine charges at most a board read. */
        DryPoll,
        /** Probe @p victim (mailbox first iff checkMailboxFirst). */
        Probe,
    };

    Kind kind = Kind::Probe;
    /** Victim worker/core id (Probe only). */
    int victim = -1;
    /** Escalation level the probe sampled at (EWMA credit; -1 flat). */
    int probedLevel = -1;
    /** BIASEDSTEALWITHPUSH: inspect the victim's mailbox before its
     * deque (coin flip, possibly overridden by a set mailbox bit). */
    bool checkMailboxFirst = false;
    /** A board consult steered this action (engines price the read). */
    bool informedConsult = false;
    /** The victim is remote-level and steal-half batching applies. */
    bool remoteBatch = false;
    /** Cap on total frames a batched steal may move (>= 1). */
    int batchMax = 1;
};

/** What a work-publishing engine should do about sleepers. */
enum class WakeDirective : uint8_t
{
    None,           ///< board parking, no socket edge: nobody to wake
    TargetedSocket, ///< board parking, 0 -> nonzero edge: wake that socket
    Global,         ///< timer parking: every publish notifies globally
};

/**
 * EWMA-derived parking constants (ParkTuning::Ewma), one per worker.
 *
 * One signal drives both knobs: the *dry-park rate* — the EWMA of park
 * episodes that bought nothing (woken onto a still-dry board, or timed
 * out with no work). A machine where parks keep ending productively
 * wants more spin (the work would have arrived within the spin budget)
 * and a short fallback; a machine idling through parks wants the
 * opposite — park sooner, sleep longer. Both scales sit exactly at the
 * configured constants at the neutral prior 0.5, mirroring the adaptive
 * escalation budget's shape, so Fixed and Ewma start out identical:
 *
 *   spinBudget    = clamp(2 * base * (1 - dryRate), max(1, base/4), 2*base)
 *   timeoutScale  = clamp(1 + 7 * (dryRate - 0.5), 0.5, 4.0)
 *
 * Bounded on both sides, so tuning can shift constants but never
 * remove the liveness the fallback timeout guarantees.
 */
class ParkTuner
{
  public:
    ParkTuner() = default;

    ParkTuner(ParkTuning kind, int base_spin)
        : _kind(kind), _baseSpin(base_spin > 0 ? base_spin : 1)
    {}

    ParkTuning kind() const { return _kind; }

    /** A park episode ended; @p found_work == the wake-time probe saw
     * stealable work (productive park). */
    void
    observe(bool found_work)
    {
        if (_kind != ParkTuning::Ewma)
            return;
        _dryRate = (1.0 - kAlpha) * _dryRate
                   + kAlpha * (found_work ? 0.0 : 1.0);
    }

    /** Multiplier for the configured park timeout, in [0.5, 4]. */
    double
    timeoutScale() const
    {
        if (_kind != ParkTuning::Ewma)
            return 1.0;
        // Steep enough that the clamps genuinely bind at sustained
        // evidence (the EWMA approaches but never reaches 0 or 1).
        const double s = 1.0 + 7.0 * (_dryRate - 0.5);
        return s < 0.5 ? 0.5 : (s > 4.0 ? 4.0 : s);
    }

    /** Fruitless-step budget before parking; the base when Fixed. */
    int
    spinBudget() const
    {
        if (_kind != ParkTuning::Ewma)
            return _baseSpin;
        const int lo = _baseSpin / 4 > 0 ? _baseSpin / 4 : 1;
        const int hi = 2 * _baseSpin;
        const int b = static_cast<int>(2.0 * _baseSpin * (1.0 - _dryRate)
                                       + 0.5);
        return b < lo ? lo : (b > hi ? hi : b);
    }

    /** EWMA dry-park rate (test hook). */
    double dryRate() const { return _dryRate; }

  private:
    static constexpr double kAlpha = 0.25;

    ParkTuning _kind = ParkTuning::Fixed;
    int _baseSpin = 1;
    double _dryRate = 0.5; ///< neutral prior: Ewma starts at Fixed
};

/** Decision counters the core maintains; engines fold them into their
 * own stats vocabulary (WorkerCounters / SimCounters). */
struct StealCoreCounters
{
    uint64_t stealAttempts = 0; ///< probes issued (dry polls excluded)
    uint64_t dryPolls = 0;      ///< probes replaced by a dry board poll
    uint64_t levelSkips = 0;    ///< dry levels skipped via the board
    uint64_t escalations = 0;   ///< hierarchical level widenings
    uint64_t yields = 0;        ///< preemption yields serviced
};

/**
 * Copyable atomic flag for the cross-thread yield directive. StealCore
 * must stay copy-assignable (the simulator re-seeds cores by
 * assignment), which a raw std::atomic member would delete; copying
 * transfers the current value with relaxed ordering — fine, because
 * copies only happen while the owning engine is single-threaded
 * (construction / sim reset), never with a raiser in flight.
 */
class AtomicYieldFlag
{
  public:
    AtomicYieldFlag() = default;
    AtomicYieldFlag(const AtomicYieldFlag &o)
        : _v(o._v.load(std::memory_order_relaxed))
    {}
    AtomicYieldFlag &
    operator=(const AtomicYieldFlag &o)
    {
        _v.store(o._v.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
        return *this;
    }

    void raise() { _v.store(true, std::memory_order_release); }
    bool raised() const { return _v.load(std::memory_order_relaxed); }
    bool take() { return _v.exchange(false, std::memory_order_acq_rel); }

  private:
    std::atomic<bool> _v{false};
};

/**
 * Per-worker scheduling-decision state machine (file docs above).
 *
 * Call protocol, per the drivers in runtime/worker.cc and
 * sim/scheduler.cc:
 *  - steal path: a = nextAction(); execute it; onStealResult(a, got).
 *  - publish path: onPublishEdge(socket_edge) says whom to wake.
 *  - PUSHBACK: beginPushback(depth); then per attempt, compare the
 *    frame's push count against pushThreshold(), pick a receiver with
 *    pickPushReceiver(), report onPushResult(accepted).
 *  - parking: noteFruitless() per fruitless step, noteProgress() when
 *    work was found; takeParkRequest() consumes the park decision;
 *    parkTimeoutUs() is the (tuned) bound; onParkOutcome() feeds the
 *    tuner after the episode.
 */
class StealCore
{
  public:
    /** An inert core (engines value-construct before wiring). */
    StealCore() = default;

    StealCore(const SchedPolicy &policy, const EngineView &view, int self,
              int socket, uint64_t seed)
        : _policy(policy),
          _view(view),
          _self(self),
          _socket(socket),
          _rng(seed),
          _esc(escalationConfig(policy)),
          _push(policy.pushThreshold, policy.pushPolicy),
          _tuner(policy.parkTuning, policy.parkSpinFailures)
    {}

    const SchedPolicy &policy() const { return _policy; }
    int self() const { return _self; }
    int socket() const { return _socket; }

    /** @name Steal path */
    /// @{
    StealAction nextAction();
    /** Report the probe's outcome (escalation credit + counters). */
    void onStealResult(const StealAction &action, bool got_work);
    /// @}

    /** @name Publish-edge wake protocol */
    /// @{
    /** The caller just published work; @p socket_edge == the publish
     * flipped its socket's combined occupancy 0 -> nonzero. */
    WakeDirective
    onPublishEdge(bool socket_edge) const
    {
        if (_policy.boardParking())
            return socket_edge ? WakeDirective::TargetedSocket
                               : WakeDirective::None;
        return WakeDirective::Global;
    }
    /// @}

    /** @name PUSHBACK (lazy work pushing) */
    /// @{
    /** Start an episode; @p own_deque_depth is the pressure signal. */
    void beginPushback(int64_t own_deque_depth);
    /** Current cap on a frame's lifetime PUSHBACK attempts. */
    int pushThreshold() const { return _push.threshold(); }
    /**
     * Receiver for the next attempt among workers [first, last) of
     * @p target_socket: board-guided when the policy says so (sampled
     * from advertised mailbox room), else — or when no room is
     * advertised — a blind uniform pick. @p self_in_range is excluded
     * from the guided pick (-1 when the pusher is outside the range;
     * the blind fallback deliberately does not exclude it, matching
     * the paper's protocol where a self-pick burns the attempt).
     */
    int pickPushReceiver(int first, int last, int self_in_range,
                         int target_socket);
    /** A deposit landed (true) or was rejected (false). */
    void
    onPushResult(bool accepted)
    {
        if (accepted)
            _push.onPushSuccess();
        else
            _push.onMailboxFull();
    }
    /// @}

    /** @name Parking decisions */
    /// @{
    /** A scheduling step found nothing (failed probe, dry poll, empty
     * local round): advance the park streak. */
    void
    noteFruitless()
    {
        if (++_parkFails >= _tuner.spinBudget()) {
            _parkFails = 0;
            _parkRequested = true;
        }
    }

    /** Work was found or executed: the streak breaks. */
    void noteProgress() { _parkFails = 0; }

    /** Consume the pending park decision, if any. */
    bool
    takeParkRequest()
    {
        const bool r = _parkRequested;
        _parkRequested = false;
        return r;
    }

    /** Park timeout for the next episode, microseconds (policy base
     * for the active ParkPolicy, scaled by the tuner). */
    double
    parkTimeoutUs() const
    {
        const int base = _policy.boardParking() ? _policy.parkFallbackUs
                                                : _policy.parkTimerUs;
        return base * _tuner.timeoutScale();
    }

    /** A park episode ended. @p found_work: the wake-time check saw
     * stealable work (false == spurious wake or dry timeout). Callers
     * skip this when no meaningful work signal exists (e.g. the
     * runtime between roots), leaving the tuner at its last estimate. */
    void onParkOutcome(bool found_work) { _tuner.observe(found_work); }
    /// @}

    /** @name Cooperative preemption (yield directive) */
    /// @{
    /**
     * Raise the yield directive on this worker: a higher-class job is
     * queued and this worker is the chosen victim. Called from the
     * admitting thread; the owner consumes it at its next spawn/sync
     * boundary via takeYieldRequest().
     */
    void requestYield() { _yieldRequested.raise(); }

    /** Cheap boundary-side peek — one relaxed load, nothing else. */
    bool yieldRequested() const { return _yieldRequested.raised(); }

    /** Consume the directive (exactly one boundary acts on a raise). */
    bool takeYieldRequest() { return _yieldRequested.take(); }

    /** A consumed directive actually claimed a job (counter credit). */
    void noteYieldServiced() { ++_counters.yields; }

    /**
     * Preemption victim among @p n workers whose running job classes
     * are @p runningCls (-1 == idle / not running a job), for an
     * admitted job of class @p cls. Returns -1 when any worker is idle
     * (the admission wake already covers it) or when nobody runs
     * strictly lower-class (numerically greater) work; otherwise the
     * worker running the lowest-priority class, lowest index on ties
     * (deterministic, so both engines agree).
     */
    static int pickPreemptVictim(int cls, const int8_t *runningCls,
                                 int n);
    /// @}

    /** @name Data-home affinity */
    /// @{
    /** Sockets homing the current task's data (bit s == socket s); the
     * engine resolves homes (PageMap / region table), the core uses the
     * mask to weight victims. Zero masks are ignored (keep the last
     * known homes, matching the engines' pre-PR 4 behavior). */
    void
    setAffinity(uint32_t socket_mask)
    {
        if (socket_mask != 0)
            _affinity = socket_mask;
    }

    uint32_t affinity() const { return _affinity; }

    /**
     * Turn a data-home socket mask (the same encoding setAffinity
     * takes) into a spawn-time placement hint: the lowest homing
     * socket, or kAnyPlace for an empty mask. Static and deterministic
     * — the spawn fast path must not consume RNG (neither engine's
     * spawn path draws randomness; the engine-parity contract).
     */
    static Place
    placeFromAffinity(uint32_t socket_mask)
    {
        if (socket_mask == 0)
            return kAnyPlace;
        return static_cast<Place>(__builtin_ctz(socket_mask));
    }
    /// @}

    /** @name Introspection (engines fold counters; tests poke state) */
    /// @{
    const StealCoreCounters &counters() const { return _counters; }
    void resetCounters() { _counters = StealCoreCounters{}; }
    StealEscalation &escalation() { return _esc; }
    PushPolicy &pushPolicy() { return _push; }
    const ParkTuner &parkTuner() const { return _tuner; }
    Rng &rng() { return _rng; }
    /// @}

  private:
    static EscalationConfig
    escalationConfig(const SchedPolicy &p)
    {
        EscalationConfig cfg;
        cfg.kind = p.escalationPolicy;
        cfg.failuresPerLevel = p.stealEscalationFailures;
        return cfg;
    }

    bool boardUsable() const
    {
        return _view.board != nullptr && _view.board->enabled();
    }

    SchedPolicy _policy{};
    EngineView _view{};
    int _self = 0;
    int _socket = 0;
    Rng _rng{0};
    StealEscalation _esc{};
    PushPolicy _push{};
    ParkTuner _tuner{};
    /** Sockets homing the data of the last task this worker ran. */
    uint32_t _affinity = 0;
    /** Consecutive all-dry board polls; every 4th probes anyway. */
    int _dryStreak = 0;
    /** Consecutive fruitless steps toward the park budget. */
    int _parkFails = 0;
    bool _parkRequested = false;
    /** Cross-thread yield directive (see the thread-safety note). */
    AtomicYieldFlag _yieldRequested{};
    StealCoreCounters _counters{};
};

} // namespace numaws

#endif // NUMAWS_SCHED_STEAL_CORE_H
