/**
 * @file
 * ShedCore: the engine-agnostic overload-protection brain.
 *
 * Like StealCore for stealing decisions, this is the single copy of the
 * serving mode's shed/admit logic, driven by both engines so they cannot
 * diverge: the threaded Runtime consults it at submit and claim time
 * against the wall clock, the simulator at admission and claim edges
 * against the virtual clock. The core itself is clock-free — engines
 * pass observed delays in nanoseconds — which is what keeps the
 * simulator's decisions byte-deterministic.
 *
 * Mechanism (ShedPolicy::QueueDelay, CoDel-shaped): each class keeps an
 * EWMA of the queue delay its jobs had accumulated when a worker
 * claimed them. While any class's EWMA exceeds its configured target
 * the server is *overloaded*, and each new admission into a *standing*
 * queue sheds one queued job from the lowest-priority nonempty lane
 * (Batch before Normal before Latency) — one-in-one-out, so no lane
 * grows while the delay signal stays above target, and the highest
 * classes are structurally the last to feel it. An arrival into empty
 * lanes is never shed (CoDel's rule): it is the server's next unit of
 * work, and evicting it would starve a busy-but-drained server while
 * the EWMA decays. Lane capacities (ShedPolicy::Reject, and the
 * backstop under QueueDelay) are a pure admission-time depth check.
 *
 * Thread-safety: the EWMAs are relaxed atomics updated with racy
 * read-modify-write — concurrent claims may lose an update, which only
 * perturbs an estimator, never correctness. The simulator is
 * single-threaded, so its updates are exact and deterministic.
 */
#ifndef NUMAWS_SCHED_SHED_CORE_H
#define NUMAWS_SCHED_SHED_CORE_H

#include <atomic>
#include <cstdint>

#include "sched/policy.h"
#include "support/panic.h"

namespace numaws {

/** Shared admission/shedding decisions (see file comment). */
class ShedCore
{
  public:
    ShedCore() = default;
    explicit ShedCore(const ServingPolicy &policy) : _policy(policy)
    {
        NUMAWS_ASSERT(_policy.queueDelayEwmaShift >= 0
                      && _policy.queueDelayEwmaShift < 32);
    }

    bool enabled() const { return _policy.shed != ShedPolicy::None; }
    ShedPolicy policy() const { return _policy.shed; }

    /**
     * Admission verdict for a job of class @p cls whose lane currently
     * holds @p laneDepth queued jobs: false means reject at submit.
     * Capacity 0 (the default) never rejects; ShedPolicy::None ignores
     * capacities entirely (the PR 6 behavior).
     */
    bool
    admit(int cls, int64_t laneDepth) const
    {
        NUMAWS_ASSERT(cls >= 0 && cls < kNumServingClasses);
        if (!enabled())
            return true;
        const int cap = _policy.laneCapacity[cls];
        return cap <= 0 || laneDepth < static_cast<int64_t>(cap);
    }

    /** A claim observed @p delayNs of queue delay on class @p cls: feed
     * the class EWMA (claims of cancelled/expired entries count too —
     * they are evidence of the same queue). */
    void
    observeDelay(int cls, int64_t delayNs)
    {
        NUMAWS_ASSERT(cls >= 0 && cls < kNumServingClasses);
        if (delayNs < 0)
            delayNs = 0;
        std::atomic<int64_t> &ewma = _delayEwmaNs[cls];
        const int64_t prev = ewma.load(std::memory_order_relaxed);
        // Seed on first observation, then ewma += (x - ewma) / 2^shift.
        const int64_t next =
            prev == kUnseeded
                ? delayNs
                : prev + ((delayNs - prev) >> _policy.queueDelayEwmaShift);
        ewma.store(next, std::memory_order_relaxed);
    }

    /** Current claim-delay EWMA of @p cls, ns (0 until first claim). */
    int64_t
    delayEwmaNs(int cls) const
    {
        NUMAWS_ASSERT(cls >= 0 && cls < kNumServingClasses);
        const int64_t v =
            _delayEwmaNs[cls].load(std::memory_order_relaxed);
        return v == kUnseeded ? 0 : v;
    }

    /**
     * Priority aging (ServingPolicy::agingWaitUs): the effective class
     * of a lane whose head job has waited @p headWaitNs. Every full
     * agingWaitUs of head wait promotes the lane one class toward 0,
     * so a starved Batch lane eventually outranks a saturated Latency
     * lane at claim time. Monotonic in headWaitNs, floored at class 0,
     * and the identity when aging is off or the wait is non-positive —
     * claim order is then exactly the nominal strict-priority order.
     */
    int
    effectiveClass(int cls, int64_t headWaitNs) const
    {
        NUMAWS_ASSERT(cls >= 0 && cls < kNumServingClasses);
        if (_policy.agingWaitUs <= 0 || headWaitNs <= 0)
            return cls;
        const int64_t step_ns =
            static_cast<int64_t>(_policy.agingWaitUs) * 1000;
        const int64_t steps = headWaitNs / step_ns;
        if (steps >= static_cast<int64_t>(cls))
            return 0;
        return cls - static_cast<int>(steps);
    }

    /**
     * Shed-aware unpark (ServingPolicy::unparkLeadPct): true when any
     * class's claim-delay EWMA has reached leadPct% of its QueueDelay
     * target — the early-warning signal the elastic pool uses to wake
     * every parked worker *before* overloaded() crosses. Always false
     * when the knob is 0 or the policy has no QueueDelay targets.
     */
    bool
    unparkPressure() const
    {
        if (_policy.unparkLeadPct <= 0
            || _policy.shed != ShedPolicy::QueueDelay)
            return false;
        for (int c = 0; c < kNumServingClasses; ++c) {
            const int64_t target_ns =
                static_cast<int64_t>(_policy.queueDelayTargetUs[c])
                * 1000;
            if (target_ns > 0
                && delayEwmaNs(c) * 100
                       >= target_ns * _policy.unparkLeadPct)
                return true;
        }
        return false;
    }

    /** QueueDelay only: is any class's claim-delay EWMA above its
     * target? While true, each admission sheds one job from the lowest
     * nonempty lane (the engine owns the lanes and does the pop). */
    bool
    overloaded() const
    {
        if (_policy.shed != ShedPolicy::QueueDelay)
            return false;
        for (int c = 0; c < kNumServingClasses; ++c) {
            const int64_t target_ns =
                static_cast<int64_t>(_policy.queueDelayTargetUs[c])
                * 1000;
            if (target_ns > 0 && delayEwmaNs(c) > target_ns)
                return true;
        }
        return false;
    }

  private:
    /** Sentinel distinguishing "never observed" from a true 0 EWMA, so
     * the first claim seeds the filter instead of averaging with 0. */
    static constexpr int64_t kUnseeded = -1;

    ServingPolicy _policy{};
    std::atomic<int64_t> _delayEwmaNs[kNumServingClasses] = {
        {kUnseeded}, {kUnseeded}, {kUnseeded}};
};

} // namespace numaws

#endif // NUMAWS_SCHED_SHED_CORE_H
