#include "sched/push_policy.h"

#include <sstream>

namespace numaws {

std::string
PushPolicy::describe() const
{
    std::ostringstream out;
    if (_cfg.kind == PushPolicyKind::Constant) {
        out << "constant(threshold=" << _base << ")";
    } else {
        out << "adaptive(base=" << _base << ", min=" << _cfg.minThreshold
            << ", max=" << _cfg.maxThreshold
            << ", watermark=" << _cfg.dequeHighWatermark
            << ", tightenAfter=" << _cfg.tightenAfterFailures << ")";
    }
    return out.str();
}

} // namespace numaws
