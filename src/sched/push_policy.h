/**
 * @file
 * Pluggable pushing-threshold policy for lazy work pushing.
 *
 * The paper caps PUSHBACK at a *constant* pushing threshold (Section
 * III-B): a frame that fails that many mailbox deposits is executed by the
 * thief, keeping load balance ahead of locality. Wittmann & Hager's
 * ccNUMA study and Tahan's adaptive OpenMP strategies both show that a
 * fixed locality knob leaves performance on the table across machine
 * shapes, so this policy generalizes the constant into a small family:
 *
 *  - Constant: the paper's behaviour, threshold() == base forever.
 *  - Adaptive: the threshold *widens* under deque pressure (a thief whose
 *    own deque is deep can afford more placement attempts before it must
 *    run the frame itself) and *tightens* when mailboxes back up (a run
 *    of full-mailbox rejections means the target place is saturated and
 *    further attempts are wasted scheduling time).
 *
 * One instance lives per worker (threaded runtime) or per simulated core;
 * updates are plain integer arithmetic on owner-local state, so the policy
 * adds no synchronization to the steal path. Both engines consume this
 * header so every ablation row toggles the same code.
 */
#ifndef NUMAWS_SCHED_PUSH_POLICY_H
#define NUMAWS_SCHED_PUSH_POLICY_H

#include <cstdint>
#include <string>

namespace numaws {

/** Which pushing-threshold rule a run uses (one-for-one ablatable). */
enum class PushPolicyKind : uint8_t
{
    Constant, ///< the paper's fixed threshold
    Adaptive, ///< congestion-adaptive threshold (this PR)
};

/** Adaptive-policy tuning; ignored by PushPolicyKind::Constant. */
struct PushPolicyConfig
{
    PushPolicyKind kind = PushPolicyKind::Constant;
    /** Threshold floor/ceiling for the adaptive rule. */
    int minThreshold = 1;
    int maxThreshold = 16;
    /** Own-deque depth at which a worker counts as under pressure. */
    int64_t dequeHighWatermark = 4;
    /** Consecutive full-mailbox rejections before tightening one step. */
    int tightenAfterFailures = 2;
};

/**
 * Per-worker pushing-threshold state machine.
 *
 * threshold() is the cap PUSHBACK compares a frame's lifetime push count
 * against. The adaptive rule moves it by one step per signal, clamped to
 * [minThreshold, maxThreshold]; the constant rule ignores all signals.
 */
class PushPolicy
{
  public:
    PushPolicy() : PushPolicy(4, PushPolicyConfig{}) {}

    PushPolicy(int base_threshold, const PushPolicyConfig &cfg)
        : _cfg(cfg), _base(base_threshold), _current(base_threshold)
    {
        if (_cfg.minThreshold < 0)
            _cfg.minThreshold = 0;
        if (_cfg.maxThreshold < _cfg.minThreshold)
            _cfg.maxThreshold = _cfg.minThreshold;
        if (_cfg.tightenAfterFailures < 1)
            _cfg.tightenAfterFailures = 1;
        clamp();
    }

    /** Current cap on a frame's lifetime PUSHBACK attempts. */
    int threshold() const { return _current; }

    PushPolicyKind kind() const { return _cfg.kind; }
    int baseThreshold() const { return _base; }
    const PushPolicyConfig &config() const { return _cfg; }

    /** A mailbox deposit was rejected (slot full): target congestion. */
    void
    onMailboxFull()
    {
        if (_cfg.kind != PushPolicyKind::Adaptive)
            return;
        if (++_failStreak >= _cfg.tightenAfterFailures) {
            _failStreak = 0;
            if (_current > _cfg.minThreshold)
                --_current;
        }
    }

    /** A mailbox deposit landed: congestion is clearing. */
    void
    onPushSuccess()
    {
        if (_cfg.kind != PushPolicyKind::Adaptive)
            return;
        _failStreak = 0;
        // Relax one step back toward the configured base.
        if (_current < _base)
            ++_current;
        else if (_current > _base)
            --_current;
    }

    /**
     * Owner-deque depth observed when the worker reaches a PUSHBACK site.
     * Deep own deque == plenty of local work == widen — but only while no
     * rejection streak is active; congestion always wins over pressure,
     * so the two signals cannot fight each other into the ceiling.
     */
    void
    observeDequeDepth(int64_t depth)
    {
        if (_cfg.kind != PushPolicyKind::Adaptive)
            return;
        if (depth >= _cfg.dequeHighWatermark && _failStreak == 0
            && _current < _cfg.maxThreshold)
            ++_current;
    }

    /** Restore the starting state (between runs / for stats resets). */
    void
    reset()
    {
        _current = _base;
        _failStreak = 0;
        clamp();
    }

    /** One-line description for bench JSON rows and logs. */
    std::string describe() const;

  private:
    void
    clamp()
    {
        if (_cfg.kind != PushPolicyKind::Adaptive)
            return;
        if (_current < _cfg.minThreshold)
            _current = _cfg.minThreshold;
        if (_current > _cfg.maxThreshold)
            _current = _cfg.maxThreshold;
    }

    PushPolicyConfig _cfg;
    int _base;
    int _current;
    int _failStreak = 0;
};

} // namespace numaws

#endif // NUMAWS_SCHED_PUSH_POLICY_H
