/**
 * @file
 * The unified scheduling policy: every knob that picks a *decision*.
 *
 * The paper's platform is one scheduler — a work-first steal loop with
 * PUSHBACK mailboxes and hierarchical victim search — evaluated both on
 * real threads and in simulation. Until PR 4 this repo kept two
 * hand-synchronized copies of that brain: every mechanism was wired once
 * into the threaded runtime and again into the simulator, with the knob
 * set duplicated across RuntimeOptions and SimConfig. SchedPolicy is the
 * single copy: both engines embed one instance (RuntimeOptions::sched,
 * SimConfig::sched) and route every decision through the shared
 * StealCore state machine (sched/steal_core.h), so a policy exists in
 * exactly one place and the engines cannot diverge.
 *
 * What stays engine-side, deliberately: *mechanics* (deques, mailboxes,
 * threads vs events, cost charging, wake plumbing) and engine-only
 * fidelity knobs (the simulator's cycle costs, the runtime's thread
 * pinning). A knob belongs here iff both engines must agree on it.
 */
#ifndef NUMAWS_SCHED_POLICY_H
#define NUMAWS_SCHED_POLICY_H

#include <cstdint>

#include "sched/push_policy.h"
#include "topology/steal_distribution.h"

namespace numaws {

/** How idle workers wait for work to appear. */
enum class ParkPolicy : uint8_t
{
    /** Park on one global condition variable with a short periodic
     * timeout (the PR 0 behavior): every idle worker wakes every period
     * to re-probe, work or not. */
    Timer,
    /** Park per socket; wake only the sockets whose OccupancyBoard
     * words went 0 -> nonzero, with a longer fallback timeout as
     * lost-wakeup insurance. The default since PR 4 (PR 3's soak:
     * ~0.18x spurious wakeups, ~0.85x simulated time on the idle-heavy
     * serial-burst workload, gates at 2x / 1.02x with margin). */
    Board,
};

/** How PUSHBACK picks the receiver of a parked frame. */
enum class PushTarget : uint8_t
{
    /** Uniform random worker of the frame's place (the paper's
     * protocol): full mailboxes burn attempts. */
    Random,
    /** Uniform random worker among those whose board mailbox bit is
     * clear (room advertised); falls back to Random when every bit on
     * the place is set. The default since PR 4 (PR 3's soak: exactly
     * 1.0 pushAttempts per deposited frame on every seed vs ~1.05-1.15
     * for random probing). */
    Board,
};

/** How the parking constants are set.
 *
 * Fixed reproduces PR 3: parkFallbackUs/parkTimerUs and the
 * parkSpinFailures budget are used as configured. Ewma derives both
 * from an EWMA of park outcomes observed by each worker's StealCore —
 * a park that ends productively (work was there on wake) argues for
 * spinning longer and sleeping shorter; a park that ends spurious or
 * dry argues the opposite — with the neutral prior sitting exactly at
 * the configured constants, so the two modes start identical and
 * diverge only with evidence (the same shape as the adaptive steal
 * escalation budget). See ParkTuner in sched/steal_core.h.
 */
enum class ParkTuning : uint8_t
{
    Fixed,
    Ewma,
};

/** Stable name for bench JSON / CLI ("timer" | "board"). */
inline const char *
parkPolicyName(ParkPolicy p)
{
    switch (p) {
      case ParkPolicy::Timer:
        return "timer";
      case ParkPolicy::Board:
        return "board";
    }
    return "?";
}

/** Stable name for bench JSON / CLI ("random" | "board"). */
inline const char *
pushTargetName(PushTarget t)
{
    switch (t) {
      case PushTarget::Random:
        return "random";
      case PushTarget::Board:
        return "board";
    }
    return "?";
}

/** Stable name for bench JSON / CLI ("fixed" | "ewma"). */
inline const char *
parkTuningName(ParkTuning t)
{
    switch (t) {
      case ParkTuning::Fixed:
        return "fixed";
      case ParkTuning::Ewma:
        return "ewma";
    }
    return "?";
}

/**
 * Overload protection for the serving front door (PR 7): what happens
 * when arrivals outpace capacity. A scheduling *decision* knob — both
 * engines must agree on when a job is rejected or shed — so it lives
 * here and is executed by the shared ShedCore (sched/shed_core.h).
 */
enum class ShedPolicy : uint8_t
{
    /** No protection (the PR 6 behavior): every submit is admitted and
     * queues grow without bound under overload. */
    None,
    /** Bound each class lane: a submit into a lane already at its
     * ServingPolicy::laneCapacity returns an immediately-Rejected
     * handle. Backpressure lands on the submitter, in admission order. */
    Reject,
    /**
     * CoDel-style delay-target shedding: each class tracks an EWMA of
     * the queue delay observed when its jobs are claimed; while any
     * class sits above its ServingPolicy::queueDelayTargetUs, every
     * admission sheds one queued job from the *lowest* nonempty class
     * — Batch before Normal before Latency — so degradation is
     * graceful by construction. Lane capacities still apply as the
     * hard backstop.
     */
    QueueDelay,
};

/** Stable name for bench JSON / CLI ("none" | "reject" | "queue_delay"). */
inline const char *
shedPolicyName(ShedPolicy p)
{
    switch (p) {
      case ShedPolicy::None:
        return "none";
      case ShedPolicy::Reject:
        return "reject";
      case ShedPolicy::QueueDelay:
        return "queue_delay";
    }
    return "?";
}

/**
 * Resilience against *external* interference (PR 10): co-runners the
 * runtime does not control stealing cores or memory bandwidth. A
 * scheduling *decision* knob — both engines must agree on when workers
 * retire and where admissions steer — executed by the shared
 * InterferenceCore (sched/interference_core.h).
 */
enum class InterferencePolicy : uint8_t
{
    /** No sensing, no adaptation (the PR 9 behavior): the runtime
     * assumes it owns every core it was given. */
    Off,
    /** Sense per-socket pressure (involuntary context switches +
     * wall/CPU-time skew, EWMA-smoothed) and adapt: retire surplus
     * workers on pressured sockets via the park path, re-expand on
     * decay, and steer admission wakes + spawn placement hints away
     * from pressured sockets. */
    Adapt,
};

/** Stable name for bench JSON / CLI ("off" | "adapt"). */
inline const char *
interferencePolicyName(InterferencePolicy p)
{
    switch (p) {
      case InterferencePolicy::Off:
        return "off";
      case InterferencePolicy::Adapt:
        return "adapt";
    }
    return "?";
}

/** Job classes the serving policy knows about; must equal the runtime's
 * kNumJobClasses (static_asserted in runtime/job.h) and the simulator's
 * lane count. Index order is priority order: 0 latency, 1 normal,
 * 2 batch. */
inline constexpr int kNumServingClasses = 3;

/**
 * Per-class overload-protection knobs (see ShedPolicy). Defaults keep
 * ShedPolicy::None — exactly the PR 6 behavior — so existing configs
 * are untouched; benches and servers opt in per class.
 */
struct ServingPolicy
{
    ShedPolicy shed = ShedPolicy::None;
    /** Max queued-but-unclaimed jobs per class lane; 0 = unbounded.
     * Enforced at submit under Reject and (as the hard backstop) under
     * QueueDelay; ignored under None. */
    int laneCapacity[kNumServingClasses] = {0, 0, 0};
    /** QueueDelay targets, microseconds: a class whose claim-time
     * queue-delay EWMA exceeds its target marks the server overloaded. */
    int queueDelayTargetUs[kNumServingClasses] = {1000, 5000, 20000};
    /** EWMA weight = 1/2^shift (3 == 1/8, a few claims to converge). */
    int queueDelayEwmaShift = 3;
    /**
     * Cooperative latency-class preemption: when a job is admitted
     * while every worker runs lower-class (higher-numbered) work,
     * StealCore raises a per-worker yield directive that the running
     * job's spawn/sync boundaries service — the worker checkpoints its
     * continuation onto its own deque (where thieves can still claim
     * it) and runs the higher-class job inline, bounding that job's
     * queue wait by one task body instead of one whole job. Off by
     * default: the spawn path then pays nothing (work-first).
     */
    bool preempt = false;
    /**
     * Priority aging: a lane whose head job has waited k *
     * agingWaitUs rises k effective classes at claim time (floored at
     * class 0), so a saturated higher lane cannot starve Batch forever
     * under Reject. 0 disables aging (claims use nominal class order).
     */
    int agingWaitUs = 0;
    /**
     * Shed-aware elastic unpark: when any class's claim-delay EWMA
     * reaches this percentage of its QueueDelay target, admissions
     * escalate from a single targeted wake to waking every parked
     * worker — capacity arrives *before* the shed threshold crosses
     * rather than after. 0 disables; 100 waits for the crossing itself.
     */
    int unparkLeadPct = 0;
    /** Co-runner resilience (see InterferencePolicy). Off by default:
     * the sensing epoch never ticks, no pressure is published, and the
     * schedule is byte-identical to PR 9. */
    InterferencePolicy interference = InterferencePolicy::Off;
    /** Pressure-sensing epoch, microseconds: each worker samples its
     * progress sensor once per epoch; the per-socket leader advances
     * the InterferenceCore hysteresis on the same cadence. */
    int pressureEpochUs = 5000;
    /** Socket pressure (per-mille of the epoch lost to interference,
     * EWMA-smoothed) at or above which an epoch counts as *hot*. */
    int interferenceShrinkPermille = 250;
    /** Pressure at or below which an epoch counts as *cool*; the band
     * between the two thresholds holds the current worker set. */
    int interferenceExpandPermille = 80;
    /** Consecutive hot epochs before one more worker retires. */
    int interferenceShrinkEpochs = 2;
    /** Consecutive cool epochs before one retired worker returns. A
     * retired socket can only observe its own pressure by running, so
     * this knob is also the probe duty cycle: larger values probe less
     * often under sustained interference. */
    int interferenceExpandEpochs = 2;
    /** Floor of active workers per socket under Adapt. 0 allows a fully
     * retired socket (it re-probes via the expand hysteresis); 1 keeps
     * a leader running so sensing continues in place. */
    int minWorkersPerSocket = 1;
    /** Pressure EWMA weight = 1/2^shift (2 == 1/4: a couple of epochs
     * to converge, matched to the hysteresis epoch counts). */
    int pressureEwmaShift = 2;
};

/**
 * Scheduling-policy knobs shared verbatim by the threaded runtime and
 * the simulator. Mirrors the paper's mechanisms one-for-one plus the
 * adaptive extensions, each independently ablatable.
 */
struct SchedPolicy
{
    /** Locality-biased steals (uniform when false == classic WS). */
    bool biasedSteals = true;
    BiasWeights biasWeights{};
    /** Lazy work pushing via mailboxes (false == classic WS). */
    bool useMailboxes = true;
    /**
     * Flip a coin between deque and mailbox on each steal (Section IV
     * requires it); false = always inspect the mailbox first (ablation).
     */
    bool coinFlip = true;
    /** Constant pushing threshold (Section III-B); adaptive base. */
    int pushThreshold = 4;
    /** Pushing-threshold policy (constant reproduces the paper). */
    PushPolicyConfig pushPolicy{};
    /** Hierarchical level-by-level victim search with escalation. */
    bool hierarchicalSteals = false;
    /** Consecutive failed steals per level before widening the search
     * (the fixed budget, and the adaptive escalation's base). */
    int stealEscalationFailures = 2;
    /** Fixed (constant budget) or Adaptive (per-level success-rate EWMA)
     * escalation; only meaningful with hierarchicalSteals. */
    EscalationPolicy escalationPolicy = EscalationPolicy::Fixed;
    /**
     * Victim-selection policy for hierarchical steals. The default is
     * the full informed policy (it soaked through PR 2's and PR 3's
     * BENCH_victim_policy gates); VictimPolicy::Distance — PR 1's blind
     * ladder — is retained purely as an escape hatch for debugging a
     * suspect board (its ablation rows were retired in PR 4 after two
     * PRs of green CI history on the informed default). Only consulted
     * when hierarchicalSteals is on, so the paper-faithful flat
     * configuration is unaffected.
     */
    VictimPolicy victimPolicy = VictimPolicy::OccupancyAffinity;
    /** Mailbox slots per worker (the paper's protocol is capacity 1). */
    int mailboxCapacity = 1;
    /** Idle-worker parking policy (see ParkPolicy). */
    ParkPolicy parkPolicy = ParkPolicy::Board;
    /** Timer-policy wait period, microseconds. */
    int parkTimerUs = 200;
    /** Board-policy fallback timeout, microseconds: the most a lost or
     * cross-socket wakeup can cost before the worker re-probes. */
    int parkFallbackUs = 1000;
    /**
     * Fruitless scheduling-loop iterations (threaded engine) or probes
     * (simulator, when SimConfig::modelParking) a worker spins through
     * before parking. The Ewma tuning scales this budget.
     */
    int parkSpinFailures = 64;
    /** Fixed constants vs EWMA-derived parking knobs (see ParkTuning).
     * Ewma became the default in PR 6 after two independent soaks (the
     * PR 5 serialburst soak and a rerun against this tree) agreed:
     * ~0.81x parks and ~0.67x spurious wakeups at unchanged makespan.
     * ParkTuning::Fixed recovers the PR 3 constants for ablation. */
    ParkTuning parkTuning = ParkTuning::Ewma;
    /** PUSHBACK receiver selection (see PushTarget). */
    PushTarget pushTarget = PushTarget::Board;
    /** Steal-half batching for remote-level (>= two-hop) steals. */
    bool remoteStealHalf = false;
    /** Max frames one batched remote steal may move (engines clamp to
     * their transport cap). */
    int stealHalfMax = 8;
    /** Overload protection for the serving front door: admission
     * bounds and load shedding (see ServingPolicy / ShedPolicy above).
     * Executed by the shared ShedCore in both engines. */
    ServingPolicy serving{};

    /** @name Derived predicates
     * The single source of truth for "is the board in play" — every
     * consumer (informed steals, board parking, board-guided PUSHBACK)
     * forces publication, and a config with no consumer never pays a
     * single RMW. */
    /// @{
    /** Informed victim selection active: the steal path reads the board. */
    bool
    boardInformed() const
    {
        return hierarchicalSteals
               && victimPolicy != VictimPolicy::Distance;
    }

    /** Idle workers park per socket and ride occupancy-edge wakes. */
    bool boardParking() const { return parkPolicy == ParkPolicy::Board; }

    /** PUSHBACK receivers sampled from advertised mailbox room. */
    bool
    boardPushTargeting() const
    {
        return pushTarget == PushTarget::Board;
    }

    /** Board publication active: the union of every board consumer.
     * Ewma park tuning is a consumer too — its dry-park verdicts come
     * from the board, so without publication the threaded engine's
     * tuner would silently freeze at the neutral prior while the
     * simulator (whose board is always exact) kept tuning, the exact
     * cross-engine divergence this layer exists to prevent. */
    bool
    boardPublishing() const
    {
        return boardInformed() || boardParking() || boardPushTargeting()
               || parkTuning == ParkTuning::Ewma;
    }

    /** Thief-side data-home affinity tracking feeds victim weighting. */
    bool
    affinityTracking() const
    {
        return boardInformed()
               && victimPolicy == VictimPolicy::OccupancyAffinity;
    }
    /// @}

    /**
     * The paper-literal baseline: Figure 2/Figure 5 semantics with the
     * PR 0-3 wake/receiver protocols (periodic timer parking, blind
     * random PUSHBACK receivers). Ablation baselines and the
     * paper-faithful SimConfig factories request these explicitly so
     * the Board defaults above never leak into a "paper" row.
     */
    static SchedPolicy
    paperBaseline()
    {
        SchedPolicy p;
        p.parkPolicy = ParkPolicy::Timer;
        p.pushTarget = PushTarget::Random;
        return p;
    }
};

} // namespace numaws

#endif // NUMAWS_SCHED_POLICY_H
