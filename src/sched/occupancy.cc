#include "sched/occupancy.h"

#include <algorithm>
#include <sstream>

#include "support/panic.h"

namespace numaws {

OccupancyBoard::OccupancyBoard(int workers,
                               const std::vector<int> &worker_socket)
    : _numWorkers(workers)
{
    NUMAWS_ASSERT(workers >= 0);
    NUMAWS_ASSERT(worker_socket.size()
                  == static_cast<std::size_t>(workers));
    if (workers == 0)
        return;

    _socketOf = worker_socket;
    _numSockets =
        1 + *std::max_element(_socketOf.begin(), _socketOf.end());
    NUMAWS_ASSERT(*std::min_element(_socketOf.begin(), _socketOf.end())
                  >= 0);

    // Bit index = arrival order within the socket, aliased modulo 64 for
    // implausibly wide sockets (alias clears are false-empty: allowed).
    _maskOf.resize(static_cast<std::size_t>(workers));
    std::vector<int> next_bit(static_cast<std::size_t>(_numSockets), 0);
    for (int w = 0; w < workers; ++w) {
        const int bit = next_bit[_socketOf[w]]++ % 64;
        _maskOf[w] = 1ULL << bit;
    }

    _words = std::make_unique<SocketWords[]>(
        static_cast<std::size_t>(_numSockets));
}

std::string
OccupancyBoard::describe() const
{
    std::ostringstream out;
    out << "occupancy[" << _numWorkers << "w/" << _numSockets << "s:";
    for (int s = 0; s < _numSockets; ++s) {
        if (s > 0)
            out << ' ';
        out << "d=" << std::hex << dequeBits(s) << ",m=" << mailboxBits(s)
            << std::dec;
    }
    out << ']';
    return out.str();
}

} // namespace numaws
