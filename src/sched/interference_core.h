/**
 * @file
 * InterferenceCore: the engine-agnostic co-runner adaptation brain
 * (PR 10), sibling of ShedCore. One instance per engine run; both the
 * threaded runtime and the simulator hold one and route every
 * shrink/expand/steering decision through it, so the adaptation
 * protocol exists in exactly one place.
 *
 * Inputs are per-socket pressure samples (per-mille of an epoch lost
 * to interference — see support/pressure.h; the simulator synthesizes
 * the same unit from its InterferenceTrace). Per socket, the core runs
 * a hysteresis ladder over epoch verdicts:
 *
 *   pressure >= shrink threshold   -> hot epoch; `shrinkEpochs` in a
 *                                     row retire one more worker
 *   pressure <= expand threshold   -> cool epoch; `expandEpochs` in a
 *                                     row reinstate one worker
 *   in between (the dead band)     -> both streaks reset; hold
 *
 * "Retire" is a *target*, not an action: retiredTarget(socket) says
 * how many workers of that socket should be parked, and each engine's
 * workers compare their own rank against it on the scheduling path
 * (workerRetired). Retirement is ordered top-down by rank so the
 * bottom worker — the per-socket leader that keeps sensing and
 * ticking the epoch — retires last, and only when the configured
 * floor is zero.
 *
 * Like every policy core here it is clock-free and allocation-free
 * after construction; state words are relaxed atomics (verdicts are
 * advisory, one epoch of staleness is the worst case).
 */
#ifndef NUMAWS_SCHED_INTERFERENCE_CORE_H
#define NUMAWS_SCHED_INTERFERENCE_CORE_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "sched/policy.h"
#include "support/panic.h"

namespace numaws {

/** Engine-agnostic interference-adaptation state machine (file docs). */
class InterferenceCore
{
  public:
    InterferenceCore(const ServingPolicy &policy, int sockets)
        : _policy(policy), _sockets(sockets),
          _state(new SocketState[static_cast<std::size_t>(
              sockets > 0 ? sockets : 1)])
    {
        NUMAWS_ASSERT(sockets >= 1);
        NUMAWS_ASSERT(policy.interferenceShrinkEpochs >= 1);
        NUMAWS_ASSERT(policy.interferenceExpandEpochs >= 1);
        NUMAWS_ASSERT(policy.interferenceShrinkPermille
                      > policy.interferenceExpandPermille);
    }

    /** Off => no epoch ever ticks and every query is the identity. */
    bool
    enabled() const
    {
        return _policy.interference == InterferencePolicy::Adapt;
    }

    /**
     * Advance one socket's hysteresis ladder with its epoch pressure
     * (called once per epoch by that socket's leader — or by the
     * simulator's event loop). @p workersOnSocket bounds how many
     * workers may retire. Returns true when the retired target moved.
     */
    bool
    epochTick(int socket, int pressure_permille, int workersOnSocket)
    {
        NUMAWS_ASSERT(socket >= 0 && socket < _sockets);
        if (!enabled())
            return false;
        SocketState &s = _state[socket];
        const int retired = s.retired.load(std::memory_order_relaxed);
        const int maxRetire =
            workersOnSocket - _policy.minWorkersPerSocket;
        if (pressure_permille >= _policy.interferenceShrinkPermille) {
            s.cool = 0;
            s.pressured.store(true, std::memory_order_relaxed);
            if (++s.hot >= _policy.interferenceShrinkEpochs) {
                s.hot = 0;
                if (retired < maxRetire) {
                    s.retired.store(retired + 1,
                                    std::memory_order_relaxed);
                    _shrinks.fetch_add(1, std::memory_order_relaxed);
                    return true;
                }
            }
        } else if (pressure_permille
                   <= _policy.interferenceExpandPermille) {
            s.hot = 0;
            s.pressured.store(false, std::memory_order_relaxed);
            if (++s.cool >= _policy.interferenceExpandEpochs) {
                s.cool = 0;
                if (retired > 0) {
                    s.retired.store(retired - 1,
                                    std::memory_order_relaxed);
                    _expands.fetch_add(1, std::memory_order_relaxed);
                    return true;
                }
            }
        } else {
            // Dead band: evidence for neither edge; hold and restart
            // both streaks so a flickering signal cannot creep through.
            s.hot = 0;
            s.cool = 0;
        }
        return false;
    }

    /** How many of @p socket's workers should currently be parked. */
    int
    retiredTarget(int socket) const
    {
        NUMAWS_ASSERT(socket >= 0 && socket < _sockets);
        return _state[socket].retired.load(std::memory_order_relaxed);
    }

    /**
     * Is the worker holding @p rankFromTop (0 = the socket's last
     * worker, retired first; the leader holds the largest rank)
     * currently retired?
     */
    bool
    workerRetired(int socket, int rankFromTop) const
    {
        return rankFromTop < retiredTarget(socket);
    }

    /** Latched hot-side verdict for steering (true from the first hot
     * epoch, before any retirement, until a non-hot epoch). */
    bool
    socketPressured(int socket) const
    {
        NUMAWS_ASSERT(socket >= 0 && socket < _sockets);
        return _state[socket].pressured.load(std::memory_order_relaxed);
    }

    /**
     * Steer a wake or placement hint away from pressured sockets:
     * returns @p preferred when calm (or when adaptation is off), else
     * the first calm socket scanning up from it, else @p preferred
     * unchanged (every socket pressured — steering cannot help).
     * Deterministic: no RNG, so the Off schedule never shifts.
     */
    int
    steerSocket(int preferred) const
    {
        if (!enabled() || preferred < 0 || preferred >= _sockets)
            return preferred;
        if (!socketPressured(preferred))
            return preferred;
        for (int i = 1; i < _sockets; ++i) {
            const int s = (preferred + i) % _sockets;
            if (!socketPressured(s))
                return s;
        }
        return preferred;
    }

    /** @name Counters (monotonic, relaxed) */
    /// @{
    uint64_t
    shrinks() const
    {
        return _shrinks.load(std::memory_order_relaxed);
    }
    uint64_t
    expands() const
    {
        return _expands.load(std::memory_order_relaxed);
    }
    /// @}

    int sockets() const { return _sockets; }

    /** Back to the boot state (engines' resetStats, quiescent only). */
    void
    reset()
    {
        for (int s = 0; s < _sockets; ++s) {
            _state[s].hot = 0;
            _state[s].cool = 0;
            _state[s].retired.store(0, std::memory_order_relaxed);
            _state[s].pressured.store(false, std::memory_order_relaxed);
        }
        _shrinks.store(0, std::memory_order_relaxed);
        _expands.store(0, std::memory_order_relaxed);
    }

  private:
    struct SocketState
    {
        /** Hysteresis streaks: leader-written only (single ticker per
         * socket), so plain ints. */
        int hot = 0;
        int cool = 0;
        /** Read by every worker of the socket on its scheduling path. */
        std::atomic<int> retired{0};
        std::atomic<bool> pressured{false};
    };

    const ServingPolicy _policy;
    const int _sockets;
    std::unique_ptr<SocketState[]> _state;
    std::atomic<uint64_t> _shrinks{0};
    std::atomic<uint64_t> _expands{0};
};

} // namespace numaws

#endif // NUMAWS_SCHED_INTERFERENCE_CORE_H
