#include "sched/parking.h"

#include "support/panic.h"

namespace numaws {

ParkingLot::ParkingLot(int sockets) : _numSockets(sockets)
{
    NUMAWS_ASSERT(sockets >= 0);
    if (sockets > 0)
        _slots = std::make_unique<Slot[]>(
            static_cast<std::size_t>(sockets));
}

void
ParkingLot::wake(int socket)
{
    if (!enabled())
        return;
    Slot &s = _slots[socket];
    // Fast path: nobody parked here. A parker concurrently entering
    // park() re-checks its predicate after registering, so skipping the
    // notify can only delay it by one fallback period (file docs).
    if (s.waiters.load(std::memory_order_seq_cst) == 0)
        return;
    {
        // Bump under the mutex: a parker between its epoch snapshot and
        // cv.wait holds the mutex for both, so this wake either
        // serializes before the snapshot (parker sees the new epoch) or
        // notifies an already-registered waiter.
        std::lock_guard<std::mutex> g(s.m);
        s.epoch.fetch_add(1, std::memory_order_relaxed);
    }
    s.delivered.fetch_add(1, std::memory_order_relaxed);
    s.cv.notify_all();
}

void
ParkingLot::wakeAll()
{
    for (int s = 0; s < _numSockets; ++s) {
        Slot &slot = _slots[s];
        {
            std::lock_guard<std::mutex> g(slot.m);
            slot.epoch.fetch_add(1, std::memory_order_relaxed);
        }
        if (slot.waiters.load(std::memory_order_seq_cst) != 0)
            slot.delivered.fetch_add(1, std::memory_order_relaxed);
        slot.cv.notify_all();
    }
}

} // namespace numaws
