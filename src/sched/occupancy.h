/**
 * @file
 * Lock-free occupancy board: per-socket bitmaps of who currently has work.
 *
 * PR 1's distance-level victim hierarchy probes blind: a thief pays a full
 * probe (and a failed-steal escalation tick) on a victim whose deque and
 * mailbox are both empty. The board makes victim selection *informed*:
 * every worker publishes two bits — deque non-emptiness and mailbox
 * occupancy — into a cache-aligned word shared by its socket, and thieves
 * read whole sockets at once to (a) skip provably-dry distance levels and
 * (b) weight candidate victims by occupancy (StealDistribution's
 * VictimPolicy sampling).
 *
 * Cost discipline: publications are *edge triggered*. A publish first
 * checks the current bit with a relaxed load and returns without any RMW
 * when the bit already has the desired value, so steady-state push/pop on
 * a deep deque costs one relaxed load; the fetch_or/fetch_and (release)
 * fires only on 0<->1 transitions. Observers use acquire loads, pairing
 * with the release on set so that a thief reading "occupied" observes the
 * deposit that preceded the publication.
 *
 * Accuracy contract (what the scheduler may assume):
 *  - The board is advisory, never authoritative. *False-empty* — a bit
 *    still 0 while work was just made visible, or transiently cleared in
 *    a race — is allowed: a thief that trusts it merely probes elsewhere,
 *    and the escalation ladder still reaches the outermost level (which
 *    the level-skip logic never skips past), so no work is ever
 *    unreachable.
 *  - *False-nonempty* must not be invented: a set bit always
 *    happens-after a real deposit/push by some worker (the release/
 *    acquire pairing above), so probing a "occupied" victim is always
 *    justified even if the frame is gone by the time the probe lands.
 *    Stale 1-bits are repaired eagerly: owners clear on pop-to-empty and
 *    thieves clear a victim's bit when a probe finds it dry.
 *  - After quiescence (all publications complete, no concurrent
 *    mutators) the board equals ground truth exactly.
 *
 * Sockets with more than 64 workers alias bit indices modulo 64; an
 * aliased clear can only produce false-empty, which the contract allows.
 */
#ifndef NUMAWS_SCHED_OCCUPANCY_H
#define NUMAWS_SCHED_OCCUPANCY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/cache_aligned.h"

namespace numaws {

/** Per-socket occupancy bitmaps published by workers, read by thieves. */
class OccupancyBoard
{
  public:
    /** An empty board (no workers); publishes and queries are no-ops. */
    OccupancyBoard() = default;

    /**
     * @param workers total worker/core count.
     * @param worker_socket socket of each worker (size == workers);
     *        sockets must be numbered densely from 0.
     */
    OccupancyBoard(int workers, const std::vector<int> &worker_socket);

    OccupancyBoard(OccupancyBoard &&) = default;
    OccupancyBoard &operator=(OccupancyBoard &&) = default;
    OccupancyBoard(const OccupancyBoard &) = delete;
    OccupancyBoard &operator=(const OccupancyBoard &) = delete;

    bool enabled() const { return _numWorkers > 0; }
    int numWorkers() const { return _numWorkers; }
    int numSockets() const { return _numSockets; }

    /** @name Publication (any thread; edge-triggered, see file docs)
     * Each returns true when this call took the socket's *combined*
     * (deque | mailbox) occupancy from 0 to nonzero — the socket edge
     * ParkingLot wakes ride on. Clears, no-ops, and publications that
     * lost the transition race return false. The verdict is advisory
     * like the rest of the board: a missed edge (racing clear between
     * the two word reads) only delays a parked worker by one fallback
     * period, and a spurious edge costs one wasted wake. */
    /// @{
    bool
    publishDeque(int worker, bool nonempty)
    {
        if (!enabled())
            return false;
        SocketWords &w = _words[_socketOf[worker]];
        return publish(w.deque, w.mailbox, _maskOf[worker], nonempty);
    }

    bool
    publishMailbox(int worker, bool occupied)
    {
        if (!enabled())
            return false;
        SocketWords &w = _words[_socketOf[worker]];
        return publish(w.mailbox, w.deque, _maskOf[worker], occupied);
    }
    /// @}

    /** @name Observation (any thread; acquire loads) */
    /// @{
    bool
    dequeNonempty(int worker) const
    {
        return enabled()
               && (dequeBits(_socketOf[worker]) & _maskOf[worker]) != 0;
    }

    bool
    mailboxOccupied(int worker) const
    {
        return enabled()
               && (mailboxBits(_socketOf[worker]) & _maskOf[worker]) != 0;
    }

    /** Deque non-empty or mailbox occupied. */
    bool
    workerHasWork(int worker) const
    {
        if (!enabled())
            return false;
        const SocketWords &w = _words[_socketOf[worker]];
        const uint64_t m = _maskOf[worker];
        return ((w.deque.load(std::memory_order_acquire)
                 | w.mailbox.load(std::memory_order_acquire))
                & m)
               != 0;
    }

    /** Any published work anywhere on the machine (one load per socket).
     * A thief that reads false here may skip its victim probe entirely —
     * the probe that motivated this board — as long as it still probes
     * on a bounded cadence, since a false-empty board may lag reality. */
    bool
    anyWork() const
    {
        for (int s = 0; s < _numSockets; ++s)
            if (socketHasWork(s))
                return true;
        return false;
    }

    /**
     * Any work *stealable by a thief on @p socket*: deque bits count on
     * every socket, mailbox bits only on the thief's own. PUSHBACK
     * deposits a frame only into mailboxes of the frame's place, so a
     * parked frame on another socket is earmarked for workers *there* —
     * a cross-socket thief taking it would mostly push it straight back
     * (churn, not progress). The bounded insurance probe still reaches
     * those frames if their own socket never drains them.
     */
    bool
    anyWorkFor(int socket) const
    {
        for (int s = 0; s < _numSockets; ++s) {
            uint64_t bits = _words[s].deque.load(std::memory_order_acquire);
            if (s == socket)
                bits |= _words[s].mailbox.load(std::memory_order_acquire);
            if (bits != 0)
                return true;
        }
        return false;
    }

    /** Any worker on @p socket with a non-empty deque or mailbox. */
    bool
    socketHasWork(int socket) const
    {
        if (!enabled())
            return false;
        const SocketWords &w = _words[socket];
        return (w.deque.load(std::memory_order_acquire)
                | w.mailbox.load(std::memory_order_acquire))
               != 0;
    }

    /** Raw deque bitmap of @p socket (bit i == i-th worker on it). */
    uint64_t
    dequeBits(int socket) const
    {
        return _words[socket].deque.load(std::memory_order_acquire);
    }

    /** Raw mailbox bitmap of @p socket. */
    uint64_t
    mailboxBits(int socket) const
    {
        return _words[socket].mailbox.load(std::memory_order_acquire);
    }

    /** Publication bit of @p worker within its socket's words — lets a
     * reader test a snapshot of dequeBits()/mailboxBits() per victim
     * without re-polling the atomics. */
    uint64_t workerMask(int worker) const { return _maskOf[worker]; }
    /// @}

    /** One-line occupancy summary, e.g. for bench logs. */
    std::string describe() const;

  private:
    /** Two bitmaps per socket on a private cache line: thieves scanning a
     * socket touch one line; publications from different sockets never
     * false-share. */
    struct alignas(kCacheLineBytes) SocketWords
    {
        std::atomic<uint64_t> deque{0};
        std::atomic<uint64_t> mailbox{0};
    };

    /** @return true iff this call flipped the socket's combined
     * occupancy 0 -> nonzero (@p word is the written word, @p other the
     * socket's sibling word). */
    static bool
    publish(std::atomic<uint64_t> &word,
            const std::atomic<uint64_t> &other, uint64_t mask, bool on)
    {
        // Edge trigger: the relaxed pre-check keeps the no-transition
        // path free of RMWs; the release on the transition publishes the
        // deposit that preceded this call.
        if (on) {
            if ((word.load(std::memory_order_relaxed) & mask) == 0) {
                const uint64_t prev =
                    word.fetch_or(mask, std::memory_order_release);
                // The socket edge belongs to the publication that set
                // the first bit of both words; the sibling read may
                // race a concurrent clear (advisory, see caller docs).
                return prev == 0
                       && other.load(std::memory_order_relaxed) == 0;
            }
        } else {
            if ((word.load(std::memory_order_relaxed) & mask) != 0)
                word.fetch_and(~mask, std::memory_order_release);
        }
        return false;
    }

    int _numWorkers = 0;
    int _numSockets = 0;
    std::vector<int> _socketOf;
    std::vector<uint64_t> _maskOf;
    std::unique_ptr<SocketWords[]> _words;
};

} // namespace numaws

#endif // NUMAWS_SCHED_OCCUPANCY_H
