/**
 * @file
 * Occupancy-guided idle-worker parking and PUSHBACK targeting.
 *
 * Two blind spots survived PR 2's OccupancyBoard: idle workers still
 * wake on a fixed timer whether or not work exists anywhere, and the
 * PUSHBACK pusher still probes random receivers whose mailboxes may be
 * full. Both policies are made board-guided here, each behind its own
 * ablatable knob:
 *
 *  - ParkPolicy::Board replaces the global 200us timer wait with a
 *    per-socket ParkingLot: a worker parks tagged with its socket, and
 *    wakers notify only the sockets whose board words transitioned
 *    0 -> nonzero (the edge OccupancyBoard::publishDeque/publishMailbox
 *    now report back), so a push on socket 2 no longer wakes parked
 *    workers on sockets 0, 1, and 3. A bounded fallback timeout keeps
 *    liveness: a lost wakeup costs at most one fallback period, never
 *    starvation.
 *  - PushTarget::Board picks PUSHBACK receivers from the complement of
 *    OccupancyBoard::mailboxBits(socket) — the workers whose mailbox
 *    advertises room — instead of probing blind, falling back to the
 *    random probe when the complement is empty (or the board lies:
 *    tryPut can still be rejected and the pusher retries as before).
 *
 * Wakeup correctness (what ParkingLot guarantees): wake(s) taken after
 * a worker is registered in slot s always wakes it — the epoch is
 * bumped under the slot mutex, so a parker between its predicate check
 * and the wait cannot miss it. The one unguarded window is a publish
 * that lands after the parker's last work check but completes its
 * waiter-count read before the parker registers; the board's release
 * publishes are not sequentially consistent against the waiter count,
 * so that wake may be skipped. The fallback timeout bounds the damage
 * to one period — the contract the scheduler is written against.
 */
#ifndef NUMAWS_SCHED_PARKING_H
#define NUMAWS_SCHED_PARKING_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "sched/policy.h" // ParkPolicy/PushTarget (the unified knob set)
#include "support/cache_aligned.h"
#include "support/rng.h"

namespace numaws {

/**
 * Per-socket parking: one waiter word + condition slot per socket, each
 * on its own cache line so a waker touching socket s never contends
 * with parkers on other sockets.
 *
 * The waiter word is the waker's fast path: wake() returns after one
 * acquire load when nobody is parked on the socket, so the publish
 * paths that piggyback on it (Worker::pushTask, Mailbox::tryPut) pay
 * nothing while the machine is busy — the lot only costs when someone
 * is actually asleep.
 */
class ParkingLot
{
  public:
    /** A disabled lot (no sockets): park returns immediately. */
    ParkingLot() = default;

    explicit ParkingLot(int sockets);

    ParkingLot(const ParkingLot &) = delete;
    ParkingLot &operator=(const ParkingLot &) = delete;

    bool enabled() const { return _numSockets > 0; }
    int numSockets() const { return _numSockets; }

    /**
     * Park the caller in @p socket's slot until wake(socket)/wakeAll(),
     * @p timeout, or @p pred returning true. The predicate is evaluated
     * under the slot mutex after the caller is registered as a waiter
     * and again on every notification, so any wake issued after
     * registration is never lost.
     *
     * @return true when parking ended by a wake or the predicate,
     *         false on a plain timeout.
     */
    template <typename Pred>
    bool
    park(int socket, std::chrono::microseconds timeout, Pred pred)
    {
        if (!enabled())
            return false;
        Slot &s = _slots[socket];
        std::unique_lock<std::mutex> lock(s.m);
        s.waiters.fetch_add(1, std::memory_order_seq_cst);
        // Registered-then-check: a wake issued after the fetch_add sees
        // waiters != 0, takes the mutex, and bumps the epoch we are
        // about to snapshot — so it either serializes before this pred
        // (which then observes the published work) or after the
        // snapshot (and the epoch comparison catches it).
        const uint64_t epoch = s.epoch.load(std::memory_order_relaxed);
        bool woken = pred();
        if (!woken) {
            woken = s.cv.wait_for(lock, timeout, [&] {
                return s.epoch.load(std::memory_order_relaxed) != epoch
                       || pred();
            });
        }
        s.waiters.fetch_sub(1, std::memory_order_seq_cst);
        return woken;
    }

    /** park() with no predicate: wait for a wake or the timeout. */
    bool
    park(int socket, std::chrono::microseconds timeout)
    {
        return park(socket, timeout, [] { return false; });
    }

    /**
     * Wake every worker parked in @p socket's slot. One acquire load
     * when the slot is empty (the common busy-machine case).
     */
    void wake(int socket);

    /** Wake every slot, skipping no one (shutdown, root injection).
     * Deliberately no waiter-count fast path: the callers are rare and
     * must never miss a worker racing into park(). */
    void wakeAll();

    /** @name Introspection (tests, stats) */
    /// @{
    int
    waiters(int socket) const
    {
        return enabled() ? static_cast<int>(_slots[socket].waiters.load(
                   std::memory_order_acquire))
                         : 0;
    }

    /** Wakes delivered to a non-empty slot (wakeAll included). */
    uint64_t
    wakesDelivered(int socket) const
    {
        return enabled() ? _slots[socket].delivered.load(
                   std::memory_order_relaxed)
                         : 0;
    }
    /// @}

  private:
    struct alignas(kCacheLineBytes) Slot
    {
        /** Parked-worker count: the waker's lock-free fast path. */
        std::atomic<uint32_t> waiters{0};
        /** Bumped under the mutex by every wake; parkers snapshot it
         * under the same mutex, so a wake between snapshot and sleep is
         * never lost. */
        std::atomic<uint64_t> epoch{0};
        std::atomic<uint64_t> delivered{0};
        std::mutex m;
        std::condition_variable cv;
    };

    int _numSockets = 0;
    std::unique_ptr<Slot[]> _slots;
};

/**
 * Pick a PUSHBACK receiver among workers [first, last) whose mailbox
 * bit is clear in @p mailbox_bits — the board-guided receiver set —
 * uniformly at random. @p mask_of maps a worker id to its board bit
 * (OccupancyBoard::workerMask), so callers sample against one bitmap
 * snapshot. @p self is excluded (a pusher never targets itself; pass
 * -1 when the pusher is outside the range).
 *
 * @return a worker id in [first, last), or -1 when no candidate
 *         advertises room (callers fall back to the random probe).
 *
 * With mailbox capacity 1 a set bit means *full*, so the complement is
 * exactly the receivers with room. At higher capacities a set bit only
 * means nonempty — the pick is then conservative (partially filled
 * mailboxes are skipped), which costs placement choice, never
 * correctness: the random fallback still reaches every receiver.
 */
template <typename MaskFn>
int
pickClearMailbox(int first, int last, int self, uint64_t mailbox_bits,
                 MaskFn mask_of, Rng &rng)
{
    int candidates = 0;
    for (int w = first; w < last; ++w) {
        if (w != self && (mailbox_bits & mask_of(w)) == 0)
            ++candidates;
    }
    if (candidates == 0)
        return -1;
    int pick = static_cast<int>(
        rng.nextBounded(static_cast<uint64_t>(candidates)));
    for (int w = first; w < last; ++w) {
        if (w != self && (mailbox_bits & mask_of(w)) == 0
            && pick-- == 0)
            return w;
    }
    return -1; // unreachable: pick < candidates
}

} // namespace numaws

#endif // NUMAWS_SCHED_PARKING_H
