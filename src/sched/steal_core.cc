#include "sched/steal_core.h"

#include "sched/parking.h"
#include "support/panic.h"

namespace numaws {

StealAction
StealCore::nextAction()
{
    NUMAWS_ASSERT(_view.dist != nullptr);
    StealAction a;
    const bool informed = _policy.boardInformed() && boardUsable();
    const OccupancyBoard *board = _view.board;
    // Board poll in place of a probe: when nothing anywhere advertises
    // work, skip the victim probe entirely — that is the probe the board
    // was built to save. Every 4th consecutive dry poll still probes
    // (insurance: a false-empty board may lag reality), so starvation is
    // impossible, merely delayed by a bounded factor.
    bool board_dry = false;
    if (informed && !board->anyWorkFor(_socket)) {
        _dryStreak = (_dryStreak + 1) & 3; // wrap: no overflow while idle
        if (_dryStreak != 0) {
            ++_counters.dryPolls;
            a.kind = StealAction::Kind::DryPoll;
            a.informedConsult = true;
            return a;
        }
        board_dry = true;
    } else {
        _dryStreak = 0;
    }
    ++_counters.stealAttempts;
    a.kind = StealAction::Kind::Probe;
    a.informedConsult = informed;
    const StealDistribution &dist = *_view.dist;
    if (_policy.hierarchicalSteals) {
        // Level-by-level search: sample only within the current
        // escalation radius; failures below widen it, success resets it.
        int level = _esc.level();
        if (informed) {
            // Board consult: jump past provably-dry levels without
            // burning the failures-per-level budget on them (the skip
            // and the weighted pick share one board snapshot). An
            // all-dry insurance probe widens to the outermost level
            // too, but that is not a board-informed skip — don't count
            // it as one.
            const int ladder_level = level;
            a.victim = dist.sampleVictimInformed(
                _self, &level, _policy.victimPolicy, *board, _affinity,
                _rng);
            if (level != ladder_level && !board_dry)
                ++_counters.levelSkips;
        } else {
            a.victim = dist.sampleAtLevel(_self, level, _rng);
        }
        a.probedLevel = level;
    } else {
        a.victim = dist.sample(_self, _rng);
    }
    // BIASEDSTEALWITHPUSH: flip a coin between the victim's mailbox and
    // its deque. Always checking the mailbox first would let a critical
    // node at a deque head starve (Section IV); coinFlip=false is the
    // ablation that prices exactly that.
    bool check_mailbox =
        _policy.useMailboxes && (!_policy.coinFlip || _rng.flip());
    // One-sided informed override: a *set* mailbox bit is never invented
    // (board contract), so steering the inspection toward it is sound.
    // An *unset* bit may be false-empty, so it must never suppress the
    // mailbox check — the coin's 50% inspection is the repair mechanism
    // that eventually finds a parked frame whose publication was lost,
    // even while the victim's deque stays nonempty forever.
    if (informed && _policy.useMailboxes
        && board->mailboxOccupied(a.victim)
        && !board->dequeNonempty(a.victim))
        check_mailbox = true;
    a.checkMailboxFirst = check_mailbox;
    // Remote-level victims pay a full cross-socket round trip per steal,
    // so those take a batch; closer victims keep the paper's
    // single-frame protocol.
    if (_policy.remoteStealHalf
        && dist.levelOf(_self, a.victim) == kLevelRemote) {
        a.remoteBatch = true;
        a.batchMax = _policy.stealHalfMax > 0 ? _policy.stealHalfMax : 1;
    }
    return a;
}

void
StealCore::onStealResult(const StealAction &action, bool got_work)
{
    if (action.kind != StealAction::Kind::Probe)
        return;
    if (!_policy.hierarchicalSteals)
        return;
    if (got_work) {
        _esc.onSuccessfulSteal(action.probedLevel);
        return;
    }
    const int before = _esc.level();
    _esc.onFailedSteal(action.probedLevel);
    if (_esc.level() != before)
        ++_counters.escalations;
}

void
StealCore::beginPushback(int64_t own_deque_depth)
{
    // Pressure signal: a worker with a deep own deque can afford more
    // placement attempts before running the frame itself.
    _push.observeDequeDepth(own_deque_depth);
}

int
StealCore::pickPreemptVictim(int cls, const int8_t *runningCls, int n)
{
    NUMAWS_ASSERT(cls >= 0 && cls < kNumServingClasses);
    // An idle worker means the admission wake already has a taker:
    // preempting anyone would run the job no sooner and cost a yield.
    for (int w = 0; w < n; ++w)
        if (runningCls[w] < 0)
            return -1;
    // Otherwise yield the worker running the lowest-priority class
    // strictly below the admitted job's (numerically greater); lowest
    // index on ties so both engines pick the same victim.
    int victim = -1;
    int worst = cls;
    for (int w = 0; w < n; ++w)
        if (runningCls[w] > worst) {
            worst = runningCls[w];
            victim = w;
        }
    return victim;
}

int
StealCore::pickPushReceiver(int first, int last, int self_in_range,
                            int target_socket)
{
    NUMAWS_ASSERT(first < last);
    // Board-guided receiver: sample only among workers whose mailbox
    // bit advertises room (never-invented occupancy means a set bit is
    // always a real frame, so skipping it saves a guaranteed-wasted
    // probe; a clear bit may be stale, in which case the deposit is
    // still rejected and the pusher retries as before). When every bit
    // on the place is set — or the knob is off — probe blind.
    const OccupancyBoard *board = _view.board;
    if (_policy.boardPushTargeting() && boardUsable()) {
        const int receiver = pickClearMailbox(
            first, last, self_in_range,
            board->mailboxBits(target_socket),
            [board](int w) { return board->workerMask(w); }, _rng);
        if (receiver >= 0)
            return receiver;
    }
    return first
           + static_cast<int>(_rng.nextBounded(
               static_cast<uint64_t>(last - first)));
}

} // namespace numaws
