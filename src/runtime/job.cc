#include "runtime/job.h"

#include <chrono>

#include "runtime/runtime.h"

namespace numaws {

void
JobHandle::wait()
{
    requireValid("wait");
    JobState &s = *_state;
    if (!s.done.load(std::memory_order_acquire)) {
        if (Worker *w = Worker::current()) {
            // Worker thread: help instead of blocking (claims queued
            // jobs too, so nested submit-and-wait cannot deadlock).
            w->helpJob(s);
        } else {
            std::unique_lock<std::mutex> lock(s.mutex);
            s.cv.wait(lock, [&s] {
                return s.done.load(std::memory_order_acquire);
            });
        }
    }
    if (s.exception)
        std::rethrow_exception(s.exception);
}

bool
JobHandle::waitUntil(int64_t deadline_ns)
{
    requireValid("waitUntil");
    JobState &s = *_state;
    if (!s.done.load(std::memory_order_acquire)) {
        if (Worker *w = Worker::current()) {
            // Bounded help: execute queued work until the job resolves
            // or the instant passes (same no-deadlock property as
            // wait()).
            w->helpJobUntil(s, deadline_ns);
        } else {
            using clock = std::chrono::steady_clock;
            const clock::time_point until{
                std::chrono::nanoseconds(deadline_ns)};
            std::unique_lock<std::mutex> lock(s.mutex);
            s.cv.wait_until(lock, until, [&s] {
                return s.done.load(std::memory_order_acquire);
            });
        }
    }
    if (!s.done.load(std::memory_order_acquire))
        return false;
    if (s.exception)
        std::rethrow_exception(s.exception);
    return true;
}

bool
JobHandle::cancel()
{
    requireValid("cancel");
    JobState &s = *_state;
    // Record the request before checking done: a finishJob racing this
    // publishes done after its outcome, so observing !done here means
    // claim-time skips and boundary checks can still see the flag.
    s.cancelRequested.store(true, std::memory_order_release);
    return !s.done.load(std::memory_order_acquire);
}

} // namespace numaws
