#include "runtime/job.h"

#include "runtime/runtime.h"

namespace numaws {

void
JobHandle::wait()
{
    NUMAWS_ASSERT(valid());
    JobState &s = *_state;
    if (!s.done.load(std::memory_order_acquire)) {
        if (Worker *w = Worker::current()) {
            // Worker thread: help instead of blocking (claims queued
            // jobs too, so nested submit-and-wait cannot deadlock).
            w->helpJob(s);
        } else {
            std::unique_lock<std::mutex> lock(s.mutex);
            s.cv.wait(lock, [&s] {
                return s.done.load(std::memory_order_acquire);
            });
        }
    }
    if (s.exception)
        std::rethrow_exception(s.exception);
}

} // namespace numaws
