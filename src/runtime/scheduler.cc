#include "runtime/runtime.h"

#include "support/panic.h"
#include "topology/affinity.h"

namespace numaws {

Machine
Runtime::machineForPlaces(int places, int workers)
{
    // Virtual places get the paper machine's socket fabric when they fit
    // (<= 4 places), so biased-steal hop counts are meaningful; beyond
    // that, a synthetic ring-free flat SLIT (everything one hop apart).
    const int per = (workers + places - 1) / places;
    if (places == 1)
        return Machine::singleSocket(per);
    if (places <= 4) {
        Machine proto = Machine::paperMachineSubset(places * 8);
        std::vector<int> slit;
        for (int i = 0; i < places; ++i)
            for (int j = 0; j < places; ++j)
                slit.push_back(proto.distance(i, j));
        return Machine(places, per, slit, proto.ghz(), proto.llcBytes());
    }
    std::vector<int> slit(static_cast<std::size_t>(places) * places, 20);
    for (int i = 0; i < places; ++i)
        slit[static_cast<std::size_t>(i) * places + i] = 10;
    return Machine(places, per, slit, 2.2, 16ULL << 20);
}

Runtime::Runtime(RuntimeOptions options)
    : _options(options),
      _machine(machineForPlaces(
          options.numPlaces,
          options.numWorkers > 0 ? options.numWorkers : hostCpuCount())),
      _dist(_machine,
            options.numWorkers > 0 ? options.numWorkers : hostCpuCount(),
            options.sched.biasedSteals ? options.sched.biasWeights
                                       : BiasWeights::uniform()),
      _board(_dist.numWorkers(), _dist.workerSockets()),
      _parking(options.sched.boardParking() ? _board.numSockets() : 0)
{
    const int workers =
        _options.numWorkers > 0 ? _options.numWorkers : hostCpuCount();
    NUMAWS_ASSERT(workers >= 1);
    if (_options.numPlaces < 1 || _options.numPlaces > workers)
        NUMAWS_FATAL("numPlaces (%d) must be in [1, numWorkers=%d]",
                     _options.numPlaces, workers);
    _options.numWorkers = workers;

    uint64_t seed_state = _options.seed;
    _workers.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        _workers.push_back(std::make_unique<Worker>(
            *this, w, _dist.socketOfWorker(w), splitmix64(seed_state),
            _options.dequeCapacity));
    }
    _threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        _threads.emplace_back([this, w] { _workers[w]->mainLoop(); });
}

Runtime::~Runtime()
{
    // Drain first: a submitted-but-unwaited job must finish, not be
    // abandoned mid-flight (handles stay valid after the runtime dies).
    {
        std::unique_lock<std::mutex> lock(_quiesceMutex);
        _quiesceCv.wait(lock, [this] {
            return _activeJobs.load(std::memory_order_acquire) == 0;
        });
    }
    _shutdown.store(true, std::memory_order_release);
    notifyWork();
    for (auto &t : _threads)
        t.join();
}

std::pair<int, int>
Runtime::workersOfPlace(int p) const
{
    NUMAWS_ASSERT(p >= 0 && p < _options.numPlaces);
    // Matches StealDistribution's even-spread, socket-major packing.
    const int workers = _options.numWorkers;
    const int per = (workers + _options.numPlaces - 1) / _options.numPlaces;
    const int first = p * per;
    const int last = std::min(workers, first + per);
    return {first, last};
}

RuntimeStats
Runtime::stats() const
{
    RuntimeStats s;
    for (const auto &w : _workers) {
        s.counters.merge(const_cast<Worker &>(*w).counters());
        w->foldParkCounters(s.counters);
        w->foldCoreCounters(s.counters);
        w->foldPoolCounters(s.counters);
        w->foldJobHists(s);
        s.time.merge(const_cast<Worker &>(*w).timeSplit());
    }
    return s;
}

void
Runtime::resetStats()
{
    NUMAWS_ASSERT(!workActive());
    for (auto &w : _workers) {
        w->counters() = WorkerCounters{};
        w->resetParkCounters();
        w->resetJobHists();
        w->core().resetCounters();
        w->framePool().resetCounters();
        w->timeSplit() = TimeSplit{};
    }
}

bool
Runtime::idleWait(int socket, int timeout_us)
{
    // The ParkingLot exists iff the policy parks per socket, so its
    // enabled() bit is the park-policy dispatch — no enum branching
    // here. The (possibly EWMA-tuned) timeout comes from the caller's
    // StealCore.
    if (_parking.enabled()) {
        // Park tagged with the socket; only an occupancy edge on this
        // socket (or notifyWork) wakes it before the fallback. The
        // predicate runs after waiter registration, so a wake issued
        // once we are registered is never lost; the fallback bounds
        // the one pre-registration publish window (parking.h docs).
        return _parking.park(
            socket, std::chrono::microseconds(timeout_us),
            [this, socket] {
                // jobPending: the admission queue is not on the board,
                // so the elastic pool must check it explicitly — this
                // predicate is what makes parking safe against
                // admissions racing the registration.
                return shuttingDown() || jobPending()
                       || (workActive() && _board.anyWorkFor(socket));
            });
    }
    std::unique_lock<std::mutex> lock(_parkMutex);
    if (shuttingDown())
        return true;
    // Bounded wait: a lost wakeup costs at most one timeout period.
    return _parkCv.wait_for(lock, std::chrono::microseconds(timeout_us))
           == std::cv_status::no_timeout;
}

void
Runtime::notifyWork()
{
    if (_parking.enabled())
        _parking.wakeAll();
    _parkCv.notify_all();
}

void
Runtime::notifyWorkOn(int socket)
{
    if (_parking.enabled()) {
        _parking.wake(socket);
        return;
    }
    _parkCv.notify_all();
}

void
Runtime::notifyAdmission(Place place)
{
    // One targeted wake per admission: the hinted place's socket when
    // the job carries a hint, else a round-robin socket so bursts of
    // unhinted jobs fan their wakes out instead of thundering one
    // parking-lot slot. A wake that races a worker's park registration
    // is never lost — the park predicate rechecks jobPending() after
    // registering — and a wake targeting a socket with no parked
    // workers is bounded by the fallback timeout of the others.
    const int sockets = _board.numSockets();
    int socket;
    if (isConcretePlace(place) && place < sockets) {
        socket = place;
    } else {
        socket = static_cast<int>(
            _admitCursor.fetch_add(1, std::memory_order_relaxed)
            % static_cast<uint32_t>(sockets));
    }
    notifyWorkOn(socket);
}

void
Runtime::finishJob(JobState &state)
{
    const int64_t t = nowNs();
    state.finishNs.store(t, std::memory_order_relaxed);
    Worker *w = Worker::current();
    NUMAWS_ASSERT(w != nullptr); // job roots execute on workers only
    w->recordJobLatency(state.opts.cls, t - state.submitNs);
    // Retire from the active count *before* publishing done: a waiter
    // released by the done flag must observe the runtime quiescent
    // (resetStats asserts !workActive() right after a run()).
    if (_activeJobs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last in-flight job: release a destructor waiting to quiesce.
        std::lock_guard<std::mutex> g(_quiesceMutex);
        _quiesceCv.notify_all();
    }
    {
        std::lock_guard<std::mutex> g(state.mutex);
        state.done.store(true, std::memory_order_release);
    }
    state.cv.notify_all();
}

} // namespace numaws
