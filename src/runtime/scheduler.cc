#include "runtime/runtime.h"

#include <cstdio>

#include "support/panic.h"
#include "topology/affinity.h"

namespace numaws {

Machine
Runtime::machineForPlaces(int places, int workers)
{
    // Virtual places get the paper machine's socket fabric when they fit
    // (<= 4 places), so biased-steal hop counts are meaningful; beyond
    // that, a synthetic ring-free flat SLIT (everything one hop apart).
    const int per = (workers + places - 1) / places;
    if (places == 1)
        return Machine::singleSocket(per);
    if (places <= 4) {
        Machine proto = Machine::paperMachineSubset(places * 8);
        std::vector<int> slit;
        for (int i = 0; i < places; ++i)
            for (int j = 0; j < places; ++j)
                slit.push_back(proto.distance(i, j));
        return Machine(places, per, slit, proto.ghz(), proto.llcBytes());
    }
    std::vector<int> slit(static_cast<std::size_t>(places) * places, 20);
    for (int i = 0; i < places; ++i)
        slit[static_cast<std::size_t>(i) * places + i] = 10;
    return Machine(places, per, slit, 2.2, 16ULL << 20);
}

Runtime::Runtime(RuntimeOptions options)
    : _options(options),
      _machine(machineForPlaces(
          options.numPlaces,
          options.numWorkers > 0 ? options.numWorkers : hostCpuCount())),
      _dist(_machine,
            options.numWorkers > 0 ? options.numWorkers : hostCpuCount(),
            options.sched.biasedSteals ? options.sched.biasWeights
                                       : BiasWeights::uniform()),
      _board(_dist.numWorkers(), _dist.workerSockets()),
      _parking(options.sched.boardParking() ? _board.numSockets() : 0),
      _pageMap(std::max(1, options.numPlaces)),
      _arena(_pageMap),
      _shed(options.sched.serving),
      _pressure(_board.numSockets(),
                options.sched.serving.pressureEwmaShift),
      _interference(options.sched.serving, _board.numSockets())
{
    const int workers =
        _options.numWorkers > 0 ? _options.numWorkers : hostCpuCount();
    NUMAWS_ASSERT(workers >= 1);
    if (_options.numPlaces < 1 || _options.numPlaces > workers)
        NUMAWS_FATAL("numPlaces (%d) must be in [1, numWorkers=%d]",
                     _options.numPlaces, workers);
    _options.numWorkers = workers;

    uint64_t seed_state = _options.seed;
    _workers.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        _workers.push_back(std::make_unique<Worker>(
            *this, w, _dist.socketOfWorker(w), splitmix64(seed_state),
            _options.dequeCapacity));
    }
    _threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        _threads.emplace_back([this, w] { _workers[w]->mainLoop(); });

    // Ambient data-plane binding for non-worker threads (PartedVec
    // construction on the submitting thread, NumaAllocator containers
    // built before run()): route through this runtime's arena. Last
    // runtime constructed wins; cleared by our destructor.
    numa::setAmbient(&_arena,
                     _options.dataHeap == DataHeapPolicy::Pooled, this);

    // Opt-in stall watchdog: a monitor thread that only ever reads
    // (racily, relaxed) and writes stderr — it can never unwedge or
    // slow the workers.
    if (_options.watchdogMs > 0)
        _watchdog = std::thread([this] { watchdogLoop(); });
}

Runtime::~Runtime()
{
    // CancelQueued teardown: resolve queued-but-unstarted jobs without
    // running them, so the quiesce wait below only covers jobs already
    // executing. Workers racing this sweep merely claim some of the
    // entries first — every queued job resolves exactly once.
    if (_options.shutdownPolicy == ShutdownPolicy::CancelQueued)
        cancelQueuedJobs();
    // Drain the rest: a submitted-but-unwaited job must finish, not be
    // abandoned mid-flight (handles stay valid after the runtime dies).
    {
        std::unique_lock<std::mutex> lock(_quiesceMutex);
        _quiesceCv.wait(lock, [this] {
            return _activeJobs.load(std::memory_order_acquire) == 0;
        });
    }
    _shutdown.store(true, std::memory_order_release);
    notifyWork();
    // The watchdog can go first: the runtime is quiescent (nothing
    // left to dump) and joining it before the workers keeps its racy
    // reads of worker state trivially safe.
    if (_watchdog.joinable()) {
        {
            std::lock_guard<std::mutex> g(_watchdogMutex);
            _watchdogStop.store(true, std::memory_order_relaxed);
        }
        _watchdogCv.notify_all();
        _watchdog.join();
    }
    for (auto &t : _threads)
        t.join();
    // Non-worker threads must stop routing allocations through our
    // arena once it is gone (pooled blocks still live at this point are
    // caller bugs — deallocate them before the runtime dies).
    numa::clearAmbient(this);
}

std::pair<int, int>
Runtime::workersOfPlace(int p) const
{
    NUMAWS_ASSERT(p >= 0 && p < _options.numPlaces);
    // Matches StealDistribution's even-spread, socket-major packing.
    const int workers = _options.numWorkers;
    const int per = (workers + _options.numPlaces - 1) / _options.numPlaces;
    const int first = p * per;
    const int last = std::min(workers, first + per);
    return {first, last};
}

RuntimeStats
Runtime::stats() const
{
    RuntimeStats s;
    for (const auto &w : _workers) {
        s.counters.merge(const_cast<Worker &>(*w).counters());
        w->foldParkCounters(s.counters);
        w->foldCoreCounters(s.counters);
        w->foldPoolCounters(s.counters);
        w->foldDataCounters(s.counters);
        w->foldJobHists(s);
        s.time.merge(const_cast<Worker &>(*w).timeSplit());
    }
    s.counters.agedClaims +=
        _agedClaims.load(std::memory_order_relaxed);
    for (int c = 0; c < kNumJobClasses; ++c) {
        const AtomicOutcomeCounts &o = _outcomes[c];
        JobOutcomeCounts &d = s.jobOutcomes[c];
        d.done = o.done.load(std::memory_order_relaxed);
        d.failed = o.failed.load(std::memory_order_relaxed);
        d.cancelled = o.cancelled.load(std::memory_order_relaxed);
        d.expired = o.expired.load(std::memory_order_relaxed);
        d.rejected = o.rejected.load(std::memory_order_relaxed);
        d.shed = o.shed.load(std::memory_order_relaxed);
    }
    return s;
}

void
Runtime::resetStats()
{
    NUMAWS_ASSERT(!workActive());
    for (auto &w : _workers) {
        w->counters() = WorkerCounters{};
        w->resetParkCounters();
        w->resetJobHists();
        w->core().resetCounters();
        w->framePool().resetCounters();
        w->dataHeap().resetCounters();
        w->timeSplit() = TimeSplit{};
    }
    _agedClaims.store(0, std::memory_order_relaxed);
    _pressure.reset();
    _interference.reset();
    for (AtomicOutcomeCounts &o : _outcomes) {
        o.done.store(0, std::memory_order_relaxed);
        o.failed.store(0, std::memory_order_relaxed);
        o.cancelled.store(0, std::memory_order_relaxed);
        o.expired.store(0, std::memory_order_relaxed);
        o.rejected.store(0, std::memory_order_relaxed);
        o.shed.store(0, std::memory_order_relaxed);
    }
}

bool
Runtime::idleWait(int socket, int timeout_us)
{
    // The ParkingLot exists iff the policy parks per socket, so its
    // enabled() bit is the park-policy dispatch — no enum branching
    // here. The (possibly EWMA-tuned) timeout comes from the caller's
    // StealCore.
    if (_parking.enabled()) {
        // Park tagged with the socket; only an occupancy edge on this
        // socket (or notifyWork) wakes it before the fallback. The
        // predicate runs after waiter registration, so a wake issued
        // once we are registered is never lost; the fallback bounds
        // the one pre-registration publish window (parking.h docs).
        return _parking.park(
            socket, std::chrono::microseconds(timeout_us),
            [this, socket] {
                // jobPending: the admission queue is not on the board,
                // so the elastic pool must check it explicitly — this
                // predicate is what makes parking safe against
                // admissions racing the registration.
                return shuttingDown() || jobPending()
                       || (workActive() && _board.anyWorkFor(socket));
            });
    }
    std::unique_lock<std::mutex> lock(_parkMutex);
    if (shuttingDown())
        return true;
    // Bounded wait: a lost wakeup costs at most one timeout period.
    return _parkCv.wait_for(lock, std::chrono::microseconds(timeout_us))
           == std::cv_status::no_timeout;
}

void
Runtime::notifyWork()
{
    if (_parking.enabled())
        _parking.wakeAll();
    _parkCv.notify_all();
}

void
Runtime::notifyWorkOn(int socket)
{
    if (_parking.enabled()) {
        _parking.wake(socket);
        return;
    }
    _parkCv.notify_all();
}

void
Runtime::notifyAdmission(Place place)
{
    // One targeted wake per admission: the hinted place's socket when
    // the job carries a hint, else a round-robin socket so bursts of
    // unhinted jobs fan their wakes out instead of thundering one
    // parking-lot slot. A wake that races a worker's park registration
    // is never lost — the park predicate rechecks jobPending() after
    // registering — and a wake targeting a socket with no parked
    // workers is bounded by the fallback timeout of the others.
    const int sockets = _board.numSockets();
    int socket;
    if (isConcretePlace(place) && place < sockets) {
        socket = place;
    } else {
        socket = static_cast<int>(
            _admitCursor.fetch_add(1, std::memory_order_relaxed)
            % static_cast<uint32_t>(sockets));
    }
    // Interference steering: an admission wake aimed at a pressured
    // socket lands on workers that are being timesliced (or retired);
    // redirect it to the nearest calm socket. steerSocket is the
    // identity when adaptation is off or every socket is calm, so the
    // Off schedule is untouched.
    socket = _interference.steerSocket(socket);
    notifyWorkOn(socket);
}

TaskBase *
Runtime::takeJob()
{
    return takeJobAbove(kNumJobClasses);
}

TaskBase *
Runtime::takeJobAbove(int below_cls)
{
    // The claim loop is the dequeue-side overload gate: every popped
    // entry feeds the queue-delay estimator, and cancelled or
    // past-deadline entries resolve here without ever running — their
    // roots are deleted (the state survives via QueuedJob's shared_ptr
    // for the resolution) and the scan continues to the next entry.
    const bool aging = _options.sched.serving.agingWaitUs > 0;
    const int scan =
        below_cls < kNumJobClasses ? below_cls : kNumJobClasses;
    for (;;) {
        if (_jobQueue.empty())
            return nullptr;
        const int64_t now = nowNs();
        QueuedJob job;
        bool promoted = false;
        if (!aging) {
            // Aging off: effective class == nominal class, so the
            // rank-by-effective scan below degenerates to this strict
            // priority order without the per-lane head peeks.
            for (int c = 0; c < scan && !job.valid(); ++c)
                job = _jobQueue.tryPopLane(c);
            if (!job.valid())
                return nullptr;
        } else {
            // Rank nonempty lanes by effective class — each lane's
            // nominal class promoted by its head job's wait
            // (ShedCore::effectiveClass) — with the nominal order
            // breaking ties, so a starved Batch lane eventually
            // outranks a saturated Latency lane.
            int best = -1;
            int best_eff = below_cls;
            for (int c = 0; c < kNumJobClasses; ++c) {
                const int64_t head = _jobQueue.headSubmitNs(c);
                if (head < 0)
                    continue;
                const int eff = _shed.effectiveClass(c, now - head);
                if (eff < best_eff) {
                    best_eff = eff;
                    best = c;
                }
            }
            if (best < 0)
                return nullptr;
            job = _jobQueue.tryPopLane(best);
            if (!job.valid())
                continue; // lost the lane to a concurrent claimer
            promoted = best_eff < best;
        }
        JobState &s = *job.state;
        _shed.observeDelay(static_cast<int>(s.opts.cls),
                           now - s.submitNs);
        if (s.cancelRequested.load(std::memory_order_acquire)) {
            delete job.root;
            resolveUnrun(s, JobOutcome::Cancelled, /*was_active=*/true);
            continue;
        }
        if (s.deadlineAtNs != 0 && now > s.deadlineAtNs) {
            delete job.root;
            resolveUnrun(s, JobOutcome::Expired, /*was_active=*/true);
            continue;
        }
        if (promoted)
            _agedClaims.fetch_add(1, std::memory_order_relaxed);
        return job.root;
    }
}

void
Runtime::maybePreempt(int cls)
{
    if (!_options.sched.serving.preempt)
        return;
    // Snapshot each worker's running class; an idle worker (-1) makes
    // the victim pick abstain — the admission wake is already enough.
    const int n = static_cast<int>(_workers.size());
    std::vector<int8_t> running(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w)
        running[static_cast<std::size_t>(w)] = _workers[w]->runningCls();
    const int victim =
        StealCore::pickPreemptVictim(cls, running.data(), n);
    if (victim >= 0)
        _workers[victim]->core().requestYield();
}

void
Runtime::enqueueJob(TaskBase *root, std::shared_ptr<JobState> state)
{
    const Place place = state->opts.place;
    // QueueDelay shedding at the admission edge: while any class's
    // observed queue delay sits above its target, each admission pays
    // for itself by evicting one queued job from the lowest class —
    // one-in-one-out, so the backlog stops growing under overload and
    // the Latency lane keeps draining at the Batch lane's expense.
    // Only a *standing* queue is shed (CoDel's rule): when the lanes
    // were empty the arrival is the server's next unit of work, and
    // evicting it would starve a busy-but-drained server.
    const bool standing = !_jobQueue.empty();
    const int cls = static_cast<int>(state->opts.cls);
    _jobQueue.push(root, std::move(state));
    if (standing && _shed.overloaded()) {
        QueuedJob victim = _jobQueue.popShedVictim();
        if (victim.valid()) {
            delete victim.root;
            resolveUnrun(*victim.state, JobOutcome::Rejected,
                         /*was_active=*/true);
        }
    }
    // Cooperative preemption: if every worker is busy with lower-class
    // work, ask the lowest-priority one to yield at its next boundary.
    maybePreempt(cls);
    // Shed-aware elastic unpark: once any class's delay EWMA reaches
    // the configured lead fraction of its shed target, escalate from
    // one targeted wake to waking every parked worker — capacity
    // arrives before the shed threshold crosses, not after.
    if (_shed.unparkPressure())
        notifyWork();
    else
        notifyAdmission(place);
}

void
Runtime::cancelQueuedJobs()
{
    for (;;) {
        QueuedJob job = _jobQueue.tryPop();
        if (!job.valid())
            return;
        delete job.root;
        resolveUnrun(*job.state, JobOutcome::Cancelled,
                     /*was_active=*/true);
    }
}

void
Runtime::watchdogLoop()
{
    // Progress = tasks completed (per-worker stamps) + jobs resolved.
    // A window in which the sum is unchanged while work is active means
    // every worker is wedged, parked, or spinning on something that
    // never completes — exactly the state worth a dump. All reads are
    // racy and relaxed: a rare false dump costs a few stderr lines.
    uint64_t last_progress = ~uint64_t{0};
    std::unique_lock<std::mutex> lock(_watchdogMutex);
    while (!_watchdogStop.load(std::memory_order_relaxed)) {
        _watchdogCv.wait_for(
            lock, std::chrono::milliseconds(_options.watchdogMs));
        if (_watchdogStop.load(std::memory_order_relaxed))
            return;
        uint64_t progress = _jobsFinished.load(std::memory_order_relaxed);
        for (const auto &w : _workers)
            progress += w->progressStamp();
        if (workActive() && progress == last_progress)
            dumpWorkerStates();
        last_progress = progress;
    }
}

void
Runtime::dumpWorkerStates()
{
    _watchdogDumps.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(
        stderr,
        "numaws watchdog: no task or job completed in %d ms "
        "(activeJobs=%lld queued=%s)\n",
        _options.watchdogMs,
        static_cast<long long>(
            _activeJobs.load(std::memory_order_relaxed)),
        jobPending() ? "yes" : "no");
    for (const auto &w : _workers)
        std::fprintf(
            stderr,
            "numaws watchdog:   worker %2d place %d: %s%s cls=%d "
            "deque=%zu progress=%llu pressure=%d\n",
            w->id(), w->place(),
            w->parkedNow() ? "parked" : "running",
            w->retiredNow() ? "/retired" : "",
            static_cast<int>(w->runningCls()), w->deque().size(),
            static_cast<unsigned long long>(w->progressStamp()),
            _pressure.pressure(w->place()));
}

void
Runtime::resolveUnrun(JobState &state, JobOutcome outcome,
                      bool was_active)
{
    const int cls = static_cast<int>(state.opts.cls);
    AtomicOutcomeCounts &c = _outcomes[cls];
    switch (outcome) {
    case JobOutcome::Cancelled:
        c.cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
    case JobOutcome::Expired:
        c.expired.fetch_add(1, std::memory_order_relaxed);
        break;
    case JobOutcome::Rejected:
        // Submit-time rejections never joined the active count; shed
        // victims did — so the was_active bit doubles as the cause
        // split between the two Rejected tallies.
        (was_active ? c.shed : c.rejected)
            .fetch_add(1, std::memory_order_relaxed);
        break;
    default:
        NUMAWS_PANIC("resolveUnrun with outcome %s",
                     jobOutcomeName(outcome));
    }
    state.finishNs.store(nowNs(), std::memory_order_relaxed);
    state.outcome.store(outcome, std::memory_order_release);
    _jobsFinished.fetch_add(1, std::memory_order_relaxed);
    // Same ordering contract as finishJob: retire the active slot
    // before publishing done, so a released waiter observes the
    // runtime quiescent.
    if (was_active
        && _activeJobs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> g(_quiesceMutex);
        _quiesceCv.notify_all();
    }
    {
        std::lock_guard<std::mutex> g(state.mutex);
        state.done.store(true, std::memory_order_release);
    }
    state.cv.notify_all();
}

void
Runtime::finishJob(JobState &state, JobOutcome outcome)
{
    const int64_t t = nowNs();
    state.finishNs.store(t, std::memory_order_relaxed);
    // Deterministic late-finish expiry: a body that ran past its
    // deadline without hitting a cancellation boundary still resolves
    // Expired (the threaded analogue of the simulator's clock-edge
    // check), keeping Done a statement about work served in time.
    if (outcome == JobOutcome::Done && state.deadlineAtNs != 0
        && t > state.deadlineAtNs)
        outcome = JobOutcome::Expired;
    Worker *w = Worker::current();
    NUMAWS_ASSERT(w != nullptr); // job roots execute on workers only
    // Latency percentiles describe served work: only jobs that ran to
    // completion (Done/Failed) are recorded.
    if (outcome == JobOutcome::Done || outcome == JobOutcome::Failed)
        w->recordJobLatency(state.opts.cls, t - state.submitNs);
    AtomicOutcomeCounts &c = _outcomes[static_cast<int>(state.opts.cls)];
    switch (outcome) {
    case JobOutcome::Done:
        c.done.fetch_add(1, std::memory_order_relaxed);
        break;
    case JobOutcome::Failed:
        c.failed.fetch_add(1, std::memory_order_relaxed);
        break;
    case JobOutcome::Cancelled:
        c.cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
    case JobOutcome::Expired:
        c.expired.fetch_add(1, std::memory_order_relaxed);
        break;
    default:
        NUMAWS_PANIC("finishJob with outcome %s",
                     jobOutcomeName(outcome));
    }
    state.outcome.store(outcome, std::memory_order_release);
    _jobsFinished.fetch_add(1, std::memory_order_relaxed);
    // Retire from the active count *before* publishing done: a waiter
    // released by the done flag must observe the runtime quiescent
    // (resetStats asserts !workActive() right after a run()).
    if (_activeJobs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last in-flight job: release a destructor waiting to quiesce.
        std::lock_guard<std::mutex> g(_quiesceMutex);
        _quiesceCv.notify_all();
    }
    {
        std::lock_guard<std::mutex> g(state.mutex);
        state.done.store(true, std::memory_order_release);
    }
    state.cv.notify_all();
}

} // namespace numaws
