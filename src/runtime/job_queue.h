/**
 * @file
 * MPMC admission queue feeding job roots to the worker pool.
 *
 * Submitters (any thread) deposit a job's root task into its class lane;
 * idle workers claim roots in strict class order (Latency > Normal >
 * Batch), FIFO within a class. The queue is deliberately *not* on the
 * spawn fast path — admission happens at most once per job, so a short
 * per-lane spinlock critical section is the right trade against lock-free
 * complexity. What must be cheap is the *dry check* the worker idle loop
 * and the park predicates perform: empty() is a single atomic load of an
 * approximate size (exact when quiescent, momentarily conservative under
 * concurrent pops — a false "nonempty" costs one lane scan, a false
 * "empty" cannot outlive the concurrent push's admission wake plus the
 * parking fallback period).
 */
#ifndef NUMAWS_RUNTIME_JOB_QUEUE_H
#define NUMAWS_RUNTIME_JOB_QUEUE_H

#include <atomic>
#include <cstdint>
#include <deque>

#include "runtime/job.h"
#include "support/spin_lock.h"

namespace numaws {

class TaskBase;

/** Priority-lane MPMC FIFO of unclaimed job root tasks. */
class JobQueue
{
  public:
    /** Deposit @p root on the @p cls lane. */
    void push(TaskBase *root, JobClass cls);

    /** Claim the oldest root of the highest non-empty class, or null. */
    TaskBase *tryPop();

    /** Fast dry check (one atomic load; see file comment for the
     * transient-staleness contract). */
    bool
    empty() const
    {
        return _size.load(std::memory_order_acquire) == 0;
    }

    /** Jobs ever admitted (diagnostics). */
    uint64_t
    pushes() const
    {
        return _pushes.load(std::memory_order_relaxed);
    }

  private:
    struct Lane
    {
        SpinLock lock;
        std::deque<TaskBase *> q;
    };

    Lane _lanes[kNumJobClasses];
    /** Upper-bound size signal: incremented after a push is visible,
     * decremented only on a successful pop. */
    std::atomic<int64_t> _size{0};
    std::atomic<uint64_t> _pushes{0};
};

} // namespace numaws

#endif // NUMAWS_RUNTIME_JOB_QUEUE_H
