/**
 * @file
 * MPMC admission queue feeding job roots to the worker pool.
 *
 * Submitters (any thread) deposit a job's root task into its class lane;
 * idle workers claim roots in strict class order (Latency > Normal >
 * Batch), FIFO within a class. The queue is deliberately *not* on the
 * spawn fast path — admission happens at most once per job, so a short
 * per-lane spinlock critical section is the right trade against lock-free
 * complexity. What must be cheap is the *dry check* the worker idle loop
 * and the park predicates perform: empty() is a single atomic load of an
 * approximate size (exact when quiescent, momentarily conservative under
 * concurrent pops — a false "nonempty" costs one lane scan, a false
 * "empty" cannot outlive the concurrent push's admission wake plus the
 * parking fallback period).
 *
 * Since PR 7 each entry pairs the root with its shared JobState, so the
 * claimer can decide the job's fate *before* running it (cancelled or
 * past-deadline roots are skipped at claim time), and the overload layer
 * can bound lanes (laneDepth vs ServingPolicy::laneCapacity) and shed
 * queued jobs from the lowest class (popShedVictim).
 */
#ifndef NUMAWS_RUNTIME_JOB_QUEUE_H
#define NUMAWS_RUNTIME_JOB_QUEUE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "runtime/job.h"
#include "support/spin_lock.h"

namespace numaws {

class TaskBase;

/** One admission-queue entry: a job's root and its completion record.
 * Holding the state by shared_ptr keeps it alive across a claim-time
 * skip, where the root (whose closure owns the other reference) is
 * deleted without running. */
struct QueuedJob
{
    TaskBase *root = nullptr;
    std::shared_ptr<JobState> state;

    bool valid() const { return root != nullptr; }
};

/** Priority-lane MPMC FIFO of unclaimed job root tasks. */
class JobQueue
{
  public:
    /** Deposit @p root on its class lane (class from @p state). */
    void push(TaskBase *root, std::shared_ptr<JobState> state);

    /** Claim the oldest entry of the highest non-empty class, or an
     * invalid QueuedJob. */
    QueuedJob tryPop();

    /** Shedding pop: the oldest entry of the *lowest* non-empty class
     * (Batch before Normal before Latency), or invalid. The QueueDelay
     * policy's graceful-degradation order. */
    QueuedJob popShedVictim();

    /** Claim the oldest entry of one specific lane, or invalid. Claim
     * loops that rank lanes by *effective* class (priority aging) pick
     * the lane first, then pop from it directly. */
    QueuedJob
    tryPopLane(int cls)
    {
        return popFromLane(_lanes[cls]);
    }

    /** Submit timestamp (ns) of @p cls's oldest queued job, or -1 when
     * the lane is empty — the head-wait signal priority aging ranks
     * lanes by. Takes the lane lock; claim-path only, never spawn. */
    int64_t
    headSubmitNs(int cls)
    {
        Lane &lane = _lanes[cls];
        std::lock_guard<SpinLock> g(lane.lock);
        return lane.q.empty() ? -1 : lane.q.front().state->submitNs;
    }

    /** Fast dry check (one atomic load; see file comment for the
     * transient-staleness contract). */
    bool
    empty() const
    {
        return _size.load(std::memory_order_acquire) == 0;
    }

    /** Queued-but-unclaimed jobs on @p cls's lane (same staleness
     * contract as empty(); the admission-control depth signal). */
    int64_t
    laneDepth(int cls) const
    {
        return _lanes[cls].depth.load(std::memory_order_acquire);
    }

    /** Jobs ever admitted (diagnostics). */
    uint64_t
    pushes() const
    {
        return _pushes.load(std::memory_order_relaxed);
    }

  private:
    struct Lane
    {
        SpinLock lock;
        std::deque<QueuedJob> q;
        /** Per-lane size signal with the same push-then-increment /
         * decrement-on-pop contract as _size. */
        std::atomic<int64_t> depth{0};
    };

    QueuedJob popFromLane(Lane &lane);

    Lane _lanes[kNumJobClasses];
    /** Upper-bound size signal: incremented after a push is visible,
     * decremented only on a successful pop. */
    std::atomic<int64_t> _size{0};
    std::atomic<uint64_t> _pushes{0};
};

} // namespace numaws

#endif // NUMAWS_RUNTIME_JOB_QUEUE_H
