#include "runtime/api.h"

namespace numaws {

int
numPlaces()
{
    Worker *w = Worker::current();
    return w == nullptr ? 1 : w->runtime().numPlaces();
}

Place
currentPlace()
{
    Worker *w = Worker::current();
    return w == nullptr ? kAnyPlace : w->place();
}

Runtime *
currentRuntime()
{
    Worker *w = Worker::current();
    return w == nullptr ? nullptr : &w->runtime();
}

CancelToken
currentCancelToken()
{
    Worker *w = Worker::current();
    if (w == nullptr)
        return CancelToken{};
    return CancelToken{w->currentJob()};
}

RangeChunk
chunkOf(int64_t n, int chunks, int chunk)
{
    const int64_t base = n / chunks;
    const int64_t extra = n % chunks;
    const int64_t begin =
        chunk * base + std::min<int64_t>(chunk, extra);
    const int64_t len = base + (chunk < extra ? 1 : 0);
    return {begin, begin + len};
}

} // namespace numaws
