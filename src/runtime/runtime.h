/**
 * @file
 * NUMA-WS threaded runtime: the adoptable task-parallel platform.
 *
 * Workers are surrogates of processing cores (paper Section II). Each owns
 * a THE-protocol deque, a single-entry mailbox, and a private RNG. Workers
 * are grouped into virtual places; the scheduler honors place hints with
 * best effort via locality-biased steals and lazy work pushing, but load
 * balancing always comes first (a starving worker will steal against the
 * hint rather than idle).
 *
 * Since PR 4 every scheduling *decision* — victim selection, the
 * mailbox-vs-deque coin flip, PUSHBACK receivers and thresholds,
 * escalation, dry-poll cadence, parking streaks and tuning — lives in
 * the engine-agnostic StealCore (sched/steal_core.h), configured by the
 * SchedPolicy nested in RuntimeOptions (sched/policy.h, where the full
 * knob table is documented). Worker::trySteal/pushBack/mainLoop are
 * thin drivers that execute the core's actions against the threaded
 * mechanics: real deques, mailboxes, condition variables, and the
 * ParkingLot. The simulator drives the very same core, so ablations on
 * either engine toggle one shared implementation.
 *
 * Since PR 6 the public entry point is *job submission* (the serving
 * front door): Runtime::submit(fn, JobOptions) deposits an independent
 * root computation into the JobQueue and returns a joinable JobHandle
 * with per-job latency; batch run(fn) is submit(fn).wait() — the same
 * code path. Idle workers claim queued jobs between steals, and the
 * pool is *elastic*: workers park through the ParkingLot whenever the
 * occupancy board and the JobQueue are both dry, waking on admission
 * edges, so idle cores are yielded between bursts.
 */
#ifndef NUMAWS_RUNTIME_RUNTIME_H
#define NUMAWS_RUNTIME_RUNTIME_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <vector>

#include "deque/mailbox.h"
#include "deque/ws_deque.h"
#include "mem/numa_heap.h"
#include "runtime/job.h"
#include "runtime/job_queue.h"
#include "runtime/task.h"
#include "runtime/task_pool.h"
#include "sched/interference_core.h"
#include "sched/occupancy.h"
#include "sched/parking.h"
#include "sched/policy.h"
#include "sched/shed_core.h"
#include "sched/steal_core.h"
#include "support/cache_aligned.h"
#include "support/latency_hist.h"
#include "support/panic.h"
#include "support/pressure.h"
#include "support/rng.h"
#include "support/spin_lock.h"
#include "support/timing.h"
#include "topology/machine.h"
#include "topology/steal_distribution.h"

namespace numaws {

class Runtime;

/** Hard cap on frames moved by one batched remote steal. */
inline constexpr std::size_t kStealHalfCap = 16;

/**
 * What Runtime teardown does with jobs still queued (running jobs are
 * always completed — a body cannot be abandoned mid-flight).
 */
enum class ShutdownPolicy : uint8_t
{
    /** Wait for every submitted job, queued included, to finish (the
     * PR 6 behavior and the default). */
    Drain,
    /** Resolve queued-but-unstarted jobs as Cancelled without running
     * them, then wait only for the jobs already executing. The
     * fast-teardown choice for servers dying under load. */
    CancelQueued,
};

/**
 * Runtime construction parameters: engine-side knobs only. Every
 * scheduling *decision* knob (victim selection, parking, PUSHBACK
 * targeting, escalation, mailbox capacity, ...) lives in the nested
 * SchedPolicy, shared verbatim with the simulator's SimConfig — see
 * sched/policy.h for the full table and PR 4 migration notes.
 */
struct RuntimeOptions
{
    /** Worker threads; 0 means one per host CPU. */
    int numWorkers = 0;
    /** Virtual places the workers are spread over. */
    int numPlaces = 1;
    /** The unified scheduling policy (sched/policy.h). */
    SchedPolicy sched{};
    /**
     * Optional page-home registry for data-home affinity (not owned;
     * must outlive the runtime). Tasks spawned with a data range resolve
     * their home sockets through it.
     */
    const PageMap *pageMap = nullptr;
    /** Pin worker threads to host CPUs (best effort). */
    bool pinThreads = false;
    /**
     * Task-frame allocation: NUMA-local per-worker pools (default) or
     * global-heap new/delete per spawn (the ablation baseline). An
     * engine-side mechanics knob, deliberately *not* in SchedPolicy:
     * the simulator has no allocator to steer, and no scheduling
     * decision may depend on it (the engine-parity contract).
     */
    TaskPoolPolicy taskPool = TaskPoolPolicy::Pooled;
    /**
     * User-data allocation (numa::allocate / NumaAllocator / PartedVec):
     * per-worker NUMA heaps plus PageMap-registered arena blocks
     * (default), or plain unregistered heap blocks (the ablation
     * baseline — pre-data-plane behavior). Engine-side like taskPool:
     * the simulator has no allocator, and no scheduling decision may
     * depend on this knob.
     */
    DataHeapPolicy dataHeap = DataHeapPolicy::Pooled;
    /** Root seed; worker RNGs derive from it. */
    uint64_t seed = 0x5eed;
    /** Deque capacity (spawn depth bound). */
    std::size_t dequeCapacity = 1 << 16;
    /**
     * Sampled work/scheduling/idle accounting: read the clock around
     * 1-in-2^N executed tasks instead of every one (0 == sample every
     * task, the exact mode). Unsampled tasks are counted and their
     * work is estimated from the last sampled task's duration at the
     * next clock read, so bucket *totals* still sum to wall time; the
     * split converges to the exact one for homogeneous tasks (the
     * fine-grained regime where the two nowNs() calls — ~40ns/task —
     * are worth cutting).
     */
    int timeSplitSampleShift = 0;
    /** Teardown policy for jobs still queued when the Runtime is
     * destroyed (see ShutdownPolicy). */
    ShutdownPolicy shutdownPolicy = ShutdownPolicy::Drain;
    /**
     * Stall watchdog, milliseconds; 0 (default) disables. When set, a
     * monitor thread checks every window that at least one task or job
     * completed while work was active; a silent window emits a
     * one-line-per-worker state dump (park state, running class, deque
     * depth, socket pressure) to stderr. Diagnosis only — it never
     * kills or unwedges anything.
     */
    int watchdogMs = 0;
};

/** Per-worker event counters, aggregated by Runtime::stats(). */
struct WorkerCounters
{
    uint64_t spawns = 0;
    uint64_t stealAttempts = 0;
    uint64_t steals = 0;          ///< successful deque steals
    uint64_t mailboxTakes = 0;    ///< frames obtained from a mailbox
    uint64_t pushbackAttempts = 0;
    uint64_t pushbackSuccesses = 0;
    uint64_t pushbackGiveUps = 0; ///< threshold reached, ran it ourselves
    uint64_t tasksExecuted = 0;
    uint64_t tasksOnHintedPlace = 0; ///< hinted tasks run where hinted
    uint64_t stealHalfBatches = 0;   ///< batched remote steals performed
    uint64_t stealHalfTasks = 0;     ///< tasks moved by batched steals
    /** Decision counters (stealAttempts above, and the three below) are
     * maintained by each worker's StealCore — the shared policy brain —
     * and folded in by Runtime::stats() via Worker::foldCoreCounters. */
    uint64_t escalations = 0;        ///< hierarchical level widenings
    uint64_t levelSkips = 0;         ///< dry levels skipped via the board
    uint64_t dryPolls = 0;           ///< probes skipped on a dry board
    uint64_t yields = 0;             ///< preemption yields serviced
    /** Jobs claimed at an aged (promoted) effective class — the
     * priority-aging counter, bumped runtime-wide by takeJobAbove. */
    uint64_t agedClaims = 0;
    /** @name Task-frame pool counters
     * Maintained by each worker's TaskFramePool and folded in by
     * Runtime::stats() via Worker::foldPoolCounters. framesRecycled /
     * spawns is the steady-state figure of merit (~1.0 once the pool
     * is warm); remoteFrees counts frames thieves pushed home across
     * workers; slabBytes is a gauge of carved pool memory. */
    /// @{
    uint64_t framesRecycled = 0; ///< pool allocations served from a free list
    uint64_t remoteFrees = 0;    ///< frames freed onto a remote-free stack
    uint64_t slabBytes = 0;      ///< pool memory carved from NumaArena
    uint64_t slabFallbacks = 0;  ///< failed carves degraded to heap frames
    /// @}
    /** @name Data-plane counters
     * Maintained by each worker's NumaHeap (the user-data sibling of
     * the frame pool) and folded in via Worker::foldDataCounters.
     * dataBytesPooled is user bytes served from the size-classed fast
     * path; dataRemoteFrees counts blocks freed cross-thread onto a
     * remote stack; dataSlabBytes gauges carved heap memory. */
    /// @{
    uint64_t dataBytesPooled = 0;
    uint64_t dataRemoteFrees = 0;
    uint64_t dataSlabBytes = 0;
    uint64_t dataSlabFallbacks = 0; ///< failed carves, plain-heap blocks
    /// @}
    /** @name Parking counters
     * Unlike every other counter (written only while executing or
     * stealing inside an active root), these advance on the idle path
     * too — workers park while the runtime is quiescent — so the
     * live per-worker copies are atomics on Worker and stats() folds
     * them in; these aggregate fields are plain (single-threaded
     * aggregation only). */
    /// @{
    uint64_t parks = 0;              ///< idleWait entries
    uint64_t parkWakes = 0;          ///< parks ended by a notification
    uint64_t parkTimeouts = 0;       ///< parks ended by the timeout
    uint64_t spuriousWakes = 0;      ///< wakes with a still-dry board
    /** Nanoseconds spent parked in idleWait: the elastic-pool yield
     * metric (parkedNs over total worker-idle time is the fraction of
     * idleness actually handed back to the OS). Atomic on Worker for
     * the same reason as the park counters. */
    uint64_t parkedNs = 0;
    /** Interference adaptation (ServingPolicy::interference): times
     * this worker entered retirement (parked by the InterferenceCore
     * verdict) and times it was reinstated. Idle-path counters like
     * the park group: atomics on Worker, folded by stats(). */
    uint64_t interferenceRetires = 0;
    uint64_t interferenceReinstates = 0;
    /// @}
    /** Jobs whose root completed on this worker (serving front door). */
    uint64_t jobsCompleted = 0;

    void merge(const WorkerCounters &o);
};

/** Per-class job-resolution tallies (overload-protection telemetry).
 * `rejected` counts submit-time admission rejections, `shed` counts
 * queued jobs the QueueDelay policy removed (their JobOutcome is also
 * Rejected — the counters split the two causes). */
struct JobOutcomeCounts
{
    uint64_t done = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t expired = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
};

/** Aggregated runtime statistics (counters plus the time split). */
struct RuntimeStats
{
    WorkerCounters counters;
    TimeSplit time;
    /** Aggregate per-job latency (submit -> finish) across all classes,
     * merged from the per-worker histograms; see also quantile().
     * Records jobs that ran to completion (Done/Failed) — resolved-
     * without-running jobs appear in jobOutcomes, not here, so latency
     * percentiles stay a statement about served work. */
    LatencyHist jobLatency;
    /** Same, split by JobClass (index with static_cast<int>(cls)). */
    LatencyHist jobLatencyByClass[kNumJobClasses];
    /** Per-class outcome tallies (index with static_cast<int>(cls)). */
    JobOutcomeCounts jobOutcomes[kNumJobClasses];
};

/**
 * Fork-join synchronization scope: the library's cilk_sync.
 *
 * Every spawn names its group; sync() returns once all tasks spawned on
 * the group have completed, helping to execute work while waiting (first
 * its own deque — descendants only — then stealing, so a blocked worker is
 * never idle while work exists). Groups nest arbitrarily.
 */
class TaskGroup
{
  public:
    TaskGroup();
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /**
     * Spawn @p fn as a child task.
     * @param place locality hint: a concrete place, kAnyPlace, or
     *        kInheritPlace (default) to adopt the spawner's current hint
     *        (the paper's "subsequently spawned computation inherits the
     *        locality" rule).
     */
    template <typename F>
    void spawn(F &&fn, Place place = kInheritPlace);

    /**
     * Spawn @p fn annotated with the data range it chiefly touches.
     * When the runtime has a PageMap (RuntimeOptions::pageMap), workers
     * resolve the range's home sockets and use them as the data-home
     * affinity signal for VictimPolicy::OccupancyAffinity steals.
     */
    template <typename F>
    void spawn(F &&fn, Place place, const void *data,
               std::size_t data_bytes);

    /** Wait for all spawned tasks, then rethrow the first exception. */
    void sync();

    /** Outstanding children (test/diagnostic hook). */
    int64_t pending() const
    {
        return _pending.load(std::memory_order_acquire);
    }

    /** @name Runtime-internal */
    /// @{
    void onChildStart() { _pending.fetch_add(1, std::memory_order_relaxed); }
    void onChildDone() { _pending.fetch_sub(1, std::memory_order_release); }
    void recordException(std::exception_ptr e);
    /// @}

  private:
    std::atomic<int64_t> _pending{0};
    SpinLock _exceptionLock;
    std::exception_ptr _exception;
};

/**
 * A worker thread: deque + mailbox + RNG + place, and the scheduling loop.
 */
class Worker
{
  public:
    Worker(Runtime &runtime, int id, int place, uint64_t seed,
           std::size_t deque_capacity);

    int id() const { return _id; }
    Place place() const { return _place; }
    Runtime &runtime() { return _runtime; }

    /** The worker executing the calling thread, or nullptr. */
    static Worker *current();

    /** Owner-side push (spawn path). */
    void pushTask(TaskBase *task);

    /** Current inherited locality hint of the executing task. */
    Place currentHint() const { return _currentHint; }

    /** The job whose task this worker is executing right now, or null
     * on the idle path. Maintained by executeTask (stolen subtasks
     * carry their job via TaskBase::job), it is what gives TaskGroup's
     * spawn/sync boundaries and currentCancelToken their cancellation
     * view. */
    JobState *currentJob() const { return _currentJob; }

    /** @name Cooperative preemption (ServingPolicy::preempt) */
    /// @{
    /** Class of the job this worker is executing, -1 on the idle path.
     * Maintained by executeTask (only when preemption is enabled) so
     * the admission path can pick a preemption victim without touching
     * the workers' hot state. */
    int8_t
    runningCls() const
    {
        return _runningCls.load(std::memory_order_relaxed);
    }

    /** Spawn/sync boundary peek: preemption on and a yield raised.
     * One cached bool plus one relaxed load — the work-first price. */
    bool
    yieldPending() const
    {
        return _preemptEnabled && _core.yieldRequested();
    }

    /** Consume the yield directive and, if a strictly higher-class job
     * is queued, run it inline before returning to the preempted job.
     * The preempted job's deque-resident children stay stealable
     * throughout — that is its checkpointed continuation. */
    void serviceYield();
    /// @}

    WorkerCounters &counters() { return _counters; }
    TimeSplit &timeSplit() { return _time; }
    /** Fold the StealCore decision counters into @p into
     * (Runtime::stats). */
    void
    foldCoreCounters(WorkerCounters &into) const
    {
        const StealCoreCounters &c = _core.counters();
        into.stealAttempts += c.stealAttempts;
        into.dryPolls += c.dryPolls;
        into.levelSkips += c.levelSkips;
        into.escalations += c.escalations;
        into.yields += c.yields;
    }
    /** Fold the task-frame pool counters into @p into (Runtime::stats). */
    void
    foldPoolCounters(WorkerCounters &into) const
    {
        into.framesRecycled += _framePool.framesRecycled();
        into.remoteFrees += _framePool.remoteFrees();
        into.slabBytes += _framePool.slabBytes();
        into.slabFallbacks += _framePool.slabFallbacks();
    }
    /** Fold the user-data heap counters into @p into (Runtime::stats). */
    void
    foldDataCounters(WorkerCounters &into) const
    {
        into.dataBytesPooled += _dataHeap.bytesPooled();
        into.dataRemoteFrees += _dataHeap.remoteFrees();
        into.dataSlabBytes += _dataHeap.slabBytes();
        into.dataSlabFallbacks += _dataHeap.slabFallbacks();
    }
    /** Fold the atomic park counters into @p into (Runtime::stats). */
    void
    foldParkCounters(WorkerCounters &into) const
    {
        into.parks += _parks.load(std::memory_order_relaxed);
        into.parkWakes += _parkWakes.load(std::memory_order_relaxed);
        into.parkTimeouts +=
            _parkTimeouts.load(std::memory_order_relaxed);
        into.spuriousWakes +=
            _spuriousWakes.load(std::memory_order_relaxed);
        into.parkedNs += _parkedNs.load(std::memory_order_relaxed);
        into.interferenceRetires +=
            _interferenceRetires.load(std::memory_order_relaxed);
        into.interferenceReinstates +=
            _interferenceReinstates.load(std::memory_order_relaxed);
    }
    void
    resetParkCounters()
    {
        _parks.store(0, std::memory_order_relaxed);
        _parkWakes.store(0, std::memory_order_relaxed);
        _parkTimeouts.store(0, std::memory_order_relaxed);
        _spuriousWakes.store(0, std::memory_order_relaxed);
        _parkedNs.store(0, std::memory_order_relaxed);
        _interferenceRetires.store(0, std::memory_order_relaxed);
        _interferenceReinstates.store(0, std::memory_order_relaxed);
    }
    /** Record a completed job's serving latency (Runtime::finishJob;
     * job roots always finish on a worker, so this is thread-private). */
    void
    recordJobLatency(JobClass cls, int64_t ns)
    {
        ++_counters.jobsCompleted;
        _jobHist[static_cast<int>(cls)].record(
            ns > 0 ? static_cast<uint64_t>(ns) : 0);
    }
    /** Merge this worker's per-class job histograms (Runtime::stats). */
    void
    foldJobHists(RuntimeStats &into) const
    {
        for (int c = 0; c < kNumJobClasses; ++c) {
            into.jobLatency.merge(_jobHist[c]);
            into.jobLatencyByClass[c].merge(_jobHist[c]);
        }
    }
    void
    resetJobHists()
    {
        for (LatencyHist &h : _jobHist)
            h = LatencyHist{};
    }
    /** @name Liveness introspection (watchdog / tests)
     * Racy relaxed reads by design — diagnosis, never decisions. */
    /// @{
    /** Monotonic count of completed task bodies and serviced parks:
     * the watchdog's per-worker liveness signal. */
    uint64_t
    progressStamp() const
    {
        return _progressStamp.load(std::memory_order_relaxed);
    }
    /** Is the worker inside idleWait (or retired-parked) right now? */
    bool
    parkedNow() const
    {
        return _parkedNow.load(std::memory_order_relaxed);
    }
    /** Is the worker currently retired by the InterferenceCore? */
    bool
    retiredNow() const
    {
        return _retiredNow.load(std::memory_order_relaxed);
    }
    /// @}
    Mailbox<TaskBase> &mailbox() { return _mailbox; }
    WsDeque<TaskBase> &deque() { return _deque; }
    /** The worker's scheduling brain (decisions, RNG, tuners). */
    StealCore &core() { return _core; }
    /** The worker's NUMA-local task-frame pool (spawn fast path). */
    TaskFramePool &framePool() { return _framePool; }
    /** The worker's NUMA-local user-data heap (numa::allocate). */
    NumaHeap &dataHeap() { return _dataHeap; }

    /**
     * Spawn-time placement hint for a data-annotated spawn: resolve the
     * range's *registered* page homes through the runtime's affinity
     * PageMap and pick a place from the resulting mask
     * (StealCore::placeFromAffinity). kAnyPlace when nothing is
     * registered — unregistered data must not herd spawns onto
     * socket 0.
     */
    Place placeForData(const void *data, std::size_t bytes) const;

    /** @name Runtime-internal scheduling entry points */
    /// @{
    void mainLoop();
    /** Help execute work until @p group has no pending children. */
    void helpSync(TaskGroup &group);
    /** Help execute work — queued jobs included, so nested
     * submit-and-wait cannot deadlock — until @p job completes
     * (the worker-side JobHandle::wait). */
    void helpJob(const JobState &job);
    /** Bounded helpJob: stop once nowNs() passes @p deadline_ns (the
     * worker-side JobHandle::waitUntil). Returns whether @p job is
     * done. */
    bool helpJobUntil(const JobState &job, int64_t deadline_ns);
    /** Execute @p task, maintaining hint inheritance and accounting. */
    void executeTask(TaskBase *task);
    /** Destroy @p task and route its frame home: local LIFO when this
     * worker owns it, the owner's remote-free stack when a thief
     * finished a stolen task, plain delete for heap frames. */
    void releaseTask(TaskBase *task);
    /**
     * One steal attempt per the NUMA-WS protocol (biased victim, coin
     * flip, mailbox outcomes, pushback). Returns a task to run or null.
     */
    TaskBase *trySteal();
    /**
     * Lazy work pushing: try to park @p task in a mailbox on its hinted
     * place. Returns true if the frame was handed off; false once the
     * pushing threshold is reached (caller must run it).
     */
    bool pushBack(TaskBase *task);
    /// @}

  private:
    TaskBase *acquireLocal();

    /** Epoch-cadence pressure sampling on the scheduling path: close
     * the epoch when due, publish to the PressureBoard, and (place
     * leader only) advance the InterferenceCore hysteresis. */
    void maybeSamplePressure();
    /** Retired verdict observed on the idle path: park until the
     * verdict clears or shutdown, maintaining the retire counters and
     * (leader) the epoch ticks that drive re-expansion probing. */
    void retirePark();

    /**
     * Linear-timeline time accounting: a worker's lifetime is a single
     * sequence of segments, each attributed to exactly one bucket; nested
     * helping merely switches buckets, so nothing is double counted.
     *
     * Sampled mode (RuntimeOptions::timeSplitSampleShift > 0): tasks
     * executed without a clock read accumulate in _unsampledTasks; the
     * next switch estimates their work as unsampled-count times the
     * last sampled task's duration, clamped to the elapsed segment, and
     * charges the remainder to the segment's nominal bucket — totals
     * stay exactly wall time, only the split is approximated.
     */
    void
    switchBucket(TimeSplit::Bucket b)
    {
        const int64_t t = nowNs();
        int64_t elapsed = t - _mark;
        if (_unsampledTasks > 0) {
            // Mean over *all* sampled tasks, not the most recent one:
            // task sizes are bimodal (tiny interior spawns, fat leaves)
            // and a last-sample estimator collapses whenever the last
            // sample happened to be an interior task, leaking leaf work
            // into the enclosing Scheduling/Idle segment. Before the
            // first sample completes (count == 0) the prior is that a
            // segment known to contain task executions was all work.
            int64_t est = elapsed;
            if (_sampledTaskCount > 0)
                est = (_sampledWorkNs / _sampledTaskCount)
                    * _unsampledTasks;
            if (est > elapsed)
                est = elapsed;
            _time.add(TimeSplit::Work, est);
            elapsed -= est;
            _unsampledTasks = 0;
        }
        _time.add(_bucket, elapsed);
        _mark = t;
        _bucket = b;
    }

    /** Refresh the data-home affinity mask from @p task (executeTask). */
    void noteAffinity(const TaskBase *task);

    /** The own deque just gained work: publish the bit and wake per
     * the core's WakeDirective (targeted edge wake under board
     * parking, global notify under the timer). The single
     * wake-protocol site for pushTask and the batched-steal extras. */
    void publishOwnDequeAndNotify();

    Runtime &_runtime;
    int _id;
    Place _place;
    Place _currentHint = kAnyPlace;
    /** Job of the task being executed (see currentJob()); saved and
     * restored across nested executeTask like _currentHint. */
    JobState *_currentJob = nullptr;
    /** Cached _options.sched.serving.preempt: the boundary peek must
     * not chase the options pointer on every spawn. */
    bool _preemptEnabled = false;
    /** Published running-job class for preemption victim selection
     * (see runningCls()); written by executeTask, read by admitting
     * threads. Only maintained when _preemptEnabled. */
    std::atomic<int8_t> _runningCls{-1};
    WsDeque<TaskBase> _deque;
    Mailbox<TaskBase> _mailbox;
    /** NUMA-local frame recycler behind the allocation-free spawn
     * path; drained of thief-freed frames on the steal path. */
    TaskFramePool _framePool;
    /** NUMA-local user-data heap (the data-plane sibling of the frame
     * pool: numa::allocate's fast path); also drained of cross-thread
     * frees on the steal path. Slabs come from the Runtime's arena,
     * which outlives the workers by declaration order. */
    NumaHeap _dataHeap;
    /** Cache of the last deque-occupancy value *we* published. Only
     * this worker sets its own deque bit, so a false cache always
     * means the bit is clear and the publish is needed; a true cache
     * can be stale (a thief's dry-probe repair cleared the bit), in
     * which case skipping the re-publish leaves a bounded false-empty
     * — explicitly allowed by the board contract and repaired by the
     * unconditional publish in acquireLocal's next pop. Saves the
     * board read on every spawn of a busy worker. */
    bool _dequeBitPublished = false;
    /** Every scheduling decision (victim, coin flip, receivers,
     * escalation, park streaks/tuning) routes through here — the same
     * core the simulator drives, so the engines cannot diverge. */
    StealCore _core;
    /** Park accounting advances while the runtime is quiescent (idle
     * workers park between runs), so a concurrent stats() read must
     * not race it: atomics, relaxed (counters, not synchronization). */
    std::atomic<uint64_t> _parks{0};
    std::atomic<uint64_t> _parkWakes{0};
    std::atomic<uint64_t> _parkTimeouts{0};
    std::atomic<uint64_t> _spuriousWakes{0};
    /** Time actually spent parked in idleWait (elastic-pool metric). */
    std::atomic<uint64_t> _parkedNs{0};
    /** @name Interference-adaptation state (ServingPolicy::interference)
     * The sensor and epoch cadence are owner-only; the flags and
     * counters are atomics because the watchdog and stats() read them
     * from other threads (relaxed — diagnosis, not synchronization). */
    /// @{
    PressureSensor _pressureSensor;
    /** Cached serving.interference == Adapt (work-first: the idle-path
     * checks must not chase the options pointer). */
    bool _interferenceEnabled = false;
    int64_t _pressureEpochNs = 0;
    /** Rank from the top of this worker's place range: 0 retires
     * first; the place leader (largest rank, lowest id) retires last
     * and is the one that ticks the InterferenceCore epoch. */
    int _retireRank = 0;
    int _placeWorkers = 1; ///< workers sharing this worker's place
    bool _placeLeader = false;
    std::atomic<bool> _retiredNow{false};
    std::atomic<uint64_t> _interferenceRetires{0};
    std::atomic<uint64_t> _interferenceReinstates{0};
    /// @}
    /** @name Watchdog liveness state (RuntimeOptions::watchdogMs) */
    /// @{
    std::atomic<bool> _parkedNow{false};
    std::atomic<uint64_t> _progressStamp{0};
    /// @}
    /** Per-class serving latency of jobs that completed here; folded
     * into RuntimeStats::jobLatency* by stats(). */
    LatencyHist _jobHist[kNumJobClasses];
    WorkerCounters _counters;
    TimeSplit _time;
    TimeSplit::Bucket _bucket = TimeSplit::Idle;
    int64_t _mark = 0;
    /** @name Sampled time-split state (timeSplitSampleShift) */
    /// @{
    uint32_t _sampleMask = 0; ///< 2^shift - 1; 0 samples every task
    uint32_t _sampleCtr = 0;
    int64_t _unsampledTasks = 0;
    int64_t _sampledWorkNs = 0;   ///< summed work of sampled tasks
    int64_t _sampledTaskCount = 0;
    /// @}
};

/**
 * The platform: owns workers and exposes the submission front door.
 */
class Runtime
{
  public:
    explicit Runtime(RuntimeOptions options = {});

    /** Drains every submitted job, then stops and joins the workers. */
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /**
     * Submit @p fn as an independent job: an admission-queue entry that
     * becomes the root of its own parallel computation when an idle
     * worker claims it. Returns immediately with a joinable handle
     * carrying the job's latency decomposition. Callable from any
     * thread, workers included (nested submission); jobs from many
     * threads serve concurrently.
     */
    template <typename F>
    JobHandle submit(F &&fn, JobOptions opts = {});

    /**
     * Batch mode: execute @p fn as the root of a parallel computation
     * and wait for it (and everything it spawned) to finish. Exactly
     * submit(fn).wait() — the serving path with a synchronous join.
     * Callable from a non-worker thread only; runs may be issued
     * repeatedly.
     */
    template <typename F>
    void run(F &&fn);

    int numWorkers() const { return static_cast<int>(_workers.size()); }
    int numPlaces() const { return _options.numPlaces; }
    const RuntimeOptions &options() const { return _options; }
    const StealDistribution &stealDistribution() const { return _dist; }
    const Machine &machine() const { return _machine; }
    OccupancyBoard &board() { return _board; }
    const OccupancyBoard &board() const { return _board; }
    ParkingLot &parkingLot() { return _parking; }
    /** The runtime-owned data-plane arena (slabs, big objects,
     * partitioned buffers); registers every block in dataPageMap(). */
    NumaArena &arena() { return _arena; }
    /** Page-home registry fed by the data plane's own allocations. */
    PageMap &dataPageMap() { return _pageMap; }
    const PageMap &dataPageMap() const { return _pageMap; }
    /**
     * The registry affinity resolution consults: the user-supplied
     * RuntimeOptions::pageMap when present (layout experiments register
     * their own ranges), else the runtime's own data-plane map — so
     * PartedVec homes feed the steal-path affinity mask and spawn-time
     * hints with zero configuration.
     */
    const PageMap *
    affinityPageMap() const
    {
        return _options.pageMap != nullptr ? _options.pageMap : &_pageMap;
    }

    /** Workers on place @p p: [first, last). */
    std::pair<int, int> workersOfPlace(int p) const;

    /** Aggregate statistics since construction or the last resetStats(). */
    RuntimeStats stats() const;
    void resetStats();

    /** Jobs ever submitted (ids are 1-based submission order). */
    uint64_t
    jobsSubmitted() const
    {
        return _jobsSubmitted.load(std::memory_order_relaxed);
    }

    /** @name Runtime-internal */
    /// @{
    Worker &worker(int id) { return *_workers[id]; }
    bool shuttingDown() const
    {
        return _shutdown.load(std::memory_order_acquire);
    }
    /** Any job admitted, queued, or running: thieves keep probing while
     * true. Covers queued-but-unclaimed jobs (counted from submit). */
    bool workActive() const
    {
        return _activeJobs.load(std::memory_order_acquire) > 0;
    }
    /** A job root sits in the admission queue unclaimed. The queue is
     * not on the occupancy board, so park predicates must check it
     * separately or a whole pool can sleep through an admission for a
     * full fallback period. */
    bool jobPending() const { return !_jobQueue.empty(); }
    /** Claim the oldest queued job root (any worker; the idle path
     * between a failed local acquire and a steal probe). The overload
     * gate: feeds each claim's queue delay to the ShedCore estimator
     * and resolves cancelled / past-deadline entries without running
     * them, returning the first live root (or null). */
    TaskBase *takeJob();
    /**
     * takeJob restricted to jobs whose *effective* class (nominal
     * class promoted by priority aging, ShedCore::effectiveClass)
     * is strictly better than @p below_cls: the preemption claim —
     * a yielding worker must only suspend its job for strictly
     * higher-priority work. takeJob() is takeJobAbove(kNumJobClasses),
     * so idle claims rank lanes by effective class too (that ordering
     * *is* priority aging; with agingWaitUs off it degenerates to the
     * strict nominal order).
     */
    TaskBase *takeJobAbove(int below_cls);
    /** Admission edge of class @p cls: if preemption is on and every
     * worker is busy with lower-class work, raise the yield directive
     * on the chosen victim (StealCore::pickPreemptVictim). */
    void maybePreempt(int cls);
    /** The overload-decision brain shared with the simulator
     * (tests/diagnostics). */
    const ShedCore &shedCore() const { return _shed; }
    /** Per-socket co-runner pressure EWMAs, published by worker epoch
     * samples (support/pressure.h). */
    PressureBoard &pressureBoard() { return _pressure; }
    const PressureBoard &pressureBoard() const { return _pressure; }
    /** The interference-adaptation brain shared with the simulator. */
    InterferenceCore &interferenceCore() { return _interference; }
    const InterferenceCore &interferenceCore() const
    {
        return _interference;
    }
    /** Workers currently retired by the InterferenceCore across all
     * sockets (gauge; 0 whenever adaptation is off or pressure calm). */
    int
    retiredWorkers() const
    {
        int n = 0;
        for (int s = 0; s < _interference.sockets(); ++s)
            n += _interference.retiredTarget(s);
        return n;
    }
    /** Watchdog stall dumps emitted so far (tests read this instead of
     * parsing stderr). */
    uint64_t
    watchdogDumps() const
    {
        return _watchdogDumps.load(std::memory_order_relaxed);
    }
    /**
     * Park the calling worker (of @p socket) until work might exist,
     * for at most @p timeout_us microseconds (the caller's StealCore
     * supplies the tuned bound). Timer policy: bounded global wait.
     * Board policy: per-socket ParkingLot slot with the bounded
     * fallback timeout.
     * @return true when the wait ended by a notification or a
     *         work/shutdown predicate, false on a plain timeout.
     */
    bool idleWait(int socket, int timeout_us);
    /** Wake every parked worker (shutdown — an event every socket must
     * see). */
    void notifyWork();
    /** Targeted wake: @p socket's board words went 0 -> nonzero. Under
     * timer parking this degrades to notifyWork() (one global cv). */
    void notifyWorkOn(int socket);
    /** A job landed in the queue: the admission edge of the elastic
     * pool. Wakes the hinted place's parked workers, or round-robins
     * across sockets for unhinted jobs. */
    void notifyAdmission(Place place);
    /** Timestamp + histogram + completion signalling for a job whose
     * root ran to completion on the calling worker. @p outcome is
     * Done, Failed, Cancelled, or Expired (the latter two when the
     * body unwound cooperatively); only Done/Failed land in the
     * latency histograms. */
    void finishJob(JobState &state, JobOutcome outcome);
    /// @}

  private:
    static Machine machineForPlaces(int places, int workers);

    /** Deposit an admitted job on the queue, apply QueueDelay shedding
     * (one victim per admission while overloaded), and fire the
     * admission wake. */
    void enqueueJob(TaskBase *root, std::shared_ptr<JobState> state);
    /** Resolve a job that will never run (claim-time skip, shed
     * victim, submit rejection, teardown cancel): publish @p outcome
     * and done, bump the per-class tally, and — when @p was_active —
     * retire its _activeJobs slot. Never touches the latency
     * histograms. */
    void resolveUnrun(JobState &state, JobOutcome outcome,
                      bool was_active);
    /** ShutdownPolicy::CancelQueued teardown sweep: drain the queue,
     * resolving every entry Cancelled and deleting its root. */
    void cancelQueuedJobs();
    /** Watchdog monitor body (its own thread; see watchdogMs). */
    void watchdogLoop();
    /** One stalled-window report: a line per worker to stderr. */
    void dumpWorkerStates();

    RuntimeOptions _options;
    Machine _machine;
    StealDistribution _dist;
    OccupancyBoard _board;
    ParkingLot _parking;
    /** Data-plane page registry and arena. Declared before _workers on
     * purpose: worker NumaHeaps return their slabs to _arena from their
     * destructors, so the arena (and its map) must destruct after the
     * worker array. */
    PageMap _pageMap;
    NumaArena _arena;
    std::vector<std::unique_ptr<Worker>> _workers;
    std::vector<std::thread> _threads;

    std::atomic<bool> _shutdown{false};
    /** Jobs submitted but not yet finished (queued + running). */
    std::atomic<int64_t> _activeJobs{0};
    std::atomic<uint64_t> _jobsSubmitted{0};
    /** Round-robin cursor for unhinted admission wakes. */
    std::atomic<uint32_t> _admitCursor{0};
    /** Jobs claimed at an aged effective class (priority aging
     * telemetry); folded into WorkerCounters::agedClaims by stats(). */
    std::atomic<uint64_t> _agedClaims{0};
    JobQueue _jobQueue;
    /** Admission-control / shedding decisions (sched/shed_core.h);
     * construction-initialized from _options.sched.serving. */
    ShedCore _shed;
    /** Per-socket co-runner pressure EWMAs (support/pressure.h). */
    PressureBoard _pressure;
    /** Interference-adaptation decisions (sched/interference_core.h);
     * construction-initialized like _shed. */
    InterferenceCore _interference;
    /** Per-class job-resolution tallies; atomic because rejections
     * resolve on submitter threads and sheds on claiming workers
     * concurrently. Folded into RuntimeStats::jobOutcomes. */
    struct AtomicOutcomeCounts
    {
        std::atomic<uint64_t> done{0};
        std::atomic<uint64_t> failed{0};
        std::atomic<uint64_t> cancelled{0};
        std::atomic<uint64_t> expired{0};
        std::atomic<uint64_t> rejected{0};
        std::atomic<uint64_t> shed{0};
    };
    AtomicOutcomeCounts _outcomes[kNumJobClasses];

    std::mutex _parkMutex;
    std::condition_variable _parkCv;
    /** Signalled when _activeJobs drains to zero (destructor barrier). */
    std::mutex _quiesceMutex;
    std::condition_variable _quiesceCv;

    /** @name Stall watchdog (RuntimeOptions::watchdogMs) */
    /// @{
    /** Jobs resolved (run or not) — the watchdog's job-level liveness
     * signal, paired with the workers' progressStamp task signal. */
    std::atomic<uint64_t> _jobsFinished{0};
    std::atomic<uint64_t> _watchdogDumps{0};
    std::atomic<bool> _watchdogStop{false};
    std::mutex _watchdogMutex;
    std::condition_variable _watchdogCv;
    std::thread _watchdog;
    /// @}
};

// ---------------------------------------------------------------------
// Inline template implementations
// ---------------------------------------------------------------------

template <typename F>
void
TaskGroup::spawn(F &&fn, Place place)
{
    spawn(std::forward<F>(fn), place, /*data=*/nullptr, /*data_bytes=*/0);
}

template <typename F>
void
TaskGroup::spawn(F &&fn, Place place, const void *data,
                 std::size_t data_bytes)
{
    Worker *w = Worker::current();
    NUMAWS_ASSERT(w != nullptr); // spawn only from inside run()
    // Cooperative cancellation boundary: a cancelled or past-deadline
    // job stops growing its tree here, and the JobCancelled unwind
    // rides the normal exception plumbing (recordException + sync
    // rethrow) up to the job root without preempting anything.
    if (JobState *job = w->currentJob();
        job != nullptr && jobInterrupted(*job))
        throw JobCancelled{};
    if (place == kInheritPlace)
        place = w->currentHint();
    // Spawn-time placement hint (the PR 2 affinity mask, consulted at
    // spawn): an unplaced task annotated with a data range lands on the
    // range's home-socket deque, so PartedVec::forEachShard spawns get
    // their affinity without callers naming places. Only *registered*
    // ranges produce a hint; plain-heap data keeps kAnyPlace. The check
    // costs one compare when no annotation is present (work-first).
    if (!isConcretePlace(place) && data != nullptr && data_bytes > 0)
        place = w->placeForData(data, data_bytes);
    using Fn = std::decay_t<F>;
    using Impl = TaskImpl<Fn>;
    // Allocation-free fast path: placement-new into a recycled frame
    // from this worker's NUMA-local pool (work-first: the frame's
    // eventual cross-socket journey home, if a thief runs it, is paid
    // on the steal path). Oversized or over-aligned closures, and the
    // TaskPoolPolicy::Heap ablation, fall back to the global heap.
    Impl *task = nullptr;
    if constexpr (alignof(Impl) <= TaskFramePool::kFrameAlign) {
        if (void *frame = w->framePool().allocate(sizeof(Impl))) {
            if constexpr (std::is_nothrow_constructible_v<
                              Impl, TaskGroup *, Place, Fn &&>) {
                task = new (frame) Impl(this, place,
                                        std::forward<F>(fn));
            } else {
                // Mirror the new-expression guarantee: a throwing
                // closure move must hand the frame back, not strand
                // it live in the slab.
                try {
                    task = new (frame) Impl(this, place,
                                            std::forward<F>(fn));
                } catch (...) {
                    w->framePool().freeLocal(
                        TaskFramePool::headerOf(frame));
                    throw;
                }
            }
            task->setPoolOwner(w->id());
        }
    }
    if (task == nullptr)
        task = new Impl(this, place, std::forward<F>(fn));
    if (data != nullptr && data_bytes > 0)
        task->setData(data, data_bytes);
    // Children compute for the same job as their spawner (null outside
    // any job), so stolen subtasks observe cancellation too.
    task->setJob(w->currentJob());
    onChildStart();
    ++w->counters().spawns;
    w->pushTask(task);
    // Preemption boundary: the child just pushed is this job's
    // checkpointed continuation — it sits on the deque where thieves
    // can claim it — so if a higher-class job is waiting, run it
    // inline now and resume the spawner afterwards. One cached bool
    // when preemption is off (work-first).
    if (w->yieldPending())
        w->serviceYield();
}

template <typename F>
JobHandle
Runtime::submit(F &&fn, JobOptions opts)
{
    auto state = std::make_shared<JobState>();
    state->opts = opts;
    state->id = _jobsSubmitted.fetch_add(1, std::memory_order_relaxed) + 1;
    state->submitNs = nowNs();
    if (opts.deadlineNs > 0)
        state->deadlineAtNs = state->submitNs + opts.deadlineNs;
    // Admission control (ShedPolicy::Reject / the QueueDelay capacity
    // backstop): an over-capacity lane turns this submit into an
    // immediately-Rejected handle — never counted active, never queued.
    const int cls = static_cast<int>(opts.cls);
    if (!_shed.admit(cls, _jobQueue.laneDepth(cls))) {
        resolveUnrun(*state, JobOutcome::Rejected, /*was_active=*/false);
        return JobHandle(std::move(state));
    }
    // Active from admission: workActive() must cover queued jobs so
    // thieves keep probing and park predicates stay honest.
    _activeJobs.fetch_add(1, std::memory_order_release);
    // The root runs with no group of its own; completion is signalled
    // via finishJob after fn returns (all nested groups are synced by
    // then). A JobCancelled unwind is the *cooperative cancellation*
    // exit — classified by cause, not recorded as a failure; real
    // exceptions park in the shared state for wait() to rethrow.
    auto body = [this, state, f = std::forward<F>(fn)]() mutable {
        state->started.store(true, std::memory_order_relaxed);
        state->startNs.store(nowNs(), std::memory_order_relaxed);
        JobOutcome outcome = JobOutcome::Done;
        try {
            f();
        } catch (const JobCancelled &) {
            outcome = state->cancelRequested.load(
                          std::memory_order_relaxed)
                          ? JobOutcome::Cancelled
                          : JobOutcome::Expired;
        } catch (...) {
            state->exception = std::current_exception();
            outcome = JobOutcome::Failed;
        }
        finishJob(*state, outcome);
    };
    // Job root frames stay on the heap (poolOwner -1): they may be
    // built on a non-worker thread and claimed by any worker.
    auto *root = new TaskImpl<decltype(body)>(nullptr, opts.place,
                                              std::move(body));
    root->setJob(state.get());
    enqueueJob(root, state);
    return JobHandle(std::move(state));
}

template <typename F>
void
Runtime::run(F &&fn)
{
    NUMAWS_ASSERT(Worker::current() == nullptr);
    submit(std::forward<F>(fn)).wait();
}

} // namespace numaws

#endif // NUMAWS_RUNTIME_RUNTIME_H
