#include "runtime/runtime.h"

#include "support/panic.h"

namespace numaws {

TaskGroup::TaskGroup() = default;

TaskGroup::~TaskGroup()
{
    // A group must not die with live children; sync here as a safety net
    // (mirrors the implicit cilk_sync at the end of every Cilk function).
    if (pending() > 0) {
        Worker *w = Worker::current();
        NUMAWS_ASSERT(w != nullptr);
        w->helpSync(*this);
    }
}

void
TaskGroup::sync()
{
    Worker *w = Worker::current();
    NUMAWS_ASSERT(w != nullptr); // sync only from inside run()
    w->helpSync(*this);
    NUMAWS_ASSERT(pending() == 0);

    std::exception_ptr e;
    {
        std::lock_guard<SpinLock> g(_exceptionLock);
        e = _exception;
        _exception = nullptr;
    }
    if (e)
        std::rethrow_exception(e);
}

void
TaskGroup::recordException(std::exception_ptr e)
{
    std::lock_guard<SpinLock> g(_exceptionLock);
    if (!_exception)
        _exception = std::move(e);
}

} // namespace numaws
