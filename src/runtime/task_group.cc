#include "runtime/runtime.h"

#include "support/panic.h"

namespace numaws {

TaskGroup::TaskGroup() = default;

TaskGroup::~TaskGroup()
{
    // A group must not die with live children; sync here as a safety net
    // (mirrors the implicit cilk_sync at the end of every Cilk function).
    if (pending() > 0) {
        Worker *w = Worker::current();
        NUMAWS_ASSERT(w != nullptr);
        w->helpSync(*this);
    }
}

void
TaskGroup::sync()
{
    Worker *w = Worker::current();
    NUMAWS_ASSERT(w != nullptr); // sync only from inside run()
    w->helpSync(*this);
    NUMAWS_ASSERT(pending() == 0);

    std::exception_ptr e;
    {
        std::lock_guard<SpinLock> g(_exceptionLock);
        e = _exception;
        _exception = nullptr;
    }
    if (e)
        std::rethrow_exception(e);

    // Cooperative cancellation boundary, checked *after* the join: the
    // children are accounted for either way (a JobCancelled unwind must
    // not orphan live tasks), but a cancelled or past-deadline job
    // stops here rather than proceeding into the next serial stage.
    // The destructor's implicit sync deliberately skips this — it must
    // not throw — so the unwind it helps along still joins cleanly.
    if (JobState *job = w->currentJob();
        job != nullptr && jobInterrupted(*job))
        throw JobCancelled{};

    // Preemption boundary, after the join for the same reason: the
    // nested higher-class job runs while *this* job is at a quiescent
    // point (no outstanding children in this group), so the yield can
    // never deadlock the join it sits behind.
    if (w->yieldPending())
        w->serviceYield();
}

void
TaskGroup::recordException(std::exception_ptr e)
{
    std::lock_guard<SpinLock> g(_exceptionLock);
    if (!_exception)
        _exception = std::move(e);
}

} // namespace numaws
