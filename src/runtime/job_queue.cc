#include "runtime/job_queue.h"

#include <mutex>

namespace numaws {

void
JobQueue::push(TaskBase *root, JobClass cls)
{
    Lane &lane = _lanes[static_cast<int>(cls)];
    {
        std::lock_guard<SpinLock> g(lane.lock);
        lane.q.push_back(root);
    }
    // Size bump after the push is visible: a popper that observes the
    // increment will find the root when it scans (lane lock acquire
    // orders after this push's release).
    _size.fetch_add(1, std::memory_order_release);
    _pushes.fetch_add(1, std::memory_order_relaxed);
}

TaskBase *
JobQueue::tryPop()
{
    if (empty())
        return nullptr;
    for (Lane &lane : _lanes) {
        std::lock_guard<SpinLock> g(lane.lock);
        if (lane.q.empty())
            continue;
        TaskBase *root = lane.q.front();
        lane.q.pop_front();
        _size.fetch_sub(1, std::memory_order_release);
        return root;
    }
    return nullptr;
}

} // namespace numaws
