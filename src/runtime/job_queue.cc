#include "runtime/job_queue.h"

#include <mutex>

#include "support/panic.h"

namespace numaws {

void
JobQueue::push(TaskBase *root, std::shared_ptr<JobState> state)
{
    NUMAWS_ASSERT(root != nullptr && state != nullptr);
    Lane &lane = _lanes[static_cast<int>(state->opts.cls)];
    {
        std::lock_guard<SpinLock> g(lane.lock);
        lane.q.push_back(QueuedJob{root, std::move(state)});
    }
    // Size bumps after the push is visible: a popper that observes the
    // increment will find the root when it scans (lane lock acquire
    // orders after this push's release).
    lane.depth.fetch_add(1, std::memory_order_release);
    _size.fetch_add(1, std::memory_order_release);
    _pushes.fetch_add(1, std::memory_order_relaxed);
}

QueuedJob
JobQueue::popFromLane(Lane &lane)
{
    std::lock_guard<SpinLock> g(lane.lock);
    if (lane.q.empty())
        return QueuedJob{};
    QueuedJob job = std::move(lane.q.front());
    lane.q.pop_front();
    lane.depth.fetch_sub(1, std::memory_order_release);
    _size.fetch_sub(1, std::memory_order_release);
    return job;
}

QueuedJob
JobQueue::tryPop()
{
    if (empty())
        return QueuedJob{};
    for (Lane &lane : _lanes) {
        QueuedJob job = popFromLane(lane);
        if (job.valid())
            return job;
    }
    return QueuedJob{};
}

QueuedJob
JobQueue::popShedVictim()
{
    if (empty())
        return QueuedJob{};
    for (int c = kNumJobClasses - 1; c >= 0; --c) {
        QueuedJob job = popFromLane(_lanes[c]);
        if (job.valid())
            return job;
    }
    return QueuedJob{};
}

} // namespace numaws
