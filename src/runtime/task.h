/**
 * @file
 * Task objects for the threaded runtime.
 *
 * The paper's Cilk Plus substrate steals *continuations*, which requires
 * compiler support (Tapir lowers cilk_spawn into runtime calls that can
 * suspend a stack frame). A pure library cannot do that, so the threaded
 * engine uses the standard library-runtime model: a spawn allocates a child
 * task object, pushes it on the deque, and the parent continues. Every
 * NUMA-WS *mechanism* is retained at task granularity: the place hint with
 * inheritance, the stolen flag (the shadow-frame -> full-frame promotion
 * analogue), and the pushback counter that enforces the constant pushing
 * threshold. The simulator (src/sim) models true continuation stealing.
 */
#ifndef NUMAWS_RUNTIME_TASK_H
#define NUMAWS_RUNTIME_TASK_H

#include <cstdint>
#include <utility>

#include "topology/place.h"

namespace numaws {

class TaskGroup;
class Worker;

/**
 * Type-erased unit of work. Allocated on spawn, freed after execution.
 */
class TaskBase
{
  public:
    TaskBase(TaskGroup *group, Place place)
        : _group(group), _place(place)
    {}

    virtual ~TaskBase() = default;

    /** Run the closure on @p worker. */
    virtual void run(Worker &worker) = 0;

    TaskGroup *group() const { return _group; }
    Place place() const { return _place; }
    void setPlace(Place p) { _place = p; }

    /** Promotion analogue: set when a thief takes this task. */
    bool stolen() const { return _stolen; }
    void markStolen() { _stolen = true; }

    /** Failed PUSHBACK attempts so far (capped by the pushing threshold). */
    uint32_t pushCount() const { return _pushCount; }
    void incPushCount() { ++_pushCount; }

    /** @name Data range this task chiefly touches (affinity hint)
     * Resolved against the runtime's PageMap to socket homes; feeds the
     * OccupancyAffinity victim weighting. Zero bytes == no annotation. */
    /// @{
    void
    setData(const void *addr, std::size_t bytes)
    {
        _dataAddr = reinterpret_cast<uint64_t>(addr);
        _dataBytes = bytes;
    }
    uint64_t dataAddr() const { return _dataAddr; }
    uint64_t dataBytes() const { return _dataBytes; }
    /// @}

  private:
    TaskGroup *_group;
    Place _place;
    bool _stolen = false;
    uint32_t _pushCount = 0;
    uint64_t _dataAddr = 0;
    uint64_t _dataBytes = 0;
};

/** Concrete task holding a callable inline (one allocation per spawn). */
template <typename F>
class TaskImpl final : public TaskBase
{
  public:
    TaskImpl(TaskGroup *group, Place place, F &&fn)
        : TaskBase(group, place), _fn(std::move(fn))
    {}

    void run(Worker &) override { _fn(); }

  private:
    F _fn;
};

} // namespace numaws

#endif // NUMAWS_RUNTIME_TASK_H
