/**
 * @file
 * Task objects for the threaded runtime.
 *
 * The paper's Cilk Plus substrate steals *continuations*, which requires
 * compiler support (Tapir lowers cilk_spawn into runtime calls that can
 * suspend a stack frame). A pure library cannot do that, so the threaded
 * engine uses the standard library-runtime model: a spawn allocates a child
 * task object, pushes it on the deque, and the parent continues. Every
 * NUMA-WS *mechanism* is retained at task granularity: the place hint with
 * inheritance, the stolen flag (the shadow-frame -> full-frame promotion
 * analogue), and the pushback counter that enforces the constant pushing
 * threshold. Task granularity is also what makes the serving mode's
 * cooperative controls possible in a library: spawn/sync boundaries are
 * the points where a running job observes cancellation and where a
 * raised yield directive preempts it in favor of a higher-class job
 * (runtime.h's TaskGroup::spawn, worker.cc's serviceYield). The
 * simulator (src/sim) models true continuation stealing.
 */
#ifndef NUMAWS_RUNTIME_TASK_H
#define NUMAWS_RUNTIME_TASK_H

#include <cstdint>
#include <utility>

#include "topology/place.h"

namespace numaws {

class TaskGroup;
class Worker;
struct JobState;

/**
 * Type-erased unit of work, living in a pooled task frame.
 *
 * Lifecycle (TaskPoolPolicy::Pooled, the default): spawn placement-news
 * the task into a frame from the spawning worker's NUMA-local
 * TaskFramePool and stamps poolOwner() with that worker's id; after
 * execution the running worker destroys the object and returns the
 * frame — to its own pool's local LIFO when it is the owner, or onto
 * the owner's remote-free stack when a thief finished a stolen task
 * (runtime/task_pool.h has the full lifecycle). Steady-state spawns
 * therefore recycle frames without touching the global heap. Tasks too
 * big (or too aligned) for the pool, every task under
 * TaskPoolPolicy::Heap, and the root frame keep poolOwner() == -1 and
 * the plain new/delete lifecycle.
 */
class TaskBase
{
  public:
    TaskBase(TaskGroup *group, Place place)
        : _group(group), _place(place)
    {}

    virtual ~TaskBase() = default;

    /** Run the closure on @p worker. */
    virtual void run(Worker &worker) = 0;

    TaskGroup *group() const { return _group; }
    Place place() const { return _place; }
    void setPlace(Place p) { _place = p; }

    /** Promotion analogue: set when a thief takes this task. */
    bool stolen() const { return _stolen; }
    void markStolen() { _stolen = true; }

    /** Failed PUSHBACK attempts so far (capped by the pushing threshold). */
    uint32_t pushCount() const { return _pushCount; }
    void incPushCount() { ++_pushCount; }

    /** @name Pooled-frame identity
     * Worker whose TaskFramePool owns this task's frame, or -1 for a
     * heap-allocated task (oversized, TaskPoolPolicy::Heap, or the
     * root). Stamped by spawn right after placement-new; the freeing
     * worker routes the frame home (or deletes) by it. */
    /// @{
    int poolOwner() const { return _poolOwner; }
    void setPoolOwner(int worker) { _poolOwner = worker; }
    /// @}

    /** @name Enclosing job
     * The job this task computes for: stamped on the root by submit,
     * inherited by every spawn from the spawning worker's current job
     * (so stolen subtasks carry it too). Workers track it across
     * executeTask to give spawn/sync boundaries and currentCancelToken
     * their cancellation view. Null for tasks outside any job (none
     * today — run() is submit().wait() — but the field is optional by
     * contract). Non-owning: the root task's closure keeps the state
     * alive until the job resolves, which outlives every subtask. */
    /// @{
    JobState *job() const { return _job; }
    void setJob(JobState *job) { _job = job; }
    /// @}

    /** @name Data range this task chiefly touches (affinity hint)
     * Resolved against the runtime's PageMap to socket homes; feeds the
     * OccupancyAffinity victim weighting. Zero bytes == no annotation. */
    /// @{
    void
    setData(const void *addr, std::size_t bytes)
    {
        _dataAddr = reinterpret_cast<uint64_t>(addr);
        _dataBytes = bytes;
    }
    uint64_t dataAddr() const { return _dataAddr; }
    uint64_t dataBytes() const { return _dataBytes; }
    /// @}

  private:
    TaskGroup *_group;
    Place _place;
    JobState *_job = nullptr;
    bool _stolen = false;
    uint32_t _pushCount = 0;
    int32_t _poolOwner = -1;
    uint64_t _dataAddr = 0;
    uint64_t _dataBytes = 0;
};

/** Concrete task holding a callable inline (one frame per spawn,
 * pool-recycled in steady state). */
template <typename F>
class TaskImpl final : public TaskBase
{
  public:
    TaskImpl(TaskGroup *group, Place place, F &&fn)
        : TaskBase(group, place), _fn(std::move(fn))
    {}

    void run(Worker &) override { _fn(); }

  private:
    F _fn;
};

} // namespace numaws

#endif // NUMAWS_RUNTIME_TASK_H
