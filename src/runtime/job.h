/**
 * @file
 * The serving front door: jobs and job handles.
 *
 * A *job* is an independent root computation submitted to the runtime —
 * the open-loop analogue of a batch run(). Each job carries a place hint,
 * a priority class, and arrival/start/finish timestamps; the returned
 * JobHandle is joinable and exposes the job's latency decomposition once
 * it completes. Inside a job the existing fork-join surface (TaskGroup,
 * parallelFor*) is unchanged: jobs are the inter-computation layer,
 * TaskGroup the intra-job layer, and batch Runtime::run(fn) is literally
 * submit(fn).wait() — one code path.
 */
#ifndef NUMAWS_RUNTIME_JOB_H
#define NUMAWS_RUNTIME_JOB_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>

#include "topology/place.h"

namespace numaws {

class Runtime;

/**
 * Priority class of a job: the admission queue serves Latency before
 * Normal before Batch (strict, FIFO within a class), and per-class
 * latency histograms are reported separately in RuntimeStats.
 */
enum class JobClass : uint8_t { Latency = 0, Normal = 1, Batch = 2 };

inline constexpr int kNumJobClasses = 3;

inline const char *
jobClassName(JobClass c)
{
    switch (c) {
      case JobClass::Latency: return "latency";
      case JobClass::Normal: return "normal";
      case JobClass::Batch: return "batch";
    }
    return "?";
}

/** Submission parameters for Runtime::submit. */
struct JobOptions
{
    /** Locality hint for the job's root (inherited by its spawns, the
     * paper's inheritance rule); kAnyPlace for no preference. */
    Place place = kAnyPlace;
    JobClass cls = JobClass::Normal;
};

/**
 * Shared completion record of one job, owned jointly by the handle and
 * the in-flight root task. Runtime-internal except through JobHandle.
 */
struct JobState
{
    JobOptions opts;
    uint64_t id = 0;
    /** Timestamps (nowNs clock): submit at admission, start when a
     * worker begins executing the root, finish when the root returns. */
    int64_t submitNs = 0;
    std::atomic<int64_t> startNs{0};
    std::atomic<int64_t> finishNs{0};
    std::atomic<bool> done{false};
    /** First exception escaping the job body; rethrown by wait(). */
    std::exception_ptr exception;
    std::mutex mutex;
    std::condition_variable cv;
};

/**
 * Joinable reference to a submitted job. Copyable and cheap (one
 * shared_ptr); outliving the runtime is safe for the accessors because
 * the runtime drains submitted jobs before shutting down.
 */
class JobHandle
{
  public:
    JobHandle() = default;

    bool valid() const { return _state != nullptr; }
    uint64_t id() const { return _state->id; }
    JobClass cls() const { return _state->opts.cls; }

    bool
    done() const
    {
        return _state->done.load(std::memory_order_acquire);
    }

    /**
     * Block until the job completes, then rethrow its exception (if
     * any; every wait() call on a failed job rethrows). On a worker
     * thread this *helps*: it executes queued jobs and steals instead
     * of blocking, so nested submit-and-wait cannot deadlock even on a
     * single-worker runtime.
     */
    void wait();

    /** @name Latency decomposition (valid once done()) */
    /// @{
    /** submit -> finish: the per-job serving latency. */
    int64_t
    latencyNs() const
    {
        return _state->finishNs.load(std::memory_order_acquire)
               - _state->submitNs;
    }
    /** submit -> start: admission-queue delay. */
    int64_t
    queueNs() const
    {
        return _state->startNs.load(std::memory_order_acquire)
               - _state->submitNs;
    }
    /** start -> finish: execution (including intra-job parallelism). */
    int64_t
    execNs() const
    {
        return _state->finishNs.load(std::memory_order_acquire)
               - _state->startNs.load(std::memory_order_acquire);
    }
    /// @}

  private:
    friend class Runtime;

    explicit JobHandle(std::shared_ptr<JobState> state)
        : _state(std::move(state))
    {
    }

    std::shared_ptr<JobState> _state;
};

} // namespace numaws

#endif // NUMAWS_RUNTIME_JOB_H
