/**
 * @file
 * The serving front door: jobs, job handles, outcomes, cancellation.
 *
 * A *job* is an independent root computation submitted to the runtime —
 * the open-loop analogue of a batch run(). Each job carries a place hint,
 * a priority class, an optional deadline, and arrival/start/finish
 * timestamps; the returned JobHandle is joinable and exposes the job's
 * latency decomposition and JobOutcome once it resolves. Inside a job the
 * existing fork-join surface (TaskGroup, parallelFor*) is unchanged: jobs
 * are the inter-computation layer, TaskGroup the intra-job layer, and
 * batch Runtime::run(fn) is literally submit(fn).wait() — one code path.
 *
 * Overload protection (PR 7): a job resolves to exactly one of five
 * outcomes. Done/Failed are the PR 6 completions; Cancelled (handle
 * cancel), Expired (deadline), and Rejected (admission control /
 * shedding, sched/policy.h's ShedPolicy) can resolve a job *without
 * running it* — a queued root whose cancel or deadline fires is skipped
 * at claim time — or unwind a running one cooperatively: TaskGroup's
 * spawn/sync boundaries observe the job's CancelToken and throw the
 * internal JobCancelled signal, so deep fork-join trees unwind promptly.
 * A body that never reaches another boundary simply finishes (Done wins
 * a finish-vs-cancel race).
 *
 * Those same spawn/sync boundaries also host *latency-class preemption*
 * (ServingPolicy::preempt): a worker whose StealCore carries a raised
 * yield directive checkpoints the running job — its just-pushed child
 * stays on the deque as the stealable continuation — and runs a
 * strictly-higher-class queued job to completion nested on the same
 * stack before resuming, so a Latency job admitted under Batch
 * saturation waits for one task body, not one whole job.
 */
#ifndef NUMAWS_RUNTIME_JOB_H
#define NUMAWS_RUNTIME_JOB_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>

#include "sched/policy.h"
#include "support/panic.h"
#include "support/timing.h"
#include "topology/place.h"

namespace numaws {

class Runtime;

/**
 * Priority class of a job: the admission queue serves Latency before
 * Normal before Batch (strict, FIFO within a class), and per-class
 * latency histograms are reported separately in RuntimeStats.
 */
enum class JobClass : uint8_t { Latency = 0, Normal = 1, Batch = 2 };

inline constexpr int kNumJobClasses = 3;
static_assert(kNumJobClasses == kNumServingClasses,
              "ServingPolicy's per-class knobs index by JobClass");

inline const char *
jobClassName(JobClass c)
{
    switch (c) {
      case JobClass::Latency: return "latency";
      case JobClass::Normal: return "normal";
      case JobClass::Batch: return "batch";
    }
    return "?";
}

/** Terminal state of a job (Pending until it resolves). */
enum class JobOutcome : uint8_t
{
    Pending = 0,  ///< not yet resolved (queued or running)
    Done,         ///< body returned normally
    Failed,       ///< body threw; wait() rethrows the exception
    Cancelled,    ///< JobHandle::cancel(), skipped or unwound
    Expired,      ///< deadline passed, skipped or unwound
    Rejected,     ///< admission control or load shedding (never ran)
};

inline const char *
jobOutcomeName(JobOutcome o)
{
    switch (o) {
      case JobOutcome::Pending: return "pending";
      case JobOutcome::Done: return "done";
      case JobOutcome::Failed: return "failed";
      case JobOutcome::Cancelled: return "cancelled";
      case JobOutcome::Expired: return "expired";
      case JobOutcome::Rejected: return "rejected";
    }
    return "?";
}

/** Submission parameters for Runtime::submit. */
struct JobOptions
{
    /** Locality hint for the job's root (inherited by its spawns, the
     * paper's inheritance rule); kAnyPlace for no preference. */
    Place place = kAnyPlace;
    JobClass cls = JobClass::Normal;
    /** Deadline relative to submission, nanoseconds; 0 = none. A job
     * whose deadline passes while queued is shed at dequeue (never
     * started, outcome Expired); one already running observes it at
     * the next spawn/sync boundary via its CancelToken. */
    int64_t deadlineNs = 0;
};

/**
 * Shared completion record of one job, owned jointly by the handle, the
 * in-flight root task, and the admission queue entry. Runtime-internal
 * except through JobHandle / CancelToken.
 */
struct JobState
{
    JobOptions opts;
    uint64_t id = 0;
    /** Timestamps (nowNs clock): submit at admission, start when a
     * worker begins executing the root, finish when the job resolves. */
    int64_t submitNs = 0;
    /** Absolute deadline (nowNs clock), 0 = none; submit + deadlineNs. */
    int64_t deadlineAtNs = 0;
    std::atomic<int64_t> startNs{0};
    std::atomic<int64_t> finishNs{0};
    /** A worker claimed the root and began the body (never set for
     * jobs resolved at claim time or rejected at submit). */
    std::atomic<bool> started{false};
    /** Cancellation request flag; observed at claim time and at
     * TaskGroup spawn/sync boundaries. Sticky once set. */
    std::atomic<bool> cancelRequested{false};
    std::atomic<bool> done{false};
    std::atomic<JobOutcome> outcome{JobOutcome::Pending};
    /** First exception escaping the job body; rethrown by wait(). */
    std::exception_ptr exception;
    std::mutex mutex;
    std::condition_variable cv;
};

/**
 * Internal unwind signal thrown at TaskGroup spawn/sync boundaries of a
 * cancelled or expired job. Deliberately an std::exception so partially
 * exception-safe user code cleans up on the way out; Runtime::submit's
 * wrapper catches it and resolves the job Cancelled/Expired instead of
 * Failed. User code should let it propagate (a catch(...) that swallows
 * it merely delays the unwind until the next boundary).
 */
struct JobCancelled : std::exception
{
    const char *
    what() const noexcept override
    {
        return "numaws job cancelled (cooperative unwind)";
    }
};

/** Has @p s been asked to stop — cancel requested, or deadline passed?
 * One relaxed load for deadline-free jobs; deadline'd jobs pay a clock
 * read per check (spawn/sync boundaries, not the steal path). */
inline bool
jobInterrupted(const JobState &s)
{
    if (s.cancelRequested.load(std::memory_order_relaxed))
        return true;
    return s.deadlineAtNs != 0 && nowNs() > s.deadlineAtNs;
}

/**
 * Cooperative cancellation view of the enclosing job, observable from
 * inside a job body via currentCancelToken() (runtime/api.h). Checking
 * is cheap (see jobInterrupted); bodies with long boundary-free loops
 * should poll it explicitly, everything spawn/sync-structured is
 * covered automatically.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** False for the default token (off-runtime, or not inside a job):
     * such a token never reports cancellation. */
    bool valid() const { return _state != nullptr; }

    /** Cancellation or expiry requested: the body should unwind. */
    bool
    cancelled() const
    {
        return _state != nullptr && jobInterrupted(*_state);
    }

    /** Throw the cooperative unwind signal if cancelled() — the same
     * check TaskGroup's spawn/sync boundaries perform. */
    void
    throwIfCancelled() const
    {
        if (cancelled())
            throw JobCancelled{};
    }

    /** Absolute deadline (nowNs clock) of the job, 0 = none. */
    int64_t
    deadlineNs() const
    {
        return _state != nullptr ? _state->deadlineAtNs : 0;
    }

  private:
    friend class Runtime;
    friend CancelToken currentCancelToken();

    explicit CancelToken(const JobState *state) : _state(state) {}

    /** Non-owning: valid while the job body runs (the root task's
     * closure holds the state alive for the token's whole scope). */
    const JobState *_state = nullptr;
};

/**
 * Joinable reference to a submitted job. Copyable and cheap (one
 * shared_ptr); outliving the runtime is safe for the accessors because
 * the runtime resolves every submitted job before shutting down. All
 * accessors panic — with a message, not a null-deref — on a
 * default-constructed or moved-from handle; check valid() first when a
 * handle may be empty.
 */
class JobHandle
{
  public:
    JobHandle() = default;

    bool valid() const { return _state != nullptr; }

    uint64_t
    id() const
    {
        requireValid("id");
        return _state->id;
    }

    JobClass
    cls() const
    {
        requireValid("cls");
        return _state->opts.cls;
    }

    bool
    done() const
    {
        requireValid("done");
        return _state->done.load(std::memory_order_acquire);
    }

    /** Terminal outcome, or JobOutcome::Pending while in flight. */
    JobOutcome
    outcome() const
    {
        requireValid("outcome");
        return _state->outcome.load(std::memory_order_acquire);
    }

    /**
     * Request cancellation: a still-queued job is skipped at claim
     * time (outcome Cancelled, never started); a running one unwinds
     * at its next spawn/sync boundary. Idempotent; a job that already
     * resolved is unaffected (Done wins a finish-vs-cancel race).
     * @return true when the request was recorded before the job
     *         resolved (it may still finish Done — cooperative).
     */
    bool cancel();

    /**
     * Block until the job resolves, then rethrow its exception (if
     * any; every wait() call on a Failed job rethrows). On a worker
     * thread this *helps*: it executes queued jobs and steals instead
     * of blocking, so nested submit-and-wait cannot deadlock even on a
     * single-worker runtime. Cancelled/Expired/Rejected jobs return
     * normally — check outcome().
     */
    void wait();

    /** wait() bounded by an absolute nowNs-clock instant. @return
     * done() at return; does not rethrow until the job resolves. */
    bool waitUntil(int64_t deadline_ns);

    /** wait() bounded by a relative timeout. */
    bool
    waitFor(int64_t timeout_ns)
    {
        requireValid("waitFor");
        return waitUntil(nowNs() + timeout_ns);
    }

    /** @name Latency decomposition (valid once done()) */
    /// @{
    /** submit -> finish: the per-job serving latency. */
    int64_t
    latencyNs() const
    {
        requireValid("latencyNs");
        return _state->finishNs.load(std::memory_order_acquire)
               - _state->submitNs;
    }
    /** submit -> start: admission-queue delay. */
    int64_t
    queueNs() const
    {
        requireValid("queueNs");
        return _state->startNs.load(std::memory_order_acquire)
               - _state->submitNs;
    }
    /** start -> finish: execution (including intra-job parallelism). */
    int64_t
    execNs() const
    {
        requireValid("execNs");
        return _state->finishNs.load(std::memory_order_acquire)
               - _state->startNs.load(std::memory_order_acquire);
    }
    /// @}

  private:
    friend class Runtime;

    explicit JobHandle(std::shared_ptr<JobState> state)
        : _state(std::move(state))
    {
    }

    void
    requireValid(const char *op) const
    {
        if (_state == nullptr)
            NUMAWS_PANIC("JobHandle::%s on an invalid handle "
                         "(default-constructed or moved-from)",
                         op);
    }

    std::shared_ptr<JobState> _state;
};

} // namespace numaws

#endif // NUMAWS_RUNTIME_JOB_H
