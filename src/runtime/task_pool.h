/**
 * @file
 * NUMA-local task-frame pools: the allocation-free spawn fast path.
 *
 * The work-first principle moves overhead off the spawn path onto the
 * steal path. Before this pool the threaded engine paid a global-heap
 * `new` on every spawn and a `delete` on every completion — and a stolen
 * task's delete ran on the *thief's* socket, turning the heap into a
 * hidden cross-socket channel exercised once per steal. The pool makes
 * the spawn→run→free cycle allocation-free in steady state and keeps
 * every frame's memory homed on its spawner's socket:
 *
 *  - Each Worker owns one TaskFramePool. Slabs are carved page-aligned
 *    from NumaArena (carveSlab) and first-touched by the owning worker,
 *    so on a real NUMA kernel the frames live on the worker's socket.
 *  - allocate() serves from a size-classed local LIFO free list (the
 *    cache-hot path), then from a bump pointer into the current slab;
 *    both are owner-only and fence-free.
 *  - Same-worker frees push back onto the local LIFO (the common case:
 *    a task popped from the own deque is freed by its spawner).
 *  - A thief that finishes a stolen task pushes the frame onto the
 *    owning pool's lock-free MPSC *remote-free stack* (the
 *    mimalloc-style local/remote split) instead of freeing cross-socket
 *    through the global heap.
 *  - The owner drains that stack opportunistically on the *steal* path
 *    (Worker::trySteal) and on the allocation slow path before carving
 *    a new slab — never on the spawn fast path, which is exactly where
 *    the work-first principle says the cost must not sit.
 *
 * Frames that do not fit the largest size class (or need stricter
 * alignment than kFrameAlign) fall back to the global heap; such tasks
 * carry poolOwner() == -1 and are freed with plain delete. The root
 * task frame is always heap-allocated: it is constructed on a
 * non-worker thread, before any pool exists to own it.
 *
 * Thread safety: allocate/freeLocal/drainRemote are owner-thread only;
 * freeRemote may be called from any thread. Frame state words make a
 * double free panic instead of corrupting a free list (always-on, one
 * predictable compare per transition — the repo's protocol-violation
 * discipline).
 */
#ifndef NUMAWS_RUNTIME_TASK_POOL_H
#define NUMAWS_RUNTIME_TASK_POOL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/cache_aligned.h"
#include "support/panic.h"

namespace numaws {

/** Threaded-engine task-frame allocation policy (RuntimeOptions). */
enum class TaskPoolPolicy : uint8_t
{
    /** Global-heap new/delete per spawn (the pre-pool behavior; the
     * ablation baseline). */
    Heap,
    /** NUMA-local per-worker frame pools with cross-socket remote free
     * (the default). */
    Pooled,
};

/** Stable name for bench JSON / CLI ("heap" | "pooled"). */
inline const char *
taskPoolPolicyName(TaskPoolPolicy p)
{
    switch (p) {
      case TaskPoolPolicy::Heap:
        return "heap";
      case TaskPoolPolicy::Pooled:
        return "pooled";
    }
    return "?";
}

/**
 * Header preceding every pooled frame's object storage. Links the frame
 * through the free lists, names its owning pool and size class, and
 * carries the live/free state word behind the double-free panic.
 */
struct TaskFrameHeader
{
    TaskFrameHeader *next = nullptr; ///< free-list / remote-stack link
    uint32_t ownerWorker = 0;        ///< worker whose pool owns the frame
    uint32_t sizeClass = 0;
    uint32_t state = 0;              ///< kFrameLive | kFrameFree
};

/** Per-worker size-classed slab recycler (file docs above). */
class TaskFramePool
{
  public:
    /** Object storage starts this many bytes into a frame; also the
     * header reservation (static_assert below). */
    static constexpr std::size_t kFrameHeaderBytes = 32;
    /** Guaranteed alignment of allocate() results; types needing more
     * must fall back to the heap. */
    static constexpr std::size_t kFrameAlign = 16;
    /** Frame sizes (header included) per class. */
    static constexpr std::size_t kClassBytes[] = {128, 256, 512, 1024};
    static constexpr int kNumClasses = 4;
    /** Bytes carved from NumaArena per slab. */
    static constexpr std::size_t kSlabBytes = 64 * 1024;

    static constexpr uint32_t kFrameLive = 0x4c49u; // "LI"
    static constexpr uint32_t kFrameFree = 0x4652u; // "FR"

    TaskFramePool(int owner_worker, bool enabled)
        : _owner(static_cast<uint32_t>(owner_worker)), _enabled(enabled)
    {}

    TaskFramePool(const TaskFramePool &) = delete;
    TaskFramePool &operator=(const TaskFramePool &) = delete;

    /** Drains the remote stack, then releases every slab wholesale —
     * frames parked on the remote stack at teardown need no individual
     * handling (Runtime joins all workers before destroying any pool,
     * so no concurrent freeRemote can race this). */
    ~TaskFramePool();

    /**
     * Owner-only spawn fast path: object storage for @p bytes, aligned
     * to kFrameAlign, or nullptr when the pool is disabled or @p bytes
     * exceeds the largest class (caller falls back to the heap).
     */
    void *
    allocate(std::size_t bytes)
    {
        if (!_enabled)
            return nullptr;
        const int cls = classForBytes(bytes);
        if (cls < 0)
            return nullptr;
        FreeClass &c = _classes[cls];
        if (TaskFrameHeader *h = c.freeList) {
            // LIFO reuse: the most recently freed frame is the one
            // still hot in this worker's cache.
            c.freeList = h->next;
            NUMAWS_ASSERT(h->state == kFrameFree);
            h->state = kFrameLive;
            ++_framesRecycled;
            ++_framesAllocated;
            return objectOf(h);
        }
        return allocateSlow(cls);
    }

    /** Owner-only: return a frame to its class's local LIFO. */
    void
    freeLocal(TaskFrameHeader *h)
    {
        NUMAWS_ASSERT(h->state == kFrameLive); // double free trips here
        h->state = kFrameFree;
        FreeClass &c = _classes[h->sizeClass];
        h->next = c.freeList;
        c.freeList = h;
        ++_localFrees;
    }

    /**
     * Any-thread: push a frame onto the owning pool's remote-free
     * stack (Treiber MPSC; the single consumer is the owner's drain).
     * The release publishes the frame's contents-free state to the
     * owner's acquire in drainRemote.
     */
    void
    freeRemote(TaskFrameHeader *h)
    {
        NUMAWS_ASSERT(h->state == kFrameLive);
        h->state = kFrameFree;
        TaskFrameHeader *head = _remoteHead.load(std::memory_order_relaxed);
        do {
            h->next = head;
        } while (!_remoteHead.compare_exchange_weak(
            head, h, std::memory_order_release,
            std::memory_order_relaxed));
        _remoteFrees.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Owner-only: splice every remotely freed frame back into the
     * local lists. The no-pending case is one relaxed load — cheap
     * enough for every trySteal() entry. @return frames drained.
     */
    std::size_t
    drainRemote()
    {
        if (_remoteHead.load(std::memory_order_relaxed) == nullptr)
            return 0;
        return drainRemoteSlow();
    }

    /** @name Frame <-> object storage conversion */
    /// @{
    static TaskFrameHeader *
    headerOf(void *object)
    {
        return reinterpret_cast<TaskFrameHeader *>(
            static_cast<char *>(object) - kFrameHeaderBytes);
    }

    static void *
    objectOf(TaskFrameHeader *h)
    {
        return reinterpret_cast<char *>(h) + kFrameHeaderBytes;
    }
    /// @}

    /** Smallest class whose payload fits @p bytes, or -1 (heap). */
    static int
    classForBytes(std::size_t bytes)
    {
        for (int c = 0; c < kNumClasses; ++c)
            if (bytes + kFrameHeaderBytes <= kClassBytes[c])
                return c;
        return -1;
    }

    bool enabled() const { return _enabled; }
    int owner() const { return static_cast<int>(_owner); }

    /** @name Counters (owner-written except remoteFrees; stats() reads
     * racily like every other worker counter) */
    /// @{
    uint64_t framesRecycled() const { return _framesRecycled; }
    uint64_t framesAllocated() const { return _framesAllocated; }
    uint64_t localFrees() const { return _localFrees; }
    uint64_t
    remoteFrees() const
    {
        return _remoteFrees.load(std::memory_order_relaxed);
    }
    uint64_t slabBytes() const { return _slabBytes; }
    uint64_t slabsCarved() const { return _slabsCarved; }
    /** Carve attempts that failed and degraded this allocation to the
     * caller's heap fallback (graceful OOM; see carveSlab). */
    uint64_t slabFallbacks() const { return _slabFallbacks; }

    /** Frames live right now = allocations minus frees since
     * construction or the last resetCounters() (exact when quiescent;
     * a nonzero value at quiescence is a leak). */
    int64_t
    outstanding() const
    {
        return static_cast<int64_t>(_framesAllocated)
               - static_cast<int64_t>(_localFrees)
               - static_cast<int64_t>(remoteFrees());
    }

    void
    resetCounters()
    {
        _framesRecycled = 0;
        _framesAllocated = 0;
        _localFrees = 0;
        _slabFallbacks = 0;
        _remoteFrees.store(0, std::memory_order_relaxed);
        // Slab gauges deliberately survive: carved memory does not
        // un-carve on a stats reset.
    }
    /// @}

  private:
    struct FreeClass
    {
        TaskFrameHeader *freeList = nullptr; ///< local LIFO
        char *bumpPtr = nullptr;             ///< next fresh frame
        char *bumpEnd = nullptr;             ///< current slab's end
    };

    /** Free list empty: drain remotes, bump, or carve a new slab. */
    void *allocateSlow(int cls);
    std::size_t drainRemoteSlow();

    uint32_t _owner;
    bool _enabled;
    FreeClass _classes[kNumClasses];
    std::vector<void *> _slabs;
    uint64_t _framesRecycled = 0;
    uint64_t _framesAllocated = 0;
    uint64_t _localFrees = 0;
    uint64_t _slabBytes = 0;
    uint64_t _slabsCarved = 0;
    uint64_t _slabFallbacks = 0;
    /** Remote-free stack head — the only cross-thread word; on its own
     * cache line so thieves' pushes never false-share the owner's
     * bump/free-list state. */
    alignas(kCacheLineBytes)
        std::atomic<TaskFrameHeader *> _remoteHead{nullptr};
    /** Thief-written like _remoteHead; shares its line deliberately. */
    std::atomic<uint64_t> _remoteFrees{0};
};

static_assert(sizeof(TaskFrameHeader) <= TaskFramePool::kFrameHeaderBytes,
              "frame header must fit its reservation");
static_assert(TaskFramePool::kFrameHeaderBytes % TaskFramePool::kFrameAlign
                  == 0,
              "object storage must stay kFrameAlign-aligned");

} // namespace numaws

#endif // NUMAWS_RUNTIME_TASK_POOL_H
