#include "runtime/task_pool.h"

#include <cstring>

#include "mem/numa_arena.h"

namespace numaws {

TaskFramePool::~TaskFramePool()
{
    drainRemote();
    for (void *slab : _slabs)
        NumaArena::releaseSlab(slab);
}

void *
TaskFramePool::allocateSlow(int cls)
{
    FreeClass &c = _classes[cls];
    // Frames freed by thieves are preferable to fresh memory: they are
    // this pool's own NUMA-local frames, and reclaiming them here keeps
    // a spawn-heavy owner whose children all die on thieves from
    // carving slabs forever. Still off the fast path: one CAS exchange,
    // only when the local list is already dry.
    if (drainRemote() > 0 && c.freeList != nullptr) {
        TaskFrameHeader *h = c.freeList;
        c.freeList = h->next;
        NUMAWS_ASSERT(h->state == kFrameFree);
        h->state = kFrameLive;
        ++_framesRecycled;
        ++_framesAllocated;
        return objectOf(h);
    }
    const std::size_t frame = kClassBytes[cls];
    if (c.bumpPtr == nullptr
        || c.bumpPtr + frame > c.bumpEnd) {
        void *slab = NumaArena::carveSlab(kSlabBytes);
        if (slab == nullptr) {
            // Graceful degradation: the spawn path treats a nullptr
            // from allocate() as "heap-allocate this frame" already
            // (oversized frames take it every day), so a failed carve
            // just widens that path and counts itself.
            ++_slabFallbacks;
            return nullptr;
        }
        // First touch on the owning worker's thread: on a real NUMA
        // kernel this homes the slab's pages on the worker's socket
        // (the carveSlab contract; see mem/numa_arena.h).
        std::memset(slab, 0, kSlabBytes);
        _slabs.push_back(slab);
        _slabBytes += kSlabBytes;
        ++_slabsCarved;
        c.bumpPtr = static_cast<char *>(slab);
        c.bumpEnd = c.bumpPtr + kSlabBytes;
    }
    TaskFrameHeader *h = reinterpret_cast<TaskFrameHeader *>(c.bumpPtr);
    c.bumpPtr += frame;
    h->next = nullptr;
    h->ownerWorker = _owner;
    h->sizeClass = static_cast<uint32_t>(cls);
    h->state = kFrameLive;
    ++_framesAllocated;
    return objectOf(h);
}

std::size_t
TaskFramePool::drainRemoteSlow()
{
    // Single consumer: one exchange detaches the whole stack; the
    // acquire pairs with freeRemote's release so every frame's
    // thief-side writes happen-before the owner relinks it.
    TaskFrameHeader *h =
        _remoteHead.exchange(nullptr, std::memory_order_acquire);
    std::size_t n = 0;
    while (h != nullptr) {
        TaskFrameHeader *next = h->next;
        NUMAWS_ASSERT(h->state == kFrameFree);
        FreeClass &c = _classes[h->sizeClass];
        h->next = c.freeList;
        c.freeList = h;
        h = next;
        ++n;
    }
    return n;
}

} // namespace numaws
