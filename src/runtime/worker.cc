#include "runtime/runtime.h"

#include "mem/page_map.h"
#include "support/panic.h"
#include "topology/affinity.h"

namespace numaws {

namespace {

thread_local Worker *tlsWorker = nullptr;

} // namespace

void
WorkerCounters::merge(const WorkerCounters &o)
{
    spawns += o.spawns;
    stealAttempts += o.stealAttempts;
    steals += o.steals;
    mailboxTakes += o.mailboxTakes;
    pushbackAttempts += o.pushbackAttempts;
    pushbackSuccesses += o.pushbackSuccesses;
    pushbackGiveUps += o.pushbackGiveUps;
    tasksExecuted += o.tasksExecuted;
    tasksOnHintedPlace += o.tasksOnHintedPlace;
    stealHalfBatches += o.stealHalfBatches;
    stealHalfTasks += o.stealHalfTasks;
    escalations += o.escalations;
    levelSkips += o.levelSkips;
    dryPolls += o.dryPolls;
    parks += o.parks;
    parkWakes += o.parkWakes;
    parkTimeouts += o.parkTimeouts;
    spuriousWakes += o.spuriousWakes;
    // (The live park counters are atomics on Worker; Runtime::stats()
    // folds them via foldParkCounters, so aggregates merge plainly.)
}

namespace {

EscalationConfig
escalationConfigOf(const RuntimeOptions &opts)
{
    EscalationConfig cfg;
    cfg.kind = opts.escalationPolicy;
    cfg.failuresPerLevel = opts.stealEscalationFailures;
    return cfg;
}

} // namespace

Worker::Worker(Runtime &runtime, int id, int place, uint64_t seed,
               std::size_t deque_capacity)
    : _runtime(runtime),
      _id(id),
      _place(place),
      _rng(seed),
      _deque(deque_capacity),
      _mailbox(runtime.options().mailboxCapacity),
      _pushPolicy(runtime.options().pushThreshold,
                  runtime.options().pushPolicy),
      _escalation(escalationConfigOf(runtime.options())),
      _mark(nowNs())
{
    // Mailbox occupancy reaches the board from inside tryPut/tryTake, so
    // pushers and thieves publish transitions without extra call sites;
    // under board parking the deposit edge also wakes this worker's
    // parked socket from the same spot.
    if (boardPublishing()) {
        _mailbox.attachBoard(&runtime.board(), id);
        if (runtime.options().parkPolicy == ParkPolicy::Board)
            _mailbox.attachParking(&runtime.parkingLot(), place);
    }
}

Worker *
Worker::current()
{
    return tlsWorker;
}

void
Worker::publishOwnDequeAndNotify()
{
    // Edge-triggered publish: free of RMWs while the bit already says
    // nonempty, so the work path stays the paper's two stores.
    const bool socket_edge =
        boardPublishing() && _runtime.board().publishDeque(_id, true);
    if (_runtime.options().parkPolicy == ParkPolicy::Board) {
        // Only a 0 -> nonzero socket edge can find sleepers worth
        // waking; every other push skips notification entirely — the
        // wakeup-storm cut board parking buys on the spawn path.
        if (socket_edge)
            _runtime.notifyWorkOn(_place);
    } else {
        _runtime.notifyWork();
    }
}

void
Worker::pushTask(TaskBase *task)
{
    _deque.pushTail(task);
    publishOwnDequeAndNotify();
}

TaskBase *
Worker::acquireLocal()
{
    const bool publishing = boardPublishing();
    // Work path first: the tail of the own deque...
    if (TaskBase *t = _deque.popTail()) {
        // Publish the *actual* state, not just the pop-to-empty edge: a
        // thief's dry-probe repair can race a push and wrongly clear the
        // bit, and a worker draining a deep deque would otherwise never
        // re-assert it. Edge-triggered publish makes the common
        // (unchanged) case one relaxed load.
        if (publishing)
            _runtime.board().publishDeque(_id, !_deque.empty());
        return t;
    }
    if (publishing)
        _runtime.board().publishDeque(_id, false);
    // ...then POPMAILBOX: a frame some worker parked here for this place.
    if (TaskBase *t = _mailbox.tryTake()) {
        ++_counters.mailboxTakes;
        return t;
    }
    // Worker 0 also owns the root-injection slot.
    if (_id == 0) {
        if (TaskBase *t = _runtime.takeRoot())
            return t;
    }
    return nullptr;
}

TaskBase *
Worker::trySteal()
{
    if (_runtime.numWorkers() <= 1)
        return nullptr;
    const RuntimeOptions &opts = _runtime.options();
    const StealDistribution &dist = _runtime.stealDistribution();
    OccupancyBoard &board = _runtime.board();
    const bool informed = boardInformed();
    const bool publishing = boardPublishing();
    // Board poll in place of a probe: when nothing anywhere advertises
    // work, skip the victim probe entirely — that is the probe the board
    // was built to save. Every 4th consecutive dry poll still probes
    // (insurance: a false-empty board may lag reality), so starvation is
    // impossible, merely delayed by a bounded factor.
    bool board_dry = false;
    if (informed && !board.anyWorkFor(_place)) {
        _dryStreak = (_dryStreak + 1) & 3; // wrap: no overflow while idle
        if (_dryStreak != 0) {
            ++_counters.dryPolls;
            return nullptr;
        }
        board_dry = true;
    } else {
        _dryStreak = 0;
    }
    ++_counters.stealAttempts;
    int victim_id;
    int probed_level = -1; // level the probe sampled at (EWMA credit)
    if (opts.hierarchicalSteals) {
        // Level-by-level search: sample only within the current
        // escalation radius; failures below widen it, success resets it.
        int level = _escalation.level();
        if (informed) {
            // Board consult: jump past provably-dry levels without
            // burning the failures-per-level budget on them (the skip
            // and the weighted pick share one board snapshot). An
            // all-dry insurance probe widens to the outermost level
            // too, but that is not a board-informed skip — don't count
            // it as one.
            const int ladder_level = level;
            victim_id = dist.sampleVictimInformed(
                _id, &level, opts.victimPolicy, board, _affinityMask,
                _rng);
            if (level != ladder_level && !board_dry)
                ++_counters.levelSkips;
        } else {
            victim_id = dist.sampleAtLevel(_id, level, _rng);
        }
        probed_level = level;
    } else {
        victim_id = dist.sample(_id, _rng);
    }
    Worker &victim = _runtime.worker(victim_id);

    TaskBase *task = nullptr;
    bool from_mailbox = false;
    // BIASEDSTEALWITHPUSH: flip a coin between the victim's mailbox and
    // its deque. Always checking the mailbox first would let a critical
    // node at a deque head starve (Section IV).
    bool check_mailbox = opts.useMailboxes && _rng.flip();
    // One-sided informed override: a *set* mailbox bit is never invented
    // (board contract), so steering the inspection toward it is sound.
    // An *unset* bit may be false-empty, so it must never suppress the
    // mailbox check — the coin's 50% inspection is the repair mechanism
    // that eventually finds a parked frame whose publication was lost,
    // even while the victim's deque stays nonempty forever.
    if (informed && opts.useMailboxes
        && board.mailboxOccupied(victim_id)
        && !board.dequeNonempty(victim_id))
        check_mailbox = true;
    if (check_mailbox) {
        task = victim.mailbox().tryTake();
        from_mailbox = task != nullptr;
        // Outcome 1 (mailbox empty): fall through to the deque.
    }
    std::size_t batch_extra = 0;
    TaskBase *batch[kStealHalfCap];
    if (task == nullptr) {
        // Remote-level victims pay a full cross-socket round trip per
        // steal, so take a batch there; closer victims keep the paper's
        // single-frame protocol.
        if (opts.remoteStealHalf
            && dist.levelOf(_id, victim_id) == kLevelRemote) {
            std::size_t cap = static_cast<std::size_t>(
                opts.stealHalfMax > 0 ? opts.stealHalfMax : 1);
            if (cap > kStealHalfCap)
                cap = kStealHalfCap;
            const std::size_t n = victim.deque().stealHalf(batch, cap);
            if (n > 0) {
                task = batch[0];
                batch_extra = n - 1;
            }
        } else {
            task = victim.deque().stealHead();
        }
        // The probe already paid for the cache traffic: repair the
        // victim's staleness (a 1-bit over an empty deque) for free.
        if (publishing && victim.deque().empty())
            board.publishDeque(victim_id, false);
    }
    if (task == nullptr) {
        if (opts.hierarchicalSteals) {
            const int before = _escalation.level();
            _escalation.onFailedSteal(probed_level);
            if (_escalation.level() != before)
                ++_counters.escalations;
        }
        return nullptr;
    }
    if (opts.hierarchicalSteals)
        _escalation.onSuccessfulSteal(probed_level);

    // Successful steal: everything past this point is scheduler
    // bookkeeping, charged to scheduling time (the span term).
    switchBucket(TimeSplit::Scheduling);
    if (from_mailbox)
        ++_counters.mailboxTakes;
    else
        ++_counters.steals;
    if (batch_extra > 0) {
        ++_counters.stealHalfBatches;
        _counters.stealHalfTasks += batch_extra + 1;
        _counters.steals += batch_extra;
        // Extras land on our own deque, oldest first, where they stay
        // stealable by anyone else.
        for (std::size_t i = 1; i <= batch_extra; ++i) {
            batch[i]->markStolen();
            _deque.pushTail(batch[i]);
        }
        publishOwnDequeAndNotify();
    }
    // Promotion analogue: the task has now migrated off its spawner.
    task->markStolen();

    // Lazy work pushing happens only here, on the steal path — a frame
    // acquired from the own deque never pays this check beyond a compare.
    if (isConcretePlace(task->place()) && task->place() != _place) {
        if (pushBack(task)) {
            switchBucket(TimeSplit::Idle);
            return nullptr; // handed off; keep looking for other work
        }
        // Pushing threshold reached: honor load balance over locality.
    }
    return task;
}

bool
Worker::pushBack(TaskBase *task)
{
    const RuntimeOptions &opts = _runtime.options();
    if (!opts.useMailboxes)
        return false;
    const Place target = task->place();
    NUMAWS_ASSERT(isConcretePlace(target));
    const auto [first, last] = _runtime.workersOfPlace(target);
    if (first >= last)
        return false;
    OccupancyBoard &board = _runtime.board();
    const bool guided =
        opts.pushTarget == PushTarget::Board && board.enabled();
    // The policy sees our own deque depth (pressure widens the cap) and
    // every rejection below (congestion tightens it). Reading the live
    // threshold each iteration keeps the loop bounded either way: the
    // frame's lifetime push count only grows, the cap only shrinks under
    // rejection, and a cap at or below the count exits to the give-up
    // path, where load balance wins over locality.
    _pushPolicy.observeDequeDepth(_deque.size());
    while (task->pushCount()
           < static_cast<uint32_t>(_pushPolicy.threshold())) {
        ++_counters.pushbackAttempts;
        // Board-guided receiver: sample only among workers whose
        // mailbox bit advertises room (never-invented occupancy means a
        // set bit is always a real frame, so skipping it saves a
        // guaranteed-wasted probe; a clear bit may be stale, in which
        // case tryPut still rejects and we retry as before). When every
        // bit on the place is set — or the knob is off — probe blind.
        int receiver = -1;
        if (guided) {
            receiver = pickClearMailbox(
                first, last, /*self=*/-1, board.mailboxBits(target),
                [&board](int w) { return board.workerMask(w); }, _rng);
        }
        if (receiver < 0)
            receiver =
                first
                + static_cast<int>(_rng.nextBounded(
                    static_cast<uint64_t>(last - first)));
        if (_runtime.worker(receiver).mailbox().tryPut(task)) {
            ++_counters.pushbackSuccesses;
            _pushPolicy.onPushSuccess();
            // Board parking: tryPut already woke the receiver's socket
            // on the deposit's occupancy edge (Mailbox::attachParking).
            if (opts.parkPolicy != ParkPolicy::Board)
                _runtime.notifyWork();
            return true;
        }
        _pushPolicy.onMailboxFull();
        task->incPushCount();
    }
    ++_counters.pushbackGiveUps;
    return false;
}

void
Worker::noteAffinity(const TaskBase *task)
{
    // Data-home affinity for OccupancyAffinity steals: resolve the
    // task's annotated data range through the PageMap (first and last
    // page are enough — registrations are contiguous per policy); tasks
    // without an annotation fall back to their place hint.
    uint32_t mask = 0;
    const PageMap *pm = _runtime.options().pageMap;
    if (pm != nullptr && task->dataBytes() > 0) {
        const int first = pm->homeOf(task->dataAddr());
        const int last =
            pm->homeOf(task->dataAddr() + task->dataBytes() - 1);
        if (first >= 0 && first < 32)
            mask |= 1u << first;
        if (last >= 0 && last < 32)
            mask |= 1u << last;
    } else if (isConcretePlace(task->place()) && task->place() < 32) {
        mask = 1u << task->place();
    }
    if (mask != 0)
        _affinityMask = mask;
}

void
Worker::executeTask(TaskBase *task)
{
    switchBucket(TimeSplit::Work);
    const Place prev_hint = _currentHint;
    _currentHint = task->place();
    ++_counters.tasksExecuted;
    if (boardInformed()
        && _runtime.options().victimPolicy
               == VictimPolicy::OccupancyAffinity)
        noteAffinity(task);
    if (isConcretePlace(task->place()) && task->place() == _place)
        ++_counters.tasksOnHintedPlace;

    try {
        task->run(*this);
    } catch (...) {
        if (task->group() != nullptr)
            task->group()->recordException(std::current_exception());
        else
            throw; // root-task exceptions are captured by Runtime::run
    }

    _currentHint = prev_hint;
    if (task->group() != nullptr)
        task->group()->onChildDone();
    delete task;
    switchBucket(TimeSplit::Idle);
}

void
Worker::helpSync(TaskGroup &group)
{
    // We are inside a task body (bucket == Work); the wait itself is not
    // useful work until we actually find something to execute.
    switchBucket(TimeSplit::Idle);
    while (group.pending() > 0) {
        TaskBase *t = acquireLocal();
        if (t == nullptr && _runtime.rootActive())
            t = trySteal();
        if (t != nullptr)
            executeTask(t);
        else
            for (int i = 0; i < 32 && group.pending() > 0; ++i)
                cpuRelax();
    }
    // Control returns to the syncing task's body.
    switchBucket(TimeSplit::Work);
}

void
Worker::mainLoop()
{
    tlsWorker = this;
    if (_runtime.options().pinThreads)
        pinCurrentThread(_id);
    _mark = nowNs();
    _bucket = TimeSplit::Idle;

    int failures = 0;
    while (!_runtime.shuttingDown()) {
        TaskBase *t = acquireLocal();
        if (t == nullptr && _runtime.rootActive())
            t = trySteal();
        if (t != nullptr) {
            failures = 0;
            executeTask(t);
            continue;
        }
        if (++failures >= 64) {
            _parks.fetch_add(1, std::memory_order_relaxed);
            if (_runtime.idleWait(_place))
                _parkWakes.fetch_add(1, std::memory_order_relaxed);
            else
                _parkTimeouts.fetch_add(1, std::memory_order_relaxed);
            // A wake that lands on a still-dry board bought nothing:
            // the wakeup-storm metric the board policy is gated on
            // (only meaningful when the board is being published).
            if (boardPublishing() && _runtime.rootActive()
                && !_runtime.board().anyWorkFor(_place))
                _spuriousWakes.fetch_add(1, std::memory_order_relaxed);
            failures = 0;
        } else {
            cpuRelax();
        }
    }
    switchBucket(TimeSplit::Idle); // flush the final segment
    tlsWorker = nullptr;
}

} // namespace numaws
