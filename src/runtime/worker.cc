#include "runtime/runtime.h"

#include "support/panic.h"
#include "topology/affinity.h"

namespace numaws {

namespace {

thread_local Worker *tlsWorker = nullptr;

} // namespace

void
WorkerCounters::merge(const WorkerCounters &o)
{
    spawns += o.spawns;
    stealAttempts += o.stealAttempts;
    steals += o.steals;
    mailboxTakes += o.mailboxTakes;
    pushbackAttempts += o.pushbackAttempts;
    pushbackSuccesses += o.pushbackSuccesses;
    pushbackGiveUps += o.pushbackGiveUps;
    tasksExecuted += o.tasksExecuted;
    tasksOnHintedPlace += o.tasksOnHintedPlace;
    stealHalfBatches += o.stealHalfBatches;
    stealHalfTasks += o.stealHalfTasks;
    escalations += o.escalations;
}

Worker::Worker(Runtime &runtime, int id, int place, uint64_t seed,
               std::size_t deque_capacity)
    : _runtime(runtime),
      _id(id),
      _place(place),
      _rng(seed),
      _deque(deque_capacity),
      _pushPolicy(runtime.options().pushThreshold,
                  runtime.options().pushPolicy),
      _escalation(runtime.options().stealEscalationFailures),
      _mark(nowNs())
{}

Worker *
Worker::current()
{
    return tlsWorker;
}

void
Worker::pushTask(TaskBase *task)
{
    _deque.pushTail(task);
    _runtime.notifyWork();
}

TaskBase *
Worker::acquireLocal()
{
    // Work path first: the tail of the own deque...
    if (TaskBase *t = _deque.popTail())
        return t;
    // ...then POPMAILBOX: a frame some worker parked here for this place.
    if (TaskBase *t = _mailbox.tryTake()) {
        ++_counters.mailboxTakes;
        return t;
    }
    // Worker 0 also owns the root-injection slot.
    if (_id == 0) {
        if (TaskBase *t = _runtime.takeRoot())
            return t;
    }
    return nullptr;
}

TaskBase *
Worker::trySteal()
{
    if (_runtime.numWorkers() <= 1)
        return nullptr;
    ++_counters.stealAttempts;
    const RuntimeOptions &opts = _runtime.options();
    const StealDistribution &dist = _runtime.stealDistribution();
    int victim_id;
    if (opts.hierarchicalSteals) {
        // Level-by-level search: sample only within the current
        // escalation radius; failures below widen it, success resets it.
        victim_id = dist.sampleAtLevel(_id, _escalation.level(), _rng);
    } else {
        victim_id = dist.sample(_id, _rng);
    }
    Worker &victim = _runtime.worker(victim_id);

    TaskBase *task = nullptr;
    bool from_mailbox = false;
    // BIASEDSTEALWITHPUSH: flip a coin between the victim's mailbox and
    // its deque. Always checking the mailbox first would let a critical
    // node at a deque head starve (Section IV).
    if (opts.useMailboxes && _rng.flip()) {
        task = victim.mailbox().tryTake();
        from_mailbox = task != nullptr;
        // Outcome 1 (mailbox empty): fall through to the deque.
    }
    std::size_t batch_extra = 0;
    TaskBase *batch[kStealHalfCap];
    if (task == nullptr) {
        // Remote-level victims pay a full cross-socket round trip per
        // steal, so take a batch there; closer victims keep the paper's
        // single-frame protocol.
        if (opts.remoteStealHalf
            && dist.levelOf(_id, victim_id) == kLevelRemote) {
            std::size_t cap = static_cast<std::size_t>(
                opts.stealHalfMax > 0 ? opts.stealHalfMax : 1);
            if (cap > kStealHalfCap)
                cap = kStealHalfCap;
            const std::size_t n = victim.deque().stealHalf(batch, cap);
            if (n > 0) {
                task = batch[0];
                batch_extra = n - 1;
            }
        } else {
            task = victim.deque().stealHead();
        }
    }
    if (task == nullptr) {
        if (opts.hierarchicalSteals) {
            const int before = _escalation.level();
            _escalation.onFailedSteal();
            if (_escalation.level() != before)
                ++_counters.escalations;
        }
        return nullptr;
    }
    if (opts.hierarchicalSteals)
        _escalation.onSuccessfulSteal();

    // Successful steal: everything past this point is scheduler
    // bookkeeping, charged to scheduling time (the span term).
    switchBucket(TimeSplit::Scheduling);
    if (from_mailbox)
        ++_counters.mailboxTakes;
    else
        ++_counters.steals;
    if (batch_extra > 0) {
        ++_counters.stealHalfBatches;
        _counters.stealHalfTasks += batch_extra + 1;
        _counters.steals += batch_extra;
        // Extras land on our own deque, oldest first, where they stay
        // stealable by anyone else.
        for (std::size_t i = 1; i <= batch_extra; ++i) {
            batch[i]->markStolen();
            _deque.pushTail(batch[i]);
        }
        _runtime.notifyWork();
    }
    // Promotion analogue: the task has now migrated off its spawner.
    task->markStolen();

    // Lazy work pushing happens only here, on the steal path — a frame
    // acquired from the own deque never pays this check beyond a compare.
    if (isConcretePlace(task->place()) && task->place() != _place) {
        if (pushBack(task)) {
            switchBucket(TimeSplit::Idle);
            return nullptr; // handed off; keep looking for other work
        }
        // Pushing threshold reached: honor load balance over locality.
    }
    return task;
}

bool
Worker::pushBack(TaskBase *task)
{
    const RuntimeOptions &opts = _runtime.options();
    if (!opts.useMailboxes)
        return false;
    const Place target = task->place();
    NUMAWS_ASSERT(isConcretePlace(target));
    const auto [first, last] = _runtime.workersOfPlace(target);
    if (first >= last)
        return false;
    // The policy sees our own deque depth (pressure widens the cap) and
    // every rejection below (congestion tightens it). Reading the live
    // threshold each iteration keeps the loop bounded either way: the
    // frame's lifetime push count only grows, the cap only shrinks under
    // rejection, and a cap at or below the count exits to the give-up
    // path, where load balance wins over locality.
    _pushPolicy.observeDequeDepth(_deque.size());
    while (task->pushCount()
           < static_cast<uint32_t>(_pushPolicy.threshold())) {
        ++_counters.pushbackAttempts;
        const int receiver =
            first
            + static_cast<int>(_rng.nextBounded(
                static_cast<uint64_t>(last - first)));
        if (_runtime.worker(receiver).mailbox().tryPut(task)) {
            ++_counters.pushbackSuccesses;
            _pushPolicy.onPushSuccess();
            _runtime.notifyWork();
            return true;
        }
        _pushPolicy.onMailboxFull();
        task->incPushCount();
    }
    ++_counters.pushbackGiveUps;
    return false;
}

void
Worker::executeTask(TaskBase *task)
{
    switchBucket(TimeSplit::Work);
    const Place prev_hint = _currentHint;
    _currentHint = task->place();
    ++_counters.tasksExecuted;
    if (isConcretePlace(task->place()) && task->place() == _place)
        ++_counters.tasksOnHintedPlace;

    try {
        task->run(*this);
    } catch (...) {
        if (task->group() != nullptr)
            task->group()->recordException(std::current_exception());
        else
            throw; // root-task exceptions are captured by Runtime::run
    }

    _currentHint = prev_hint;
    if (task->group() != nullptr)
        task->group()->onChildDone();
    delete task;
    switchBucket(TimeSplit::Idle);
}

void
Worker::helpSync(TaskGroup &group)
{
    // We are inside a task body (bucket == Work); the wait itself is not
    // useful work until we actually find something to execute.
    switchBucket(TimeSplit::Idle);
    while (group.pending() > 0) {
        TaskBase *t = acquireLocal();
        if (t == nullptr && _runtime.rootActive())
            t = trySteal();
        if (t != nullptr)
            executeTask(t);
        else
            for (int i = 0; i < 32 && group.pending() > 0; ++i)
                cpuRelax();
    }
    // Control returns to the syncing task's body.
    switchBucket(TimeSplit::Work);
}

void
Worker::mainLoop()
{
    tlsWorker = this;
    if (_runtime.options().pinThreads)
        pinCurrentThread(_id);
    _mark = nowNs();
    _bucket = TimeSplit::Idle;

    int failures = 0;
    while (!_runtime.shuttingDown()) {
        TaskBase *t = acquireLocal();
        if (t == nullptr && _runtime.rootActive())
            t = trySteal();
        if (t != nullptr) {
            failures = 0;
            executeTask(t);
            continue;
        }
        if (++failures >= 64) {
            _runtime.idleWait();
            failures = 0;
        } else {
            cpuRelax();
        }
    }
    switchBucket(TimeSplit::Idle); // flush the final segment
    tlsWorker = nullptr;
}

} // namespace numaws
