#include "runtime/runtime.h"

#include "mem/page_map.h"
#include "support/panic.h"
#include "topology/affinity.h"

#include <chrono>
#include <thread>

namespace numaws {

namespace {

thread_local Worker *tlsWorker = nullptr;

} // namespace

void
WorkerCounters::merge(const WorkerCounters &o)
{
    spawns += o.spawns;
    stealAttempts += o.stealAttempts;
    steals += o.steals;
    mailboxTakes += o.mailboxTakes;
    pushbackAttempts += o.pushbackAttempts;
    pushbackSuccesses += o.pushbackSuccesses;
    pushbackGiveUps += o.pushbackGiveUps;
    tasksExecuted += o.tasksExecuted;
    tasksOnHintedPlace += o.tasksOnHintedPlace;
    stealHalfBatches += o.stealHalfBatches;
    stealHalfTasks += o.stealHalfTasks;
    escalations += o.escalations;
    levelSkips += o.levelSkips;
    dryPolls += o.dryPolls;
    yields += o.yields;
    agedClaims += o.agedClaims;
    framesRecycled += o.framesRecycled;
    remoteFrees += o.remoteFrees;
    slabBytes += o.slabBytes;
    slabFallbacks += o.slabFallbacks;
    dataBytesPooled += o.dataBytesPooled;
    dataRemoteFrees += o.dataRemoteFrees;
    dataSlabBytes += o.dataSlabBytes;
    dataSlabFallbacks += o.dataSlabFallbacks;
    parks += o.parks;
    parkWakes += o.parkWakes;
    parkTimeouts += o.parkTimeouts;
    spuriousWakes += o.spuriousWakes;
    parkedNs += o.parkedNs;
    interferenceRetires += o.interferenceRetires;
    interferenceReinstates += o.interferenceReinstates;
    jobsCompleted += o.jobsCompleted;
    // (The live park counters are atomics on Worker; Runtime::stats()
    // folds them via foldParkCounters, so aggregates merge plainly.)
}

Worker::Worker(Runtime &runtime, int id, int place, uint64_t seed,
               std::size_t deque_capacity)
    : _runtime(runtime),
      _id(id),
      _place(place),
      _deque(deque_capacity),
      _mailbox(runtime.options().sched.mailboxCapacity),
      _framePool(id,
                 runtime.options().taskPool == TaskPoolPolicy::Pooled),
      _dataHeap(id, place,
                runtime.options().dataHeap == DataHeapPolicy::Pooled
                    ? &runtime.arena()
                    : nullptr),
      _core(runtime.options().sched,
            EngineView{&runtime.stealDistribution(), &runtime.board()},
            id, place, seed),
      _mark(nowNs()),
      _sampleMask((1u << runtime.options().timeSplitSampleShift) - 1)
{
    // Mailbox occupancy reaches the board from inside tryPut/tryTake, so
    // pushers and thieves publish transitions without extra call sites;
    // under board parking the deposit edge also wakes this worker's
    // parked socket from the same spot.
    const SchedPolicy &pol = runtime.options().sched;
    if (pol.boardPublishing()) {
        _mailbox.attachBoard(&runtime.board(), id);
        if (pol.boardParking())
            _mailbox.attachParking(&runtime.parkingLot(), place);
    }
    // Cached so the spawn-boundary yield peek costs one bool when
    // preemption is off (the work-first price of the whole feature).
    _preemptEnabled = pol.serving.preempt;
    // Interference adaptation: retire order is from the top of the
    // place's worker range downward, so the place leader (lowest id,
    // largest rank-from-top) retires last and keeps ticking the
    // socket's pressure epoch for re-expansion probing.
    _interferenceEnabled =
        pol.serving.interference == InterferencePolicy::Adapt;
    _pressureEpochNs =
        static_cast<int64_t>(pol.serving.pressureEpochUs) * 1000;
    const auto [first, last] = runtime.workersOfPlace(place);
    _placeWorkers = last - first;
    _retireRank = (last - 1) - id;
    _placeLeader = id == first;
}

Worker *
Worker::current()
{
    return tlsWorker;
}

void
Worker::publishOwnDequeAndNotify()
{
    // Edge-triggered publish, with the board read itself hoisted off
    // the spawn fast path: when our cached published-bit already says
    // nonempty, the publish could neither flip the bit nor produce a
    // socket edge, so skip the call outright — a spawn burst pays for
    // the board exactly once. The cache can only be stale in the
    // harmless direction (a thief's dry-probe repair cleared the bit
    // behind us), which leaves a bounded false-empty the board
    // contract allows and acquireLocal's unconditional publish on the
    // next pop repairs. The core turns the edge verdict into a wake
    // directive: under board parking only a 0 -> nonzero socket edge
    // can find sleepers worth waking.
    bool socket_edge = false;
    if (_runtime.options().sched.boardPublishing()
        && !_dequeBitPublished) {
        socket_edge = _runtime.board().publishDeque(_id, true);
        _dequeBitPublished = true;
    }
    switch (_core.onPublishEdge(socket_edge)) {
      case WakeDirective::TargetedSocket:
        _runtime.notifyWorkOn(_place);
        break;
      case WakeDirective::Global:
        _runtime.notifyWork();
        break;
      case WakeDirective::None:
        break;
    }
}

void
Worker::pushTask(TaskBase *task)
{
    _deque.pushTail(task);
    publishOwnDequeAndNotify();
}

TaskBase *
Worker::acquireLocal()
{
    const bool publishing = _runtime.options().sched.boardPublishing();
    // Work path first: the tail of the own deque...
    if (TaskBase *t = _deque.popTail()) {
        // Publish the *actual* state, not just the pop-to-empty edge: a
        // thief's dry-probe repair can race a push and wrongly clear the
        // bit, and a worker draining a deep deque would otherwise never
        // re-assert it. Edge-triggered publish makes the common
        // (unchanged) case one relaxed load. This is also the repair
        // point for the spawn path's published-bit cache, so it stays
        // an unconditional call.
        if (publishing) {
            const bool nonempty = !_deque.empty();
            _runtime.board().publishDeque(_id, nonempty);
            _dequeBitPublished = nonempty;
        }
        return t;
    }
    if (publishing) {
        _runtime.board().publishDeque(_id, false);
        _dequeBitPublished = false;
    }
    // ...then POPMAILBOX: a frame some worker parked here for this place.
    if (TaskBase *t = _mailbox.tryTake()) {
        ++_counters.mailboxTakes;
        return t;
    }
    return nullptr;
}

TaskBase *
Worker::trySteal()
{
    // Reclaim frames (and data blocks) other threads freed into our
    // pools — on the steal path, where the work-first principle wants
    // the cost, never the spawn/allocation path. The nothing-pending
    // case is one relaxed load each.
    _framePool.drainRemote();
    _dataHeap.drainRemote();
    if (_runtime.numWorkers() <= 1)
        return nullptr;
    const SchedPolicy &pol = _runtime.options().sched;
    // All decisions — dry-poll cadence, victim, mailbox-vs-deque
    // inspection order, batching — come from the core; this driver only
    // executes them against the real deques and mailboxes.
    const StealAction action = _core.nextAction();
    if (action.kind == StealAction::Kind::DryPoll)
        return nullptr;
    Worker &victim = _runtime.worker(action.victim);

    TaskBase *task = nullptr;
    bool from_mailbox = false;
    if (action.checkMailboxFirst) {
        task = victim.mailbox().tryTake();
        from_mailbox = task != nullptr;
        // Outcome 1 (mailbox empty): fall through to the deque.
    }
    std::size_t batch_extra = 0;
    TaskBase *batch[kStealHalfCap];
    if (task == nullptr) {
        if (action.remoteBatch) {
            std::size_t cap = static_cast<std::size_t>(action.batchMax);
            if (cap > kStealHalfCap)
                cap = kStealHalfCap;
            const std::size_t n = victim.deque().stealHalf(batch, cap);
            if (n > 0) {
                task = batch[0];
                batch_extra = n - 1;
            }
        } else {
            task = victim.deque().stealHead();
        }
        // The probe already paid for the cache traffic: repair the
        // victim's staleness (a 1-bit over an empty deque) for free.
        if (pol.boardPublishing() && victim.deque().empty())
            _runtime.board().publishDeque(action.victim, false);
    }
    _core.onStealResult(action, task != nullptr);
    if (task == nullptr)
        return nullptr;

    // Successful steal: everything past this point is scheduler
    // bookkeeping, charged to scheduling time (the span term).
    switchBucket(TimeSplit::Scheduling);
    if (from_mailbox)
        ++_counters.mailboxTakes;
    else
        ++_counters.steals;
    if (batch_extra > 0) {
        ++_counters.stealHalfBatches;
        _counters.stealHalfTasks += batch_extra + 1;
        _counters.steals += batch_extra;
        // Extras land on our own deque, oldest first, where they stay
        // stealable by anyone else.
        for (std::size_t i = 1; i <= batch_extra; ++i) {
            batch[i]->markStolen();
            _deque.pushTail(batch[i]);
        }
        publishOwnDequeAndNotify();
    }
    // Promotion analogue: the task has now migrated off its spawner.
    task->markStolen();

    // Lazy work pushing happens only here, on the steal path — a frame
    // acquired from the own deque never pays this check beyond a compare.
    if (isConcretePlace(task->place()) && task->place() != _place) {
        if (pushBack(task)) {
            switchBucket(TimeSplit::Idle);
            return nullptr; // handed off; keep looking for other work
        }
        // Pushing threshold reached: honor load balance over locality.
    }
    return task;
}

bool
Worker::pushBack(TaskBase *task)
{
    if (!_runtime.options().sched.useMailboxes)
        return false;
    const Place target = task->place();
    NUMAWS_ASSERT(isConcretePlace(target));
    const auto [first, last] = _runtime.workersOfPlace(target);
    if (first >= last)
        return false;
    // The core sees our own deque depth (pressure widens the cap) and
    // every rejection below (congestion tightens it). Reading the live
    // threshold each iteration keeps the loop bounded either way: the
    // frame's lifetime push count only grows, the cap only shrinks under
    // rejection, and a cap at or below the count exits to the give-up
    // path, where load balance wins over locality.
    _core.beginPushback(static_cast<int64_t>(_deque.size()));
    while (task->pushCount()
           < static_cast<uint32_t>(_core.pushThreshold())) {
        ++_counters.pushbackAttempts;
        const int receiver =
            _core.pickPushReceiver(first, last, /*self=*/-1, target);
        if (_runtime.worker(receiver).mailbox().tryPut(task)) {
            ++_counters.pushbackSuccesses;
            _core.onPushResult(true);
            // Under board parking, tryPut already woke the receiver's
            // socket on the deposit's occupancy edge
            // (Mailbox::attachParking); the timer protocol notifies
            // globally.
            if (_core.onPublishEdge(false) == WakeDirective::Global)
                _runtime.notifyWork();
            return true;
        }
        _core.onPushResult(false);
        task->incPushCount();
    }
    ++_counters.pushbackGiveUps;
    return false;
}

void
Worker::noteAffinity(const TaskBase *task)
{
    // Data-home affinity for OccupancyAffinity steals: resolve the
    // task's annotated data range through the affinity PageMap — the
    // user-supplied one, or the runtime's own data-plane map, so
    // PartedVec shards count without any configuration. First and last
    // page are enough: registrations are contiguous per policy. Tasks
    // without an annotation, or annotated with *unregistered* data
    // (plain-heap buffers), fall back to their place hint.
    uint32_t mask = 0;
    if (task->dataBytes() > 0) {
        const PageMap *pm = _runtime.affinityPageMap();
        const int first = pm->registeredHomeOf(task->dataAddr());
        const int last = pm->registeredHomeOf(task->dataAddr()
                                              + task->dataBytes() - 1);
        if (first >= 0 && first < 32)
            mask |= 1u << first;
        if (last >= 0 && last < 32)
            mask |= 1u << last;
    }
    if (mask == 0 && isConcretePlace(task->place())
        && task->place() < 32)
        mask = 1u << task->place();
    _core.setAffinity(mask);
}

Place
Worker::placeForData(const void *data, std::size_t bytes) const
{
    const PageMap *pm = _runtime.affinityPageMap();
    const auto addr = reinterpret_cast<uint64_t>(data);
    uint32_t mask = 0;
    const int first = pm->registeredHomeOf(addr);
    const int last = pm->registeredHomeOf(addr + bytes - 1);
    if (first >= 0 && first < 32)
        mask |= 1u << first;
    if (last >= 0 && last < 32)
        mask |= 1u << last;
    const Place p = StealCore::placeFromAffinity(mask);
    if (!isConcretePlace(p) || p >= _runtime.numPlaces())
        return kAnyPlace;
    // Placement-hint steering: while the data's home socket is under
    // co-runner pressure, hint a calm socket instead — losing locality
    // for the spawn beats queueing it behind a squeezed worker set.
    // Identity when adaptation is off or the socket is calm.
    if (_interferenceEnabled)
        return _runtime.interferenceCore().steerSocket(p);
    return p;
}

void
Worker::executeTask(TaskBase *task)
{
    // Sampled time split: only 1-in-2^timeSplitSampleShift tasks pay
    // the two clock reads bracketing execution (~40ns/task in the
    // fine-grained regime); the rest are counted and reclassified from
    // the enclosing segment at the next real read (switchBucket). The
    // default shift of 0 samples every task — the exact mode.
    const bool sampled = (_sampleCtr++ & _sampleMask) == 0;
    int64_t work_before = 0;
    if (sampled) {
        switchBucket(TimeSplit::Work);
        work_before = _time.ns(TimeSplit::Work);
    }
    const Place prev_hint = _currentHint;
    _currentHint = task->place();
    // Job context switches with the task (saved/restored like the hint):
    // stolen subtasks carry their job on the frame, so every worker's
    // spawn/sync boundaries see the right cancellation state, and
    // nested helping restores the helper's own job afterwards.
    JobState *const prev_job = _currentJob;
    _currentJob = task->job();
    // Publish the running class for preemption victim selection (the
    // nested restore below re-publishes the preempted job's class when
    // an inline higher-class job finishes).
    if (_preemptEnabled)
        _runningCls.store(
            _currentJob != nullptr
                ? static_cast<int8_t>(_currentJob->opts.cls)
                : static_cast<int8_t>(-1),
            std::memory_order_relaxed);
    ++_counters.tasksExecuted;
    if (_runtime.options().sched.affinityTracking())
        noteAffinity(task);
    if (isConcretePlace(task->place()) && task->place() == _place)
        ++_counters.tasksOnHintedPlace;

    try {
        task->run(*this);
    } catch (...) {
        if (task->group() != nullptr)
            task->group()->recordException(std::current_exception());
        else
            throw; // job-root exceptions are captured by Runtime::submit
    }

    _currentHint = prev_hint;
    _currentJob = prev_job;
    if (_preemptEnabled)
        _runningCls.store(
            prev_job != nullptr
                ? static_cast<int8_t>(prev_job->opts.cls)
                : static_cast<int8_t>(-1),
            std::memory_order_relaxed);
    if (task->group() != nullptr)
        task->group()->onChildDone();
    // Frame release sits on both the normal and the exception path
    // above: a thrown task body still recycles its frame.
    releaseTask(task);
    // Liveness signal for the stall watchdog: one relaxed increment per
    // completed task body.
    _progressStamp.fetch_add(1, std::memory_order_relaxed);
    if (sampled) {
        switchBucket(TimeSplit::Idle);
        // Work credited across this task's span (its own segment plus
        // any nested helping): the per-task estimate the unsampled
        // majority is charged at.
        const int64_t w = _time.ns(TimeSplit::Work) - work_before;
        if (w > 0) {
            _sampledWorkNs += w;
            ++_sampledTaskCount;
        }
    } else {
        ++_unsampledTasks;
    }
}

void
Worker::serviceYield()
{
    // Consume the directive exactly once (another boundary — or another
    // admission's re-raise — may race us; the exchange arbitrates).
    if (!_core.takeYieldRequest())
        return;
    // Only a job of *strictly higher* effective class may interrupt:
    // claiming our own class would add latency for nothing, and a
    // stray directive on an idle-ish worker (no current job) just
    // claims like the idle path does.
    const int below = _runningCls.load(std::memory_order_relaxed);
    TaskBase *t =
        _runtime.takeJobAbove(below >= 0 ? below : kNumJobClasses);
    if (t == nullptr)
        return; // the job was claimed, cancelled, or shed meanwhile
    _core.noteYieldServiced();
    // Run the higher-class job nested, right here: executeTask saves
    // and restores this worker's job context, and the preempted job's
    // just-pushed child stays on our deque — stealable by anyone —
    // which is exactly its checkpointed continuation. When the nested
    // job returns, control falls back into the preempted task body.
    executeTask(t);
}

void
Worker::releaseTask(TaskBase *task)
{
    const int owner = task->poolOwner();
    if (owner < 0) {
        delete task; // heap frame: oversized, Heap policy, or the root
        return;
    }
    TaskFrameHeader *frame = TaskFramePool::headerOf(task);
    task->~TaskBase();
    if (owner == _id) {
        _framePool.freeLocal(frame);
        return;
    }
    // Thief-side free of a stolen task: push the frame back to its
    // owning worker's pool instead of a cross-socket trip through the
    // global allocator; the owner relinks it on its own steal path.
    _runtime.worker(owner).framePool().freeRemote(frame);
}

void
Worker::helpSync(TaskGroup &group)
{
    // We are inside a task body (bucket == Work); the wait itself is not
    // useful work until we actually find something to execute.
    switchBucket(TimeSplit::Idle);
    while (group.pending() > 0) {
        TaskBase *t = acquireLocal();
        if (t == nullptr && _runtime.workActive())
            t = trySteal();
        if (t != nullptr)
            executeTask(t);
        else
            for (int i = 0; i < 32 && group.pending() > 0; ++i)
                cpuRelax();
    }
    // Control returns to the syncing task's body.
    switchBucket(TimeSplit::Work);
}

void
Worker::helpJob(const JobState &job)
{
    // Like helpSync, but for a job join — and unlike a sync, the wait
    // *claims queued jobs too*: the joined job may still be sitting in
    // the admission queue behind us, and on a single-worker runtime no
    // one else could ever claim it (nested submit-and-wait).
    switchBucket(TimeSplit::Idle);
    while (!job.done.load(std::memory_order_acquire)) {
        TaskBase *t = acquireLocal();
        if (t == nullptr)
            t = _runtime.takeJob();
        if (t == nullptr && _runtime.workActive())
            t = trySteal();
        if (t != nullptr)
            executeTask(t);
        else
            for (int i = 0;
                 i < 32 && !job.done.load(std::memory_order_acquire);
                 ++i)
                cpuRelax();
    }
    switchBucket(TimeSplit::Work);
}

bool
Worker::helpJobUntil(const JobState &job, int64_t deadline_ns)
{
    // helpJob with a clock bound (the worker-side waitUntil): keep
    // executing useful work, but stop once the instant passes even if
    // the job is unresolved. The deadline is checked between task
    // executions only — a long task body overshoots, same as any
    // cooperative scheme here.
    switchBucket(TimeSplit::Idle);
    while (!job.done.load(std::memory_order_acquire)
           && nowNs() < deadline_ns) {
        TaskBase *t = acquireLocal();
        if (t == nullptr)
            t = _runtime.takeJob();
        if (t == nullptr && _runtime.workActive())
            t = trySteal();
        if (t != nullptr)
            executeTask(t);
        else
            for (int i = 0;
                 i < 32 && !job.done.load(std::memory_order_acquire);
                 ++i)
                cpuRelax();
    }
    switchBucket(TimeSplit::Work);
    return job.done.load(std::memory_order_acquire);
}

void
Worker::maybeSamplePressure()
{
    // Epoch-gated: the loop-top call costs one clock read until the
    // epoch elapses. Every worker publishes its own sample into the
    // socket EWMA; only the place leader advances the hysteresis
    // ladder, so the core sees exactly one verdict per socket epoch.
    if (_pressureSensor.epochElapsedNs() < _pressureEpochNs)
        return;
    const int pm = _pressureSensor.sample();
    _runtime.pressureBoard().publish(_place, pm);
    if (_placeLeader)
        _runtime.interferenceCore().epochTick(
            _place, _runtime.pressureBoard().pressure(_place),
            _placeWorkers);
}

void
Worker::retirePark()
{
    // Count the retire on the not-retired -> retired edge only (the
    // loop re-enters here every epoch while the verdict holds).
    if (!_retiredNow.load(std::memory_order_relaxed)) {
        _retiredNow.store(true, std::memory_order_relaxed);
        _interferenceRetires.fetch_add(1, std::memory_order_relaxed);
    }
    // Park for one pressure epoch directly on the lot with a
    // shutdown-only predicate: Runtime::idleWait's work predicates
    // would return immediately while jobs are pending — exactly the
    // state a retirement is shedding — and busy-spin this thread.
    const auto epoch = std::chrono::microseconds(
        _runtime.options().sched.serving.pressureEpochUs);
    const int64_t park_start = nowNs();
    _parkedNow.store(true, std::memory_order_relaxed);
    if (_runtime.parkingLot().enabled())
        _runtime.parkingLot().park(_place, epoch, [this] {
            return _runtime.shuttingDown();
        });
    else
        std::this_thread::sleep_for(epoch);
    _parkedNow.store(false, std::memory_order_relaxed);
    const int64_t parked = nowNs() - park_start;
    _parkedNs.fetch_add(static_cast<uint64_t>(parked),
                        std::memory_order_relaxed);
    _pressureSensor.notePark(parked);
    // A fully retired socket still needs its epochs ticked or it could
    // never re-expand: the retired leader samples from here. Parked
    // time is excluded from the epoch's wall base, so these samples
    // read (near) zero pressure and decay the EWMA toward the expand
    // threshold — the expand streak becomes the probe duty cycle.
    if (_placeLeader)
        maybeSamplePressure();
}

void
Worker::mainLoop()
{
    tlsWorker = this;
    // Data-plane thread binding: numa::allocate on this thread routes
    // through our NUMA-local heap (fast path) and the runtime's arena.
    numa::bindThread(numa::ThreadBinding{
        &_dataHeap, &_runtime.arena(), _place,
        _runtime.options().dataHeap == DataHeapPolicy::Pooled});
    if (_runtime.options().pinThreads)
        pinCurrentThread(_id);
    _mark = nowNs();
    _bucket = TimeSplit::Idle;
    if (_interferenceEnabled)
        _pressureSensor.begin();

    const SchedPolicy &pol = _runtime.options().sched;
    while (!_runtime.shuttingDown()) {
        if (_interferenceEnabled) {
            // Retirement check sits at the loop top, before job claims
            // and steals: a retired worker must stop contending for
            // *new* work, but drains its own deque first so no spawned
            // task is stranded behind the park.
            if (_runtime.interferenceCore().workerRetired(_place,
                                                          _retireRank)) {
                if (TaskBase *t = acquireLocal()) {
                    _core.noteProgress();
                    executeTask(t);
                    continue;
                }
                retirePark();
                continue;
            }
            if (_retiredNow.load(std::memory_order_relaxed)) {
                // Reinstated this iteration: restart the epoch so park
                // time spent retired never reads as interference.
                _retiredNow.store(false, std::memory_order_relaxed);
                _interferenceReinstates.fetch_add(
                    1, std::memory_order_relaxed);
                _pressureSensor.begin();
            } else {
                maybeSamplePressure();
            }
        }
        TaskBase *t = acquireLocal();
        // Admission before stealing: a queued job is guaranteed work,
        // and the worker woken by an admission edge should claim the
        // job it was woken for rather than contend on steals.
        if (t == nullptr)
            t = _runtime.takeJob();
        if (t == nullptr && _runtime.workActive())
            t = trySteal();
        if (t != nullptr) {
            _core.noteProgress();
            executeTask(t);
            continue;
        }
        // The core tracks the fruitless streak against its (tuned) spin
        // budget and decides when spinning should give way to parking.
        _core.noteFruitless();
        if (_core.takeParkRequest()) {
            _parks.fetch_add(1, std::memory_order_relaxed);
            const int64_t park_start = nowNs();
            _parkedNow.store(true, std::memory_order_relaxed);
            if (_runtime.idleWait(
                    _place, static_cast<int>(_core.parkTimeoutUs())))
                _parkWakes.fetch_add(1, std::memory_order_relaxed);
            else
                _parkTimeouts.fetch_add(1, std::memory_order_relaxed);
            _parkedNow.store(false, std::memory_order_relaxed);
            // Parked wall time: the elastic-pool yield metric (the
            // fraction of idleness actually handed back to the OS).
            const int64_t parked = nowNs() - park_start;
            _parkedNs.fetch_add(static_cast<uint64_t>(parked),
                                std::memory_order_relaxed);
            // Voluntary sleep is not interference: exclude it from the
            // pressure epoch's wall base.
            if (_interferenceEnabled)
                _pressureSensor.notePark(parked);
            // A wake that lands on a still-dry board bought nothing:
            // the wakeup-storm metric the board policy is gated on
            // (only meaningful when the board is being published). The
            // same verdict feeds the core's park tuner — quiescent-
            // runtime parks are skipped, they say nothing about in-run
            // wake latency.
            if (pol.boardPublishing() && _runtime.workActive()) {
                const bool found = _runtime.board().anyWorkFor(_place)
                                   || _runtime.jobPending();
                if (!found)
                    _spuriousWakes.fetch_add(1,
                                             std::memory_order_relaxed);
                _core.onParkOutcome(found);
            }
        } else {
            cpuRelax();
        }
    }
    switchBucket(TimeSplit::Idle); // flush the final segment
    numa::unbindThread();
    tlsWorker = nullptr;
}

} // namespace numaws
