#include "runtime/runtime.h"

#include "support/panic.h"
#include "topology/affinity.h"

namespace numaws {

namespace {

thread_local Worker *tlsWorker = nullptr;

} // namespace

void
WorkerCounters::merge(const WorkerCounters &o)
{
    spawns += o.spawns;
    stealAttempts += o.stealAttempts;
    steals += o.steals;
    mailboxTakes += o.mailboxTakes;
    pushbackAttempts += o.pushbackAttempts;
    pushbackSuccesses += o.pushbackSuccesses;
    pushbackGiveUps += o.pushbackGiveUps;
    tasksExecuted += o.tasksExecuted;
    tasksOnHintedPlace += o.tasksOnHintedPlace;
}

Worker::Worker(Runtime &runtime, int id, int place, uint64_t seed,
               std::size_t deque_capacity)
    : _runtime(runtime),
      _id(id),
      _place(place),
      _rng(seed),
      _deque(deque_capacity),
      _mark(nowNs())
{}

Worker *
Worker::current()
{
    return tlsWorker;
}

void
Worker::pushTask(TaskBase *task)
{
    _deque.pushTail(task);
    _runtime.notifyWork();
}

TaskBase *
Worker::acquireLocal()
{
    // Work path first: the tail of the own deque...
    if (TaskBase *t = _deque.popTail())
        return t;
    // ...then POPMAILBOX: a frame some worker parked here for this place.
    if (TaskBase *t = _mailbox.tryTake()) {
        ++_counters.mailboxTakes;
        return t;
    }
    // Worker 0 also owns the root-injection slot.
    if (_id == 0) {
        if (TaskBase *t = _runtime.takeRoot())
            return t;
    }
    return nullptr;
}

TaskBase *
Worker::trySteal()
{
    if (_runtime.numWorkers() <= 1)
        return nullptr;
    ++_counters.stealAttempts;
    const int victim_id = _runtime.stealDistribution().sample(_id, _rng);
    Worker &victim = _runtime.worker(victim_id);

    TaskBase *task = nullptr;
    bool from_mailbox = false;
    // BIASEDSTEALWITHPUSH: flip a coin between the victim's mailbox and
    // its deque. Always checking the mailbox first would let a critical
    // node at a deque head starve (Section IV).
    if (_runtime.options().useMailboxes && _rng.flip()) {
        task = victim.mailbox().tryTake();
        from_mailbox = task != nullptr;
        // Outcome 1 (mailbox empty): fall through to the deque.
    }
    if (task == nullptr)
        task = victim.deque().stealHead();
    if (task == nullptr)
        return nullptr;

    // Successful steal: everything past this point is scheduler
    // bookkeeping, charged to scheduling time (the span term).
    switchBucket(TimeSplit::Scheduling);
    if (from_mailbox)
        ++_counters.mailboxTakes;
    else
        ++_counters.steals;
    // Promotion analogue: the task has now migrated off its spawner.
    task->markStolen();

    // Lazy work pushing happens only here, on the steal path — a frame
    // acquired from the own deque never pays this check beyond a compare.
    if (isConcretePlace(task->place()) && task->place() != _place) {
        if (pushBack(task)) {
            switchBucket(TimeSplit::Idle);
            return nullptr; // handed off; keep looking for other work
        }
        // Pushing threshold reached: honor load balance over locality.
    }
    return task;
}

bool
Worker::pushBack(TaskBase *task)
{
    const RuntimeOptions &opts = _runtime.options();
    if (!opts.useMailboxes)
        return false;
    const Place target = task->place();
    NUMAWS_ASSERT(isConcretePlace(target));
    const auto [first, last] = _runtime.workersOfPlace(target);
    if (first >= last)
        return false;
    while (task->pushCount()
           < static_cast<uint32_t>(opts.pushThreshold)) {
        ++_counters.pushbackAttempts;
        const int receiver =
            first
            + static_cast<int>(_rng.nextBounded(
                static_cast<uint64_t>(last - first)));
        if (_runtime.worker(receiver).mailbox().tryPut(task)) {
            ++_counters.pushbackSuccesses;
            _runtime.notifyWork();
            return true;
        }
        task->incPushCount();
    }
    ++_counters.pushbackGiveUps;
    return false;
}

void
Worker::executeTask(TaskBase *task)
{
    switchBucket(TimeSplit::Work);
    const Place prev_hint = _currentHint;
    _currentHint = task->place();
    ++_counters.tasksExecuted;
    if (isConcretePlace(task->place()) && task->place() == _place)
        ++_counters.tasksOnHintedPlace;

    try {
        task->run(*this);
    } catch (...) {
        if (task->group() != nullptr)
            task->group()->recordException(std::current_exception());
        else
            throw; // root-task exceptions are captured by Runtime::run
    }

    _currentHint = prev_hint;
    if (task->group() != nullptr)
        task->group()->onChildDone();
    delete task;
    switchBucket(TimeSplit::Idle);
}

void
Worker::helpSync(TaskGroup &group)
{
    // We are inside a task body (bucket == Work); the wait itself is not
    // useful work until we actually find something to execute.
    switchBucket(TimeSplit::Idle);
    while (group.pending() > 0) {
        TaskBase *t = acquireLocal();
        if (t == nullptr && _runtime.rootActive())
            t = trySteal();
        if (t != nullptr)
            executeTask(t);
        else
            for (int i = 0; i < 32 && group.pending() > 0; ++i)
                cpuRelax();
    }
    // Control returns to the syncing task's body.
    switchBucket(TimeSplit::Work);
}

void
Worker::mainLoop()
{
    tlsWorker = this;
    if (_runtime.options().pinThreads)
        pinCurrentThread(_id);
    _mark = nowNs();
    _bucket = TimeSplit::Idle;

    int failures = 0;
    while (!_runtime.shuttingDown()) {
        TaskBase *t = acquireLocal();
        if (t == nullptr && _runtime.rootActive())
            t = trySteal();
        if (t != nullptr) {
            failures = 0;
            executeTask(t);
            continue;
        }
        if (++failures >= 64) {
            _runtime.idleWait();
            failures = 0;
        } else {
            cpuRelax();
        }
    }
    switchBucket(TimeSplit::Idle); // flush the final segment
    tlsWorker = nullptr;
}

} // namespace numaws
