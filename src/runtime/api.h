/**
 * @file
 * Convenience layer over the runtime: the "hand compiled" form of the
 * paper's idealized locality API (Section III-A).
 *
 * The paper's `cilk_spawn G(...); @p1` notation lowers to runtime calls;
 * these helpers are those calls. `parallelFor` provides the cilk_for
 * equivalent (binary spawning of iteration ranges), and
 * `parallelForPlaces` adds the common partitioning idiom: split the range
 * into one chunk per place, hint each chunk at its place, then recurse
 * within the chunk inheriting the hint.
 */
#ifndef NUMAWS_RUNTIME_API_H
#define NUMAWS_RUNTIME_API_H

#include <cstdint>

#include "runtime/runtime.h"

namespace numaws {

/** Number of virtual places in the runtime executing the caller. */
int numPlaces();

/** Place of the worker executing the caller (kAnyPlace off-runtime). */
Place currentPlace();

/** The runtime executing the caller, or nullptr off-runtime. */
Runtime *currentRuntime();

/**
 * Cancellation view of the job the caller is computing for: valid()
 * inside a job body (and its spawned subtasks, stolen or not), invalid
 * — never reporting cancellation — off-runtime or outside any job.
 * Long boundary-free loops should poll token.cancelled() (or call
 * token.throwIfCancelled()) so cancel/deadline requests are honored
 * promptly; spawn/sync-structured code is covered automatically.
 */
CancelToken currentCancelToken();

/**
 * Partition helper: bounds of chunk @p chunk when [0, n) is split into
 * @p chunks nearly-equal contiguous pieces (remainder spread over the
 * leading chunks).
 */
struct RangeChunk
{
    int64_t begin;
    int64_t end;
};
RangeChunk chunkOf(int64_t n, int chunks, int chunk);

/**
 * Parallel loop over [begin, end): recursive binary splitting down to
 * @p grain iterations per leaf, spawned on the caller's task group.
 * The body receives a [lo, hi) subrange.
 */
template <typename Body>
void
parallelForRange(int64_t begin, int64_t end, int64_t grain,
                 const Body &body, Place place = kInheritPlace)
{
    if (end - begin <= grain) {
        body(begin, end);
        return;
    }
    const int64_t mid = begin + (end - begin) / 2;
    TaskGroup tg;
    tg.spawn([=, &body] { parallelForRange(begin, mid, grain, body); },
             place);
    parallelForRange(mid, end, grain, body, place);
    tg.sync();
}

/** Element-wise parallel loop: body(i) for i in [begin, end). */
template <typename Body>
void
parallelFor(int64_t begin, int64_t end, int64_t grain, const Body &body)
{
    parallelForRange(begin, end, grain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            body(i);
    });
}

/**
 * Place-partitioned parallel loop: [begin, end) is cut into one chunk per
 * place; chunk p is spawned with hint p and recursively splits inheriting
 * that hint. The caller should have homed the data the same way (e.g. via
 * NumaArena::allocPartitioned) for the co-location to pay off.
 */
template <typename Body>
void
parallelForPlaces(int64_t begin, int64_t end, int64_t grain,
                  const Body &body)
{
    const int places = numPlaces();
    const int64_t n = end - begin;
    if (places <= 1 || n <= grain) {
        parallelForRange(begin, end, grain, body);
        return;
    }
    TaskGroup tg;
    for (int p = 0; p < places; ++p) {
        const RangeChunk c = chunkOf(n, places, p);
        if (c.begin >= c.end)
            continue;
        tg.spawn(
            [=, &body] {
                parallelForRange(begin + c.begin, begin + c.end, grain,
                                 body);
            },
            static_cast<Place>(p));
    }
    tg.sync();
}

} // namespace numaws

#endif // NUMAWS_RUNTIME_API_H
