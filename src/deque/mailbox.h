/**
 * @file
 * Single-entry mailbox for lazy work pushing (Section III-B).
 *
 * Each worker owns one mailbox into which other workers may deposit a full
 * frame earmarked for this worker's place, *without interrupting it*. The
 * single entry is not an implementation convenience — it is load-bearing in
 * the theory (Section IV): with at most one frame parked per worker, the
 * top-heavy-deques argument survives, and the pushing cost amortizes
 * against successful steals. Tests assert the capacity-one behaviour.
 */
#ifndef NUMAWS_DEQUE_MAILBOX_H
#define NUMAWS_DEQUE_MAILBOX_H

#include <atomic>

#include "support/cache_aligned.h"

namespace numaws {

/** Lock-free one-slot mailbox of T*. */
template <typename T>
class Mailbox
{
  public:
    Mailbox() = default;
    Mailbox(const Mailbox &) = delete;
    Mailbox &operator=(const Mailbox &) = delete;

    /**
     * Attempt to deposit @p item.
     * @return false if the mailbox already holds a frame (the pusher then
     *         retries with a different random receiver, per PUSHBACK).
     */
    bool
    tryPut(T *item)
    {
        T *expected = nullptr;
        return _slot.compare_exchange_strong(expected, item,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed);
    }

    /**
     * Remove and return the parked frame, or nullptr if empty. Used by the
     * owner in its scheduling loop (POPMAILBOX) and by thieves that win
     * the coin flip (BIASEDSTEALWITHPUSH outcome 2/3).
     */
    T *
    tryTake()
    {
        if (_slot.load(std::memory_order_relaxed) == nullptr)
            return nullptr;
        return _slot.exchange(nullptr, std::memory_order_acq_rel);
    }

    /**
     * Read the parked frame without removing it (a thief inspects the
     * frame's place before deciding to take it or push it onward).
     */
    T *
    peek() const
    {
        return _slot.load(std::memory_order_acquire);
    }

    bool full() const { return peek() != nullptr; }

  private:
    alignas(kCacheLineBytes) std::atomic<T *> _slot{nullptr};
};

} // namespace numaws

#endif // NUMAWS_DEQUE_MAILBOX_H
