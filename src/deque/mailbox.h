/**
 * @file
 * Bounded mailbox for lazy work pushing (Section III-B), capacity-knobbed.
 *
 * Each worker owns one mailbox into which other workers may deposit full
 * frames earmarked for this worker's place, *without interrupting it*. The
 * paper's mailbox holds exactly one frame — that single entry is
 * load-bearing in the Section IV theory: with at most one frame parked per
 * worker the top-heavy-deques argument survives and the pushing cost
 * amortizes against successful steals. The capacity here is therefore a
 * construct-time knob that *defaults to one* (tests pin the capacity-one
 * behaviour); capacities up to kMaxMailboxCapacity batch several parked
 * frames per worker, and sim_bounds_test re-checks the Section IV bounds
 * with capacity in {1, 4} — the amortization constant scales with the
 * capacity, the bound shape survives.
 *
 * The mailbox optionally publishes its occupancy to an OccupancyBoard
 * (attachBoard): tryPut sets the owner's mailbox bit after the deposit is
 * visible, tryTake clears it when the last frame leaves. That ordering
 * makes a set bit always happen-after a real deposit (never-invented
 * occupancy) while an unset bit may transiently lag a deposit
 * (false-empty, which the board contract allows).
 */
#ifndef NUMAWS_DEQUE_MAILBOX_H
#define NUMAWS_DEQUE_MAILBOX_H

#include <atomic>

#include "sched/occupancy.h"
#include "sched/parking.h"
#include "support/cache_aligned.h"
#include "support/panic.h"

namespace numaws {

/** Hard cap on Mailbox capacity (slots are preallocated inline). */
inline constexpr int kMaxMailboxCapacity = 8;

/** Lock-free bounded mailbox of T*. */
template <typename T>
class Mailbox
{
  public:
    explicit Mailbox(int capacity = 1)
        : _capacity(capacity < 1 ? 1
                                 : (capacity > kMaxMailboxCapacity
                                        ? kMaxMailboxCapacity
                                        : capacity))
    {
        for (auto &slot : _slots)
            slot.store(nullptr, std::memory_order_relaxed);
    }

    Mailbox(const Mailbox &) = delete;
    Mailbox &operator=(const Mailbox &) = delete;

    int capacity() const { return _capacity; }

    /** Publish occupancy transitions for @p worker on @p board. */
    void
    attachBoard(OccupancyBoard *board, int worker)
    {
        _board = board;
        _worker = worker;
    }

    /**
     * Also wake @p lot's slot for @p socket whenever a deposit flips
     * the socket's board occupancy 0 -> nonzero (ParkPolicy::Board).
     * The deposit is the runtime's second publish point (after
     * Worker::pushTask), so parked workers learn about frames parked
     * for their place without a timer. Requires attachBoard.
     */
    void
    attachParking(ParkingLot *lot, int socket)
    {
        _lot = lot;
        _socket = socket;
    }

    /**
     * Attempt to deposit @p item into a free slot.
     * @return false if all capacity slots hold frames (the pusher then
     *         retries with a different random receiver, per PUSHBACK).
     */
    bool
    tryPut(T *item)
    {
        for (int i = 0; i < _capacity; ++i) {
            T *expected = nullptr;
            if (_slots[i].compare_exchange_strong(
                    expected, item, std::memory_order_acq_rel,
                    std::memory_order_relaxed)) {
                // Deposit first, then advertise: a thief that reads the
                // occupancy bit (acquire) observes this frame. A socket
                // occupancy edge wakes the owner's parked socket.
                if (_board != nullptr
                    && _board->publishMailbox(_worker, true)
                    && _lot != nullptr)
                    _lot->wake(_socket);
                return true;
            }
        }
        return false;
    }

    /**
     * Remove and return a parked frame, or nullptr if empty. Used by the
     * owner in its scheduling loop (POPMAILBOX) and by thieves that win
     * the coin flip (BIASEDSTEALWITHPUSH outcome 2/3).
     *
     * The scan starts one past the last taken slot and wraps, so with
     * capacity > 1 takes rotate through the slots: any parked frame is
     * taken within at most `capacity` successful takes (approximate
     * FIFO; the simulator models the strict-FIFO limit of the same
     * knob). A fixed scan-from-0 would let a frame in a high slot be
     * bypassed unboundedly while lower slots cycle.
     */
    T *
    tryTake()
    {
        const unsigned start =
            _takeCursor.load(std::memory_order_relaxed);
        for (int k = 0; k < _capacity; ++k) {
            const int i = static_cast<int>(
                (start + static_cast<unsigned>(k))
                % static_cast<unsigned>(_capacity));
            if (_slots[i].load(std::memory_order_relaxed) == nullptr)
                continue;
            if (T *item =
                    _slots[i].exchange(nullptr, std::memory_order_acq_rel)) {
                _takeCursor.store(static_cast<unsigned>(i) + 1,
                                  std::memory_order_relaxed);
                if (_board != nullptr && !occupiedApprox())
                    _board->publishMailbox(_worker, false);
                return item;
            }
        }
        // Dry scan: the caller just paid to inspect every slot, so
        // repair a stale 1-bit for free (the board contract's "repaired
        // eagerly" promise; racing a concurrent deposit at worst leaves
        // a transient false-empty, which the contract allows and the
        // owner's unconditional POPMAILBOX drains regardless).
        if (_board != nullptr)
            _board->publishMailbox(_worker, false);
        return nullptr;
    }

    /**
     * Read a parked frame without removing it (a thief inspects the
     * frame's place before deciding to take it or push it onward).
     */
    T *
    peek() const
    {
        for (int i = 0; i < _capacity; ++i) {
            if (T *item = _slots[i].load(std::memory_order_acquire))
                return item;
        }
        return nullptr;
    }

    /** All capacity slots occupied (a deposit would be rejected)? */
    bool
    full() const
    {
        for (int i = 0; i < _capacity; ++i) {
            if (_slots[i].load(std::memory_order_acquire) == nullptr)
                return false;
        }
        return true;
    }

    /** Occupied slot count (approximate under concurrency). */
    int
    occupied() const
    {
        int n = 0;
        for (int i = 0; i < _capacity; ++i)
            n += _slots[i].load(std::memory_order_acquire) != nullptr;
        return n;
    }

  private:
    bool
    occupiedApprox() const
    {
        for (int i = 0; i < _capacity; ++i) {
            if (_slots[i].load(std::memory_order_relaxed) != nullptr)
                return true;
        }
        return false;
    }

    alignas(kCacheLineBytes)
        std::atomic<T *> _slots[kMaxMailboxCapacity];
    /** Rotation cursor for tryTake (relaxed: fairness hint, not a
     * correctness invariant — a racy update just restarts the scan
     * elsewhere). */
    std::atomic<unsigned> _takeCursor{0};
    int _capacity;
    OccupancyBoard *_board = nullptr;
    int _worker = -1;
    ParkingLot *_lot = nullptr;
    int _socket = -1;
};

} // namespace numaws

#endif // NUMAWS_DEQUE_MAILBOX_H
