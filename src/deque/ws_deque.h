/**
 * @file
 * THE-protocol work-stealing deque (Frigo, Leiserson, Randall, PLDI'98).
 *
 * The deque embodies the work-first principle at the data-structure level:
 * the busy owner pushes and pops at the tail with two atomic operations and
 * one fence, taking the lock only when it races a thief for the final
 * element; thieves always take the lock and steal from the head. The paper
 * inherits this protocol unchanged from Cilk Plus (Section II), and so do
 * both of our engines.
 *
 * Terminology matches the paper: the *head* is where thieves steal (oldest
 * work) and the *tail* is where the owner works (youngest work). The ABP
 * analysis calls these "top" and "bottom".
 */
#ifndef NUMAWS_DEQUE_WS_DEQUE_H
#define NUMAWS_DEQUE_WS_DEQUE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "support/cache_aligned.h"
#include "support/panic.h"
#include "support/spin_lock.h"

namespace numaws {

/**
 * Fixed-capacity deque of pointers.
 *
 * Capacity bounds the *spawn depth* (continuations outstanding at once),
 * not total spawns, so a few thousand slots accommodate any reasonable
 * recursion; overflow is a panic rather than silent resizing because
 * resizing under the THE protocol would require a stop-the-world handshake
 * with thieves.
 *
 * @tparam T element type; the deque stores T* and never owns them.
 */
template <typename T>
class WsDeque
{
  public:
    explicit WsDeque(std::size_t capacity = 8192)
        : _buffer(capacity, nullptr), _capacity(capacity)
    {
        NUMAWS_ASSERT(capacity >= 2);
    }

    WsDeque(const WsDeque &) = delete;
    WsDeque &operator=(const WsDeque &) = delete;

    /**
     * Owner-only: push @p item at the tail. This is the work path — one
     * relaxed store plus one release store.
     */
    void
    pushTail(T *item)
    {
        const int64_t t = _tail.load(std::memory_order_relaxed);
        // Overflow check against a cached head bound, hoisting the
        // acquire load of _head off the common case: _head only ever
        // advances, so a stale cache understates it and the test is
        // conservative — the cache is refreshed (and the check
        // repeated) only when the pessimistic bound trips, i.e. at
        // most once per `capacity` pushes on a deque thieves are
        // draining, and once ever on one they are not.
        if (t - _headCache >= static_cast<int64_t>(_capacity)) {
            _headCache = _head.load(std::memory_order_acquire);
            if (t - _headCache >= static_cast<int64_t>(_capacity))
                NUMAWS_PANIC("work deque overflow (capacity %zu); spawn "
                             "depth exceeds the configured bound",
                             _capacity);
        }
        _buffer[static_cast<std::size_t>(t) % _capacity] = item;
        // Publish the element before advertising the new tail to thieves.
        _tail.store(t + 1, std::memory_order_release);
    }

    /**
     * Owner-only: pop from the tail (THE protocol fast path).
     * @return the youngest item, or nullptr if the deque was empty or the
     *         last item was lost to a thief.
     */
    T *
    popTail()
    {
        int64_t t = _tail.load(std::memory_order_relaxed) - 1;
        _tail.store(t, std::memory_order_relaxed);
        // The fence orders the tail decrement before reading the head —
        // this is the T/H exchange at the heart of the THE protocol.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const int64_t h = _head.load(std::memory_order_relaxed);
        if (h <= t) {
            // No conflict possible: at least one item remains below any
            // concurrent thief's claim.
            if (h < t)
                return _buffer[static_cast<std::size_t>(t) % _capacity];
            // Exactly one item: race a thief for it under the lock.
            T *item = nullptr;
            {
                std::lock_guard<SpinLock> g(_lock);
                const int64_t h2 = _head.load(std::memory_order_relaxed);
                if (h2 <= t) {
                    item = _buffer[static_cast<std::size_t>(t) % _capacity];
                } else {
                    // Thief won; restore the tail to the empty position.
                    _tail.store(t + 1, std::memory_order_relaxed);
                }
            }
            if (item == nullptr)
                return nullptr;
            return item;
        }
        // Deque was empty; undo the decrement.
        _tail.store(t + 1, std::memory_order_relaxed);
        return nullptr;
    }

    /**
     * Thief: steal from the head. Thieves serialize on the deque lock
     * (overhead deliberately placed on the steal path).
     * @return the oldest item, or nullptr if the deque is empty.
     */
    T *
    stealHead()
    {
        std::lock_guard<SpinLock> g(_lock);
        const int64_t h = _head.load(std::memory_order_relaxed);
        // Claim the slot before validating against the tail, mirroring the
        // original protocol's H increment-then-check.
        _head.store(h + 1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const int64_t t = _tail.load(std::memory_order_relaxed);
        if (h < t) {
            return _buffer[static_cast<std::size_t>(h) % _capacity];
        }
        // Deque empty (or owner won the conflict); retreat.
        _head.store(h, std::memory_order_relaxed);
        return nullptr;
    }

    /**
     * Thief: steal up to half the deque from the head in one locked
     * critical section (remote-steal batching). A cross-socket steal pays
     * the same QPI round trip whether it moves one frame or several, so
     * remote-level thieves amortize that latency by taking a batch; local
     * thieves keep taking single frames, preserving the top-heavy-deques
     * argument where it matters.
     *
     * Claims ceil-half of the observed size (never less than one when
     * nonempty), capped at @p max_n, then validates against the tail the
     * same increment-then-check way stealHead() does; if the owner is
     * contending for the youngest items the claim retreats so the slot at
     * the owner's tail index is never touched by the batch.
     *
     * @param out receives the stolen items, oldest first.
     * @param max_n capacity of @p out.
     * @return number of items written to @p out.
     */
    std::size_t
    stealHalf(T **out, std::size_t max_n)
    {
        if (max_n == 0)
            return 0;
        std::lock_guard<SpinLock> g(_lock);
        const int64_t h = _head.load(std::memory_order_relaxed);
        const int64_t t0 = _tail.load(std::memory_order_acquire);
        const int64_t avail = t0 - h;
        if (avail <= 0)
            return 0;
        int64_t want = (avail + 1) / 2;
        if (want > static_cast<int64_t>(max_n))
            want = static_cast<int64_t>(max_n);
        // Claim the range before validating, mirroring stealHead().
        _head.store(h + want, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const int64_t t = _tail.load(std::memory_order_relaxed);
        if (t < h + want) {
            // The owner decremented the tail into our claim; keep only
            // the items strictly below its tail index and release the
            // rest (the racing slot at index t belongs to the owner).
            const int64_t safe = t - h > 0 ? t - h : 0;
            _head.store(h + safe, std::memory_order_relaxed);
            want = safe;
        }
        for (int64_t i = 0; i < want; ++i)
            out[i] = _buffer[static_cast<std::size_t>(h + i) % _capacity];
        return static_cast<std::size_t>(want);
    }

    /** Approximate emptiness check (exact for the owner when quiescent). */
    bool
    empty() const
    {
        return _head.load(std::memory_order_acquire)
               >= _tail.load(std::memory_order_acquire);
    }

    /** Approximate current size (for stats/tests, not for decisions). */
    int64_t
    size() const
    {
        const int64_t s = _tail.load(std::memory_order_acquire)
                          - _head.load(std::memory_order_acquire);
        return s < 0 ? 0 : s;
    }

  private:
    alignas(kCacheLineBytes) std::atomic<int64_t> _head{0};
    alignas(kCacheLineBytes) std::atomic<int64_t> _tail{0};
    /** Owner-only lower bound on _head for pushTail's overflow check;
     * shares the owner's tail line, never touched by thieves. */
    int64_t _headCache = 0;
    alignas(kCacheLineBytes) SpinLock _lock;
    std::vector<T *> _buffer;
    std::size_t _capacity;
};

} // namespace numaws

#endif // NUMAWS_DEQUE_WS_DEQUE_H
