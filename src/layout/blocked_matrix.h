/**
 * @file
 * Dense matrices in row-major and blocked Z-Morton layouts, plus the
 * layout transformation API of Section III-C.
 *
 * BlockedZMatrix gives divide-and-conquer kernels two properties the paper
 * exploits: (1) a base-case block is contiguous in memory, so it can be
 * homed on a single socket despite spanning multiple logical rows; and
 * (2) the Z-curve index is computed per block, not per element.
 */
#ifndef NUMAWS_LAYOUT_BLOCKED_MATRIX_H
#define NUMAWS_LAYOUT_BLOCKED_MATRIX_H

#include <cstdint>
#include <vector>

#include "layout/zmorton.h"
#include "mem/numa_arena.h"
#include "support/panic.h"

namespace numaws {

/** True iff @p x is a power of two. */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/**
 * Square matrix stored block-by-block along the Z curve.
 *
 * @tparam T element type (arithmetic).
 */
template <typename T>
class BlockedZMatrix
{
  public:
    /**
     * @param n matrix edge (power of two).
     * @param block block edge (power of two, <= n).
     */
    BlockedZMatrix(uint32_t n, uint32_t block)
        : _n(n), _block(block), _data(static_cast<std::size_t>(n) * n)
    {
        NUMAWS_ASSERT(isPow2(n) && isPow2(block) && block <= n);
    }

    uint32_t n() const { return _n; }
    uint32_t block() const { return _block; }
    uint32_t blocksPerEdge() const { return _n / _block; }

    T &
    at(uint32_t i, uint32_t j)
    {
        return _data[blockedZOffset(i, j, _block, blocksPerEdge())];
    }

    const T &
    at(uint32_t i, uint32_t j) const
    {
        return _data[blockedZOffset(i, j, _block, blocksPerEdge())];
    }

    /** Pointer to the contiguous storage of block (bi, bj). */
    T *
    blockPtr(uint32_t bi, uint32_t bj)
    {
        return _data.data()
               + zMortonEncode(bi, bj) * _block * _block;
    }

    const T *
    blockPtr(uint32_t bi, uint32_t bj) const
    {
        return _data.data()
               + zMortonEncode(bi, bj) * _block * _block;
    }

    /** Bytes in one block (the homing granule). */
    std::size_t blockBytes() const
    {
        return sizeof(T) * _block * _block;
    }

    T *data() { return _data.data(); }
    const T *data() const { return _data.data(); }
    std::size_t bytes() const { return _data.size() * sizeof(T); }

    /** Import from a row-major buffer of the same logical shape. */
    void
    fromRowMajor(const T *src)
    {
        for (uint32_t i = 0; i < _n; ++i)
            for (uint32_t j = 0; j < _n; ++j)
                at(i, j) = src[static_cast<std::size_t>(i) * _n + j];
    }

    /** Export to a row-major buffer. */
    void
    toRowMajor(T *dst) const
    {
        for (uint32_t i = 0; i < _n; ++i)
            for (uint32_t j = 0; j < _n; ++j)
                dst[static_cast<std::size_t>(i) * _n + j] = at(i, j);
    }

    /**
     * Register block homes with @p arena: block (bi, bj) is homed on the
     * socket owning its quadrant of the Z curve, so each socket holds a
     * contiguous quarter of the blocks — the co-location the paper's
     * divide-and-conquer hints assume.
     */
    void
    bindBlocksToSockets(NumaArena &arena, int sockets)
    {
        const uint64_t blocks =
            static_cast<uint64_t>(blocksPerEdge()) * blocksPerEdge();
        const uint64_t per = (blocks + sockets - 1) / sockets;
        for (uint64_t z = 0; z < blocks; ++z) {
            const int home = static_cast<int>(std::min<uint64_t>(
                z / per, static_cast<uint64_t>(sockets) - 1));
            arena.pageMap().registerRange(
                reinterpret_cast<uint64_t>(_data.data())
                    + z * blockBytes(),
                blockBytes(), PagePolicy::Single, home);
        }
    }

  private:
    uint32_t _n;
    uint32_t _block;
    std::vector<T> _data;
};

/** Row-major square matrix with the same interface surface, for baselines. */
template <typename T>
class RowMajorMatrix
{
  public:
    explicit RowMajorMatrix(uint32_t n)
        : _n(n), _data(static_cast<std::size_t>(n) * n)
    {}

    uint32_t n() const { return _n; }

    T &
    at(uint32_t i, uint32_t j)
    {
        return _data[static_cast<std::size_t>(i) * _n + j];
    }

    const T &
    at(uint32_t i, uint32_t j) const
    {
        return _data[static_cast<std::size_t>(i) * _n + j];
    }

    T *data() { return _data.data(); }
    const T *data() const { return _data.data(); }
    std::size_t bytes() const { return _data.size() * sizeof(T); }

  private:
    uint32_t _n;
    std::vector<T> _data;
};

} // namespace numaws

#endif // NUMAWS_LAYOUT_BLOCKED_MATRIX_H
