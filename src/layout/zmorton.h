/**
 * @file
 * Z-Morton (bit-interleaved) index math — Section III-C.
 *
 * `interleave(x, y)` spreads the bits of x and y so consecutive indices
 * trace the recursive Z curve of Figure 6a. The data layout transformation
 * applies this at *block* granularity only (Figure 6b): blocks are laid on
 * the Z curve while data within each block stays row-major, so base cases
 * of divide-and-conquer algorithms see contiguous memory and the
 * interleaving is computed once per block rather than per element.
 */
#ifndef NUMAWS_LAYOUT_ZMORTON_H
#define NUMAWS_LAYOUT_ZMORTON_H

#include <cstdint>

namespace numaws {

/** Spread the low 32 bits of @p x to the even bit positions. */
constexpr uint64_t
spreadBits(uint64_t x)
{
    x &= 0xffffffffULL;
    x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
    x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
    x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
    x = (x | (x << 2)) & 0x3333333333333333ULL;
    x = (x | (x << 1)) & 0x5555555555555555ULL;
    return x;
}

/** Compact the even bit positions of @p x back into the low 32 bits. */
constexpr uint64_t
compactBits(uint64_t x)
{
    x &= 0x5555555555555555ULL;
    x = (x | (x >> 1)) & 0x3333333333333333ULL;
    x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
    x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
    x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
    x = (x | (x >> 16)) & 0x00000000ffffffffULL;
    return x;
}

/** Z-Morton code for (row, col): row bits odd, col bits even. */
constexpr uint64_t
zMortonEncode(uint32_t row, uint32_t col)
{
    return (spreadBits(row) << 1) | spreadBits(col);
}

/** Inverse of zMortonEncode. */
constexpr void
zMortonDecode(uint64_t code, uint32_t &row, uint32_t &col)
{
    row = static_cast<uint32_t>(compactBits(code >> 1));
    col = static_cast<uint32_t>(compactBits(code));
}

/**
 * Element offset in a blocked Z-Morton matrix (Figure 6b).
 *
 * @param i row, @param j column, @param block block edge (power of two),
 * @param blocked_cols matrix columns / block (power of two).
 * The matrix must be square in *blocks* for the Z curve to stay dense; the
 * BlockedZMatrix container enforces that by padding.
 */
constexpr uint64_t
blockedZOffset(uint32_t i, uint32_t j, uint32_t block,
               uint32_t /*blocked_cols*/)
{
    const uint64_t z = zMortonEncode(i / block, j / block);
    const uint64_t in_block =
        static_cast<uint64_t>(i % block) * block + (j % block);
    return z * block * block + in_block;
}

} // namespace numaws

#endif // NUMAWS_LAYOUT_ZMORTON_H
