#include "layout/zmorton.h"

// The Z-Morton math is constexpr and lives in the header; this translation
// unit anchors the library and provides compile-time sanity checks.

namespace numaws {

static_assert(zMortonEncode(0, 0) == 0);
static_assert(zMortonEncode(0, 1) == 1);
static_assert(zMortonEncode(1, 0) == 2);
static_assert(zMortonEncode(1, 1) == 3);
static_assert(zMortonEncode(2, 2) == 12);
static_assert(spreadBits(compactBits(0x5555555555555555ULL))
              == 0x5555555555555555ULL);

} // namespace numaws
