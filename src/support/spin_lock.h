/**
 * @file
 * Test-and-test-and-set spin lock used by the THE-protocol deque.
 *
 * The deque lock is held for a handful of instructions (index compare and
 * pointer swap), and contention is rare by construction — the work-first
 * principle pushes synchronization onto thieves, and thieves serialize on
 * this lock while the busy owner takes it only on the one-element conflict.
 * A full std::mutex (futex syscalls) would be overkill on that path.
 */
#ifndef NUMAWS_SUPPORT_SPIN_LOCK_H
#define NUMAWS_SUPPORT_SPIN_LOCK_H

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace numaws {

/** Pause hint for spin-wait loops. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/** TTAS spin lock satisfying the Lockable named requirement. */
class SpinLock
{
  public:
    SpinLock() = default;
    SpinLock(const SpinLock &) = delete;
    SpinLock &operator=(const SpinLock &) = delete;

    void
    lock()
    {
        for (;;) {
            if (!_locked.exchange(true, std::memory_order_acquire))
                return;
            while (_locked.load(std::memory_order_relaxed))
                cpuRelax();
        }
    }

    bool
    try_lock()
    {
        return !_locked.load(std::memory_order_relaxed)
               && !_locked.exchange(true, std::memory_order_acquire);
    }

    void
    unlock()
    {
        _locked.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> _locked{false};
};

} // namespace numaws

#endif // NUMAWS_SUPPORT_SPIN_LOCK_H
