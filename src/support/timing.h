/**
 * @file
 * Wall-clock timing helpers for benchmarks and the runtime's per-worker
 * work/scheduling/idle accounting.
 */
#ifndef NUMAWS_SUPPORT_TIMING_H
#define NUMAWS_SUPPORT_TIMING_H

#include <chrono>
#include <cstdint>

namespace numaws {

/** Monotonic nanosecond timestamp. */
inline int64_t
nowNs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               clock::now().time_since_epoch())
        .count();
}

/** Simple start/stop stopwatch reporting seconds. */
class WallTimer
{
  public:
    WallTimer() : _start(nowNs()) {}

    void reset() { _start = nowNs(); }

    /** Seconds since construction or the last reset(). */
    double
    seconds() const
    {
        return static_cast<double>(nowNs() - _start) * 1e-9;
    }

    int64_t nanoseconds() const { return nowNs() - _start; }

  private:
    int64_t _start;
};

/**
 * Accumulator that splits a worker's lifetime into named buckets
 * (work / scheduling / idle), mirroring the paper's Figure 3 and 8
 * decomposition. The caller brackets each activity with enter/exit.
 */
class TimeSplit
{
  public:
    enum Bucket { Work = 0, Scheduling = 1, Idle = 2, NumBuckets = 3 };

    void
    add(Bucket b, int64_t ns)
    {
        _ns[b] += ns;
    }

    int64_t ns(Bucket b) const { return _ns[b]; }
    double seconds(Bucket b) const { return static_cast<double>(_ns[b]) * 1e-9; }

    void
    merge(const TimeSplit &other)
    {
        for (int b = 0; b < NumBuckets; ++b)
            _ns[b] += other._ns[b];
    }

  private:
    int64_t _ns[NumBuckets] = {0, 0, 0};
};

} // namespace numaws

#endif // NUMAWS_SUPPORT_TIMING_H
