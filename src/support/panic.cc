#include "support/panic.h"

#include <cstdio>
#include <cstdlib>

namespace numaws {

namespace {

void
vreport(const char *tag, const char *file, int line, const char *fmt,
        va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    if (file != nullptr)
        std::fprintf(stderr, "  @ %s:%d", file, line);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", file, line, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", nullptr, 0, fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", nullptr, 0, fmt, ap);
    va_end(ap);
}

} // namespace numaws
