/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit rows in
 * the same layout as the paper's Figures 7 and 8 (which are tables).
 */
#ifndef NUMAWS_SUPPORT_TABLE_H
#define NUMAWS_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace numaws {

/**
 * Column-aligned table with a header row, printed to stdout.
 *
 * Usage:
 * @code
 *   Table t({"benchmark", "TS", "T1", "T32"});
 *   t.addRow({"cilksort", "20.38", "20.47 (1.00x)", "0.96 (21.28x)"});
 *   t.print();
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    void addRow(std::vector<std::string> row);
    /** Insert a horizontal separator before the next row. */
    void addSeparator();
    void print() const;
    /** Render to a string (used by tests). */
    std::string str() const;

    /** Format helpers used throughout bench binaries. */
    static std::string fmtSeconds(double s);
    static std::string fmtRatio(double r);
    /** "12.34 (1.07x)" style cell. */
    static std::string fmtSecondsWithRatio(double s, double ratio);

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows; // empty row == separator
};

} // namespace numaws

#endif // NUMAWS_SUPPORT_TABLE_H
