/**
 * @file
 * Error-reporting primitives, following the gem5 panic/fatal distinction:
 * panic() for internal invariant violations (bugs in NUMA-WS itself),
 * fatal() for user errors (bad configuration, invalid arguments).
 */
#ifndef NUMAWS_SUPPORT_PANIC_H
#define NUMAWS_SUPPORT_PANIC_H

#include <cstdarg>
#include <string>

namespace numaws {

/** Print a formatted message and abort(); use for internal bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a warning to stderr without stopping execution. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace numaws

#define NUMAWS_PANIC(...) \
    ::numaws::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define NUMAWS_FATAL(...) \
    ::numaws::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/**
 * Always-on invariant check (not compiled out in release builds); the
 * runtime and simulator rely on these to catch protocol violations.
 */
#define NUMAWS_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (__builtin_expect(!(cond), 0)) {                               \
            ::numaws::panicImpl(__FILE__, __LINE__,                       \
                                "assertion failed: %s", #cond);           \
        }                                                                 \
    } while (0)

#endif // NUMAWS_SUPPORT_PANIC_H
