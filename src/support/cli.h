/**
 * @file
 * Minimal command-line parser for the benchmark and example binaries.
 *
 * Accepts "--key=value" and "--flag" arguments; anything unrecognized is a
 * fatal user error so that typos in sweep scripts do not silently run the
 * wrong experiment. Recognition is by *query*: every accessor registers
 * its key, and at destruction (i.e. end of main) any argv key that no
 * accessor ever asked about is fatal — so a dead `--flag` in a CI
 * invocation fails loudly instead of going green. Binaries with
 * conditionally-queried keys can pre-register them via declareKey().
 */
#ifndef NUMAWS_SUPPORT_CLI_H
#define NUMAWS_SUPPORT_CLI_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace numaws {

/** Parsed view over argv with typed accessors and defaults. */
class Cli
{
  public:
    Cli(int argc, const char *const *argv);

    /** Fatals on unknown keys unless checkUnknownKeys() already ran. */
    ~Cli();

    Cli(const Cli &) = delete;
    Cli &operator=(const Cli &) = delete;

    bool has(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;
    int64_t getInt(const std::string &key, int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /**
     * Comma-separated integer list, e.g. "--cores=1,2,4,8".
     */
    std::vector<int64_t> getIntList(const std::string &key,
                                    std::vector<int64_t> def) const;

    /** Register @p key as valid without reading it (for keys only
     * queried on some paths). */
    void declareKey(const std::string &key) const;

    /** Keys present on the command line that no accessor has queried
     * (test hook; the destructor's fatal reports exactly these). */
    std::vector<std::string> unknownKeys() const;

    /**
     * Fatal if any argv key was never queried/declared. Runs from the
     * destructor automatically; call it explicitly to fail before the
     * binary does real work (all current binaries query every key up
     * front, so the destructor-time check is equivalent for them).
     */
    void checkUnknownKeys() const;

    const std::string &programName() const { return _program; }

  private:
    std::string _program;
    std::map<std::string, std::string> _values;
    /** Keys some accessor asked about: the "registered" set. Mutable
     * because reading a value is logically const. */
    mutable std::set<std::string> _queried;
    mutable bool _checked = false;
};

} // namespace numaws

#endif // NUMAWS_SUPPORT_CLI_H
