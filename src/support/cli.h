/**
 * @file
 * Minimal command-line parser for the benchmark and example binaries.
 *
 * Accepts "--key=value" and "--flag" arguments; anything unrecognized is a
 * fatal user error so that typos in sweep scripts do not silently run the
 * wrong experiment.
 */
#ifndef NUMAWS_SUPPORT_CLI_H
#define NUMAWS_SUPPORT_CLI_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace numaws {

/** Parsed view over argv with typed accessors and defaults. */
class Cli
{
  public:
    Cli(int argc, const char *const *argv);

    bool has(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;
    int64_t getInt(const std::string &key, int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /**
     * Comma-separated integer list, e.g. "--cores=1,2,4,8".
     */
    std::vector<int64_t> getIntList(const std::string &key,
                                    std::vector<int64_t> def) const;

    const std::string &programName() const { return _program; }

  private:
    std::string _program;
    std::map<std::string, std::string> _values;
};

} // namespace numaws

#endif // NUMAWS_SUPPORT_CLI_H
