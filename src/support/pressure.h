/**
 * @file
 * Co-runner pressure sensing (PR 10): how a worker notices that a core
 * it believes it owns is being timesliced against an external workload.
 *
 * The runtime cannot see co-runners directly — the kernel gives no
 * callback for "your thread was preempted". What it can see, cheaply
 * and per thread, is the *signature* of preemption over an epoch:
 *
 *  - involuntary context switches (`getrusage(RUSAGE_THREAD)`'s
 *    `ru_nivcsw`): each one is the kernel evicting this thread for
 *    somebody else;
 *  - wall/CPU-time skew: a busy worker that accrued 3 ms of
 *    CLOCK_THREAD_CPUTIME_ID over a 5 ms wall epoch lost ~40% of the
 *    epoch to something that was not this thread.
 *
 * Each worker samples both once per pressure epoch (a clock_gettime +
 * getrusage pair on the scheduling path, never on the spawn path —
 * work-first) and folds the skew into a per-socket EWMA on the
 * PressureBoard, published next to the OccupancyBoard so the
 * InterferenceCore's verdicts and the admission-steering reads are one
 * relaxed atomic load. Parked time is excluded from the wall base: a
 * worker that slept in the ParkingLot by choice was not preempted.
 *
 * Units: pressure is per-mille (0..1000) of the epoch lost to
 * interference. The skew alone is ambiguous (page faults, frequency
 * ramps), so an epoch reports nonzero pressure only when at least one
 * involuntary context switch confirmed a co-runner.
 */
#ifndef NUMAWS_SUPPORT_PRESSURE_H
#define NUMAWS_SUPPORT_PRESSURE_H

#include <atomic>
#include <cstdint>
#include <ctime>
#include <memory>
#include <sys/resource.h>

#include "support/panic.h"

namespace numaws {

/**
 * Pure pressure math, separated so the unit tests need no clock: the
 * per-mille of @p wallNs the thread did *not* run, gated on at least
 * one involuntary context switch in the epoch.
 */
inline int
pressurePermille(int64_t wallNs, int64_t cpuNs, int64_t invCtxSwitches)
{
    if (invCtxSwitches < 1 || wallNs <= 0)
        return 0;
    const int64_t lost = wallNs - cpuNs;
    if (lost <= 0)
        return 0;
    const int64_t pm = lost * 1000 / wallNs;
    return pm > 1000 ? 1000 : static_cast<int>(pm);
}

/**
 * One worker's epoch sampler. begin() snapshots the three clocks;
 * sample() closes the epoch, returns its pressure, and re-opens the
 * next one. notePark(ns) subtracts voluntarily parked time from the
 * epoch's wall base.
 */
class PressureSensor
{
  public:
    void
    begin()
    {
        _wallStartNs = wallNowNs();
        _cpuStartNs = cpuNowNs();
        _nivcswStart = nivcswNow();
        _parkedNs = 0;
    }

    /** Exclude @p ns of ParkingLot sleep from the current epoch. */
    void notePark(int64_t ns) { _parkedNs += ns; }

    /** Close the epoch and start the next; returns per-mille pressure. */
    int
    sample()
    {
        const int64_t wall_now = wallNowNs();
        const int64_t cpu_now = cpuNowNs();
        const int64_t nivcsw_now = nivcswNow();
        int64_t wall = wall_now - _wallStartNs - _parkedNs;
        if (wall < 0)
            wall = 0;
        const int pm = pressurePermille(wall, cpu_now - _cpuStartNs,
                                        nivcsw_now - _nivcswStart);
        _wallStartNs = wall_now;
        _cpuStartNs = cpu_now;
        _nivcswStart = nivcsw_now;
        _parkedNs = 0;
        return pm;
    }

    /** Nanoseconds since the current epoch opened (park time included —
     * the caller asks "is the epoch over", not "how busy was it"). */
    int64_t
    epochElapsedNs() const
    {
        return wallNowNs() - _wallStartNs;
    }

  private:
    static int64_t
    wallNowNs()
    {
        timespec ts;
        clock_gettime(CLOCK_MONOTONIC, &ts);
        return int64_t{ts.tv_sec} * 1000000000 + ts.tv_nsec;
    }

    static int64_t
    cpuNowNs()
    {
        timespec ts;
        clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
        return int64_t{ts.tv_sec} * 1000000000 + ts.tv_nsec;
    }

    static int64_t
    nivcswNow()
    {
        rusage ru;
        getrusage(RUSAGE_THREAD, &ru);
        return static_cast<int64_t>(ru.ru_nivcsw);
    }

    int64_t _wallStartNs = 0;
    int64_t _cpuStartNs = 0;
    int64_t _nivcswStart = 0;
    int64_t _parkedNs = 0;
};

/**
 * Per-socket pressure EWMAs, published by worker epoch samples and read
 * by the InterferenceCore and the admission-steering path. Lives next
 * to the OccupancyBoard on the Runtime; all accesses relaxed — pressure
 * is advisory, a stale read costs one epoch of lag, never correctness
 * (the ShedCore EWMA discipline).
 */
class PressureBoard
{
  public:
    explicit PressureBoard(int sockets, int ewma_shift)
        : _sockets(sockets), _shift(ewma_shift),
          _ewma(new std::atomic<int64_t>[static_cast<std::size_t>(
              sockets > 0 ? sockets : 1)])
    {
        NUMAWS_ASSERT(sockets >= 1);
        NUMAWS_ASSERT(ewma_shift >= 0 && ewma_shift < 16);
        for (int s = 0; s < _sockets; ++s)
            _ewma[s].store(kUnseeded, std::memory_order_relaxed);
    }

    /** Fold one worker's epoch sample into its socket's EWMA. */
    void
    publish(int socket, int permille)
    {
        NUMAWS_ASSERT(socket >= 0 && socket < _sockets);
        std::atomic<int64_t> &cell = _ewma[socket];
        int64_t prev = cell.load(std::memory_order_relaxed);
        int64_t next;
        do {
            next = prev == kUnseeded
                       ? permille
                       : prev + ((permille - prev) >> _shift);
        } while (!cell.compare_exchange_weak(prev, next,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed));
    }

    /** Smoothed per-mille pressure; 0 until the first sample lands. */
    int
    pressure(int socket) const
    {
        NUMAWS_ASSERT(socket >= 0 && socket < _sockets);
        const int64_t v = _ewma[socket].load(std::memory_order_relaxed);
        return v == kUnseeded ? 0 : static_cast<int>(v);
    }

    int sockets() const { return _sockets; }

    void
    reset()
    {
        for (int s = 0; s < _sockets; ++s)
            _ewma[s].store(kUnseeded, std::memory_order_relaxed);
    }

  private:
    static constexpr int64_t kUnseeded = -1;

    const int _sockets;
    const int _shift;
    std::unique_ptr<std::atomic<int64_t>[]> _ewma;
};

} // namespace numaws

#endif // NUMAWS_SUPPORT_PRESSURE_H
