/**
 * @file
 * Fast pseudo-random number generation for scheduler decisions.
 *
 * Work stealing makes one random choice per steal attempt, on the hot idle
 * path; std::mt19937 is unnecessarily heavy there. We use xoshiro256**
 * seeded via splitmix64, the standard modern replacement. Every consumer
 * (worker threads, the simulator, tests) owns its private Rng instance so
 * runs are reproducible from a single root seed.
 */
#ifndef NUMAWS_SUPPORT_RNG_H
#define NUMAWS_SUPPORT_RNG_H

#include <cstdint>

namespace numaws {

/** splitmix64 step, used for seeding and cheap hashing. */
constexpr uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** xoshiro256** generator; not cryptographic, excellent for simulation. */
class Rng
{
  public:
    explicit constexpr Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        uint64_t sm = seed;
        for (auto &word : _state)
            word = splitmix64(sm);
    }

    constexpr uint64_t
    next()
    {
        const uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    constexpr uint64_t
    nextBounded(uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<uint64_t>(m);
        if (lo < bound) {
            const uint64_t threshold = (0ULL - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    constexpr double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Fair coin flip; the NUMA-WS steal protocol calls this per steal. */
    constexpr bool flip() { return (next() & 1ULL) != 0; }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t _state[4] = {};
};

} // namespace numaws

#endif // NUMAWS_SUPPORT_RNG_H
