#include "support/cli.h"

#include <cstdlib>

#include "support/panic.h"

namespace numaws {

Cli::Cli(int argc, const char *const *argv)
{
    _program = argc > 0 ? argv[0] : "unknown";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            NUMAWS_FATAL("unrecognized argument '%s' (expected --key=value)",
                         arg.c_str());
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq == std::string::npos)
            _values[arg] = "true"; // bare flag
        else
            _values[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
}

Cli::~Cli()
{
    checkUnknownKeys();
}

void
Cli::declareKey(const std::string &key) const
{
    _queried.insert(key);
}

std::vector<std::string>
Cli::unknownKeys() const
{
    std::vector<std::string> out;
    for (const auto &[key, value] : _values) {
        (void)value;
        if (_queried.count(key) == 0)
            out.push_back(key);
    }
    return out;
}

void
Cli::checkUnknownKeys() const
{
    if (_checked)
        return;
    _checked = true;
    const std::vector<std::string> unknown = unknownKeys();
    if (unknown.empty())
        return;
    std::string joined;
    for (const std::string &k : unknown) {
        if (!joined.empty())
            joined += ", ";
        joined += "--" + k;
    }
    NUMAWS_FATAL("%s: unknown key(s) %s (no accessor ever asked for "
                 "them; a typo'd flag must not run the wrong experiment)",
                 _program.c_str(), joined.c_str());
}

bool
Cli::has(const std::string &key) const
{
    _queried.insert(key);
    return _values.count(key) != 0;
}

std::string
Cli::getString(const std::string &key, const std::string &def) const
{
    _queried.insert(key);
    const auto it = _values.find(key);
    return it == _values.end() ? def : it->second;
}

int64_t
Cli::getInt(const std::string &key, int64_t def) const
{
    _queried.insert(key);
    const auto it = _values.find(key);
    if (it == _values.end())
        return def;
    char *end = nullptr;
    const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        NUMAWS_FATAL("--%s expects an integer, got '%s'", key.c_str(),
                     it->second.c_str());
    return v;
}

double
Cli::getDouble(const std::string &key, double def) const
{
    _queried.insert(key);
    const auto it = _values.find(key);
    if (it == _values.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0')
        NUMAWS_FATAL("--%s expects a number, got '%s'", key.c_str(),
                     it->second.c_str());
    return v;
}

bool
Cli::getBool(const std::string &key, bool def) const
{
    _queried.insert(key);
    const auto it = _values.find(key);
    if (it == _values.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    NUMAWS_FATAL("--%s expects a boolean, got '%s'", key.c_str(), v.c_str());
}

std::vector<int64_t>
Cli::getIntList(const std::string &key, std::vector<int64_t> def) const
{
    _queried.insert(key);
    const auto it = _values.find(key);
    if (it == _values.end())
        return def;
    std::vector<int64_t> out;
    const std::string &s = it->second;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string tok = s.substr(pos, comma - pos);
        char *end = nullptr;
        const int64_t v = std::strtoll(tok.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || tok.empty())
            NUMAWS_FATAL("--%s expects comma-separated integers, got '%s'",
                         key.c_str(), s.c_str());
        out.push_back(v);
        pos = comma + 1;
    }
    return out;
}

} // namespace numaws
