#include "support/stats.h"

#include <cmath>

namespace numaws {

void
RunningStat::add(double x)
{
    ++_n;
    if (_n == 1) {
        _mean = x;
        _min = x;
        _max = x;
        _m2 = 0.0;
        return;
    }
    const double delta = x - _mean;
    _mean += delta / static_cast<double>(_n);
    _m2 += delta * (x - _mean);
    if (x < _min)
        _min = x;
    if (x > _max)
        _max = x;
}

double
RunningStat::variance() const
{
    if (_n < 2)
        return 0.0;
    return _m2 / static_cast<double>(_n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::relStddev() const
{
    if (_mean == 0.0)
        return 0.0;
    return stddev() / _mean;
}

int64_t
CategoryCounter::total() const
{
    int64_t sum = 0;
    for (int64_t c : _counts)
        sum += c;
    return sum;
}

double
CategoryCounter::fraction(std::size_t category) const
{
    const int64_t t = total();
    if (t == 0 || category >= _counts.size())
        return 0.0;
    return static_cast<double>(_counts[category]) / static_cast<double>(t);
}

} // namespace numaws
