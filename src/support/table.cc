#include "support/table.h"

#include <cstdio>
#include <sstream>

#include "support/panic.h"

namespace numaws {

Table::Table(std::vector<std::string> header)
    : _header(std::move(header))
{
    NUMAWS_ASSERT(!_header.empty());
}

void
Table::addRow(std::vector<std::string> row)
{
    NUMAWS_ASSERT(row.size() == _header.size());
    _rows.push_back(std::move(row));
}

void
Table::addSeparator()
{
    _rows.emplace_back(); // empty vector encodes a separator
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(_header.size());
    for (std::size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();
    }

    std::ostringstream out;
    auto emitSep = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            out << '+' << std::string(widths[c] + 2, '-');
        }
        out << "+\n";
    };
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            out << "| " << cell
                << std::string(widths[c] - cell.size() + 1, ' ');
        }
        out << "|\n";
    };

    emitSep();
    emitRow(_header);
    emitSep();
    for (const auto &row : _rows) {
        if (row.empty())
            emitSep();
        else
            emitRow(row);
    }
    emitSep();
    return out.str();
}

void
Table::print() const
{
    const std::string s = str();
    std::fwrite(s.data(), 1, s.size(), stdout);
    std::fflush(stdout);
}

std::string
Table::fmtSeconds(double s)
{
    char buf[64];
    if (s >= 100.0)
        std::snprintf(buf, sizeof(buf), "%.1f", s);
    else if (s >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f", s);
    else
        std::snprintf(buf, sizeof(buf), "%.3f", s);
    return buf;
}

std::string
Table::fmtRatio(double r)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fx", r);
    return buf;
}

std::string
Table::fmtSecondsWithRatio(double s, double ratio)
{
    return fmtSeconds(s) + " (" + fmtRatio(ratio) + ")";
}

} // namespace numaws
