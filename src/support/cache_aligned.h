/**
 * @file
 * Cache-line alignment helpers.
 *
 * Per-worker scheduler state (deque indices, counters, mailboxes) is padded
 * to cache-line boundaries so that thieves probing one worker's state never
 * false-share with another worker's hot fields.
 */
#ifndef NUMAWS_SUPPORT_CACHE_ALIGNED_H
#define NUMAWS_SUPPORT_CACHE_ALIGNED_H

#include <cstddef>
#include <new>
#include <utility>

namespace numaws {

/** Size every hot structure is padded to. */
inline constexpr std::size_t kCacheLineBytes = 64;

/**
 * Wrapper placing T alone on its own cache line(s).
 */
template <typename T>
struct alignas(kCacheLineBytes) CachePadded
{
    T value;

    template <typename... Args>
    explicit CachePadded(Args &&...args)
        : value(std::forward<Args>(args)...)
    {}

    T *operator->() { return &value; }
    const T *operator->() const { return &value; }
    T &operator*() { return value; }
    const T &operator*() const { return value; }

  private:
    // Round sizeof(T) up to a multiple of the line size.
    static constexpr std::size_t paddedSize =
        ((sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes)
        * kCacheLineBytes;
    char _pad[paddedSize - sizeof(T) == 0 ? kCacheLineBytes
                                          : paddedSize - sizeof(T)] = {};
};

} // namespace numaws

#endif // NUMAWS_SUPPORT_CACHE_ALIGNED_H
