/**
 * @file
 * Statistics accumulators used by benchmarks (mean / stddev over repeated
 * runs, as the paper averages 10 runs) and by tests that check the realized
 * steal-probability distributions.
 */
#ifndef NUMAWS_SUPPORT_STATS_H
#define NUMAWS_SUPPORT_STATS_H

#include <cstdint>
#include <vector>

namespace numaws {

/** Welford one-pass mean/variance accumulator. */
class RunningStat
{
  public:
    void add(double x);

    int64_t count() const { return _n; }
    double mean() const { return _mean; }
    /** Sample variance (n-1 denominator); 0 for fewer than two samples. */
    double variance() const;
    double stddev() const;
    double min() const { return _min; }
    double max() const { return _max; }
    /** Relative standard deviation (stddev / mean); 0 if mean is 0. */
    double relStddev() const;

  private:
    int64_t _n = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * Fixed-bucket histogram over integer categories (e.g., victim socket
 * chosen per steal attempt).
 */
class CategoryCounter
{
  public:
    explicit CategoryCounter(std::size_t categories)
        : _counts(categories, 0)
    {}

    void
    add(std::size_t category)
    {
        if (category < _counts.size())
            ++_counts[category];
    }

    int64_t count(std::size_t category) const { return _counts[category]; }
    int64_t total() const;
    /** Fraction of all samples landing in @p category. */
    double fraction(std::size_t category) const;
    std::size_t size() const { return _counts.size(); }

  private:
    std::vector<int64_t> _counts;
};

} // namespace numaws

#endif // NUMAWS_SUPPORT_STATS_H
