/**
 * @file
 * Fixed-bucket log-scale latency histogram for the serving front door.
 *
 * Per-job latencies span six orders of magnitude (microsecond fib jobs to
 * second-long batch DAGs), so linear buckets are useless and exact
 * reservoirs allocate. This is the standard HDR-style layout: exact unit
 * buckets below 2^kSubBits, then kSub sub-buckets per power of two, giving
 * a bounded 1/kSub (12.5%) relative bucket width everywhere. record() is
 * two array ops and a bit scan — no allocation, fit for a worker's
 * job-completion path — and histograms merge by bucket-wise addition, so
 * Runtime::stats() can fold per-worker instances without locks.
 */
#ifndef NUMAWS_SUPPORT_LATENCY_HIST_H
#define NUMAWS_SUPPORT_LATENCY_HIST_H

#include <cstdint>

namespace numaws {

/** Mergeable log-scale histogram of non-negative integer samples
 * (nanoseconds by convention). */
class LatencyHist
{
  public:
    static constexpr int kSubBits = 3;
    static constexpr int kSub = 1 << kSubBits; ///< sub-buckets per octave
    /** Largest major covered exactly; larger samples clamp into the top
     * bucket. 2^42 ns is ~73 minutes — far beyond any job latency. */
    static constexpr int kMaxMajor = 42;
    static constexpr int kBuckets = (kMaxMajor - kSubBits + 2) * kSub;

    void
    record(uint64_t v)
    {
        ++_counts[indexOf(v)];
        ++_total;
        _sum += v;
        if (_total == 1 || v < _min)
            _min = v;
        if (v > _max)
            _max = v;
    }

    void
    merge(const LatencyHist &o)
    {
        for (int i = 0; i < kBuckets; ++i)
            _counts[i] += o._counts[i];
        if (o._total > 0) {
            if (_total == 0 || o._min < _min)
                _min = o._min;
            if (o._max > _max)
                _max = o._max;
        }
        _total += o._total;
        _sum += o._sum;
    }

    uint64_t count() const { return _total; }
    uint64_t min() const { return _total == 0 ? 0 : _min; }
    uint64_t max() const { return _max; }

    double
    mean() const
    {
        return _total == 0 ? 0.0
                           : static_cast<double>(_sum)
                                 / static_cast<double>(_total);
    }

    /**
     * Value at quantile @p q in [0, 1]: the midpoint of the bucket
     * holding the ceil(q * count)-th smallest sample, clamped into
     * [min, max] so exact extremes survive. Error is bounded by the
     * 12.5% bucket width (exact below 2^kSubBits).
     */
    double
    quantile(double q) const
    {
        if (_total == 0)
            return 0.0;
        if (q <= 0.0)
            return static_cast<double>(_min);
        uint64_t target = static_cast<uint64_t>(
            q * static_cast<double>(_total) + 0.5);
        if (target < 1)
            target = 1;
        if (target > _total)
            target = _total;
        uint64_t cum = 0;
        for (int i = 0; i < kBuckets; ++i) {
            cum += _counts[i];
            if (cum >= target) {
                const uint64_t lo = lowerBound(i);
                const uint64_t hi = lowerBound(i + 1);
                double v = static_cast<double>(lo)
                           + static_cast<double>(hi - lo) / 2.0;
                if (v < static_cast<double>(_min))
                    v = static_cast<double>(_min);
                if (v > static_cast<double>(_max))
                    v = static_cast<double>(_max);
                return v;
            }
        }
        return static_cast<double>(_max);
    }

    /** Inclusive lower bound of bucket @p idx (test hook; bucket idx
     * holds samples in [lowerBound(idx), lowerBound(idx + 1))). */
    static constexpr uint64_t
    lowerBound(int idx)
    {
        if (idx < kSub)
            return static_cast<uint64_t>(idx);
        const int major = idx / kSub - 1 + kSubBits;
        const int sub = idx % kSub;
        return static_cast<uint64_t>(kSub + sub) << (major - kSubBits);
    }

    /** Bucket index of sample @p v (test hook). */
    static constexpr int
    indexOf(uint64_t v)
    {
        if (v < kSub)
            return static_cast<int>(v);
        int major = 63;
        while ((v >> major) == 0)
            --major;
        if (major > kMaxMajor)
            major = kMaxMajor; // clamp: top bucket absorbs the tail
        const int sub = static_cast<int>(
            (v >> (major - kSubBits)) & (kSub - 1));
        return (major - kSubBits + 1) * kSub + sub;
    }

  private:
    uint64_t _counts[kBuckets] = {};
    uint64_t _total = 0;
    uint64_t _sum = 0;
    uint64_t _min = 0;
    uint64_t _max = 0;
};

} // namespace numaws

#endif // NUMAWS_SUPPORT_LATENCY_HIST_H
