/**
 * @file
 * Fork-join computation representation for the simulated machine.
 *
 * A computation is a tree of *frames* (the unit of scheduling, like a Cilk
 * function instance). Each frame is a sequence of items: strands (straight
 * -line work with a cycle cost and a memory footprint), spawns (descend
 * into a child frame, leaving the continuation stealable), and syncs. This
 * mirrors the dag model of Section IV: a spawn is a two-out-degree node,
 * a sync a multi-in-degree node, and strands are the unit-cost nodes in
 * between (here weighted by cycles instead of split into unit chains).
 *
 * Workload generators (src/workloads) lower each benchmark into this form
 * with analytic cycle costs and the same data-access pattern as the real
 * code; the simulated schedulers then execute it with continuation
 * stealing exactly as in the paper's Figures 2 and 5.
 */
#ifndef NUMAWS_SIM_DAG_H
#define NUMAWS_SIM_DAG_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/panic.h"
#include "topology/place.h"

namespace numaws::sim {

using FrameId = int32_t;
using RegionId = int32_t;

inline constexpr FrameId kNoFrame = -1;

/** How a data region's pages map to sockets in the simulated machine. */
enum class RegionPolicy : uint8_t {
    /** All pages on one socket (serial first-touch lands everything on 0). */
    Single,
    /** Pages round-robined across sockets (numactl --interleave). */
    Interleaved,
    /** Contiguous chunks, chunk i on socket i*sockets/chunks. */
    Partitioned,
    /** Custom mapping from byte offset to socket. */
    Custom,
};

/** A named allocation the computation reads and writes. */
struct Region
{
    std::string name;
    uint64_t bytes = 0;
    RegionPolicy policy = RegionPolicy::Single;
    int home = 0; ///< for Single
    /** for Custom: socket owning a given byte offset. */
    std::function<int(uint64_t)> customHome;
    /** Synthetic base address assigned by the builder (page aligned). */
    uint64_t base = 0;
};

/** One contiguous byte range touched by a strand. */
struct MemAccess
{
    RegionId region;
    uint64_t offset;
    uint64_t bytes;
};

/** Frame item kinds. */
enum class ItemKind : uint8_t { Strand, Spawn, Sync };

/** One step of a frame's body. */
struct Item
{
    ItemKind kind;
    /** Strand: pure compute cycles (memory cost is added by the model). */
    double cycles = 0.0;
    /** Strand: indices into ComputationDag::accesses. */
    uint32_t accessBegin = 0;
    uint32_t accessEnd = 0;
    /** Spawn: the child frame. */
    FrameId child = kNoFrame;
};

/** A function instance: a slice of the item array plus a locality hint. */
struct Frame
{
    uint32_t itemBegin = 0;
    uint32_t itemEnd = 0;
    Place place = kAnyPlace;
    FrameId parent = kNoFrame;
    /** Item index in the parent where its continuation resumes. */
    uint32_t parentResumeItem = 0;
};

/** Nominal work/span of a dag in cycles (memory cost excluded). */
struct WorkSpan
{
    double work = 0.0;
    double span = 0.0;
};

/**
 * Immutable fork-join computation.
 */
class ComputationDag
{
  public:
    const Frame &frame(FrameId f) const { return _frames[f]; }
    const Item &item(uint32_t i) const { return _items[i]; }
    const MemAccess &access(uint32_t a) const { return _accesses[a]; }
    const Region &region(RegionId r) const { return _regions[r]; }

    FrameId root() const { return _root; }
    std::size_t numFrames() const { return _frames.size(); }
    std::size_t numItems() const { return _items.size(); }
    std::size_t numRegions() const { return _regions.size(); }
    std::size_t numStrands() const { return _numStrands; }

    /**
     * Nominal work and span in cycles, with @p spawn_cost charged per
     * spawn and @p sync_cost per sync (pass 0 for the serial elision's
     * work). Span is the longest path through the fork-join structure.
     */
    WorkSpan workSpan(double spawn_cost = 0.0, double sync_cost = 0.0) const;

    /** Home socket of a byte within a region, given the socket count. */
    int homeOf(RegionId r, uint64_t offset, int sockets) const;

    /** True if any frame carries a concrete locality hint. */
    bool hasPlaceHints() const;

    /** Total bytes across all regions (footprint reporting). */
    uint64_t totalRegionBytes() const;

    /**
     * Graft @p other into this dag as an additional independent tree
     * (the serving front door's multi-job merge): frames, items,
     * accesses, and regions are copied with their indices remapped,
     * and region base addresses are rebased past this dag's highest
     * allocation so the LLC model never aliases two jobs' data.
     * root() is unchanged (set from the first tree appended into an
     * empty dag); the returned FrameId is @p other's root here —
     * the job root the serving simulator injects at arrival time.
     */
    FrameId append(const ComputationDag &other);

  private:
    friend class DagBuilder;

    FrameId _root = kNoFrame;
    std::size_t _numStrands = 0;
    std::vector<Frame> _frames;
    std::vector<Item> _items;
    std::vector<MemAccess> _accesses;
    std::vector<Region> _regions;
};

/**
 * Streaming builder for ComputationDag.
 *
 * Frames are built with an explicit open-frame stack so recursive workload
 * generators read naturally:
 * @code
 *   DagBuilder b;
 *   auto a = b.region("A", bytes, RegionPolicy::Partitioned);
 *   b.beginRoot();
 *     b.spawn(p0);             // opens child frame hinted at place 0
 *       b.strand(cycles, {{a, 0, n}});
 *     b.end();                 // closes child
 *     b.strand(...);           // continuation work
 *     b.sync();
 *   b.end();
 *   ComputationDag dag = b.finish();
 * @endcode
 */
class DagBuilder
{
  public:
    DagBuilder();

    /** Register a data region; returns its id. */
    RegionId region(std::string name, uint64_t bytes, RegionPolicy policy,
                    int home = 0);
    /** Register a region with a custom offset -> socket mapping. */
    RegionId regionCustom(std::string name, uint64_t bytes,
                          std::function<int(uint64_t)> home_of);

    /** Open the root frame (exactly once, first). */
    void beginRoot(Place place = kAnyPlace);

    /**
     * Open a child frame of the current frame (a cilk_spawn).
     * @param place a concrete place, kAnyPlace (@ANY: unset the hint),
     *        or kInheritPlace (default: adopt the spawner's hint, the
     *        paper's inheritance rule).
     */
    void spawn(Place place = kInheritPlace);

    /** Close the current frame (returns to the parent). */
    void end();

    /** Append a strand to the current frame. */
    void strand(double cycles, std::initializer_list<MemAccess> accesses);
    void strand(double cycles, const std::vector<MemAccess> &accesses);

    /** Append a cilk_sync to the current frame. */
    void sync();

    /** Spawn + single strand + end, the common leaf shape. */
    void
    spawnLeaf(Place place, double cycles,
              std::initializer_list<MemAccess> accesses)
    {
        spawn(place);
        strand(cycles, accesses);
        end();
    }

    /** Validate and seal the dag. The builder is consumed. */
    ComputationDag finish();

  private:
    void requireOpenFrame() const;

    ComputationDag _dag;
    // Items are accumulated per open frame, then flattened on end() so a
    // frame's items are contiguous.
    struct OpenFrame
    {
        FrameId id;
        std::vector<Item> items;
        int spawnsSinceSync = 0;
    };
    std::vector<OpenFrame> _stack;
    uint64_t _nextBase = 1ULL << 20; // synthetic address space cursor
    bool _finished = false;
};

} // namespace numaws::sim

#endif // NUMAWS_SIM_DAG_H
