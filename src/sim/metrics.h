/**
 * @file
 * Results of one simulated execution: the paper's measurement vocabulary.
 *
 * Work time / scheduling time / idle time follow Section II's definitions:
 * work = executing strands (plus the spawn/sync overhead on the work
 * path), scheduling = frame promotions, nontrivial syncs, resumes, and
 * work pushing, idle = failed steal attempts and end-of-computation
 * waiting.
 */
#ifndef NUMAWS_SIM_METRICS_H
#define NUMAWS_SIM_METRICS_H

#include <cstdint>
#include <string>

#include "sim/memory.h"

namespace numaws::sim {

/** Scheduler event counters for one run. */
struct SimCounters
{
    uint64_t strandsExecuted = 0;
    uint64_t spawns = 0;
    uint64_t trivialSyncs = 0;
    uint64_t nontrivialSyncs = 0;
    uint64_t suspensions = 0;
    uint64_t stealAttempts = 0;
    uint64_t steals = 0;         ///< successful deque steals (promotions)
    uint64_t mailboxSteals = 0;  ///< frames a thief took from a mailbox
    uint64_t mailboxPops = 0;    ///< frames a worker took from its own box
    uint64_t pushAttempts = 0;
    uint64_t pushSuccesses = 0;
    uint64_t pushGiveUps = 0;
    uint64_t resumes = 0;        ///< suspended-parent resumptions
    uint64_t batchedSteals = 0;  ///< remote steals that moved a batch
    uint64_t batchedFrames = 0;  ///< extra frames moved by those batches
    uint64_t levelSkips = 0;     ///< dry levels skipped via the board
    uint64_t boardDryPolls = 0;  ///< probes skipped on an all-dry board
    uint64_t parks = 0;          ///< idle cores entering the parked state
    uint64_t wakeups = 0;        ///< parked-core wakeups (any cause)
    /** Cycles spent parked, summed across cores (subset of idle time;
     * the elastic pool's yield metric, mirroring WorkerCounters::
     * parkedNs). */
    uint64_t parkedCycles = 0;
    uint64_t boardWakes = 0;     ///< wakeups from a targeted socket edge
    uint64_t spuriousWakeups = 0; ///< wakeups that found a dry board
    uint64_t yields = 0;         ///< latency-class preemptions serviced
    uint64_t agedClaims = 0;     ///< job claims won via priority aging
    /** @name Interference model (SimConfig::interference only) */
    /// @{
    uint64_t interferenceRetires = 0;    ///< workers shrunk away
    uint64_t interferenceReexpands = 0;  ///< workers reinstated
    /** Extra cycles the trace's stolen-core time-slicing inflated
     * steps by (the co-runner's bill, summed across cores). */
    uint64_t stolenCycles = 0;
    /** Extra cycles the trace's socket slowdown inflated steps by. */
    uint64_t slowedCycles = 0;
    /// @}
};

/** Outcome of one simulated run. */
struct SimResult
{
    int cores = 0;
    double ghz = 0.0;

    /** Makespan in cycles (and seconds for convenience). */
    double elapsedCycles = 0.0;
    double elapsedSeconds = 0.0;

    /** Summed across cores, in seconds (paper's W_P, S_P, I_P). */
    double workSeconds = 0.0;
    double schedSeconds = 0.0;
    double idleSeconds = 0.0;

    SimCounters counters;
    MemCounters memory;

    /** First cycle at which ShedCore::unparkPressure() fired (0 = never):
     * the shed-aware elastic unpark's early-warning timestamp. */
    uint64_t firstUnparkPressureCycles = 0;
    /** First cycle at which a class's delay EWMA actually crossed its
     * QueueDelay target (0 = never). The unpark-lead gate asserts the
     * pressure signal fires no later than this crossing. */
    uint64_t firstShedCrossCycles = 0;

    /** Total processing time (work + sched + idle), seconds. */
    double
    totalProcessingSeconds() const
    {
        return workSeconds + schedSeconds + idleSeconds;
    }

    /** One-line summary for logs. */
    std::string summary() const;
};

} // namespace numaws::sim

#endif // NUMAWS_SIM_METRICS_H
